"""Unit tests for statistics, power conversion and report rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    DVFSModel,
    OpDistribution,
    SimStats,
    power_savings_from_speedup,
    speedup,
)
from repro.analysis.report import format_table, percent


class TestOpDistribution:
    def test_fractions_sum_to_one(self):
        dist = OpDistribution()
        dist.add("ALU-HS")
        dist.add("ALU-HS")
        dist.add("MEM-LL")
        dist.add("SIMD")
        fractions = dist.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-12
        assert fractions["ALU-HS"] == 0.5

    def test_empty_distribution(self):
        dist = OpDistribution()
        assert dist.total == 0
        assert dist.fraction("SIMD") == 0.0

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            OpDistribution().add("BOGUS")


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=100, committed=250)
        assert stats.ipc == 2.5

    def test_zero_cycles_safe(self):
        assert SimStats().ipc == 0.0
        assert SimStats().fu_stall_rate == 0.0

    def test_branch_accuracy(self):
        stats = SimStats(branches=100, branch_mispredicts=4)
        assert stats.branch_accuracy == 0.96

    def test_speedup_helper(self):
        assert speedup(120, 100) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestPowerModel:
    def test_zero_speedup_zero_savings(self):
        assert power_savings_from_speedup(0.0) == pytest.approx(0.0)

    def test_negative_speedup_clamped(self):
        assert power_savings_from_speedup(-0.1) == 0.0

    def test_paper_bands(self):
        """SPEC 8-15%, MiBench 12-36%, ML 8-18% from their speedups."""
        assert 0.05 < power_savings_from_speedup(0.08) < 0.16
        assert 0.12 < power_savings_from_speedup(0.23) < 0.36
        assert 0.05 < power_savings_from_speedup(0.10) < 0.20

    def test_voltage_clamps_at_range_edges(self):
        model = DVFSModel()
        assert model.voltage_at(0.1) == model.v_min
        assert model.voltage_at(5.0) == model.v_nominal

    def test_relative_power_nominal_is_one(self):
        model = DVFSModel()
        assert model.relative_power(model.f_nominal_ghz) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_savings_monotone_in_speedup(self, s):
        assert (power_savings_from_speedup(s + 0.05)
                >= power_savings_from_speedup(s) - 1e-9)

    @given(st.floats(min_value=0.0, max_value=2.0))
    def test_savings_bounded(self, s):
        value = power_savings_from_speedup(s)
        assert 0.0 <= value < 1.0


class TestReport:
    def test_format_table_aligns(self):
        text = format_table("T", ["a", "bb"], [(1, 2.5), ("xx", "y")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(line) for line in lines[3:]}) <= 2  # aligned

    def test_percent(self):
        assert percent(0.123) == "12.3%"
