"""Unit tests for the ASCII execution-timeline renderer."""

from repro.analysis.timeline import Window, render_uops, render_windows
from repro.core import CORES
from repro.core.audit import _RecordingSimulator
from repro.pipeline.trace import generate_trace
from repro.workloads.microbench import MICROBENCHES


class TestRenderWindows:
    def test_empty(self):
        assert render_windows([]) == "(no windows)"

    def test_single_window_marks_right_ticks(self):
        text = render_windows([Window("x1", 11, 14)])
        ruler, row = text.splitlines()
        # the row marks exactly 3 ticks
        assert row.count("#") == 3
        # ticks 11..13 fall in cycle 1 (the only rendered cycle)
        cycle1 = row.split("|")[1]
        assert cycle1 == "   ###  "

    def test_edges_are_cycle_aligned(self):
        text = render_windows([Window("a", 0, 8), Window("b", 8, 16)])
        rows = text.splitlines()[1:]
        a_cells = rows[0].split("|")[1:-1]
        b_cells = rows[1].split("|")[1:-1]
        assert a_cells[0] == "########" and a_cells[1] == "        "
        assert b_cells[0] == "        " and b_cells[1] == "########"

    def test_note_appended(self):
        text = render_windows([Window("x", 3, 12, note="holds")])
        assert "(holds)" in text

    def test_cycle_range_clipping(self):
        text = render_windows([Window("x", 0, 80)], from_cycle=2,
                              to_cycle=4)
        ruler = text.splitlines()[0]
        assert "|2" in ruler and "|3" in ruler and "|5" not in ruler

    def test_range_excluding_all_windows_renders_empty_axis(self):
        """Regression: a zoom past every window used to be unhelpful —
        it must render the requested ruler with an all-blank row."""
        text = render_windows([Window("x", 0, 8)], from_cycle=5,
                              to_cycle=7)
        ruler, row = text.splitlines()
        assert "|5" in ruler and "|6" in ruler
        assert "#" not in row
        assert row.count("|") == 3  # both cycles framed

    def test_explicit_range_with_no_windows_renders_axis(self):
        text = render_windows([], from_cycle=2, to_cycle=4)
        assert text != "(no windows)"
        assert "|2" in text and "|3" in text
        assert text.splitlines() == [text]  # ruler only, no rows

    def test_empty_cycle_range_is_accepted(self):
        text = render_windows([Window("x", 0, 8)], from_cycle=3,
                              to_cycle=3)
        ruler, row = text.splitlines()
        assert "#" not in row
        assert ruler.endswith("|") and row.endswith("|")


class TestRenderUops:
    def test_renders_recorded_chain(self):
        trace = generate_trace(MICROBENCHES["wide-arith"].build(10))
        sim = _RecordingSimulator(trace, CORES["big"])
        sim.run()
        text = render_uops(sim.issued_log[4:12], limit=8)
        lines = text.splitlines()
        assert len(lines) == 9  # ruler + 8 rows
        assert any("#" in line for line in lines[1:])
        assert any("add" in line for line in lines[1:])

    def test_eager_issue_annotated(self):
        trace = generate_trace(MICROBENCHES["logic"].build(30))
        sim = _RecordingSimulator(trace, CORES["big"])
        sim.run()
        text = render_uops(sim.issued_log, limit=30)
        assert "eager issue" in text
