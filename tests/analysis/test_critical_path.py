"""Unit tests for the dataflow critical-path analyzer."""

from repro.analysis.critical_path import analyze_critical_path
from repro.core import BIG, RecycleMode, simulate
from repro.isa import Asm, Cond, r
from repro.pipeline.trace import generate_trace


def chain_program(op_builder, iters=200, name="chain"):
    a = Asm(name)
    a.mov(r(1), 1)
    a.mov(r(2), iters)
    a.label("loop")
    op_builder(a)
    a.subs(r(2), r(2), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def logic_chain(a):
    for _ in range(4):
        a.eor(r(1), r(1), 0x5A)


class TestBounds:
    def test_logic_chain_bound_is_large(self):
        trace = generate_trace(chain_program(logic_chain))
        result = analyze_critical_path(trace)
        # logic ops are 3/8 of a cycle: the dataflow bound approaches
        # 8/3 - 1 ≈ 1.67 for a pure chain (flag ops dilute it a little)
        assert result.bound_speedup > 0.8

    def test_arith_chain_bound_matches_ticks(self):
        def arith(a):
            for _ in range(4):
                a.add(r(1), r(1), 0x1000000)
        trace = generate_trace(chain_program(arith))
        result = analyze_critical_path(trace)
        # full-width adds: 7 ticks -> bound ~8/7-1
        assert 0.05 < result.bound_speedup < 0.35

    def test_multicycle_chain_has_no_slack_bound(self):
        def muls(a):
            a.mul(r(1), r(1), r(1))
        trace = generate_trace(chain_program(muls, iters=50))
        result = analyze_critical_path(trace)
        assert result.bound_speedup < 0.05

    def test_synchronous_ticks_are_edge_aligned_per_link(self):
        trace = generate_trace(chain_program(logic_chain, iters=10))
        result = analyze_critical_path(trace)
        assert result.synchronous_ticks % 8 == 0

    def test_transparent_never_longer_than_synchronous(self):
        for builder in (logic_chain,
                        lambda a: a.mul(r(1), r(1), r(1)),
                        lambda a: a.ldr(r(1), r(2))):
            trace = generate_trace(chain_program(builder, iters=30))
            result = analyze_critical_path(trace)
            assert result.transparent_ticks <= result.synchronous_ticks


class TestBoundsVsSimulation:
    def test_measured_speedup_below_dataflow_bound(self):
        """No implementation may beat the ideal-machine bound."""
        program = chain_program(logic_chain, iters=400)
        trace = generate_trace(program)
        bound = analyze_critical_path(trace).bound_speedup
        base = simulate(trace, BIG.with_mode(RecycleMode.BASELINE))
        red = simulate(trace, BIG.with_mode(RecycleMode.REDSOC))
        measured = base.cycles / red.cycles - 1
        assert measured <= bound + 0.31  # + parallel-iteration effects

    def test_bound_explains_low_speedup_kernels(self):
        """A loop-carried chain of full-width shift-modified arithmetic
        (8-tick ops, zero slack) bounds recycling near zero; only the
        parallel loop-counter chain contributes any slack at all."""
        from repro.isa import Asm, ShiftOp
        a = Asm("flex")
        a.mov(r(3), 0x7FFFFFFF)
        a.mov(r(2), 100)
        a.label("loop")
        for _ in range(3):
            a.add(r(3), r(3), r(3), shift=ShiftOp.ROR, shift_amt=3)
        a.subs(r(2), r(2), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        trace = generate_trace(a.finish())
        result = analyze_critical_path(trace)
        assert result.bound_speedup < 0.20
