"""Event-bus unit tests: sinks, ordering, JSONL round-trip."""

import io
import json

from repro.core import CORES, CoreSimulator
from repro.obs import (
    Event,
    EventKind,
    JsonlSink,
    NULL_SINK,
    Recorder,
    TeeSink,
)
from repro.obs.events import events_from_jsonl
from repro.pipeline.trace import generate_trace
from repro.workloads.microbench import MICROBENCHES


def _traced_run(bench="logic", n=30, core="big"):
    trace = generate_trace(MICROBENCHES[bench].build(n))
    recorder = Recorder()
    sim = CoreSimulator(trace, CORES[core], obs=recorder)
    result = sim.run()
    return sim, result, recorder


class TestSinks:
    def test_null_sink_accepts_anything(self):
        NULL_SINK.emit(Event(EventKind.FETCH, 0, 0, {}))

    def test_recorder_orders_and_filters(self):
        recorder = Recorder()
        recorder.emit(Event(EventKind.FETCH, 0, 0, {}))
        recorder.emit(Event(EventKind.COMMIT, 3, 0, {}))
        assert len(recorder) == 2
        assert [e.kind for e in recorder.events] == [EventKind.FETCH,
                                                     EventKind.COMMIT]
        assert len(recorder.of_kind(EventKind.COMMIT)) == 1
        recorder.clear()
        assert len(recorder) == 0

    def test_tee_fans_out(self):
        a, b = Recorder(), Recorder()
        tee = TeeSink(a, None, b)
        tee.emit(Event(EventKind.FETCH, 0, 1, {}))
        assert len(a) == len(b) == 1

    def test_jsonl_sink_streams(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(Event(EventKind.DISPATCH, 2, 7, {"op": "ADD"}))
        obj = json.loads(buf.getvalue())
        assert obj == {"kind": "dispatch", "cycle": 2, "seq": 7,
                       "data": {"op": "ADD"}}


class TestJsonlRoundTrip:
    def test_event_round_trips(self):
        event = Event(EventKind.EXEC_WINDOW, 9, 4,
                      {"start": 72, "end": 75, "srcs": [[1, 70]]})
        back = Event.from_json_obj(
            json.loads(json.dumps(event.to_json_obj())))
        assert back == event
        assert back.kind is EventKind.EXEC_WINDOW

    def test_stream_round_trips(self):
        _, _, recorder = _traced_run()
        lines = [json.dumps(e.to_json_obj()) for e in recorder.events]
        back = events_from_jsonl(lines)
        assert back == recorder.events


class TestPipelineEventStream:
    def test_life_of_a_uop_ordering(self):
        """Per uop: fetch <= dispatch <= exec <= commit in cycle order."""
        _, _, recorder = _traced_run()
        by_kind = {}
        for e in recorder.events:
            by_kind.setdefault(e.kind, {})[e.seq] = e
        execs = by_kind[EventKind.EXEC_WINDOW]
        for seq, commit in by_kind[EventKind.COMMIT].items():
            fetch = by_kind[EventKind.FETCH][seq]
            dispatch = by_kind[EventKind.DISPATCH][seq]
            assert fetch.cycle <= dispatch.cycle <= commit.cycle
            if seq in execs:  # NOP/HALT never execute
                assert dispatch.cycle <= execs[seq].cycle <= commit.cycle

    def test_meta_event_first_and_complete(self):
        sim, _, recorder = _traced_run()
        meta = recorder.events[0]
        assert meta.kind is EventKind.META
        assert meta.data["instructions"] == len(sim.trace.entries)
        assert meta.data["ticks_per_cycle"] == sim.base.ticks_per_cycle
        assert meta.data["pools"]["alu"] == CORES["big"].alu_units

    def test_every_committed_uop_has_a_commit_event(self):
        sim, result, recorder = _traced_run()
        commits = recorder.of_kind(EventKind.COMMIT)
        assert len(commits) == result.stats.committed
        assert sorted(e.seq for e in commits) == \
            list(range(len(sim.trace.entries)))

    def test_recycling_events_present_on_redsoc(self):
        _, result, recorder = _traced_run()
        assert len(recorder.of_kind(EventKind.GP_GRANT)) == \
            result.stats.eager_issues
        assert len(recorder.of_kind(EventKind.HOLD)) == \
            result.stats.two_cycle_holds

    def test_wakeup_and_select_events_emitted(self):
        _, _, recorder = _traced_run()
        assert recorder.of_kind(EventKind.WAKEUP)
        selects = recorder.of_kind(EventKind.SELECT)
        assert selects
        assert {e.data["phase"] for e in selects} <= {"P", "GP"}

    def test_mem_access_events_carry_level(self):
        from repro.workloads.suites import SUITES
        trace = generate_trace(SUITES["ml"]["pool0"](scale=3))
        recorder = Recorder()
        CoreSimulator(trace, CORES["small"], obs=recorder).run()
        accesses = recorder.of_kind(EventKind.MEM_ACCESS)
        assert accesses
        assert {e.data["level"] for e in accesses} <= {"l1", "l2", "dram"}
        assert all(e.cycle >= 0 for e in accesses)
