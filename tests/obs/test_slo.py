"""SLO burn-rate math, report checking, CLI gate."""

import json
import math

import pytest

from repro.obs.slo import (
    SloSpec,
    burn_from_buckets,
    burn_rate,
    check_report,
    main as slo_main,
)


class TestBurnRate:
    def test_exact_budget_burns_at_one(self):
        assert burn_rate(0.001, 0.999) == pytest.approx(1.0)

    def test_double_budget_burns_at_two(self):
        assert burn_rate(0.02, 0.99) == pytest.approx(2.0)

    def test_zero_bad_is_zero_burn(self):
        assert burn_rate(0.0, 0.999) == 0.0

    def test_impossible_objective_is_infinite(self):
        assert math.isinf(burn_rate(0.5, 1.0))


class TestSloSpec:
    @pytest.mark.parametrize("kwargs", [
        {"availability": 0.0}, {"availability": 1.0},
        {"latency_objective": 1.5}, {"latency_ms": 0.0},
        {"latency_ms": -5.0},
    ])
    def test_rejects_degenerate_objectives(self, kwargs):
        with pytest.raises(ValueError):
            SloSpec(**kwargs)


class TestCheckReport:
    def _payload(self, **overrides):
        payload = {
            "status_counts": {"2xx": 990, "4xx": 8, "5xx": 2},
            "transport_errors": {},
            "latency_cdf_ms": {"100": 0.95, "250": 0.995,
                               "500": 1.0},
            "latency_ms": {"p50": 20.0, "p95": 90.0, "p99": 240.0,
                           "p99.9": 400.0},
        }
        payload.update(overrides)
        return payload

    def test_availability_counts_5xx_and_transport(self):
        payload = self._payload(
            transport_errors={"ConnectionError": 3})
        avail, _ = check_report(payload, SloSpec(availability=0.99))
        assert avail.name == "availability"
        assert avail.bad_fraction == pytest.approx(5 / 1003)
        assert avail.ok(max_burn=1.0)

    def test_latency_uses_exact_cdf_when_present(self):
        spec = SloSpec(latency_ms=250.0, latency_objective=0.99)
        _, lat = check_report(self._payload(), spec)
        assert "exact" in lat.detail
        assert lat.bad_fraction == pytest.approx(0.005)
        # 0.5% over / 1% budget = burn 0.5
        assert lat.burn_rate == pytest.approx(0.5)

    def test_latency_threshold_snaps_to_tabulated_boundary(self):
        # 300 ms is not tabulated; conservative snap down to 250
        spec = SloSpec(latency_ms=300.0, latency_objective=0.99)
        _, lat = check_report(self._payload(), spec)
        assert "250" in lat.detail

    def test_schema1_fallback_brackets_from_percentiles(self):
        payload = self._payload(latency_cdf_ms=None)
        spec = SloSpec(latency_ms=100.0, latency_objective=0.99)
        _, lat = check_report(payload, spec)
        assert "bracketed" in lat.detail
        # p99=240 is the first mark over 100 ms -> bracketed at 1%
        assert lat.bad_fraction == pytest.approx(0.01)

    def test_empty_window_is_healthy(self):
        payload = {"status_counts": {}, "transport_errors": {}}
        for result in check_report(payload, SloSpec()):
            assert result.burn_rate == 0.0

    def test_result_payload_shape(self):
        avail, _ = check_report(self._payload(), SloSpec())
        obj = avail.to_payload()
        assert set(obj) == {"name", "objective", "bad_fraction",
                            "burn_rate", "detail"}
        json.dumps(obj)     # JSON-safe even when burn is inf


class TestBurnFromBuckets:
    BUCKETS = [(1_000.0, 50), (10_000.0, 90), (100_000.0, 99),
               (math.inf, 100)]

    def test_fraction_over_threshold(self):
        burn = burn_from_buckets(self.BUCKETS, 100,
                                 threshold_us=10_000.0,
                                 objective=0.9)
        # 10% over / 10% budget
        assert burn == pytest.approx(1.0)

    def test_no_observations_is_none(self):
        assert burn_from_buckets([], 0, threshold_us=1.0,
                                 objective=0.9) is None

    def test_threshold_between_boundaries_is_conservative(self):
        tight = burn_from_buckets(self.BUCKETS, 100,
                                  threshold_us=50_000.0,
                                  objective=0.9)
        exact = burn_from_buckets(self.BUCKETS, 100,
                                  threshold_us=10_000.0,
                                  objective=0.9)
        assert tight == exact   # snapped down to the 10 ms boundary


class TestCli:
    def _write(self, tmp_path, payload):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(payload))
        return path

    def _healthy(self):
        return {
            "status_counts": {"2xx": 1000},
            "transport_errors": {},
            "latency_cdf_ms": {"100": 0.999, "250": 1.0},
        }

    def test_healthy_report_passes(self, tmp_path, capsys):
        path = self._write(tmp_path, self._healthy())
        assert slo_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "availability" in out and "latency" in out

    def test_burning_report_fails(self, tmp_path, capsys):
        payload = self._healthy()
        payload["status_counts"] = {"2xx": 900, "5xx": 100}
        path = self._write(tmp_path, payload)
        assert slo_main([str(path)]) == 1
        assert "BURN" in capsys.readouterr().out

    def test_max_burn_loosens_the_gate(self, tmp_path):
        payload = self._healthy()
        payload["latency_cdf_ms"] = {"100": 0.9, "250": 0.985}
        path = self._write(tmp_path, payload)
        assert slo_main([str(path), "--latency-ms", "250"]) == 1
        assert slo_main([str(path), "--latency-ms", "250",
                         "--max-burn", "2.0"]) == 0

    def test_unreadable_report_is_usage_error(self, tmp_path):
        assert slo_main([str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        assert slo_main([str(bad)]) == 2

    def test_bad_spec_is_usage_error(self, tmp_path):
        path = self._write(tmp_path, self._healthy())
        assert slo_main([str(path), "--availability", "1.0"]) == 2
