"""Trace contexts, spans, trees, coverage, export, CLI."""

import json

import pytest

from repro.obs.trace import (
    IdSource,
    JsonlSpanSink,
    Span,
    SpanRecorder,
    TraceContext,
    Tracer,
    coverage_report,
    main as trace_main,
    merge_chrome_traces,
    read_spans_jsonl,
    span_from_json_obj,
    span_trees,
    spans_chrome_trace,
    trace_coverage,
    validate_spans,
    write_spans_jsonl,
)


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        header = ctx.to_traceparent()
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = TraceContext.parse(header)
        assert parsed == ctx

    def test_unsampled_flag_survives(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        assert TraceContext.parse(ctx.to_traceparent()) == ctx

    @pytest.mark.parametrize("header", [
        None, "", "garbage", "00-short-span-01",
        "00-" + "g" * 32 + "-" + "cd" * 8 + "-01",   # non-hex
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",   # all-zero trace
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
        "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # unknown version
    ])
    def test_malformed_headers_start_fresh_traces(self, header):
        assert TraceContext.parse(header) is None

    def test_parse_is_case_and_whitespace_tolerant(self):
        header = f"  00-{'AB' * 16}-{'CD' * 8}-01  "
        parsed = TraceContext.parse(header)
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16

    def test_dict_round_trip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx


class TestIdSource:
    def test_seeded_ids_are_reproducible(self):
        a, b = IdSource(7), IdSource(7)
        assert a.trace_id() == b.trace_id()
        assert a.span_id() == b.span_id()
        assert IdSource(7).trace_id() != IdSource(8).trace_id()

    def test_ids_are_wire_format(self):
        ids = IdSource(0)
        assert TraceContext.parse(
            TraceContext(ids.trace_id(),
                         ids.span_id()).to_traceparent()) is not None

    def test_owns_its_rng(self):
        # drawing ids must not touch the global random module state
        import random
        random.seed(123)
        before = random.getstate()
        IdSource().trace_id()
        assert random.getstate() == before


class TestTracer:
    def _tracer(self):
        rec = SpanRecorder()
        clock = iter(range(1, 100))
        return Tracer(rec, ids=IdSource(0),
                      clock=lambda: next(clock)), rec

    def test_root_and_child_spans(self):
        tracer, rec = self._tracer()
        root = tracer.start("request", component="serve")
        child = tracer.start("queue.wait", parent=root.ctx,
                             component="queue")
        child.end()
        root.end()
        assert [s.name for s in rec.spans] == ["queue.wait", "request"]
        queue, request = rec.spans
        assert queue.trace_id == request.trace_id
        assert queue.parent_id == request.span_id
        assert request.parent_id is None

    def test_context_manager_marks_errors(self):
        tracer, rec = self._tracer()
        with pytest.raises(RuntimeError):
            with tracer.start("boom"):
                raise RuntimeError("x")
        assert rec.spans[0].status == "error"

    def test_set_attrs_and_explicit_start(self):
        tracer, rec = self._tracer()
        span = tracer.start("queue.wait", start_us=5, priority="low")
        span.set(depth=3).end(status="ok")
        assert rec.spans[0].start_us == 5
        assert rec.spans[0].attrs == {"priority": "low", "depth": 3}

    def test_record_json_re_emits_worker_spans(self):
        tracer, rec = self._tracer()
        obj = Span(name="engine.simulate", trace_id="ab" * 16,
                   span_id="cd" * 8, start_us=1,
                   end_us=9).to_json_obj()
        tracer.record_json([obj])
        assert rec.spans[0].name == "engine.simulate"
        assert rec.spans[0].duration_us == 8


class TestPersistence:
    def _spans(self):
        return [
            Span("request", "ab" * 16, "11" * 8, start_us=0,
                 end_us=100, component="serve",
                 attrs={"path": "/v1/simulate"}),
            Span("queue.wait", "ab" * 16, "22" * 8,
                 parent_id="11" * 8, start_us=0, end_us=10,
                 component="queue"),
        ]

    def test_jsonl_round_trip(self, tmp_path):
        path = write_spans_jsonl(self._spans(),
                                 tmp_path / "spans.jsonl")
        loaded = read_spans_jsonl(path)
        assert loaded == self._spans()

    def test_sink_is_one_object_per_line(self, tmp_path):
        path = write_spans_jsonl(self._spans(), tmp_path / "s.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "request"

    def test_json_obj_defaults(self):
        span = span_from_json_obj({
            "name": "x", "trace_id": "ab" * 16, "span_id": "cd" * 8,
            "start_us": 1, "end_us": 2})
        assert span.parent_id is None
        assert span.status == "ok"
        assert span.attrs == {}


def _obj(name, trace, span, parent=None, start=0, end=10):
    obj = {"name": name, "trace_id": trace, "span_id": span,
           "start_us": start, "end_us": end}
    if parent is not None:
        obj["parent_id"] = parent
    return obj


class TestValidateSpans:
    TRACE = "ab" * 16

    def test_clean_stream_passes(self):
        objs = [_obj("request", self.TRACE, "11" * 8),
                _obj("queue.wait", self.TRACE, "22" * 8,
                     parent="11" * 8)]
        assert validate_spans(objs) == []

    def test_remote_parented_root_is_not_an_error(self):
        # the server's request span parents to the client SDK's span,
        # which lives in the client's own export — still a valid root
        objs = [_obj("request", self.TRACE, "11" * 8,
                     parent="ee" * 8)]
        assert validate_spans(objs) == []

    def test_parent_cycle_fails(self):
        objs = [_obj("a", self.TRACE, "11" * 8, parent="22" * 8),
                _obj("b", self.TRACE, "22" * 8, parent="11" * 8)]
        assert any("no root span" in p for p in validate_spans(objs))

    def test_bad_ids_and_timestamps_fail(self):
        problems = validate_spans([
            _obj("x", "nothex", "11" * 8),
            _obj("y", self.TRACE, "shrt"),
            _obj("z", self.TRACE, "33" * 8, start=10, end=5),
        ])
        assert any("bad trace_id" in p for p in problems)
        assert any("bad span_id" in p for p in problems)
        assert any("ends before it starts" in p for p in problems)

    def test_duplicate_span_ids_fail(self):
        objs = [_obj("a", self.TRACE, "11" * 8),
                _obj("b", self.TRACE, "11" * 8)]
        assert any("duplicate span_id" in p
                   for p in validate_spans(objs))

    def test_missing_keys_fail(self):
        assert any("missing" in p for p in validate_spans(
            [{"name": "x", "trace_id": self.TRACE}]))


class TestSpanTrees:
    TRACE = "ab" * 16

    def _spans(self):
        return [
            Span("request", self.TRACE, "11" * 8, start_us=0,
                 end_us=100),
            Span("queue.wait", self.TRACE, "22" * 8,
                 parent_id="11" * 8, start_us=0, end_us=20),
            Span("worker.attempt", self.TRACE, "33" * 8,
                 parent_id="11" * 8, start_us=20, end_us=100),
            Span("engine.simulate", self.TRACE, "44" * 8,
                 parent_id="33" * 8, start_us=30, end_us=90),
        ]

    def test_tree_reconstruction(self):
        trees = span_trees(self._spans())
        (root,) = trees[self.TRACE]
        assert root.span.name == "request"
        names = {c.span.name for c in root.children}
        assert names == {"queue.wait", "worker.attempt"}
        attempt = next(c for c in root.children
                       if c.span.name == "worker.attempt")
        assert attempt.children[0].span.name == "engine.simulate"

    def test_retries_give_multiple_roots_per_trace(self):
        spans = [Span("request", self.TRACE, f"{i}{i}" * 8,
                      parent_id="ee" * 8, start_us=i * 100,
                      end_us=i * 100 + 50) for i in (1, 2, 3)]
        roots = span_trees(spans)[self.TRACE]
        assert len(roots) == 3
        assert [r.span.start_us for r in roots] == [100, 200, 300]

    def test_walk_orders_children_by_start(self):
        trees = span_trees(self._spans())
        names = [span.name
                 for _, span in trees[self.TRACE][0].walk()]
        assert names == ["request", "queue.wait", "worker.attempt",
                         "engine.simulate"]


class TestCoverage:
    TRACE = "ab" * 16

    def _tree(self, child_intervals):
        spans = [Span("request", self.TRACE, "00" * 8, start_us=0,
                      end_us=100)]
        for i, (start, end) in enumerate(child_intervals):
            spans.append(Span(f"seg{i}", self.TRACE,
                              f"{i + 1:02d}" * 8,
                              parent_id="00" * 8, start_us=start,
                              end_us=end))
        (root,) = span_trees(spans)[self.TRACE]
        return root

    def test_full_coverage(self):
        assert trace_coverage(self._tree([(0, 60), (60, 100)])) == 1.0

    def test_gaps_reduce_coverage(self):
        assert trace_coverage(self._tree([(0, 25), (75, 100)])) \
            == pytest.approx(0.5)

    def test_overlapping_children_count_once(self):
        # a sweep's parallel fan-out overlaps; union, not sum
        assert trace_coverage(self._tree([(0, 80), (20, 80)])) \
            == pytest.approx(0.8)

    def test_zero_duration_root_is_fully_covered(self):
        root = span_trees([Span("request", self.TRACE, "00" * 8,
                                start_us=5, end_us=5)])[self.TRACE][0]
        assert trace_coverage(root) == 1.0

    def test_coverage_report_scores_only_fanned_out_roots(self):
        spans = [
            Span("request", "aa" * 16, "11" * 8, start_us=0,
                 end_us=100),
            Span("worker.attempt", "aa" * 16, "22" * 8,
                 parent_id="11" * 8, start_us=0, end_us=90),
            # an LRU hit: segmentless by design, must not drag the gate
            Span("request", "bb" * 16, "33" * 8, start_us=0,
                 end_us=10),
        ]
        report = coverage_report(spans)
        assert report["traces"] == 2
        assert report["scored"] == 1
        assert report["segmentless"] == 1
        assert report["coverage_p50"] == pytest.approx(0.9)


class TestChromeExport:
    TRACE = "ab" * 16

    def _spans(self):
        return [
            Span("request", self.TRACE, "11" * 8, start_us=1000,
                 end_us=2000, component="serve"),
            Span("engine.simulate", self.TRACE, "22" * 8,
                 parent_id="11" * 8, start_us=1200, end_us=1900,
                 attrs={"worker": "pid-42"}),
        ]

    def test_one_track_per_component_and_worker(self):
        doc = spans_chrome_trace(self._spans())
        threads = [e["args"]["name"] for e in doc["traceEvents"]
                   if e["name"] == "thread_name"]
        assert "serve" in threads
        assert "worker pid-42" in threads

    def test_timestamps_are_relative_to_earliest_span(self):
        doc = spans_chrome_trace(self._spans())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(s["ts"] for s in slices) == 0
        sim = next(s for s in slices
                   if s["name"] == "engine.simulate")
        assert sim["ts"] == 200 and sim["dur"] == 700
        assert sim["args"]["trace_id"] == self.TRACE

    def test_empty_stream(self):
        assert spans_chrome_trace([])["traceEvents"] == []

    def test_merge_renumbers_pids(self):
        doc = merge_chrome_traces(
            spans_chrome_trace(self._spans()),
            {"traceEvents": [{"name": "sim", "ph": "X", "pid": 100,
                              "tid": 1, "ts": 0, "dur": 5}]})
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}


class TestCli:
    TRACE = "ab" * 16

    def _write(self, tmp_path, spans):
        return write_spans_jsonl(spans, tmp_path / "spans.jsonl")

    def _good_spans(self):
        return [
            Span("request", self.TRACE, "11" * 8, start_us=0,
                 end_us=100, component="serve"),
            Span("worker.attempt", self.TRACE, "22" * 8,
                 parent_id="11" * 8, start_us=0, end_us=98),
        ]

    def test_validate_ok(self, tmp_path, capsys):
        path = self._write(tmp_path, self._good_spans())
        assert trace_main(["validate", str(path)]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_validate_catches_cycles(self, tmp_path):
        spans = [Span("a", self.TRACE, "11" * 8, parent_id="22" * 8,
                      start_us=0, end_us=1),
                 Span("b", self.TRACE, "22" * 8, parent_id="11" * 8,
                      start_us=0, end_us=1)]
        path = self._write(tmp_path, spans)
        assert trace_main(["validate", str(path)]) == 1

    def test_perfetto_writes_document(self, tmp_path):
        path = self._write(tmp_path, self._good_spans())
        out = tmp_path / "trace.json"
        assert trace_main(["perfetto", str(path),
                           "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_coverage_gate_passes_and_fails(self, tmp_path):
        path = self._write(tmp_path, self._good_spans())
        assert trace_main(["coverage", str(path),
                           "--min-coverage", "0.9"]) == 0
        assert trace_main(["coverage", str(path),
                           "--min-coverage", "0.999"]) == 1

    def test_tree_prints_by_prefix(self, tmp_path, capsys):
        path = self._write(tmp_path, self._good_spans())
        assert trace_main(["tree", str(path), self.TRACE[:8]]) == 0
        out = capsys.readouterr().out
        assert "request" in out and "worker.attempt" in out

    def test_tree_unknown_trace(self, tmp_path):
        path = self._write(tmp_path, self._good_spans())
        assert trace_main(["tree", str(path), "ff" * 16]) == 2
