"""Structured JSON logging: line shape, binding, stdlib bridge."""

import io
import json
import logging

from repro.obs.log import (
    JsonLogHandler,
    JsonLogger,
    capture_logger,
    parse_log_lines,
    stderr_logger,
)


class TestJsonLogger:
    def test_one_json_object_per_line(self):
        logger, buffer = capture_logger()
        logger.info("request", path="/v1/simulate", status=200)
        logger.error("request.failed", status=500)
        objs = parse_log_lines(buffer.getvalue())
        assert len(objs) == 2
        assert objs[0]["event"] == "request"
        assert objs[0]["level"] == "info"
        assert objs[0]["path"] == "/v1/simulate"
        assert objs[1]["level"] == "error"
        assert all("ts" in obj for obj in objs)

    def test_bind_carries_correlation_fields(self):
        logger, buffer = capture_logger()
        req_log = logger.bind(trace_id="ab" * 16, path="/v1/sweep")
        req_log.warning("request.rejected", status=429)
        (obj,) = parse_log_lines(buffer.getvalue())
        assert obj["trace_id"] == "ab" * 16
        assert obj["path"] == "/v1/sweep"
        assert obj["status"] == 429

    def test_bind_is_layered_not_shared(self):
        logger, buffer = capture_logger()
        child = logger.bind(a=1)
        grandchild = child.bind(b=2)
        child.info("x")
        grandchild.info("y")
        objs = parse_log_lines(buffer.getvalue())
        assert "b" not in objs[0]
        assert objs[1]["a"] == 1 and objs[1]["b"] == 2

    def test_min_level_filters(self):
        buffer = io.StringIO()
        logger = JsonLogger([buffer], min_level="warning")
        logger.debug("d")
        logger.info("i")
        logger.warning("w")
        objs = parse_log_lines(buffer.getvalue())
        assert [o["event"] for o in objs] == ["w"]

    def test_component_is_stamped(self):
        buffer = io.StringIO()
        JsonLogger([buffer], component="serve").info("x")
        assert parse_log_lines(buffer.getvalue())[0]["component"] \
            == "serve"

    def test_non_json_values_are_scrubbed_not_raised(self):
        logger, buffer = capture_logger()
        logger.info("x", path=object(), nested={"k": (1, 2)},
                    none=None)
        (obj,) = parse_log_lines(buffer.getvalue())
        assert obj["path"].startswith("<object")
        assert obj["nested"] == {"k": [1, 2]}
        assert obj["none"] is None

    def test_no_streams_means_disabled_and_silent(self):
        logger = JsonLogger([])
        assert not logger.enabled
        logger.info("x")    # must not raise

    def test_closed_stream_never_raises(self):
        buffer = io.StringIO()
        logger = JsonLogger([buffer])
        buffer.close()
        logger.info("x")    # swallowed, serve stays up

    def test_stderr_logger_construction(self, capsys):
        stderr_logger(component="campaign").info("campaign.done",
                                                 jobs=3)
        (obj,) = parse_log_lines(capsys.readouterr().err)
        assert obj["component"] == "campaign"
        assert obj["jobs"] == 3


class TestStdlibBridge:
    def _stdlib_logger(self, json_logger):
        log = logging.Logger("repro.campaign.cache")
        log.addHandler(JsonLogHandler(json_logger))
        return log

    def test_records_become_json_lines(self):
        json_logger, buffer = capture_logger()
        self._stdlib_logger(json_logger).warning(
            "corrupt cache entry %s", "/tmp/x.json")
        (obj,) = parse_log_lines(buffer.getvalue())
        assert obj["level"] == "warning"
        assert obj["event"] == "repro.campaign.cache"
        assert obj["message"] == "corrupt cache entry /tmp/x.json"

    def test_extra_fields_survive_as_structured_data(self):
        json_logger, buffer = capture_logger()
        self._stdlib_logger(json_logger).warning(
            "corrupt entry", extra={"entry": "/tmp/x.json",
                                    "reason": "torn write"})
        (obj,) = parse_log_lines(buffer.getvalue())
        assert obj["entry"] == "/tmp/x.json"
        assert obj["reason"] == "torn write"

    def test_unknown_levels_map_to_info(self):
        json_logger, buffer = capture_logger()
        log = self._stdlib_logger(json_logger)
        log.log(25, "between info and warning")    # custom level
        (obj,) = parse_log_lines(buffer.getvalue())
        assert obj["level"] == "info"


class TestParseLogLines:
    def test_skips_blank_lines(self):
        text = '\n{"event": "a"}\n\n{"event": "b"}\n'
        assert [o["event"] for o in parse_log_lines(text)] \
            == ["a", "b"]
