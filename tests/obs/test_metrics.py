"""Metrics registry tests + the SimStats-through-registry refactor."""

from repro.analysis.stats import COUNTER_FIELDS, GAUGE_FIELDS, SimStats
from repro.core import CORES, CoreSimulator
from repro.obs import MetricsRegistry, Recorder
from repro.pipeline.trace import generate_trace
from repro.workloads.microbench import MICROBENCHES


class TestPrimitives:
    def test_counter(self):
        m = MetricsRegistry()
        counter = m.counter("a")
        counter.inc()
        counter.inc(3)
        assert m.counter("a").value == 4
        assert m.counter("a") is counter

    def test_gauge(self):
        m = MetricsRegistry()
        m.gauge("g").set(0.5)
        assert m.gauge("g").value == 0.5

    def test_histogram_stats(self):
        m = MetricsRegistry()
        h = m.histogram("h")
        for v in (1, 1, 2, 5):
            h.observe(v)
        assert h.total == 4
        assert h.sum == 9
        assert h.mean == 2.25
        assert h.min == 1 and h.max == 5
        assert h.percentile(0.5) == 1
        assert h.percentile(1.0) == 5
        assert h.items() == [(1, 2), (2, 1), (5, 1)]

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean == 0.0
        assert h.min is None and h.max is None
        assert h.percentile(0.5) is None

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("c").inc(2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(3)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == {"3": 1}
        assert snap["histograms"]["h"]["mean"] == 3.0

    def test_jsonl_objs_cover_every_metric(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(2.0)
        m.histogram("h").observe(1)
        objs = list(m.iter_jsonl_objs())
        assert {o["metric"] for o in objs} == {"c", "g", "h"}
        assert {o["type"] for o in objs} == \
            {"counter", "gauge", "histogram"}


class TestSimStatsThroughRegistry:
    def _run(self):
        trace = generate_trace(MICROBENCHES["logic"].build(40))
        sim = CoreSimulator(trace, CORES["big"], obs=Recorder())
        result = sim.run()
        return sim, result

    def test_gauges_populate_stats_fields(self):
        sim, result = self._run()
        for gauge_name, field_name in GAUGE_FIELDS.items():
            assert gauge_name in sim.metrics.gauges
            assert getattr(result.stats, field_name) == \
                sim.metrics.gauges[gauge_name].value

    def test_counters_mirror_stats_fields(self):
        sim, result = self._run()
        for counter_name, field_name in COUNTER_FIELDS.items():
            assert sim.metrics.counters[counter_name].value == \
                getattr(result.stats, field_name)
        for op_class, count in result.stats.distribution.counts.items():
            assert sim.metrics.counters[f"dist.{op_class}"].value == count

    def test_snapshot_is_simstats_compatible(self):
        """Every SimStats field is recoverable from the snapshot."""
        sim, result = self._run()
        snap = sim.metrics.snapshot()
        merged = dict(snap["counters"])
        merged.update(snap["gauges"])
        for gauge_name, field_name in GAUGE_FIELDS.items():
            assert merged[gauge_name] == getattr(result.stats, field_name)
        for counter_name, field_name in COUNTER_FIELDS.items():
            assert merged[counter_name] == \
                getattr(result.stats, field_name)
        assert merged["core.ipc"] == result.stats.ipc

    def test_populate_from_partial_registry(self):
        stats = SimStats()
        m = MetricsRegistry()
        m.gauge("predict.width.accuracy").set(0.75)
        stats.populate_from(m)
        assert stats.width_accuracy == 0.75
        assert stats.la_predictions == 0  # untouched

    def test_histograms_recorded_on_traced_runs(self):
        sim, result = self._run()
        hist = sim.metrics.histograms["slack.per_op"]
        assert hist.total > 0
        tpc = sim.base.ticks_per_cycle
        assert 0 <= hist.min <= hist.max < tpc
        lat = sim.metrics.histograms["lat.issue_to_execute"]
        assert lat.total > 0
        assert lat.min >= 0
        if result.stats.recycled_ops:
            offsets = sim.metrics.histograms["recycle.start_offset"]
            assert offsets.total == result.stats.recycled_ops
            assert all(0 < v < tpc for v, _ in offsets.items())

    def test_untraced_run_records_no_histograms(self):
        trace = generate_trace(MICROBENCHES["logic"].build(40))
        sim = CoreSimulator(trace, CORES["big"])
        sim.run()
        assert not sim.metrics.histograms
