"""Exporter tests: Perfetto/Chrome trace schema + audit agreement.

The acceptance bar for the whole tracing layer lives here:

* the Chrome trace-event JSON passes a schema check (loads in
  Perfetto),
* its per-uop slices agree **tick-for-tick** with the windows
  ``repro.core.audit`` records on a live instrumented run,
* a run with tracing disabled produces cycle counts identical to an
  uninstrumented run.
"""

import json

from repro.core import CORES, CoreSimulator
from repro.core.audit import _RecordingSimulator
from repro.obs import (
    EventKind,
    MetricsRegistry,
    Recorder,
    chrome_trace,
    metrics_to_jsonl,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
)
from repro.obs.export import (
    exec_slices,
    load_chrome_trace,
    validate_chrome_trace,
)
from repro.pipeline.trace import generate_trace
from repro.workloads.microbench import MICROBENCHES
from repro.workloads.suites import SUITES


def _traced_audit_run(trace, core="big"):
    recorder = Recorder()
    sim = _RecordingSimulator(trace, CORES[core], obs=recorder)
    result = sim.run()
    return sim, result, recorder


class TestChromeTrace:
    def test_schema_valid_and_json_serialisable(self):
        trace = generate_trace(MICROBENCHES["logic"].build(40))
        _, _, recorder = _traced_audit_run(trace)
        doc = chrome_trace(recorder.events)
        assert validate_chrome_trace(doc) == []
        json.dumps(doc)  # must be JSON-clean

    def test_one_track_per_fu_plus_sched(self):
        trace = generate_trace(SUITES["ml"]["pool0"](scale=3))
        _, _, recorder = _traced_audit_run(trace, core="small")
        doc = chrome_trace(recorder.events)
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev.get("ph") == "M" and ev["name"] == "thread_name"}
        # every FU pool from META gets a named track
        meta = recorder.of_kind(EventKind.META)[0]
        for fu in meta.data["pools"]:
            assert f"FU {fu}" in names
        assert "sched" in names

    def test_slices_agree_tick_for_tick_with_audit_log(self):
        """Acceptance: Perfetto slices == the auditor's windows."""
        for bench, n in (("logic", 40), ("wide-arith", 30)):
            trace = generate_trace(MICROBENCHES[bench].build(n))
            sim, _, recorder = _traced_audit_run(trace)
            doc = chrome_trace(recorder.events)
            windows = exec_slices(doc)
            assert len(windows) == len(sim.issued_log)
            for uop in sim.issued_log:
                assert windows[uop.seq]["start"] == uop.start_tick
                assert windows[uop.seq]["end"] == uop.end_tick

    def test_handoff_and_hold_markers(self):
        trace = generate_trace(MICROBENCHES["logic"].build(40))
        _, result, recorder = _traced_audit_run(trace)
        doc = chrome_trace(recorder.events)
        handoffs = [ev for ev in doc["traceEvents"]
                    if ev["name"] == "transparent hand-off"]
        holds = [ev for ev in doc["traceEvents"]
                 if ev.get("cat") == "hold"]
        assert len(handoffs) == result.stats.recycled_ops
        assert len(holds) == result.stats.two_cycle_holds

    def test_write_and_load_round_trip(self, tmp_path):
        trace = generate_trace(MICROBENCHES["shift"].build(20))
        _, _, recorder = _traced_audit_run(trace)
        path = write_chrome_trace(recorder.events,
                                  tmp_path / "out" / "trace.json")
        doc = load_chrome_trace(path)
        assert validate_chrome_trace(doc) == []

    def test_validator_catches_malformed_documents(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]
        bad = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -2,
             "name": "x"},
            {"name": "y", "ph": "i", "pid": 1, "tid": 1, "ts": 3},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("bad dur" in p for p in problems)
        assert any("without scope" in p for p in problems)


class TestEventsJsonl:
    def test_file_round_trip(self, tmp_path):
        trace = generate_trace(MICROBENCHES["logic"].build(25))
        _, _, recorder = _traced_audit_run(trace)
        path = write_events_jsonl(recorder.events,
                                  tmp_path / "events.jsonl")
        back = read_events_jsonl(path)
        assert back == recorder.events


class TestMetricsExport:
    def test_metrics_jsonl_lines_parse(self, tmp_path):
        m = MetricsRegistry()
        m.counter("core.cycles").set(10)
        m.histogram("slack.per_op").observe(5, 3)
        text = metrics_to_jsonl(m)
        objs = [json.loads(line) for line in text.splitlines()]
        assert {o["metric"] for o in objs} == \
            {"core.cycles", "slack.per_op"}
        path = write_metrics_jsonl(m, tmp_path / "metrics.jsonl")
        assert path.read_text() == text


class TestTraceOffIsBitIdentical:
    def test_cycles_and_stats_identical_without_tracing(self):
        """The instrumentation guard: obs=None runs must match an
        uninstrumented simulator bit for bit (CI additionally pins the
        smoke campaign's cycle counts to the committed reference)."""
        for bench in ("logic", "wide-arith", "simd-i8"):
            trace = generate_trace(MICROBENCHES[bench].build(30))
            plain = CoreSimulator(trace, CORES["medium"]).run()
            traced = CoreSimulator(trace, CORES["medium"],
                                   obs=Recorder()).run()
            assert plain.stats.cycles == traced.stats.cycles
            assert plain.stats == traced.stats
