"""Unit tests for the NEON-like SIMD extension."""

from repro.isa import (
    Asm,
    Instruction,
    Memory,
    Opcode,
    RegisterFile,
    SimdType,
    execute,
    r,
    run_program,
    v,
)
from repro.isa.semantics import _lanes, _pack_lanes


def vec_of_lanes(lanes, dtype):
    return _pack_lanes(lanes, dtype)


def run_one(instr, regs, mem=None):
    return execute(instr, regs, mem or Memory(), 0)


class TestLaneHelpers:
    def test_pack_unpack_roundtrip(self):
        lanes = list(range(16))
        packed = _pack_lanes(lanes, SimdType.I8)
        assert _lanes(packed, SimdType.I8) == lanes

    def test_lane_count_per_type(self):
        value = (1 << 128) - 1
        assert len(_lanes(value, SimdType.I8)) == 16
        assert len(_lanes(value, SimdType.I16)) == 8
        assert len(_lanes(value, SimdType.I32)) == 4
        assert len(_lanes(value, SimdType.I64)) == 2


class TestLanewiseOps:
    def _regs(self, a_lanes, b_lanes, dtype):
        regs = RegisterFile()
        regs.write(v(1), vec_of_lanes(a_lanes, dtype))
        regs.write(v(2), vec_of_lanes(b_lanes, dtype))
        return regs

    def test_vadd_i8_wraps_per_lane(self):
        regs = self._regs([250] * 16, [10] * 16, SimdType.I8)
        res = run_one(Instruction(op=Opcode.VADD, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=SimdType.I8), regs)
        assert _lanes(res.writes[v(0)], SimdType.I8) == [4] * 16

    def test_vsub_i16(self):
        regs = self._regs([100] * 8, [30] * 8, SimdType.I16)
        res = run_one(Instruction(op=Opcode.VSUB, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=SimdType.I16), regs)
        assert _lanes(res.writes[v(0)], SimdType.I16) == [70] * 8

    def test_vmul_i32(self):
        regs = self._regs([3, 4, 5, 6], [7, 7, 7, 7], SimdType.I32)
        res = run_one(Instruction(op=Opcode.VMUL, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=SimdType.I32), regs)
        assert _lanes(res.writes[v(0)], SimdType.I32) == [21, 28, 35, 42]

    def test_vmla_accumulates(self):
        dtype = SimdType.I32
        regs = self._regs([2, 2, 2, 2], [3, 3, 3, 3], dtype)
        regs.write(v(0), vec_of_lanes([10, 20, 30, 40], dtype))
        res = run_one(Instruction(op=Opcode.VMLA, rd=v(0), rn=v(1), rm=v(2),
                                  ra=v(0), dtype=dtype), regs)
        assert _lanes(res.writes[v(0)], dtype) == [16, 26, 36, 46]

    def test_vmax_is_signed(self):
        dtype = SimdType.I8
        regs = self._regs([0xFF] * 16, [1] * 16, dtype)  # -1 vs 1
        res = run_one(Instruction(op=Opcode.VMAX, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=dtype), regs)
        assert _lanes(res.writes[v(0)], dtype) == [1] * 16

    def test_vmin_is_signed(self):
        dtype = SimdType.I16
        regs = self._regs([0x8000] * 8, [5] * 8, dtype)  # INT16_MIN vs 5
        res = run_one(Instruction(op=Opcode.VMIN, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=dtype), regs)
        assert _lanes(res.writes[v(0)], dtype) == [0x8000] * 8

    def test_vshr_arithmetic(self):
        dtype = SimdType.I8
        regs = self._regs([0x80] * 16, [1] * 16, dtype)
        res = run_one(Instruction(op=Opcode.VSHR, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=dtype), regs)
        assert _lanes(res.writes[v(0)], dtype) == [0xC0] * 16

    def test_bitwise_ops_type_independent(self):
        regs = self._regs([0xF0] * 16, [0x3C] * 16, SimdType.I8)
        res = run_one(Instruction(op=Opcode.VAND, rd=v(0), rn=v(1), rm=v(2),
                                  dtype=SimdType.I8), regs)
        assert _lanes(res.writes[v(0)], SimdType.I8) == [0x30] * 16


class TestSimdMoveLoadStore:
    def test_vdup_broadcasts(self):
        regs = RegisterFile()
        regs.write(r(1), 0xAB)
        res = run_one(Instruction(op=Opcode.VDUP, rd=v(0), rn=r(1),
                                  dtype=SimdType.I8), regs)
        assert _lanes(res.writes[v(0)], SimdType.I8) == [0xAB] * 16

    def test_vld1_vst1_roundtrip(self):
        a = Asm("vmem")
        a.data(0x100, bytes(range(16)))
        a.mov(r(1), 0x100)
        a.mov(r(2), 0x200)
        a.vld1(v(0), r(1))
        a.vst1(v(0), r(2))
        a.halt()
        result = run_program(a.finish())
        assert result.mem.read_block(0x200, 16) == bytes(range(16))

    def test_simd_kernel_end_to_end(self):
        """Vector ReLU on 16 int8 values via VMAX with zero vector."""
        data = [5, 0xF0, 7, 0x80, 1, 2, 0xFF, 9] * 2  # mixed +/- int8
        a = Asm("relu")
        a.data(0x100, bytes(data))
        a.mov(r(1), 0x100)
        a.mov(r(2), 0x200)
        a.mov(r(3), 0)
        a.vdup(v(1), r(3), SimdType.I8)
        a.vld1(v(0), r(1))
        a.vmax(v(2), v(0), v(1), SimdType.I8)
        a.vst1(v(2), r(2))
        a.halt()
        result = run_program(a.finish())
        out = result.mem.read_block(0x200, 16)
        expected = bytes(x if x < 128 else 0 for x in data)
        assert out == expected
