"""Unit tests for the functional semantics of scalar opcodes."""

import pytest

from repro.isa import (
    Asm,
    Cond,
    FLAGS,
    Flags,
    Instruction,
    Memory,
    Opcode,
    RegisterFile,
    ShiftOp,
    execute,
    r,
    run_program,
)
from repro.isa.semantics import to_signed, effective_width, width_bucket


def make_regs(**kwargs):
    regs = RegisterFile()
    for name, value in kwargs.items():
        regs.write(r(int(name[1:])), value)
    return regs


def run_one(instr, regs=None, mem=None, pc=0):
    return execute(instr, regs or RegisterFile(), mem or Memory(), pc)


class TestLogical:
    def test_and(self):
        regs = make_regs(r1=0xF0F0, r2=0x0FF0)
        res = run_one(Instruction(op=Opcode.AND, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 0x00F0

    def test_orr(self):
        regs = make_regs(r1=0xF000, r2=0x000F)
        res = run_one(Instruction(op=Opcode.ORR, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 0xF00F

    def test_eor(self):
        regs = make_regs(r1=0xFF00, r2=0x0FF0)
        res = run_one(Instruction(op=Opcode.EOR, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 0xF0F0

    def test_bic(self):
        regs = make_regs(r1=0xFFFF, r2=0x00FF)
        res = run_one(Instruction(op=Opcode.BIC, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 0xFF00

    def test_mvn(self):
        regs = make_regs(r2=0)
        res = run_one(Instruction(op=Opcode.MVN, rd=r(0), rm=r(2)), regs)
        assert res.writes[r(0)] == 0xFFFFFFFF

    def test_mov_immediate(self):
        res = run_one(Instruction(op=Opcode.MOV, rd=r(0), imm=42))
        assert res.writes[r(0)] == 42

    def test_tst_sets_z(self):
        regs = make_regs(r1=0xF0, r2=0x0F)
        res = run_one(Instruction(op=Opcode.TST, rn=r(1), rm=r(2)), regs)
        assert Flags.unpack(res.writes[FLAGS]).z
        assert r(1) not in res.writes  # no destination write

    def test_teq_detects_equality(self):
        regs = make_regs(r1=0xAB, r2=0xAB)
        res = run_one(Instruction(op=Opcode.TEQ, rn=r(1), rm=r(2)), regs)
        assert Flags.unpack(res.writes[FLAGS]).z


class TestShifts:
    def test_lsl(self):
        regs = make_regs(r1=1)
        res = run_one(Instruction(op=Opcode.LSL, rd=r(0), rn=r(1), imm=4),
                      regs)
        assert res.writes[r(0)] == 16

    def test_lsr(self):
        regs = make_regs(r1=0x80000000)
        res = run_one(Instruction(op=Opcode.LSR, rd=r(0), rn=r(1), imm=31),
                      regs)
        assert res.writes[r(0)] == 1

    def test_asr_sign_extends(self):
        regs = make_regs(r1=0x80000000)
        res = run_one(Instruction(op=Opcode.ASR, rd=r(0), rn=r(1), imm=4),
                      regs)
        assert res.writes[r(0)] == 0xF8000000

    def test_ror(self):
        regs = make_regs(r1=0x1)
        res = run_one(Instruction(op=Opcode.ROR, rd=r(0), rn=r(1), imm=1),
                      regs)
        assert res.writes[r(0)] == 0x80000000

    def test_rrx_rotates_through_carry(self):
        regs = make_regs(r1=0x2)
        regs.set_flags(Flags(c=True))
        res = run_one(Instruction(op=Opcode.RRX, rd=r(0), rn=r(1)), regs)
        assert res.writes[r(0)] == 0x80000001

    def test_shift_amount_from_register(self):
        regs = make_regs(r1=0xFF, r2=4)
        res = run_one(Instruction(op=Opcode.LSR, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 0x0F


class TestArithmetic:
    def test_add(self):
        regs = make_regs(r1=40, r2=2)
        res = run_one(Instruction(op=Opcode.ADD, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 42

    def test_add_wraps_32bit(self):
        regs = make_regs(r1=0xFFFFFFFF, r2=1)
        res = run_one(
            Instruction(op=Opcode.ADD, rd=r(0), rn=r(1), rm=r(2),
                        set_flags=True), regs)
        assert res.writes[r(0)] == 0
        flags = Flags.unpack(res.writes[FLAGS])
        assert flags.c and flags.z

    def test_sub_sets_borrow_semantics(self):
        regs = make_regs(r1=5, r2=10)
        res = run_one(
            Instruction(op=Opcode.SUB, rd=r(0), rn=r(1), rm=r(2),
                        set_flags=True), regs)
        assert to_signed(res.writes[r(0)]) == -5
        flags = Flags.unpack(res.writes[FLAGS])
        assert flags.n and not flags.c  # ARM: C clear means borrow

    def test_rsb(self):
        regs = make_regs(r1=10, r2=3)
        res = run_one(Instruction(op=Opcode.RSB, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert to_signed(res.writes[r(0)]) == -7

    def test_adc_uses_carry(self):
        regs = make_regs(r1=1, r2=1)
        regs.set_flags(Flags(c=True))
        res = run_one(Instruction(op=Opcode.ADC, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 3

    def test_sbc(self):
        regs = make_regs(r1=10, r2=3)
        regs.set_flags(Flags(c=True))  # no borrow pending
        res = run_one(Instruction(op=Opcode.SBC, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 7

    def test_cmp_writes_only_flags(self):
        regs = make_regs(r1=7, r2=7)
        res = run_one(Instruction(op=Opcode.CMP, rn=r(1), rm=r(2),
                                  set_flags=True), regs)
        assert list(res.writes) == [FLAGS]
        assert Flags.unpack(res.writes[FLAGS]).z

    def test_overflow_flag(self):
        regs = make_regs(r1=0x7FFFFFFF, r2=1)
        res = run_one(Instruction(op=Opcode.ADD, rd=r(0), rn=r(1), rm=r(2),
                                  set_flags=True), regs)
        assert Flags.unpack(res.writes[FLAGS]).v

    def test_flexible_shift_operand(self):
        # add r0, r1, r2, lsr #3  ->  r0 = r1 + (r2 >> 3)
        regs = make_regs(r1=100, r2=80)
        res = run_one(Instruction(op=Opcode.ADD, rd=r(0), rn=r(1), rm=r(2),
                                  shift=ShiftOp.LSR, shift_amt=3), regs)
        assert res.writes[r(0)] == 110


class TestMulDiv:
    def test_mul(self):
        regs = make_regs(r1=6, r2=7)
        res = run_one(Instruction(op=Opcode.MUL, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 42

    def test_mla(self):
        regs = make_regs(r1=6, r2=7, r3=8)
        res = run_one(Instruction(op=Opcode.MLA, rd=r(0), rn=r(1), rm=r(2),
                                  ra=r(3)), regs)
        assert res.writes[r(0)] == 50

    def test_udiv(self):
        regs = make_regs(r1=100, r2=7)
        res = run_one(Instruction(op=Opcode.UDIV, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 14

    def test_sdiv_truncates_toward_zero(self):
        regs = make_regs(r1=(-7) & 0xFFFFFFFF, r2=2)
        res = run_one(Instruction(op=Opcode.SDIV, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert to_signed(res.writes[r(0)]) == -3

    def test_divide_by_zero_returns_zero(self):
        regs = make_regs(r1=100, r2=0)
        res = run_one(Instruction(op=Opcode.UDIV, rd=r(0), rn=r(1), rm=r(2)),
                      regs)
        assert res.writes[r(0)] == 0


class TestMemory:
    def test_ldr_str_roundtrip(self):
        mem = Memory()
        regs = make_regs(r1=0x1000, r2=0xDEADBEEF)
        store = run_one(Instruction(op=Opcode.STR, rs=r(2), rn=r(1), imm=4),
                        regs, mem)
        assert store.is_store and store.mem_addr == 0x1004
        mem.write(store.mem_addr, store.store_value, store.mem_size)
        load = run_one(Instruction(op=Opcode.LDR, rd=r(3), rn=r(1), imm=4),
                       regs, mem)
        assert load.writes[r(3)] == 0xDEADBEEF

    def test_byte_access(self):
        mem = Memory()
        mem.write(0x2000, 0xAB, 1)
        regs = make_regs(r1=0x2000)
        res = run_one(Instruction(op=Opcode.LDRB, rd=r(0), rn=r(1)), regs,
                      mem)
        assert res.writes[r(0)] == 0xAB

    def test_indexed_addressing_with_scale(self):
        mem = Memory()
        mem.write(0x3000 + 5 * 4, 77, 4)
        regs = make_regs(r1=0x3000, r2=5)
        res = run_one(Instruction(op=Opcode.LDR, rd=r(0), rn=r(1), rm=r(2),
                                  scale=4, imm=0), regs, mem)
        assert res.writes[r(0)] == 77

    def test_little_endian(self):
        mem = Memory()
        mem.write(0, 0x11223344, 4)
        assert mem.read_byte(0) == 0x44
        assert mem.read_byte(3) == 0x11


class TestBranches:
    def test_unconditional_taken(self):
        res = run_one(Instruction(op=Opcode.B, target=10), pc=0)
        assert res.taken and res.next_pc == 10

    def test_conditional_not_taken(self):
        regs = RegisterFile()
        regs.set_flags(Flags(z=False))
        res = run_one(Instruction(op=Opcode.B, cond=Cond.EQ, target=10),
                      regs, pc=3)
        assert not res.taken and res.next_pc == 4

    @pytest.mark.parametrize("cond,flags,expect", [
        (Cond.EQ, Flags(z=True), True),
        (Cond.NE, Flags(z=True), False),
        (Cond.LT, Flags(n=True, v=False), True),
        (Cond.GE, Flags(n=True, v=True), True),
        (Cond.GT, Flags(z=False, n=False, v=False), True),
        (Cond.LE, Flags(z=True), True),
        (Cond.CS, Flags(c=True), True),
        (Cond.MI, Flags(n=True), True),
        (Cond.PL, Flags(n=True), False),
    ])
    def test_condition_table(self, cond, flags, expect):
        regs = RegisterFile()
        regs.set_flags(flags)
        res = run_one(Instruction(op=Opcode.B, cond=cond, target=1), regs)
        assert res.taken is expect

    def test_bl_writes_link(self):
        res = run_one(Instruction(op=Opcode.BL, rd=r(14), target=20), pc=5)
        assert res.writes[r(14)] == 6 and res.next_pc == 20


class TestEffectiveWidth:
    def test_zero_is_narrow(self):
        assert effective_width(0) == 1

    def test_minus_one_is_narrow(self):
        assert effective_width(0xFFFFFFFF) == 1

    def test_byte_value(self):
        assert effective_width(200) == 9  # needs sign bit

    def test_full_width(self):
        assert effective_width(0x7FFFFFFF) == 32

    def test_buckets(self):
        assert width_bucket(1) == 8
        assert width_bucket(9) == 16
        assert width_bucket(17) == 24
        assert width_bucket(25) == 32


class TestPrograms:
    def test_loop_program(self):
        a = Asm("sum")
        a.mov(r(1), 10)
        a.mov(r(2), 0)
        a.label("loop")
        a.add(r(2), r(2), r(1))
        a.subs(r(1), r(1), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        result = run_program(a.finish())
        assert result.regs.read(r(2)) == 55
        assert result.halted

    def test_unresolved_label_raises(self):
        a = Asm("bad")
        a.b("nowhere")
        a.halt()
        with pytest.raises(KeyError):
            a.finish()

    def test_program_without_halt_rejected(self):
        a = Asm("nohalt")
        a.mov(r(0), 1)
        with pytest.raises(ValueError):
            a.finish()

    def test_fp_fixed_point(self):
        a = Asm("fp")
        a.mov(r(1), int(1.5 * 65536))
        a.mov(r(2), int(2.25 * 65536))
        a.fmul(r(3), r(1), r(2))
        a.halt()
        result = run_program(a.finish())
        assert result.regs.read(r(3)) == int(1.5 * 2.25 * 65536)
