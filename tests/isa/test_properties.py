"""Property-based tests (hypothesis) for ISA semantics invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    FLAGS,
    Instruction,
    Memory,
    Opcode,
    RegisterFile,
    SimdType,
    execute,
    r,
    v,
)
from repro.isa.semantics import (
    _lanes,
    _pack_lanes,
    effective_width,
    to_signed,
    width_bucket,
)

word = st.integers(min_value=0, max_value=0xFFFFFFFF)
vec = st.integers(min_value=0, max_value=(1 << 128) - 1)


def run_binop(op, a, b, **kwargs):
    regs = RegisterFile()
    regs.write(r(1), a)
    regs.write(r(2), b)
    instr = Instruction(op=op, rd=r(0), rn=r(1), rm=r(2), **kwargs)
    return execute(instr, regs, Memory(), 0)


@given(word, word)
def test_add_matches_python_mod_2_32(a, b):
    res = run_binop(Opcode.ADD, a, b)
    assert res.writes[r(0)] == (a + b) & 0xFFFFFFFF


@given(word, word)
def test_sub_matches_python_mod_2_32(a, b):
    res = run_binop(Opcode.SUB, a, b)
    assert res.writes[r(0)] == (a - b) & 0xFFFFFFFF


@given(word, word)
def test_logical_ops_match_python(a, b):
    assert run_binop(Opcode.AND, a, b).writes[r(0)] == a & b
    assert run_binop(Opcode.ORR, a, b).writes[r(0)] == a | b
    assert run_binop(Opcode.EOR, a, b).writes[r(0)] == a ^ b


@given(word, word)
def test_results_always_fit_in_word(a, b):
    for op in (Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.AND, Opcode.ORR,
               Opcode.EOR, Opcode.BIC, Opcode.MUL):
        res = run_binop(op, a, b)
        assert 0 <= res.writes[r(0)] <= 0xFFFFFFFF


@given(word, st.integers(min_value=0, max_value=31))
def test_shift_pairs_are_inverses_for_low_bits(value, amount):
    """(x << k) >> k recovers the low 32-k bits of x."""
    regs = RegisterFile()
    regs.write(r(1), value)
    left = execute(Instruction(op=Opcode.LSL, rd=r(2), rn=r(1), imm=amount),
                   regs, Memory(), 0)
    regs.write(r(2), left.writes[r(2)])
    right = execute(Instruction(op=Opcode.LSR, rd=r(3), rn=r(2), imm=amount),
                    regs, Memory(), 0)
    mask = (1 << (32 - amount)) - 1
    assert right.writes[r(3)] == value & mask


@given(word, st.integers(min_value=0, max_value=31))
def test_ror_preserves_popcount(value, amount):
    regs = RegisterFile()
    regs.write(r(1), value)
    res = execute(Instruction(op=Opcode.ROR, rd=r(0), rn=r(1), imm=amount),
                  regs, Memory(), 0)
    assert bin(res.writes[r(0)]).count("1") == bin(value).count("1")


@given(word, word)
def test_cmp_flags_equal_subs_flags(a, b):
    subs = run_binop(Opcode.SUB, a, b, set_flags=True)
    regs = RegisterFile()
    regs.write(r(1), a)
    regs.write(r(2), b)
    cmp_res = execute(Instruction(op=Opcode.CMP, rn=r(1), rm=r(2),
                                  set_flags=True), regs, Memory(), 0)
    assert cmp_res.writes[FLAGS] == subs.writes[FLAGS]


@given(word)
def test_effective_width_bounds(value):
    w = effective_width(value)
    assert 1 <= w <= 32
    assert width_bucket(w) in (8, 16, 24, 32)


@given(word)
def test_effective_width_represents_value(value):
    """The claimed width really is enough bits to hold the value."""
    w = effective_width(value)
    signed = to_signed(value)
    assert -(1 << (w - 1)) <= signed < (1 << (w - 1))


@given(word)
def test_negation_symmetric_width(value):
    """x and ~x need the same two's-complement width."""
    assert effective_width(value) == effective_width(~value & 0xFFFFFFFF)


@given(vec, vec, st.sampled_from(list(SimdType)))
def test_vadd_vsub_roundtrip(a, b, dtype):
    regs = RegisterFile()
    regs.write(v(1), a)
    regs.write(v(2), b)
    added = execute(Instruction(op=Opcode.VADD, rd=v(3), rn=v(1), rm=v(2),
                                dtype=dtype), regs, Memory(), 0)
    regs.write(v(3), added.writes[v(3)])
    back = execute(Instruction(op=Opcode.VSUB, rd=v(4), rn=v(3), rm=v(2),
                               dtype=dtype), regs, Memory(), 0)
    assert back.writes[v(4)] == a


@given(vec, st.sampled_from(list(SimdType)))
def test_lane_pack_roundtrip(value, dtype):
    assert _pack_lanes(_lanes(value, dtype), dtype) == value


@given(st.integers(min_value=0, max_value=0xFFFF), word,
       st.integers(min_value=0, max_value=0xFFFF))
@settings(max_examples=50)
def test_memory_read_after_write(addr, value, offset):
    mem = Memory()
    mem.write(addr, value, 4)
    assert mem.read(addr, 4) == value
    # disjoint writes do not interfere
    other = addr + 4 + offset
    mem.write(other, 0xA5A5A5A5, 4)
    assert mem.read(addr, 4) == value
