"""Unit tests for the text assembler frontend."""

import pytest

from repro.isa import Cond, Opcode, ShiftOp, SimdType, r, run_program, v
from repro.isa.textasm import AssemblyError, assemble_text


def ops(program):
    return [i.op for i in program.instructions]


class TestBasicParsing:
    def test_sum_program(self):
        program = assemble_text("""
            ; sum 1..10
                mov   r1, #10
                mov   r2, #0
            loop:
                add   r2, r2, r1
                subs  r1, r1, #1
                bne   loop
                halt
        """, name="sum")
        result = run_program(program)
        assert result.regs.read(r(2)) == 55

    def test_label_on_own_line(self):
        program = assemble_text("""
            start:
                mov r0, #1
                halt
        """)
        assert program.labels["start"] == 0

    def test_comments_ignored(self):
        program = assemble_text("""
            # full-line comment
            mov r0, #1   ; trailing comment
            halt
        """)
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble_text("mov r0, #0xFF\nhalt")
        assert program.instructions[0].imm == 255

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblyError) as err:
            assemble_text("mov r0, #1\nfrobnicate r1\nhalt")
        assert err.value.lineno == 2


class TestOperandForms:
    def test_register_op2(self):
        program = assemble_text("add r0, r1, r2\nhalt")
        instr = program.instructions[0]
        assert instr.rm == r(2) and instr.imm is None

    def test_flexible_shift(self):
        program = assemble_text("add r0, r1, r2, lsr #3\nhalt")
        instr = program.instructions[0]
        assert instr.shift is ShiftOp.LSR and instr.shift_amt == 3

    def test_s_suffix(self):
        program = assemble_text("adds r0, r1, #1\nhalt")
        assert program.instructions[0].set_flags

    def test_cmp_tst(self):
        program = assemble_text("cmp r1, #4\ntst r2, #1\nhalt")
        assert ops(program)[:2] == [Opcode.CMP, Opcode.TST]

    def test_standalone_shift(self):
        program = assemble_text("lsr r0, r1, #4\nhalt")
        instr = program.instructions[0]
        assert instr.op is Opcode.LSR and instr.imm == 4

    def test_conditional_branches(self):
        program = assemble_text("""
            top:
                beq top
                bge top
                halt
        """)
        assert program.instructions[0].cond is Cond.EQ
        assert program.instructions[1].cond is Cond.GE


class TestMemoryOperands:
    def test_plain_load(self):
        program = assemble_text("ldr r0, [r1]\nhalt")
        instr = program.instructions[0]
        assert instr.rn == r(1) and instr.imm == 0

    def test_offset_load(self):
        program = assemble_text("ldr r0, [r1, #8]\nhalt")
        assert program.instructions[0].imm == 8

    def test_indexed_load(self):
        program = assemble_text("ldrb r0, [r1, r2, #4]\nhalt")
        instr = program.instructions[0]
        assert instr.rm == r(2) and instr.imm == 4

    def test_store(self):
        program = assemble_text("str r3, [r1, #4]\nhalt")
        instr = program.instructions[0]
        assert instr.op is Opcode.STR and instr.rs == r(3)

    def test_data_directives_roundtrip(self):
        program = assemble_text("""
            .word 0x100: 1, 2, 0xDEAD
            .byte 0x200: 9, 8, 7
                mov r1, #0x100
                ldr r2, [r1, #8]
                mov r3, #0x200
                ldrb r4, [r3, #2]
                halt
        """)
        result = run_program(program)
        assert result.regs.read(r(2)) == 0xDEAD
        assert result.regs.read(r(4)) == 7


class TestSimd:
    def test_vadd_with_type(self):
        program = assemble_text("vadd.i16 v0, v1, v2\nhalt")
        instr = program.instructions[0]
        assert instr.op is Opcode.VADD and instr.dtype is SimdType.I16

    def test_vmla_accumulates(self):
        program = assemble_text("""
            mov r1, #3
            vdup.i32 v1, r1
            mov r2, #5
            vdup.i32 v2, r2
            mov r0, #0
            vdup.i32 v0, r0
            vmla.i32 v0, v1, v2
            halt
        """)
        result = run_program(program)
        from repro.isa.semantics import _lanes
        assert _lanes(result.regs.read(v(0)), SimdType.I32) == [15] * 4

    def test_missing_type_suffix_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_text("vadd v0, v1, v2\nhalt")

    def test_vector_memory(self):
        program = assemble_text("""
            .byte 0x100: 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
            mov r1, #0x100
            vld1 v0, [r1]
            mov r2, #0x200
            vst1 v0, [r2]
            halt
        """)
        result = run_program(program)
        assert result.mem.read_block(0x200, 16) == bytes(range(1, 17))


class TestErrorPaths:
    """Every malformed line dies loudly with its line number.

    The serve daemon maps these (``AssemblyError`` is a ``ValueError``,
    undefined labels surface as ``KeyError``) onto 400 bad-asm
    responses, so the exception types here are part of the contract.
    """

    def test_malformed_register_operand(self):
        with pytest.raises(AssemblyError) as err:
            assemble_text("mov r0, #1\nadd r0, qq, #1\nhalt")
        assert err.value.lineno == 2
        assert "not a register" in str(err.value)

    def test_register_index_out_of_range(self):
        with pytest.raises(AssemblyError, match="out of range"):
            assemble_text("mov r99, #1\nhalt")

    def test_bad_immediate_literal(self):
        with pytest.raises(AssemblyError) as err:
            assemble_text("mov r0, #zz\nhalt")
        assert err.value.lineno == 1

    def test_missing_operand(self):
        with pytest.raises(AssemblyError):
            assemble_text("add r0, r1\nhalt")

    def test_memory_operand_without_brackets(self):
        with pytest.raises(AssemblyError, match="memory operand"):
            assemble_text("ldr r0, r1\nhalt")

    def test_unterminated_memory_bracket(self):
        with pytest.raises(AssemblyError, match="memory operand"):
            assemble_text("ldr r0, [r1\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError) as err:
            assemble_text("x:\nmov r0, #1\nx:\nhalt")
        assert err.value.lineno == 3
        assert "duplicate label" in str(err.value)

    def test_undefined_branch_label(self):
        # label resolution happens in Program.resolve_labels, after
        # parsing, so this one is a KeyError rather than AssemblyError
        with pytest.raises(KeyError, match="nowhere"):
            assemble_text("b nowhere\nhalt")

    def test_assembly_error_is_a_value_error(self):
        assert issubclass(AssemblyError, ValueError)


class TestEquivalenceWithBuilder:
    def test_text_and_builder_produce_same_timing(self):
        """The same kernel through both frontends simulates identically."""
        from repro.core import MEDIUM, simulate
        from repro.isa import Asm

        text = assemble_text("""
                mov r1, #500
                mov r2, #0
            loop:
                eor r2, r2, r1
                ror r2, r2, #3
                subs r1, r1, #1
                bne loop
                halt
        """)
        builder = Asm("same")
        builder.mov(r(1), 500)
        builder.mov(r(2), 0)
        builder.label("loop")
        builder.eor(r(2), r(2), r(1))
        builder.ror(r(2), r(2), 3)
        builder.subs(r(1), r(1), 1)
        builder.b("loop", cond=Cond.NE)
        builder.halt()
        a = simulate(text, MEDIUM)
        b = simulate(builder.finish(), MEDIUM)
        assert a.cycles == b.cycles
