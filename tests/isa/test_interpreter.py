"""Unit tests for the reference interpreter (the golden model)."""


from repro.isa import Asm, Cond, Interpreter, r, run_program
from repro.pipeline.trace import generate_trace


def counting_program(n=5):
    a = Asm("count")
    a.mov(r(1), n)
    a.mov(r(2), 0)
    a.label("loop")
    a.add(r(2), r(2), 1)
    a.subs(r(1), r(1), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


class TestInterpreter:
    def test_runs_to_halt(self):
        result = run_program(counting_program(5))
        assert result.halted
        assert result.regs.read(r(2)) == 5

    def test_instruction_count(self):
        result = run_program(counting_program(3))
        assert result.instructions == 2 + 3 * 3 + 1

    def test_init_regs(self):
        a = Asm("echo")
        a.add(r(2), r(1), 0)
        a.halt()
        result = Interpreter(a.finish(), init_regs={r(1): 77}).run()
        assert result.regs.read(r(2)) == 77

    def test_instruction_cap_reported_not_raised(self):
        interp = Interpreter(counting_program(10**6),
                             max_instructions=100)
        result = interp.run()
        assert not result.halted
        assert result.instructions == 100

    def test_width_tracing(self):
        interp = Interpreter(counting_program(2))
        result = interp.run(trace_widths=True)
        assert len(result.trace) == result.instructions
        assert all(1 <= w <= 32 for _, w in result.trace)

    def test_arch_state_snapshot(self):
        result = run_program(counting_program(2))
        state = result.arch_state()
        assert "regs" in state and "mem" in state

    def test_matches_trace_generator_exactly(self):
        """The two functional paths (interpreter, trace generator) agree
        on every architectural outcome."""
        program = counting_program(9)
        interp = run_program(program)
        trace = generate_trace(program)
        assert trace.final_regs == interp.regs.snapshot()
        assert trace.final_mem == interp.mem.snapshot()
        assert len(trace) == interp.instructions
