"""Compiled trace generator: bit-identity with the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.textasm import assemble_text
from repro.pipeline.codegen import (
    compile_program,
    generate_trace_compiled,
)
from repro.pipeline.trace import generate_trace
from repro.verify.generator import GenConfig, ProgramGenerator, materialize
from repro.workloads.suites import SUITES


def entry_tuples(trace):
    return [(e.instr, e.pc, e.next_pc, bool(e.taken), e.op_width,
             e.mem_addr, e.mem_size, bool(e.is_store))
            for e in trace.entries]


def assert_identical(program):
    ref = generate_trace(program)
    com = generate_trace_compiled(program)
    assert entry_tuples(com) == entry_tuples(ref)
    assert com.arch_state() == ref.arch_state()
    assert com.name == ref.name


class TestWorkloadIdentity:
    @pytest.mark.parametrize("suite,bench", [
        (suite, bench)
        for suite, benches in SUITES.items() for bench in benches])
    def test_every_workload(self, suite, bench):
        assert_identical(SUITES[suite][bench](scale=3))


class TestFallback:
    def test_simd_heavy_program_uses_interpreter_fallback(self):
        # VADD/VDUP have no specialized template; the generated block
        # must interpret them in place with fully synced state
        program = assemble_text("""
            mov r1, #7
            vdup.i32 v1, r1
            vadd.i32 v2, v1, v1
            vmov v3, v2
            add r2, r1, #1
            halt
        """, name="simd-mix")
        assert_identical(program)

    def test_register_amount_shift_falls_back(self):
        program = assemble_text("""
            mov r1, #12345
            mov r2, #7
            lsl r3, r1, r2
            lsrs r4, r1, r2
            halt
        """, name="reg-shift")
        assert_identical(program)


class TestCapSemantics:
    def test_overrun_raises_like_the_interpreter(self):
        program = SUITES["ml"]["act"](scale=8)
        with pytest.raises(RuntimeError, match="exceeded"):
            generate_trace_compiled(program, max_instructions=10)

    def test_tail_interpreting_near_the_cap_is_exact(self):
        program = SUITES["ml"]["act"](scale=8)
        n = len(generate_trace(program).entries)
        ref = generate_trace(program, max_instructions=n)
        com = generate_trace_compiled(program, max_instructions=n)
        assert entry_tuples(com) == entry_tuples(ref)


class TestCompileCaching:
    def test_compile_memoised_on_program(self):
        program = SUITES["mibench"]["crc"](scale=3)
        assert compile_program(program) is compile_program(program)

    def test_blocks_end_at_branches(self):
        program = SUITES["mibench"]["crc"](scale=3)
        compiled = compile_program(program)
        instrs = program.instructions
        for start, (_, length) in compiled.blocks.items():
            for pc in range(start, start + length - 1):
                assert not instrs[pc].is_branch()


class TestGeneratedPrograms:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_fuzzed_program_identity(self, seed):
        spec = ProgramGenerator(seed, GenConfig()).spec(0)
        assert_identical(materialize(spec))
