"""Unit tests for pipeline substrates: branch predictor, FU pools, trace."""

import pytest

from repro.isa import Asm, Cond, Opcode, r
from repro.isa.opcodes import OpClass
from repro.pipeline.branch import GsharePredictor
from repro.pipeline.resources import ExecutionResources, FUPool
from repro.pipeline.trace import generate_trace
from repro.pipeline.uop import Uop, UopState


class TestGshare:
    def test_learns_always_taken(self):
        pred = GsharePredictor()
        wrong = sum(pred.update(0x40, True) for _ in range(100))
        assert wrong <= 2

    def test_learns_alternating_pattern_via_history(self):
        pred = GsharePredictor(history_bits=4)
        outcomes = [True, False] * 200
        wrong = sum(pred.update(0x10, t) for t in outcomes)
        # after warm-up, history disambiguates the two contexts
        assert wrong < 30

    def test_accuracy_stat(self):
        pred = GsharePredictor()
        for _ in range(10):
            pred.update(0, True)
        assert pred.stats.predictions == 10
        assert pred.stats.accuracy > 0.7

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            GsharePredictor(entries=1000)


class TestFUPool:
    def test_capacity(self):
        pool = FUPool(OpClass.ALU, 2)
        pool.reserve(5)
        pool.reserve(5)
        assert not pool.can_reserve(5)
        assert pool.can_reserve(6)

    def test_extra_cycle_reservation(self):
        pool = FUPool(OpClass.ALU, 1)
        pool.reserve(3, extra_cycle=True)
        assert not pool.can_reserve(3)
        assert not pool.can_reserve(4)
        assert pool.can_reserve(5)

    def test_extra_cycle_blocked_by_next_cycle(self):
        pool = FUPool(OpClass.ALU, 1)
        pool.reserve(4)
        assert not pool.can_reserve(3, extra_cycle=True)
        assert pool.can_reserve(3)

    def test_overbooking_raises(self):
        pool = FUPool(OpClass.ALU, 1)
        pool.reserve(0)
        with pytest.raises(RuntimeError):
            pool.reserve(0)

    def test_release_past(self):
        pool = FUPool(OpClass.ALU, 1)
        pool.reserve(0)
        pool.release_past(10)
        assert pool.free_at(0) == 1  # bookkeeping dropped

    def test_resources_pools_exist(self):
        res = ExecutionResources(alu=4, simd=3, fp=2, mem_ports=2)
        assert res.pool_for(OpClass.ALU).count == 4
        assert res.pool_for(OpClass.LOAD).count == 2
        assert res.pool_for(OpClass.DIV).count == 1


class TestTraceGeneration:
    def _simple_program(self, n=5):
        a = Asm("trace-test")
        a.mov(r(1), n)
        a.mov(r(2), 0)
        a.label("loop")
        a.add(r(2), r(2), r(1))
        a.subs(r(1), r(1), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        return a.finish()

    def test_trace_length_matches_dynamic_count(self):
        trace = generate_trace(self._simple_program(5))
        # 2 movs + 5*(add,subs,b) + halt
        assert len(trace) == 2 + 15 + 1

    def test_trace_records_branch_outcomes(self):
        trace = generate_trace(self._simple_program(2))
        branches = [e for e in trace.entries if e.instr.is_branch()]
        assert [e.taken for e in branches] == [True, False]

    def test_trace_final_state_matches_interpreter(self):
        from repro.isa import run_program
        program = self._simple_program(7)
        trace = generate_trace(program)
        ref = run_program(program)
        assert trace.final_regs == ref.regs.snapshot()
        assert trace.final_mem == ref.mem.snapshot()

    def test_trace_records_memory_info(self):
        a = Asm("mem")
        a.mov(r(1), 0x100)
        a.mov(r(2), 42)
        a.str_(r(2), r(1), 4)
        a.ldr(r(3), r(1), 4)
        a.halt()
        trace = generate_trace(a.finish())
        store = trace.entries[2]
        load = trace.entries[3]
        assert store.is_store and store.mem_addr == 0x104
        assert not load.is_store and load.mem_addr == 0x104

    def test_runaway_program_rejected(self):
        a = Asm("forever")
        a.label("loop")
        a.b("loop")
        a.halt()
        with pytest.raises(RuntimeError):
            generate_trace(a.finish(), max_instructions=1000)


class TestUop:
    def test_uop_wraps_trace_entry(self):
        trace = generate_trace(TestTraceGeneration()._simple_program(1))
        uop = Uop(0, trace.entries[0])
        assert uop.state is UopState.DISPATCHED
        assert uop.instr.op is Opcode.MOV
        assert uop.seq == 0

    def test_uop_slots_block_arbitrary_attrs(self):
        trace = generate_trace(TestTraceGeneration()._simple_program(1))
        uop = Uop(0, trace.entries[0])
        with pytest.raises(AttributeError):
            uop.bogus_field = 1
