"""Unit tests for the TS and MOS comparator models."""

from repro.baselines import TSConfig, analyze_ts, simulate_mos
from repro.core import BIG, RecycleMode, simulate
from repro.isa import Asm, Cond, ShiftOp, r
from repro.pipeline.trace import generate_trace


def loop_program(name, body, iters=200):
    a = Asm(name)
    a.mov(r(1), 1)
    a.mov(r(2), iters)
    a.label("loop")
    body(a)
    a.subs(r(2), r(2), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def logic_body(a):
    for _ in range(4):
        a.eor(r(1), r(1), 0x33)


def flex_body(a):
    for _ in range(4):
        a.add(r(1), r(1), r(1), shift=ShiftOp.LSR, shift_amt=3)


class TestTS:
    def test_error_rate_within_budget(self):
        trace = generate_trace(loop_program("logic", logic_body))
        result = analyze_ts(trace)
        assert result.error_rate <= TSConfig().error_budget

    def test_period_never_exceeds_nominal(self):
        trace = generate_trace(loop_program("logic", logic_body))
        result = analyze_ts(trace)
        assert result.period_ps <= 500.0
        assert result.speedup >= 0.0

    def test_flex_heavy_code_limits_ts(self):
        """Shift-modified arithmetic occupies nearly the whole cycle on
        >1% of ops -> TS cannot raise frequency meaningfully."""
        flex = analyze_ts(generate_trace(loop_program("flex", flex_body)))
        logic = analyze_ts(generate_trace(loop_program("logic",
                                                       logic_body)))
        assert flex.speedup <= logic.speedup
        assert flex.speedup < 0.05

    def test_stage_margin_caps_speedup(self):
        """Conventional pipeline stages bound TS regardless of ALU mix."""
        trace = generate_trace(loop_program("logic", logic_body))
        tight = analyze_ts(trace, TSConfig(stage_margin=0.02))
        loose = analyze_ts(trace, TSConfig(stage_margin=0.10))
        assert tight.speedup <= loose.speedup
        assert tight.speedup <= 0.03 / 0.97 + 1e-6

    def test_bigger_budget_not_slower(self):
        trace = generate_trace(loop_program("logic", logic_body))
        tight = analyze_ts(trace, TSConfig(error_budget=1e-4))
        loose = analyze_ts(trace, TSConfig(error_budget=1e-2))
        assert loose.speedup >= tight.speedup

    def test_redsoc_beats_ts_on_chains(self):
        """The paper's headline comparison on recycling-friendly code."""
        program = loop_program("logic", logic_body, iters=400)
        trace = generate_trace(program)
        base = simulate(trace, BIG.with_mode(RecycleMode.BASELINE))
        red = simulate(trace, BIG.with_mode(RecycleMode.REDSOC))
        redsoc_speedup = base.cycles / red.cycles - 1
        ts = analyze_ts(trace)
        assert redsoc_speedup > 2 * ts.speedup


class TestMOS:
    def test_mos_runs_and_never_breaks_results(self):
        program = loop_program("logic", logic_body, iters=150)
        trace = generate_trace(program)
        mos = simulate_mos(trace, BIG)
        assert mos.stats.committed == len(trace)

    def test_mos_never_crosses_cycle_boundaries(self):
        program = loop_program("logic", logic_body, iters=150)
        mos = simulate_mos(program, BIG)
        assert mos.stats.two_cycle_holds == 0

    def test_mos_between_baseline_and_redsoc_on_mixed_chain(self):
        def mixed(a):
            a.eor(r(1), r(1), 3)
            a.add(r(1), r(1), 0x1000000)
            a.ror(r(1), r(1), 5)
            a.orr(r(1), r(1), 0x10)
        program = loop_program("mixed", mixed, iters=300)
        trace = generate_trace(program)
        base = simulate(trace, BIG.with_mode(RecycleMode.BASELINE))
        mos = simulate_mos(trace, BIG)
        red = simulate(trace, BIG.with_mode(RecycleMode.REDSOC))
        assert red.cycles <= mos.cycles <= base.cycles * 1.01
