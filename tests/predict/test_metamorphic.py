"""Metamorphic relations the analytic predictor must satisfy.

The model's non-negative coefficients and the baseline clamp make
these structural, not statistical — they hold for *any* workload, so
each relation is checked on real benchmark traces across cores:

* recycling never predicted slower: redsoc/mos <= baseline prediction;
* a wider front end is never predicted slower;
* a coarser tick base (fewer ticks per cycle = less visible slack)
  never predicts a *faster* redsoc execution.  (MOS is exempt: its
  eager-window rule is genuinely non-monotone under re-quantization,
  in the simulator as well as the model.)
"""

from dataclasses import replace

import pytest

from repro.campaign.jobs import CampaignJob, job_trace
from repro.core import CORES
from repro.predict.chains import extract_features
from repro.predict.model import predict

WORKLOADS = [("ml", "pool0", 3), ("mibench", "crc", 32)]


@pytest.fixture(scope="module")
def traces():
    return {f"{suite}/{bench}": job_trace(CampaignJob(
        suite=suite, bench=bench, core="small", mode="baseline",
        scale=scale)) for suite, bench, scale in WORKLOADS}


@pytest.mark.parametrize("core", ["small", "medium", "big"])
def test_recycling_never_predicted_slower(traces, core):
    config = CORES[core]
    for name, trace in traces.items():
        features = extract_features(trace, config)
        base = predict(features, config, "baseline").cycles
        for mode in ("redsoc", "mos"):
            cycles = predict(features, config, mode).cycles
            assert cycles <= base + 1e-9, (name, core, mode)


@pytest.mark.parametrize("core", ["small", "big"])
@pytest.mark.parametrize("mode", ["baseline", "redsoc", "mos"])
def test_wider_front_never_predicted_slower(traces, core, mode):
    narrow = CORES[core]
    wide = replace(narrow, front_width=narrow.front_width * 2)
    for name, trace in traces.items():
        p_narrow = predict(extract_features(trace, narrow),
                           narrow, mode).cycles
        p_wide = predict(extract_features(trace, wide),
                         wide, mode).cycles
        assert p_wide <= p_narrow + 1e-9, (name, core, mode)


@pytest.mark.parametrize("core", ["small", "big"])
def test_coarser_ticks_never_predict_faster_redsoc(traces, core):
    base = CORES[core]
    for name, trace in traces.items():
        cycles = []
        for tpc in (1, 2, 4, 8):    # coarse -> fine
            config = replace(base, ticks_per_cycle=tpc)
            features = extract_features(trace, config)
            cycles.append(predict(features, config, "redsoc").cycles)
        for coarse, fine in zip(cycles, cycles[1:]):
            assert coarse >= fine - 1e-6, (name, core, cycles)


def test_interval_brackets_the_point_estimate(traces):
    config = CORES["small"]
    for trace in traces.values():
        features = extract_features(trace, config)
        for confidence in (0.5, 0.9, 0.99):
            p = predict(features, config, "mos", confidence=confidence)
            assert p.interval_lo <= p.cycles <= p.interval_hi
        narrow = predict(features, config, "mos", confidence=0.5)
        wide = predict(features, config, "mos", confidence=0.99)
        assert wide.interval_hi >= narrow.interval_hi


def test_invalid_confidence_raises(traces):
    config = CORES["small"]
    features = extract_features(next(iter(traces.values())), config)
    for bad in (0.0, 1.0, -1.0, 2.0):
        with pytest.raises(ValueError):
            predict(features, config, "redsoc", confidence=bad)
