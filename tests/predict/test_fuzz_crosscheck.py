"""Fuzz leg: the predictor against all three simulation engines.

Seeded random programs run through every registered engine backend;
the engines must agree exactly (that is the repo's backend-equivalence
contract), and the analytic predictor is then cross-checked against
that single agreed ground truth:

* predictions are finite, positive, and respect the mode ordering
  (recycling never predicted slower);
* the point estimate stays within a factor-2 sanity band of the exact
  result.  Random loops sit far outside the calibration set, so this
  is deliberately loose — the tight 15%/8% gates live in
  ``test_accuracy.py`` where the calibration is actually applicable.
"""

import math
import random

import pytest

from dataclasses import replace

from repro.core import CORES, ENGINES, RecycleMode, simulate
from repro.isa import Asm, Cond, ShiftOp, SimdType, r, v
from repro.pipeline.trace import generate_trace
from repro.predict.model import predict

SEEDS = range(6)
ITERS = 40      # enough dynamic instructions that the intercept terms
                # do not dominate (n ~ 400-1000)


def _program(seed: int):
    rng = random.Random(seed)
    a = Asm(f"fuzz-{seed}")
    a.data_words(0x1000, range(64))
    for i in range(1, 8):
        a.mov(r(i), rng.randrange(0xFFFF))
    a.mov(r(9), 0x1000)
    a.mov(r(8), ITERS)
    a.vdup(v(0), r(1), SimdType.I16)
    a.label("loop")
    for _ in range(rng.randrange(8, 24)):
        choice = rng.randrange(8)
        dst, src1, src2 = (r(rng.randrange(1, 8)) for _ in range(3))
        if choice == 0:
            a.add(dst, src1, src2)
        elif choice == 1:
            a.eor(dst, src1, src2)
        elif choice == 2:
            a.mul(dst, src1, src2)
        elif choice == 3:
            a.ldr(dst, r(9), rng.randrange(32) * 4)
        elif choice == 4:
            a.str_(src1, r(9), rng.randrange(32) * 4)
        elif choice == 5:
            a.adc(dst, src1, src2, s=True)
        elif choice == 6:
            a.vadd(v(0), v(0), v(0), SimdType.I16)
        else:
            a.add(dst, src1, src2, shift=ShiftOp.ROR, shift_amt=3)
    a.subs(r(8), r(8), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


@pytest.mark.parametrize("seed", SEEDS)
def test_predictor_crosschecks_every_engine(seed):
    trace = generate_trace(_program(seed))
    for core in ("small", "big"):
        predicted = {}
        base_config = CORES[core]
        for mode in ("baseline", "redsoc", "mos"):
            config = base_config.with_mode(RecycleMode(mode))

            by_engine = {name: simulate(
                trace, replace(config, engine=name)).cycles
                for name in ENGINES.names()}
            assert len(set(by_engine.values())) == 1, \
                f"engines disagree for {core}:{mode}: {by_engine}"
            actual = next(iter(by_engine.values()))

            p = predict(trace, config, mode)
            assert math.isfinite(p.cycles) and p.cycles >= 1.0
            assert p.ipc > 0
            predicted[mode] = p.cycles
            assert actual / 2 <= p.cycles <= actual * 2, \
                f"{core}:{mode} predicted {p.cycles:.1f} vs {actual}"

        assert predicted["redsoc"] <= predicted["baseline"] + 1e-9
        assert predicted["mos"] <= predicted["baseline"] + 1e-9
