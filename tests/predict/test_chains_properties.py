"""Property-based tests for the chain/feature extractor.

Hypothesis generates random (valid) programs; for each one the
extractor's structural invariants must hold — chain statistics bounded
by the dynamic instruction count, per-mode critical paths ordered the
way the scheduler's guarantees order them, and the feature payload
surviving a JSON round trip.  Degenerate traces (empty, single
instruction) and the extractor's trickiest inputs (SIMD chains,
carry-flag chains) get explicit cases.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CORES
from repro.isa import Asm, Cond, ShiftOp, SimdType, r, v
from repro.pipeline.trace import Trace, generate_trace
from repro.predict.chains import TraceFeatures, extract_features

SMALL = CORES["small"]
BIG = CORES["big"]
REGS = [r(i) for i in range(1, 8)]


@st.composite
def random_program(draw):
    """A short random loop mixing ALU, memory, SIMD and flag ops."""
    a = Asm("chains-prop")
    a.data_words(0x1000, range(32))
    for reg in REGS:
        a.mov(reg, draw(st.integers(min_value=0, max_value=0xFFFF)))
    a.mov(r(9), 0x1000)
    a.mov(r(8), draw(st.integers(min_value=1, max_value=6)))
    a.vdup(v(0), r(1), SimdType.I16)
    a.vdup(v(1), r(2), SimdType.I16)
    a.label("loop")
    ops = draw(st.lists(st.integers(min_value=0, max_value=8),
                        min_size=2, max_size=14))
    for choice in ops:
        dst = REGS[draw(st.integers(min_value=0, max_value=6))]
        src1 = REGS[draw(st.integers(min_value=0, max_value=6))]
        src2 = REGS[draw(st.integers(min_value=0, max_value=6))]
        if choice == 0:
            a.add(dst, src1, src2)
        elif choice == 1:
            a.eor(dst, src1, src2)
        elif choice == 2:
            a.mul(dst, src1, src2)
        elif choice == 3:
            a.ldr(dst, r(9), draw(st.integers(min_value=0,
                                              max_value=15)) * 4)
        elif choice == 4:
            a.str_(src1, r(9), draw(st.integers(min_value=0,
                                                max_value=15)) * 4)
        elif choice == 5:
            a.adc(dst, src1, src2)
        elif choice == 6:
            a.vadd(v(0), v(0), v(1), SimdType.I16)
        elif choice == 7:
            a.vmla(v(1), v(0), v(1), SimdType.I16)
        else:
            a.add(dst, src1, src2, shift=ShiftOp.ROR,
                  shift_amt=draw(st.integers(min_value=1, max_value=7)))
    a.subs(r(8), r(8), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def _check_invariants(features: TraceFeatures, n: int) -> None:
    assert features.n == n
    assert 0 <= features.chain_count <= n
    assert 0 <= features.max_chain_len <= n
    assert 0.0 <= features.mean_chain_len <= features.max_chain_len
    assert sum(features.op_counts.values()) == n
    assert 0 <= features.hl_loads <= features.loads <= n
    assert 0 <= features.stores <= n
    assert 0 <= features.mispredicts <= features.cond_branches <= n
    assert 0 <= features.taken_branches <= n
    assert 0 <= features.mem_chain_cycles <= features.load_extra_cycles
    crit = features.crit_cycles
    assert set(crit) == {"baseline", "redsoc", "mos"}
    assert 0.0 <= crit["redsoc"] <= crit["baseline"]
    assert 0.0 <= crit["mos"] <= crit["baseline"]


@given(random_program())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_invariants_on_random_programs(program):
    trace = generate_trace(program)
    for config in (SMALL, BIG):
        _check_invariants(extract_features(trace, config), len(trace))


@given(random_program())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_payload_roundtrip_is_stable(program):
    trace = generate_trace(program)
    features = extract_features(trace, SMALL)
    payload = json.loads(json.dumps(features.to_payload()))
    rebuilt = TraceFeatures.from_payload(payload)
    assert rebuilt.to_payload() == features.to_payload()


@given(random_program())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_extraction_is_deterministic(program):
    trace = generate_trace(program)
    a = extract_features(trace, SMALL)
    b = extract_features(trace, SMALL)
    assert a.to_payload() == b.to_payload()


def test_empty_trace():
    empty = Trace(name="empty", entries=[], final_regs={}, final_mem={})
    features = extract_features(empty, SMALL)
    _check_invariants(features, 0)
    assert features.mean_chain_len == 0.0
    assert features.crit_cycles["baseline"] == 0.0


def test_single_instruction_trace():
    a = Asm("one")
    a.halt()
    trace = generate_trace(a.finish())
    features = extract_features(trace, SMALL)
    _check_invariants(features, len(trace))
    assert features.chain_count == features.max_chain_len == 1


def test_carry_chain_is_one_long_chain():
    # N dependent adcs through the carry flag + accumulator: the
    # extractor must see one dominating dependence chain, not N
    # independent single-op chains
    depth = 24
    a = Asm("carry")
    a.mov(r(1), 1)
    a.mov(r(2), 0)
    a.adds(r(2), r(2), r(1))
    for _ in range(depth):
        a.adc(r(2), r(2), r(1), s=True)
    a.halt()
    features = extract_features(generate_trace(a.finish()), SMALL)
    _check_invariants(features, features.n)
    assert features.max_chain_len >= depth


def test_simd_multicycle_chain():
    depth = 16
    a = Asm("simd")
    a.mov(r(1), 7)
    a.vdup(v(0), r(1), SimdType.I16)
    a.vdup(v(1), r(1), SimdType.I16)
    for _ in range(depth):
        a.vmla(v(0), v(0), v(1), SimdType.I16)
    a.halt()
    trace = generate_trace(a.finish())
    for config in (SMALL, BIG):
        features = extract_features(trace, config)
        _check_invariants(features, len(trace))
        assert features.max_chain_len >= depth
        # a serial multicycle chain cannot finish faster than one op
        # per cycle, in any mode
        assert features.crit_cycles["mos"] >= depth
