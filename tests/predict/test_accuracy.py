"""Predicted-vs-actual validation over the full benchmark matrix.

``data/matrix.json`` pins the extracted features and the *exact*
simulated cycle counts for every (suite/bench, core, mode) job; the
committed default calibration must reproduce them within the accuracy
gates the predictor advertises:

* every single job within 15% relative error;
* mean absolute percentage error over the whole matrix within 8%.

A consistency leg re-extracts features for one cheap benchmark from a
freshly generated trace and demands bit-identical payloads — so the
fixture cannot silently go stale against the extractor.
"""

import json
from pathlib import Path

import pytest

from repro.core import CORES
from repro.predict.calibrate import default_calibration
from repro.predict.chains import FEATURE_SCHEMA, TraceFeatures, \
    extract_features
from repro.predict.model import predict

MATRIX = Path(__file__).parent / "data" / "matrix.json"

MAX_JOB_ERR_PCT = 15.0
MAX_MAPE_PCT = 8.0


def _entries():
    payload = json.loads(MATRIX.read_text())
    assert payload["schema"] == 1
    return payload["entries"]


@pytest.fixture(scope="module")
def predictions():
    """[(label, predicted, actual, rel_err)] over the whole matrix."""
    calibration = default_calibration()
    rows = []
    for entry in _entries():
        features = TraceFeatures.from_payload(entry["features"])
        config = CORES[entry["core"]]
        for mode, actual in sorted(entry["actuals"].items()):
            predicted = predict(features, config, mode,
                                calibration=calibration).cycles
            rel = abs(predicted - actual) / actual
            rows.append((f"{entry['bench']}@{entry['core']}:{mode}",
                         predicted, actual, rel))
    return rows


def test_matrix_covers_the_full_grid():
    entries = _entries()
    assert len(entries) == 45          # 15 benchmarks x 3 cores
    assert all(len(e["actuals"]) == 3 for e in entries)
    assert all(e["features"]["feature_schema"] == FEATURE_SCHEMA
               for e in entries)


def test_every_job_within_15_percent(predictions):
    violations = [(label, round(rel * 100, 2))
                  for label, _, _, rel in predictions
                  if rel * 100 > MAX_JOB_ERR_PCT]
    assert not violations, \
        f"jobs above {MAX_JOB_ERR_PCT}%: {violations}"


def test_full_matrix_mape_within_8_percent(predictions):
    mape = 100.0 * sum(rel for *_, rel in predictions) / len(predictions)
    assert mape <= MAX_MAPE_PCT, f"MAPE {mape:.2f}% > {MAX_MAPE_PCT}%"


def test_per_benchmark_worst_case_is_bounded(predictions):
    worst = {}
    for label, _, _, rel in predictions:
        bench = label.split("@")[0]
        worst[bench] = max(worst.get(bench, 0.0), rel * 100)
    offenders = {b: round(w, 2) for b, w in worst.items()
                 if w > MAX_JOB_ERR_PCT}
    assert not offenders, offenders


def test_calibration_fixture_is_well_formed():
    calibration = default_calibration()
    assert calibration.fits
    for key, fit in calibration.fits.items():
        assert fit.samples > 0, key
        quantiles = fit.error_quantiles
        assert quantiles.get("p50", 0.0) <= quantiles.get("max", 0.0)
        assert all(c >= 0 for c in fit.coef.values()), \
            f"negative coefficient in {key}"


@pytest.mark.parametrize("core", ["small", "medium", "big"])
def test_fixture_features_match_fresh_extraction(core):
    # mibench/bitcnt is the cheapest real benchmark (~11k dynamic
    # instructions); regenerate its trace and features from scratch
    from repro.campaign.jobs import enumerate_jobs, job_config, job_trace

    [job] = [j for j in enumerate_jobs()
             if j.suite == "mibench" and j.bench == "bitcnt"
             and j.core == core and j.mode == "baseline"]
    fresh = extract_features(job_trace(job), job_config(job))
    [entry] = [e for e in _entries()
               if e["bench"] == "mibench/bitcnt" and e["core"] == core]
    fixture = json.loads(json.dumps(fresh.to_payload()))  # via JSON
    assert fixture == entry["features"], \
        "extractor drifted from the committed matrix fixture — " \
        "regenerate tests/predict/data/matrix.json"
