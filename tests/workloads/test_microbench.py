"""Unit tests for the characterisation microbenchmarks."""

import pytest

from repro.core import BIG, RecycleMode, simulate
from repro.isa import run_program
from repro.workloads.microbench import MICROBENCHES, MicroBench


class TestRegistry:
    def test_all_slack_classes_present(self):
        assert set(MICROBENCHES) == {
            "logic", "shift", "narrow-arith", "wide-arith", "flex-arith",
            "simd-i8", "simd-i64"}

    def test_all_build_and_run(self):
        for name, micro in MICROBENCHES.items():
            result = run_program(micro.build(5))
            assert result.halted, name

    def test_scale_controls_length(self):
        micro = MICROBENCHES["logic"]
        short = run_program(micro.build(5)).instructions
        long = run_program(micro.build(20)).instructions
        assert long > 3 * short


class TestPredictions:
    def test_pairing_bound_applies_below_half_cycle(self):
        logic = MICROBENCHES["logic"]
        # 3-tick ops cap at 2/cycle: predicted 100%, not 8/3-1
        assert logic.predicted_speedup() == pytest.approx(1.0)

    def test_self_sustaining_chains_use_their_ticks(self):
        assert MICROBENCHES["shift"].predicted_speedup() == \
            pytest.approx(8 / 5 - 1)
        assert MICROBENCHES["wide-arith"].predicted_speedup() == \
            pytest.approx(8 / 7 - 1)

    def test_no_slack_classes_predict_zero(self):
        assert MICROBENCHES["flex-arith"].predicted_speedup() == 0.0
        assert MICROBENCHES["simd-i64"].predicted_speedup() == 0.0

    def test_custom_precision(self):
        micro = MicroBench("x", 6, MICROBENCHES["logic"].build)
        assert micro.predicted_speedup(16) == pytest.approx(16 / 8 - 1)


class TestEndToEnd:
    def test_flex_control_never_accelerates(self):
        program = MICROBENCHES["flex-arith"].build(150)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        red = simulate(program, BIG.with_mode(RecycleMode.REDSOC))
        assert abs(base.cycles - red.cycles) <= base.cycles * 0.02

    def test_logic_chain_accelerates_strongly(self):
        program = MICROBENCHES["logic"].build(200)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        red = simulate(program, BIG.with_mode(RecycleMode.REDSOC))
        assert base.cycles / red.cycles > 1.4
