"""Functional correctness tests for the workload kernels.

Every kernel is validated against an independent Python reference —
these are real programs, and the timing results are only meaningful if
they compute the right answers.
"""

import random
import zlib

import pytest

from repro.isa import r, run_program
from repro.workloads import (
    ML_KERNELS,
    bitcount,
    corners,
    crc32,
    gsm,
    relu,
    softmax,
    stringsearch,
)
from repro.workloads.suites import SUITES, all_benchmarks, default_scale


class TestBitcount:
    def test_counts_bits_correctly(self):
        rng = random.Random(0xB17C0)
        values = [rng.getrandbits(32) for _ in range(30)]
        result = run_program(bitcount(30))
        expected = sum(bin(v).count("1") for v in values)
        assert result.regs.read(r(3)) == expected

    def test_scales_with_input(self):
        small = run_program(bitcount(10))
        large = run_program(bitcount(40))
        assert large.instructions > 3 * small.instructions


class TestCRC32:
    def test_matches_zlib(self):
        """Our table-driven CRC equals zlib's (modulo final inversion)."""
        rng = random.Random(0xC3C32)
        data = bytes(rng.getrandbits(8) for _ in range(150))
        result = run_program(crc32(150))
        expected = zlib.crc32(data) ^ 0xFFFFFFFF
        assert result.regs.read(r(3)) == expected


class TestStringsearch:
    def test_finds_planted_needles(self):
        result = run_program(stringsearch(18))
        assert result.regs.read(r(3)) >= 1

    def test_no_false_negatives_vs_python(self):
        """Match count equals Python's count of 'redsoc' occurrences."""
        rng = random.Random(0x57065)
        needle = b"redsoc"
        haystack = bytearray(
            rng.choice(b"abcdefgh") for _ in range(64 * 18))
        for _ in range(18 // 3 + 1):
            pos = rng.randrange(0, len(haystack) - len(needle))
            haystack[pos:pos + len(needle)] = needle
        expected = sum(
            1 for i in range(len(haystack) - len(needle))
            if haystack[i:i + len(needle)] == needle)
        result = run_program(stringsearch(18))
        assert result.regs.read(r(3)) == expected


class TestGsm:
    def test_produces_stable_checksum(self):
        a = run_program(gsm(5))
        b = run_program(gsm(5))
        assert a.regs.read(r(3)) == b.regs.read(r(3))

    def test_lattice_is_bounded(self):
        """Per-sample outputs are saturated to 16 bits."""
        result = run_program(gsm(5))
        total = result.regs.read(r(3))
        samples = 5 * 8 - 8
        assert total < samples * (1 << 16)


class TestCorners:
    def test_detects_some_corners(self):
        result = run_program(corners(4))
        count = result.regs.read(r(3))
        assert count > 0

    def test_uniform_image_has_no_corners(self):
        """All-same-brightness image -> every USAN is maximal."""
        # build via the real builder then monkeypatch data: simpler to
        # verify the threshold logic on the real (random) image instead:
        # corners must be a small fraction of pixels
        result = run_program(corners(4))
        pixels = 32 * (4 * 4 - 2) - 2
        assert result.regs.read(r(3)) < pixels


class TestMLKernels:
    def test_relu_clamps_negatives(self):
        result = run_program(relu(4))
        out = result.mem.read_block(0x20000, 16 * 8 * 4)
        assert all(b < 128 for b in out)

    def test_softmax_outputs_normalised(self):
        result = run_program(softmax(4))
        count = 8 * 4
        outputs = [result.mem.read(0x20000 + 4 * i, 4)
                   for i in range(count)]
        assert all(o > 0 for o in outputs)          # exp never zero
        total = sum(outputs)
        assert abs(total - 256) < 0.25 * 256        # Q8.8 "1.0" +- 25%

    def test_conv_preserves_constant_regions(self):
        """Gaussian blur of any image keeps values within input range."""
        result = run_program(ML_KERNELS["conv"](3))
        out = [result.mem.read(0x20000 + 2 * i, 2) for i in range(32)]
        assert all(o <= 255 for o in out)           # /16 normalisation


class TestSuiteRegistry:
    def test_three_suites(self):
        assert set(SUITES) == {"spec", "mibench", "ml"}

    def test_expected_members(self):
        assert set(SUITES["spec"]) == {"xalanc", "bzip2", "omnetpp",
                                       "gromacs", "soplex"}
        assert set(SUITES["mibench"]) == {"corners", "strsearch", "gsm",
                                          "crc", "bitcnt"}
        assert set(SUITES["ml"]) == {"act", "pool0", "conv", "pool1",
                                     "softmax"}

    def test_all_benchmarks_iterates_everything(self):
        names = [(s, n) for s, n, _ in all_benchmarks()]
        assert len(names) == 15
        assert len(set(names)) == 15

    @pytest.mark.parametrize("suite,name",
                             [(s, n) for s, n, _ in all_benchmarks()])
    def test_every_benchmark_builds_and_validates(self, suite, name):
        builder = SUITES[suite][name]
        program = builder(**{k: max(1, v // 10) for k, v in
                             default_scale(suite, name).items()}
                          or default_scale(suite, name))
        program.validate()
        assert len(program) > 5


class TestSpecGenerator:
    def test_deterministic(self):
        from repro.workloads import make_spec
        a = make_spec("bzip2", iterations=3)
        b = make_spec("bzip2", iterations=3)
        assert [repr(i) for i in a.instructions] == \
               [repr(i) for i in b.instructions]

    def test_profiles_differ(self):
        from repro.workloads import make_spec
        a = make_spec("bzip2", iterations=2)
        b = make_spec("gromacs", iterations=2)
        assert [repr(i) for i in a.instructions] != \
               [repr(i) for i in b.instructions]

    def test_runs_to_completion(self):
        from repro.workloads import make_spec
        result = run_program(make_spec("soplex", iterations=3))
        assert result.halted

    def test_fp_profile_contains_fp_ops(self):
        from repro.isa.opcodes import OpClass
        from repro.workloads import make_spec
        program = make_spec("gromacs", iterations=2)
        assert any(i.cls is OpClass.FP for i in program.instructions)
