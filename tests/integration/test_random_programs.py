"""Property-based tests: random programs through the whole stack.

Hypothesis generates random (but valid) programs; for each one we check
the core behavioural contracts of the reproduction:

* the timing simulators commit exactly the dynamic instruction count;
* ReDSOC and MOS never slow execution beyond measurement noise;
* everything is deterministic.

These are the "failure injection" tests for the scheduler: random
dependence patterns exercise corner cases (flag chains, same-register
operands, mixed latencies) no hand-written kernel covers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MEDIUM, RecycleMode, simulate
from repro.isa import Asm, Cond, ShiftOp, SimdType, r, v
from repro.pipeline.trace import generate_trace

REGS = [r(i) for i in range(1, 8)]
VREGS = [v(i) for i in range(0, 4)]


@st.composite
def random_program(draw):
    """A random loop over a random mixed-op body."""
    a = Asm("random")
    a.data_words(0x1000, range(64))
    for reg in REGS:
        a.mov(reg, draw(st.integers(min_value=0, max_value=0xFFFF)))
    a.mov(r(9), 0x1000)
    a.mov(r(8), draw(st.integers(min_value=2, max_value=12)))  # iters
    a.vdup(VREGS[0], r(1), SimdType.I16)
    a.vdup(VREGS[1], r(2), SimdType.I16)
    a.label("loop")
    ops = draw(st.lists(st.integers(min_value=0, max_value=9),
                        min_size=3, max_size=20))
    for k, choice in enumerate(ops):
        dst = REGS[draw(st.integers(min_value=0, max_value=6))]
        src1 = REGS[draw(st.integers(min_value=0, max_value=6))]
        src2 = REGS[draw(st.integers(min_value=0, max_value=6))]
        if choice == 0:
            a.add(dst, src1, src2)
        elif choice == 1:
            a.eor(dst, src1, src2)
        elif choice == 2:
            a.lsr(dst, src1, draw(st.integers(min_value=1, max_value=8)))
        elif choice == 3:
            a.add(dst, src1, src2, shift=ShiftOp.ROR,
                  shift_amt=draw(st.integers(min_value=1, max_value=7)))
        elif choice == 4:
            a.mul(dst, src1, src2)
        elif choice == 5:
            a.ldr(dst, r(9), draw(st.integers(min_value=0,
                                              max_value=31)) * 4)
        elif choice == 6:
            a.str_(src1, r(9), draw(st.integers(min_value=0,
                                                max_value=31)) * 4)
        elif choice == 7:
            a.adc(dst, src1, src2)
        elif choice == 8:
            a.vadd(VREGS[0], VREGS[0], VREGS[1], SimdType.I16)
        else:
            a.vmla(VREGS[1], VREGS[0], VREGS[1], SimdType.I16)
    a.subs(r(8), r(8), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


@given(random_program())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_all_modes_commit_everything(program):
    trace = generate_trace(program)
    for mode in RecycleMode:
        result = simulate(trace, MEDIUM.with_mode(mode))
        assert result.stats.committed == len(trace), mode


@given(random_program())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_recycling_never_hurts_much(program):
    trace = generate_trace(program)
    base = simulate(trace, MEDIUM.with_mode(RecycleMode.BASELINE))
    red = simulate(trace, MEDIUM.with_mode(RecycleMode.REDSOC))
    mos = simulate(trace, MEDIUM.with_mode(RecycleMode.MOS))
    assert red.cycles <= base.cycles * 1.05 + 10
    assert mos.cycles <= base.cycles * 1.05 + 10


@given(random_program())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_determinism(program):
    trace = generate_trace(program)
    a = simulate(trace, MEDIUM)
    b = simulate(trace, MEDIUM)
    assert a.cycles == b.cycles
    assert a.stats.recycled_ops == b.stats.recycled_ops
    assert a.stats.la_replays == b.stats.la_replays
