"""End-to-end: estimate, then simulate the same inline program.

One daemon serves both request classes against one shared cache.  The
analytic estimate must land inside its own advertised error bound when
the exact simulation answers, and a warm estimate must be far cheaper
than a cold simulation — that asymmetry is the entire point of the
``estimate`` fast path.
"""

import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon

# a flag-serialised loop: ~4k dynamic instructions, long dependence
# chains — the shape the critical-path model predicts well
ASM = """
    mov   r1, #0x1234
    mov   r2, #800
loop:
    eor   r1, r1, #0x5A
    ror   r1, r1, #3
    add   r3, r1, r1
    subs  r2, r2, #1
    bne   loop
    halt
"""

MODES = ("baseline", "redsoc", "mos")


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    config = ServeConfig(port=0, workers=2,
                         cache_dir=tmp_path_factory.mktemp("cache"))
    d = ServeDaemon(config)
    port = d.start_background()
    yield d, port
    d.stop_background()


@pytest.fixture(scope="module")
def results(daemon):
    """Cold estimate, cold simulate, then a warm estimate, per mode."""
    _, port = daemon
    out = {}
    with ServeClient(port=port, timeout_s=120) as client:
        for mode in MODES:
            body = dict(asm=ASM, name="e2e", core="small", mode=mode)
            est = client.estimate(**body)
            sim = client.simulate(**body)
            warm = client.estimate(**body, confidence=0.8)
            out[mode] = (est, sim, warm)
    return out


def test_estimate_is_marked_predicted(results):
    for mode, (est, sim, _) in results.items():
        assert est["kind"] == "estimate"
        assert est["result"]["predicted"] is True
        assert "predicted" not in sim["result"]
        assert est["result"]["mode"] == mode


def test_error_bound_holds_against_exact_simulation(results):
    for mode, (est, sim, _) in results.items():
        predicted = est["result"]["cycles"]
        actual = sim["result"]["cycles"]
        bound_pct = est["result"]["error_bound"]["max_pct"]
        rel_pct = abs(predicted - actual) / actual * 100.0
        assert rel_pct <= bound_pct, \
            f"{mode}: {rel_pct:.2f}% off, bound {bound_pct}%"


def test_interval_brackets_the_exact_result(results):
    for mode, (est, sim, _) in results.items():
        interval = est["result"]["interval"]
        assert interval["lo"] <= sim["result"]["cycles"] * 1.01, mode


def test_warm_estimate_is_inline_and_fast(results):
    for mode, (_, sim, warm) in results.items():
        assert warm["served"] == "inline", mode
        est_s = warm["result"]["predict_latency_us"] / 1e6
        sim_s = sim["result"]["wall_time_s"]
        assert not sim["result"]["cache_hit"]   # simulate ran cold
        # the fast path must beat a cold simulation by a wide margin
        assert est_s < sim_s / 10, (mode, est_s, sim_s)
        assert est_s < 0.005                    # interactive: <5 ms


def test_modes_ordered_like_the_simulator(results):
    predicted = {m: results[m][0]["result"]["cycles"] for m in MODES}
    exact = {m: results[m][1]["result"]["cycles"] for m in MODES}
    for mode in ("redsoc", "mos"):
        assert predicted[mode] <= predicted["baseline"] + 1e-9
        assert exact[mode] <= exact["baseline"]
