"""Integration tests for the replay paths (width + last-arrival).

Aggressive width mispredictions and wrong last-arrival-tag wakeups are
the two speculative holes in the Operational design; both must be
caught and repaired without ever corrupting results.
"""

from repro.core import BIG, MEDIUM, RecycleMode, SchedulerDesign, simulate
from repro.isa import Asm, Cond, r
from repro.pipeline.trace import generate_trace


def width_flipper(iters=300):
    """Each PC alternates narrow/wide operands after a warm-up run,
    defeating the width predictor's confidence on purpose."""
    a = Asm("flipper")
    a.mov(r(1), 3)
    a.mov(r(2), iters)
    a.mov(r(3), 0)
    a.label("loop")
    # r4 alternates between tiny and huge across iterations
    a.and_(r(4), r(2), 1)
    a.lsl(r(4), r(4), 30)
    a.orr(r(4), r(4), 5)
    # this add sees width 8 on even iters, 32 on odd ones; after three
    # equal outcomes in a row the predictor would trust narrow - the
    # alternation forces occasional aggressive errors via aliasing
    a.add(r(3), r(3), r(4))
    a.and_(r(3), r(3), 0xFFFF)
    a.subs(r(2), r(2), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def width_burster(iters=40):
    """Long narrow runs punctuated by wide values: the resetting
    predictor saturates on narrow and the first wide operand is an
    aggressive misprediction (the paper's 0.1-0.6% residual)."""
    a = Asm("burster")
    a.mov(r(2), iters)
    a.mov(r(3), 0)
    a.label("outer")
    a.mov(r(5), 9)
    a.label("inner")
    a.mov(r(4), 1)
    a.cmp(r(5), 1)
    a.b("narrow_op", cond=Cond.NE)
    a.mov(r(4), 0x40000000)  # every 9th pass: a wide operand
    a.label("narrow_op")
    a.add(r(3), r(3), r(4))  # ONE static add: 8 narrow, then 1 wide
    a.and_(r(3), r(3), 0x3F)
    a.subs(r(5), r(5), 1)
    a.b("inner", cond=Cond.NE)
    a.subs(r(2), r(2), 1)
    a.b("outer", cond=Cond.NE)
    a.halt()
    return a.finish()


class TestWidthReplays:
    def test_bursty_widths_trigger_aggressive_replays(self):
        trace = generate_trace(width_burster(60))
        red = simulate(trace, BIG.with_mode(RecycleMode.REDSOC))
        assert red.stats.committed == len(trace)
        # the saturated-narrow prediction is wrong once per burst
        assert red.stats.width_replays > 20
        assert red.stats.width_aggressive_rate > 0.01

    def test_replays_never_lose_instructions(self):
        for program in (width_flipper(200), width_burster(40)):
            trace = generate_trace(program)
            for mode in RecycleMode:
                res = simulate(trace, MEDIUM.with_mode(mode))
                assert res.stats.committed == len(trace)

    def test_aggressive_rate_stays_bounded(self):
        trace = generate_trace(width_flipper(400))
        red = simulate(trace, BIG.with_mode(RecycleMode.REDSOC))
        # the resetting predictor keeps unsafe errors rare even under
        # adversarial alternation
        assert red.stats.width_aggressive_rate < 0.05

    def test_baseline_unaffected_by_width_prediction(self):
        """Width replays are a ReDSOC cost; the baseline never replays."""
        trace = generate_trace(width_flipper(200))
        base = simulate(trace, MEDIUM.with_mode(RecycleMode.BASELINE))
        assert base.stats.width_replays == 0


class TestLastArrivalReplays:
    def _two_source_racer(self, iters=300):
        """Two producers with alternating latencies feed one consumer,
        flipping the last-arriving operand."""
        a = Asm("racer")
        a.mov(r(1), 1)
        a.mov(r(2), iters)
        a.mov(r(5), 7)
        a.label("loop")
        a.and_(r(6), r(2), 3)
        a.lsl(r(3), r(1), 1)         # fast producer
        a.mul(r(4), r(5), r(6))      # slow producer (sometimes)
        a.eor(r(1), r(3), r(4))      # 2-source consumer
        a.and_(r(1), r(1), 0xFF)
        a.orr(r(1), r(1), 1)
        a.subs(r(2), r(2), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        return a.finish()

    def test_operational_design_replays_and_recovers(self):
        trace = generate_trace(self._two_source_racer())
        red = simulate(trace, MEDIUM)
        assert red.stats.committed == len(trace)
        assert red.stats.la_predictions > 0

    def test_illustrative_design_never_replays(self):
        trace = generate_trace(self._two_source_racer())
        il = simulate(trace, MEDIUM.variant(
            scheduler=SchedulerDesign.ILLUSTRATIVE))
        assert il.stats.la_replays == 0
        assert il.stats.la_predictions == 0

    def test_designs_agree_on_work_done(self):
        trace = generate_trace(self._two_source_racer(150))
        op = simulate(trace, MEDIUM)
        il = simulate(trace, MEDIUM.variant(
            scheduler=SchedulerDesign.ILLUSTRATIVE))
        assert op.stats.committed == il.stats.committed == len(trace)
        # the cheap design costs at most a few percent
        assert op.cycles <= il.cycles * 1.10
