"""Audit replay: recorded event streams re-audit without re-simulating.

A traced run's JSONL dump must be a *sufficient* debugging artefact:
:func:`repro.core.audit.audit_from_events` consumes the recorded
stream and re-derives all six timing invariants, and these tests pin
it to the live auditor — same verdicts, same detail strings — across
workloads, modes and cores, including a JSONL round-trip through disk.
Handcrafted bad streams prove every rule actually fires on replay.
"""

import pytest

from repro.core import CORES, RecycleMode
from repro.core.audit import audit_from_events, audit_run
from repro.obs import (
    Event,
    EventKind,
    Recorder,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.pipeline.trace import generate_trace
from repro.workloads import MICROBENCHES, bitcount, crc32
from repro.workloads.mlkernels import conv3x3


@pytest.fixture(scope="module")
def traces():
    return {
        "bitcnt": generate_trace(bitcount(12)),
        "crc": generate_trace(crc32(80)),
        "conv": generate_trace(conv3x3(5)),
        "logic": generate_trace(MICROBENCHES["logic"].build(50)),
    }


def _violation_keys(violations):
    return [(v.rule, v.seq, v.detail) for v in violations]


@pytest.mark.parametrize("mode", list(RecycleMode))
def test_replay_matches_live_audit(traces, mode):
    for name, trace in traces.items():
        recorder = Recorder()
        live = audit_run(trace, CORES["big"].with_mode(mode),
                         obs=recorder)
        replay = audit_from_events(recorder.events)
        assert replay.audited_uops == live.audited_uops, name
        assert replay.committed == live.result.stats.committed, name
        assert _violation_keys(replay.violations) == \
            _violation_keys(live.violations), name
        assert replay.ok == live.ok


def test_replay_survives_jsonl_round_trip(traces, tmp_path):
    recorder = Recorder()
    live = audit_run(traces["crc"], CORES["small"], obs=recorder)
    path = write_events_jsonl(recorder.events, tmp_path / "run.jsonl")
    replay = audit_from_events(read_events_jsonl(path))
    assert replay.ok == live.ok
    assert replay.audited_uops == live.audited_uops
    assert _violation_keys(replay.violations) == \
        _violation_keys(live.violations)


def test_replay_requires_meta():
    with pytest.raises(ValueError):
        audit_from_events([Event(EventKind.COMMIT, 1, 0, {})])


class TestReplayFlagsForgedStreams:
    """Each rule must fire on a handcrafted bad event stream."""

    def _stream(self, exec_data=None, commits=1, instructions=1,
                pools=None):
        meta = Event(EventKind.META, -1, -1, {
            "trace": "forged", "instructions": instructions,
            "core": "t", "mode": "redsoc", "scheduler": "real",
            "ticks_per_cycle": 8,
            "pools": pools or {"alu": 4},
        })
        events = [meta]
        for i, d in enumerate(exec_data or []):
            full = {
                "op": "ADD", "fu": "alu", "issue": 1, "lat": 1,
                "start": 16, "end": 24, "avail": 24, "sync": 24,
                "ex": 8, "ex_actual": 8, "transparent": False,
                "recycled": False, "hold": False, "eager": False,
                "mem": False, "srcs": [],
            }
            full.update(d)
            events.append(Event(EventKind.EXEC_WINDOW,
                                full["issue"] + full["lat"], i, full))
        events.extend(Event(EventKind.COMMIT, 9, i, {"op": "ADD"})
                      for i in range(commits))
        return events

    def _rules(self, events):
        return {v.rule for v in audit_from_events(events).violations}

    def test_clean_forged_stream_passes(self):
        assert self._rules(self._stream([{}])) == set()

    def test_arrival_violation(self):
        # starts at tick 8 but the arrival edge is cycle 2 → tick 16
        bad = {"start": 8, "end": 16}
        assert "arrival" in self._rules(self._stream([bad]))

    def test_dataflow_violation(self):
        bad = {"srcs": [[0, 20]]}  # source usable at 20, start is 16
        assert "dataflow" in self._rules(self._stream([bad]))

    def test_dataflow_never_issued_source(self):
        bad = {"srcs": [[0, None]]}
        result = audit_from_events(self._stream([bad]))
        assert any(v.rule == "dataflow" and "never issued" in v.detail
                   for v in result.violations)

    def test_window_violation(self):
        bad = {"end": 30}  # != start + ex and != start + ex_actual
        assert "window" in self._rules(self._stream([bad]))

    def test_discipline_violation(self):
        bad = {"start": 19, "end": 27, "transparent": False}
        assert "discipline" in self._rules(self._stream([bad]))

    def test_capacity_violation(self):
        crowd = [{} for _ in range(5)]  # 5 ops, 4 alu units, 1 cycle
        rules = self._rules(self._stream(crowd, commits=5,
                                         instructions=5))
        assert "capacity" in rules

    def test_completeness_violation(self):
        rules = self._rules(self._stream([{}], commits=0))
        assert "completeness" in rules

    def test_mem_ops_skip_dataflow_and_window(self):
        bad = {"mem": True, "srcs": [[0, 99]], "end": 30}
        assert self._rules(self._stream([bad])) == set()


def test_violation_events_ride_the_bus(traces):
    """audit_run publishes its verdict on the same sink as the trace."""
    recorder = Recorder()
    live = audit_run(traces["bitcnt"], CORES["medium"], obs=recorder)
    published = recorder.of_kind(EventKind.VIOLATION)
    assert len(published) == len(live.violations)
    # clean run → clean bus; the forged-stream tests above prove the
    # emission path via audit_from_events' shared AuditViolation type
    assert live.ok and published == []
