"""Integration tests: full pipeline simulations on small programs.

These pin down the core behavioural contracts of the reproduction:

* ReDSOC is timing-only — architectural results match the interpreter;
* recycling accelerates dependency chains by the analytically expected
  factors (8/7 for 7-tick chains, ~2x for 3-tick logic chains);
* ReDSOC never slows a workload down beyond noise;
* structural limits (ROB/RS/FU) and penalties behave sanely.
"""


from repro.core import (
    BIG,
    MEDIUM,
    RecycleMode,
    SMALL,
    SchedulerDesign,
    simulate,
)
from repro.isa import Asm, Cond, SimdType, r, v
from repro.pipeline.trace import generate_trace


def loop_program(name, body, iters=300, setup=None):
    a = Asm(name)
    a.mov(r(1), 1)
    a.mov(r(2), iters)
    if setup:
        setup(a)
    a.label("loop")
    body(a)
    a.subs(r(2), r(2), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def logic_chain(a):
    for _ in range(4):
        a.eor(r(1), r(1), 0x5A)


def arith_chain(a):
    for _ in range(4):
        a.add(r(1), r(1), 0x1000000)


def run_pair(program, config=BIG):
    base = simulate(program, config.with_mode(RecycleMode.BASELINE))
    red = simulate(program, config.with_mode(RecycleMode.REDSOC))
    return base, red


class TestBaselineSanity:
    def test_dependent_chain_is_one_per_cycle(self):
        program = loop_program("chain", logic_chain, iters=500)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        # 6 ops/iteration, 4-op serial chain + flag-serial subs: the
        # loop-carried chain limits IPC to ~1.5
        assert 1.2 < base.ipc < 1.8

    def test_independent_ops_reach_machine_width(self):
        def body(a):
            for i in range(4, 10):
                a.mov(r(i), 7)
        program = loop_program("wide", body, iters=300)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        assert base.ipc > 3.5

    def test_small_core_slower_than_big(self):
        def body(a):
            for i in range(4, 10):
                a.eor(r(i), r(2), 3)
        program = loop_program("width-bound", body, iters=300)
        small = simulate(program, SMALL.with_mode(RecycleMode.BASELINE))
        big = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        assert big.ipc > small.ipc

    def test_all_instructions_commit(self):
        program = loop_program("commit", logic_chain, iters=100)
        trace = generate_trace(program)
        base = simulate(trace, MEDIUM.with_mode(RecycleMode.BASELINE))
        assert base.stats.committed == len(trace)


class TestRecyclingSpeedups:
    def test_logic_chain_speedup_near_2x(self):
        program = loop_program("logic", logic_chain, iters=500)
        base, red = run_pair(program)
        speedup = base.cycles / red.cycles
        assert 1.7 < speedup < 2.2

    def test_arith_chain_speedup_near_8_over_7(self):
        program = loop_program("arith", arith_chain, iters=500)
        base, red = run_pair(program)
        speedup = base.cycles / red.cycles
        assert 1.08 < speedup < 1.2

    def test_redsoc_never_slower(self):
        """Across a variety of kernels ReDSOC stays within noise of the
        baseline or better (skewed selection protects conventional
        requests)."""
        bodies = {
            "logic": logic_chain,
            "arith": arith_chain,
            "mixed": lambda a: (a.eor(r(1), r(1), 3),
                                a.add(r(1), r(1), 0x100000),
                                a.ror(r(1), r(1), 5)),
        }
        for name, body in bodies.items():
            program = loop_program(name, body, iters=200)
            base, red = run_pair(program)
            assert red.cycles <= base.cycles * 1.02, name

    def test_recycled_ops_counted(self):
        program = loop_program("logic", logic_chain, iters=200)
        _, red = run_pair(program)
        assert red.stats.recycled_ops > 200
        assert red.stats.eager_issues > 0

    def test_baseline_never_recycles(self):
        program = loop_program("logic", logic_chain, iters=100)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        assert base.stats.recycled_ops == 0
        assert base.stats.eager_issues == 0
        assert base.stats.two_cycle_holds == 0

    def test_long_transparent_sequences_on_arith(self):
        program = loop_program("arith", arith_chain, iters=300)
        _, red = run_pair(program)
        assert red.stats.seq_expected_length > 3.0

    def test_mos_cannot_fuse_arith(self):
        program = loop_program("arith", arith_chain, iters=300)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        mos = simulate(program, BIG.with_mode(RecycleMode.MOS))
        red = simulate(program, BIG.with_mode(RecycleMode.REDSOC))
        assert mos.cycles >= red.cycles
        assert mos.cycles >= base.cycles * 0.98

    def test_mos_fuses_logic_pairs(self):
        program = loop_program("logic", logic_chain, iters=300)
        base = simulate(program, BIG.with_mode(RecycleMode.MOS))
        ref = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        assert ref.cycles / base.cycles > 1.5


class TestThresholdAndAblation:
    def test_zero_threshold_disables_eager_issue(self):
        program = loop_program("logic", logic_chain, iters=200)
        cfg = BIG.variant(slack_threshold=0, adaptive_threshold=False)
        red = simulate(program, cfg)
        assert red.stats.eager_issues == 0

    def test_threshold_monotone_on_chain(self):
        program = loop_program("arith", arith_chain, iters=200)
        cycles = [simulate(program, BIG.variant(
            slack_threshold=t, adaptive_threshold=False)).cycles
                  for t in (0, 4, 7)]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_coarse_precision_recycles_less(self):
        program = loop_program("arith", arith_chain, iters=200)
        fine = simulate(program, BIG.variant(ticks_per_cycle=8))
        coarse = simulate(program, BIG.variant(
            ticks_per_cycle=2, slack_threshold=1,
            adaptive_threshold=False))
        assert coarse.cycles >= fine.cycles

    def test_illustrative_vs_operational_close(self):
        program = loop_program("mixed", lambda a: (
            a.eor(r(3), r(1), r(2)),
            a.add(r(1), r(3), 0x33),
            a.orr(r(1), r(1), r(2))), iters=300)
        op = simulate(program, MEDIUM.variant(
            scheduler=SchedulerDesign.OPERATIONAL))
        il = simulate(program, MEDIUM.variant(
            scheduler=SchedulerDesign.ILLUSTRATIVE))
        assert abs(op.cycles - il.cycles) / il.cycles < 0.05

    def test_unskewed_selection_not_faster(self):
        program = loop_program("logic", logic_chain, iters=300)
        skewed = simulate(program, SMALL)
        unskewed = simulate(program, SMALL.variant(skewed_select=False))

        assert unskewed.cycles >= skewed.cycles * 0.98


class TestMemoryAndBranches:
    def test_load_store_program(self):
        a = Asm("memcpy")
        a.data_words(0x1000, range(64))
        a.mov(r(1), 0x1000)
        a.mov(r(2), 0x2000)
        a.mov(r(3), 64)
        a.label("loop")
        a.ldr(r(4), r(1))
        a.str_(r(4), r(2))
        a.add(r(1), r(1), 4)
        a.add(r(2), r(2), 4)
        a.subs(r(3), r(3), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        program = a.finish()
        base, red = run_pair(program, MEDIUM)
        assert base.stats.committed == red.stats.committed
        assert red.cycles <= base.cycles * 1.02

    def test_store_load_forwarding_faster_than_miss(self):
        a = Asm("fwd")
        a.mov(r(1), 0x8000)
        a.mov(r(2), 123)
        for _ in range(20):
            a.str_(r(2), r(1))
            a.ldr(r(2), r(1))
            a.add(r(1), r(1), 0)  # keep the chain alive
        a.halt()
        res = simulate(a.finish(), MEDIUM.with_mode(RecycleMode.BASELINE))
        # forwarding keeps per-roundtrip cost far below DRAM latency
        assert res.cycles < 20 * MEDIUM.memory.dram_latency

    def test_branchy_code_pays_mispredict_penalty(self):
        # data-dependent branch pattern the gshare cannot learn perfectly
        a = Asm("branchy")
        a.mov(r(1), 12345)
        a.mov(r(2), 400)
        a.mov(r(5), 0x9E3779B9)
        a.mov(r(6), 0x3C6EF372)
        a.label("loop")
        a.mul(r(1), r(1), r(5))      # LCG state update
        a.add(r(1), r(1), r(6))
        a.ands(r(3), r(1), 0x10000)  # a high bit: effectively random
        a.b("skip", cond=Cond.EQ)
        a.add(r(4), r(4), 1)
        a.label("skip")
        a.subs(r(2), r(2), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        res = simulate(a.finish(), MEDIUM.with_mode(RecycleMode.BASELINE))
        assert res.stats.branch_mispredicts > 10
        assert res.stats.branches > 700

    def test_dispatch_stalls_on_tiny_rob(self):
        program = loop_program("logic", logic_chain, iters=200)
        tiny = MEDIUM.variant(rob_size=4, mode=RecycleMode.BASELINE)
        res = simulate(program, tiny)
        assert res.stats.dispatch_stall_cycles > 50


class TestSimdPipeline:
    def test_vmla_chain_runs(self):
        a = Asm("vmla")
        a.data(0x100, bytes(range(16)) * 4)
        a.mov(r(1), 0x100)
        a.mov(r(3), 50)
        a.mov(r(4), 0)
        a.vdup(v(2), r(4), SimdType.I16)
        a.vld1(v(0), r(1))
        a.vld1(v(1), r(1), 16)
        a.label("loop")
        a.vmla(v(2), v(0), v(1), SimdType.I16)
        a.subs(r(3), r(3), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        program = a.finish()
        base, red = run_pair(program, MEDIUM)
        assert base.stats.committed == len(generate_trace(program))
        assert red.cycles <= base.cycles

    def test_simd_type_slack_recycled(self):
        """A dependent chain of narrow (I8) VADDs recycles; I64 cannot."""
        def make(dtype):
            a = Asm(f"vadd-{dtype.name}")
            a.mov(r(3), 300)
            a.mov(r(4), 1)
            a.vdup(v(0), r(4), dtype)
            a.vdup(v(1), r(4), dtype)
            a.label("loop")
            for _ in range(3):
                a.vadd(v(0), v(0), v(1), dtype)
            a.subs(r(3), r(3), 1)
            a.b("loop", cond=Cond.NE)
            a.halt()
            return a.finish()
        narrow = run_pair(make(SimdType.I8), BIG)
        wide = run_pair(make(SimdType.I64), BIG)
        narrow_speedup = narrow[0].cycles / narrow[1].cycles
        wide_speedup = wide[0].cycles / wide[1].cycles
        assert narrow_speedup > wide_speedup
        assert narrow_speedup > 1.2


class TestDeterminism:
    def test_simulation_is_deterministic(self):
        program = loop_program("det", logic_chain, iters=150)
        a = simulate(program, MEDIUM)
        b = simulate(program, MEDIUM)
        assert a.cycles == b.cycles
        assert a.stats.recycled_ops == b.stats.recycled_ops
