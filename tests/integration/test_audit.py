"""Engine validation: the timing-invariant auditor across the matrix.

Runs the instrumented simulator over real kernels, every mode and every
core, and requires zero invariant violations — the strongest check that
slack recycling stays timing non-speculative and resource-legal.
"""

import pytest

from repro.core import CORES, RecycleMode, SchedulerDesign
from repro.core.audit import audit_run
from repro.pipeline.trace import generate_trace
from repro.workloads import MICROBENCHES, bitcount, crc32, make_spec
from repro.workloads.mlkernels import conv3x3


@pytest.fixture(scope="module")
def traces():
    return {
        "bitcnt": generate_trace(bitcount(20)),
        "crc": generate_trace(crc32(120)),
        "spec": generate_trace(make_spec("bzip2", iterations=8)),
        "conv": generate_trace(conv3x3(6)),
    }


@pytest.mark.parametrize("mode", list(RecycleMode))
@pytest.mark.parametrize("core", ["small", "big"])
def test_no_violations_across_modes(traces, mode, core):
    for name, trace in traces.items():
        audit = audit_run(trace, CORES[core].with_mode(mode))
        assert audit.ok, (name, [str(v) for v in audit.violations][:5])
        assert audit.audited_uops > 0


def test_audit_covers_microbenches(traces):
    for name, micro in MICROBENCHES.items():
        trace = generate_trace(micro.build(60))
        audit = audit_run(trace, CORES["medium"])
        assert audit.ok, (name, [str(v) for v in audit.violations][:5])


def test_audit_illustrative_design(traces):
    cfg = CORES["medium"].variant(scheduler=SchedulerDesign.ILLUSTRATIVE)
    audit = audit_run(traces["crc"], cfg)
    assert audit.ok, [str(v) for v in audit.violations][:5]


def test_audit_unskewed_ablation(traces):
    cfg = CORES["medium"].variant(skewed_select=False)
    audit = audit_run(traces["bitcnt"], cfg)
    assert audit.ok, [str(v) for v in audit.violations][:5]


def test_audit_coarse_precision(traces):
    cfg = CORES["medium"].variant(ticks_per_cycle=4, slack_threshold=3)
    audit = audit_run(traces["crc"], cfg)
    assert audit.ok, [str(v) for v in audit.violations][:5]


def test_auditor_catches_planted_violation(traces):
    """Sanity: the auditor is not vacuously green."""
    audit = audit_run(traces["bitcnt"], CORES["medium"])
    assert audit.ok
    # forge a timing record that breaks the dataflow rule
    from repro.core.audit import _RecordingSimulator
    sim = _RecordingSimulator(traces["bitcnt"], CORES["medium"])
    sim.run()
    uop = next(u for u in sim.issued_log if u.sources)
    uop.start_tick = 0
    # re-derive the checks manually on the forged log
    src = uop.sources[0]
    from repro.core.scheduler import consumer_avail_tick
    assert uop.start_tick < consumer_avail_tick(src, uop)
