"""CLI tests via subprocess: fuzz, replay, shrink, report.

Mirrors ``tests/campaign/test_cli.py``: every verb is exercised through
``python -m repro.verify`` in a temp directory, asserting exit codes and
the on-disk artifact layout under ``.redsoc-verify/``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _verify(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.verify"] + args,
        cwd=str(cwd), env=env, capture_output=True, text=True,
        timeout=600)


def test_fuzz_clean_session_is_deterministic(tmp_path):
    args = ["fuzz", "--budget", "20", "--seed", "0", "--quiet"]
    proc = _verify(args, tmp_path)
    assert proc.returncode == 0, proc.stderr

    session_path = tmp_path / ".redsoc-verify" / "session.json"
    assert session_path.is_file()
    first = session_path.read_bytes()
    session = json.loads(first)
    assert session["programs_run"] == 20
    assert session["findings"] == []
    assert session["coverage"]["programs"] == 20
    assert session["coverage"]["dynamic_instructions"] > 0

    # byte-identical on re-run: no timestamps, no ambient randomness
    proc = _verify(args, tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert session_path.read_bytes() == first


def test_fuzz_reports_coverage_table(tmp_path):
    proc = _verify(["fuzz", "--budget", "5", "--seed", "1"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "opcode coverage" in proc.stdout
    assert "no divergence" in proc.stdout


def test_self_check_catches_and_shrinks_injected_defect(tmp_path):
    proc = _verify(["fuzz", "--budget", "40", "--seed", "0",
                    "--self-check", "--max-failures", "2",
                    "--out", ".sc", "--quiet"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "self-check ok" in proc.stdout

    failures = sorted((tmp_path / ".sc" / "failures").iterdir())
    assert failures
    for directory in failures:
        assert (directory / "spec.json").is_file()
        assert (directory / "shrunk.json").is_file()
        assert (directory / "program.json").is_file()
        assert (directory / "report.json").is_file()
        assert (directory / "events.jsonl").stat().st_size > 0
        report = json.loads((directory / "report.json").read_text())
        assert report["defect"] == "eor-lsb"
        assert report["shrunk"]["instructions"] <= 10
        assert not report["verdict"]["ok"]

    session = json.loads(
        (tmp_path / ".sc" / "session.json").read_text())
    assert session["defect"] == "eor-lsb"
    assert session["findings"]

    # the shrunk artifact replays: diverges with the defect, clean
    # without it
    name = failures[0].name
    proc = _verify(["replay", name, "--out", ".sc",
                    "--defect", "eor-lsb"], tmp_path)
    assert proc.returncode == 1, proc.stderr
    assert "arch." in proc.stdout

    proc = _verify(["replay", name, "--out", ".sc"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "no divergence" in proc.stdout

    # replay also accepts an explicit spec file path
    spec_file = failures[0] / "shrunk.json"
    proc = _verify(["replay", str(spec_file), "--defect", "eor-lsb"],
                   tmp_path)
    assert proc.returncode == 1, proc.stderr

    # shrink verb re-minimises a stored failure
    proc = _verify(["shrink", name, "--out", ".sc",
                    "--defect", "eor-lsb"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "shrunk to" in proc.stdout

    # ... and refuses when the program doesn't fail
    proc = _verify(["shrink", name, "--out", ".sc"], tmp_path)
    assert proc.returncode == 2
    assert "does not fail" in proc.stderr

    # report summarises the stored session
    proc = _verify(["report", "--out", ".sc"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "injected defect 'eor-lsb'" in proc.stdout
    assert name in proc.stdout


def test_self_check_fails_when_defect_not_caught(tmp_path):
    # store-drop can't trigger in one store-free program: the self-check
    # must then report failure (exit 1), proving it isn't a rubber stamp
    proc = _verify(["fuzz", "--budget", "1", "--seed", "0",
                    "--self-check", "store-drop", "--quiet"], tmp_path)
    if proc.returncode == 0:  # seed 0 program 0 happens to store
        assert "self-check ok" in proc.stdout
    else:
        assert proc.returncode == 1
        assert "self-check FAILED" in proc.stderr


def test_report_without_session_is_usage_error(tmp_path):
    proc = _verify(["report"], tmp_path)
    assert proc.returncode == 2
    assert "no session" in proc.stderr


def test_replay_unknown_target_is_usage_error(tmp_path):
    proc = _verify(["replay", "no-such-failure"], tmp_path)
    assert proc.returncode == 2


def test_bad_subcommand_is_usage_error(tmp_path):
    proc = _verify(["frobnicate"], tmp_path)
    assert proc.returncode == 2


def test_fuzz_with_campaign_cache(tmp_path):
    proc = _verify(["fuzz", "--budget", "5", "--seed", "2",
                    "--cache-dir", ".cache", "--quiet"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert list((tmp_path / ".cache").glob("*.json"))
