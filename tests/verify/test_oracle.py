"""Tests for the differential oracle and the defect-injection seam."""

import pytest

from repro.core.config import RecycleMode, SMALL
from repro.isa.interpreter import run_program
from repro.pipeline.trace import generate_trace
from repro.verify.defects import DEFECTS, inject_defect
from repro.verify.generator import OpSpec, ProgramGenerator, ProgramSpec, \
    materialize
from repro.verify.oracle import check_program


class TestCleanPrograms:
    def test_clean_program_has_no_divergence(self):
        verdict = check_program(ProgramGenerator(0).program(0))
        assert verdict.ok
        assert verdict.instructions > 0
        for mode in RecycleMode:
            assert verdict.cycles[mode.value] > 0

    def test_metamorphic_adds_variant_cycles(self):
        verdict = check_program(ProgramGenerator(0).program(1))
        assert "redsoc-noegpw" in verdict.cycles
        assert "redsoc-coarse-ci" in verdict.cycles

    def test_metamorphic_can_be_skipped(self):
        verdict = check_program(ProgramGenerator(0).program(1),
                                metamorphic=False)
        assert verdict.ok
        assert "redsoc-noegpw" not in verdict.cycles

    def test_mode_subset(self):
        verdict = check_program(ProgramGenerator(0).program(2),
                                modes=[RecycleMode.BASELINE],
                                metamorphic=False)
        assert verdict.ok
        assert list(verdict.cycles) == [RecycleMode.BASELINE.value]


class TestDefectInjection:
    @pytest.mark.parametrize("name", sorted(DEFECTS))
    def test_every_defect_is_caught(self, name):
        # each defect must surface as a golden-vs-trace divergence on at
        # least one of the first generated programs
        gen = ProgramGenerator(0)
        for i in range(40):
            with inject_defect(name):
                verdict = check_program(gen.program(i),
                                        metamorphic=False)
            if not verdict.ok:
                checks = {d.check for d in verdict.divergences}
                assert any(c.startswith("arch.") for c in checks)
                return
        pytest.fail(f"defect {name!r} went undetected in 40 programs")

    def test_injection_only_affects_trace_executor(self):
        spec = ProgramSpec(name="seam", seed="", body=[
            OpSpec(op="EOR", rd="r1", rn="r2", imm=0xFF)])
        program = materialize(spec)
        clean = run_program(program).arch_state()
        with inject_defect("eor-lsb"):
            # golden model keeps its own semantics binding
            assert run_program(program).arch_state() == clean
            assert generate_trace(program).arch_state() != clean

    def test_injection_is_scoped(self):
        program = materialize(ProgramSpec(name="scope", seed="", body=[
            OpSpec(op="EOR", rd="r1", rn="r2", imm=0xFF)]))
        clean = generate_trace(program).arch_state()
        with inject_defect("eor-lsb"):
            assert generate_trace(program).arch_state() != clean
        assert generate_trace(program).arch_state() == clean

    def test_unknown_defect_rejected(self):
        with pytest.raises(KeyError):
            with inject_defect("no-such-defect"):
                pass


class TestDivergenceReporting:
    def test_divergence_detail_names_registers(self):
        program = materialize(ProgramSpec(name="detail", seed="", body=[
            OpSpec(op="EOR", rd="r3", rn="r4", imm=1)]))
        with inject_defect("eor-lsb"):
            verdict = check_program(program, metamorphic=False)
        assert not verdict.ok
        [reg_div] = [d for d in verdict.divergences
                     if d.check == "arch.regs"]
        assert "i3" in reg_div.detail
        assert "golden=" in reg_div.detail

    def test_payload_shape(self):
        verdict = check_program(ProgramGenerator(0).program(3),
                                metamorphic=False)
        payload = verdict.to_payload()
        assert payload["ok"] is True
        assert payload["divergences"] == []
        assert set(payload["cycles"]) == {m.value for m in RecycleMode}


class TestEagerIssueAblation:
    def test_eager_issue_off_still_commits_everything(self):
        from repro.core.audit import audit_run
        program = ProgramGenerator(0).program(4)
        trace = generate_trace(program)
        config = SMALL.with_mode(RecycleMode.REDSOC).variant(
            eager_issue=False)
        audit = audit_run(trace, config)
        assert audit.ok
        assert audit.result.stats.committed == len(trace.entries)
