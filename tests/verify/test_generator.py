"""Tests for the seeded program generator and coverage accounting."""

import pytest

from repro.isa.interpreter import run_program
from repro.isa.opcodes import Opcode
from repro.pipeline.trace import generate_trace
from repro.verify.generator import (
    LoopSpec,
    OpSpec,
    OpcodeCoverage,
    ProgramGenerator,
    ProgramSpec,
    materialize,
    reachable_opcodes,
)


class TestDeterminism:
    def test_same_seed_same_specs(self):
        a = ProgramGenerator(42)
        b = ProgramGenerator(42)
        for i in range(10):
            assert a.spec(i).to_dict() == b.spec(i).to_dict()

    def test_different_seeds_differ(self):
        assert (ProgramGenerator(0).spec(0).to_dict()
                != ProgramGenerator(1).spec(0).to_dict())

    def test_index_isolation(self):
        # spec(i) must not depend on whether spec(i-1) was generated
        gen = ProgramGenerator(7)
        direct = gen.spec(5).to_dict()
        fresh = ProgramGenerator(7).spec(5).to_dict()
        assert direct == fresh


class TestPrograms:
    def test_generated_programs_terminate_and_agree_with_golden(self):
        gen = ProgramGenerator(0)
        for i in range(25):
            program = gen.program(i)
            golden = run_program(program)
            trace = generate_trace(program, max_instructions=500_000)
            assert golden.halted
            assert golden.arch_state() == trace.arch_state()
            assert golden.instructions == len(trace.entries)

    def test_every_opcode_reachable(self):
        assert set(reachable_opcodes()) == set(Opcode)

    def test_full_coverage_within_200_programs(self):
        gen = ProgramGenerator(0)
        coverage = OpcodeCoverage()
        for i in range(200):
            program = gen.program(i)
            coverage.add_program(
                program, generate_trace(program,
                                        max_instructions=500_000))
        assert coverage.missing_static() == []
        assert coverage.missing_dynamic() == []
        assert coverage.static_fraction == 1.0


class TestMaterialize:
    def test_single_op_spec_is_minimal(self):
        spec = ProgramSpec(name="tiny", seed="t", body=[
            OpSpec(op="EOR", rd="r1", rn="r2", imm=3)])
        program = materialize(spec)
        assert len(program.instructions) <= 10

    def test_roundtrip_through_dict(self):
        gen = ProgramGenerator(3)
        for i in range(5):
            spec = gen.spec(i)
            clone = ProgramSpec.from_dict(spec.to_dict())
            assert ([repr(x) for x in materialize(spec).instructions]
                    == [repr(x) for x in materialize(clone).instructions])

    def test_nested_counted_loops_rejected(self):
        spec = ProgramSpec(name="bad", seed="b", body=[
            LoopSpec(iters=2, body=[
                LoopSpec(iters=2, body=[OpSpec(op="NOP")])])])
        with pytest.raises(ValueError, match="nested inner loops"):
            materialize(spec)

    def test_outer_loop_multiplies_dynamic_count(self):
        body = [OpSpec(op="ADD", rd="r0", rn="r0", imm=1)]
        once = ProgramSpec(name="x1", seed="", iters=1, body=list(body))
        four = ProgramSpec(name="x4", seed="", iters=4, body=list(body))
        n1 = len(generate_trace(materialize(once)).entries)
        n4 = len(generate_trace(materialize(four)).entries)
        assert n4 > n1
        final = generate_trace(materialize(four)).final_regs
        assert final["int"][0] == 4


class TestCoverageAccounting:
    def test_payload_and_render(self):
        coverage = OpcodeCoverage()
        program = ProgramGenerator(0).program(0)
        trace = generate_trace(program)
        coverage.add_program(program, trace)
        payload = coverage.to_payload()
        assert payload["programs"] == 1
        assert payload["dynamic_instructions"] == len(trace.entries)
        assert sum(payload["static"].values()) == len(
            program.instructions)
        assert "opcode coverage" in coverage.render()

    def test_missing_tracked(self):
        coverage = OpcodeCoverage()
        assert len(coverage.missing_static()) == len(list(Opcode))
        assert coverage.static_fraction == 0.0
