"""Tests for the metamorphic timing relations."""

import pytest

from repro.core.config import SMALL
from repro.pipeline.trace import generate_trace
from repro.verify.generator import ProgramGenerator
from repro.verify.metamorphic import (
    COARSE_CI_LABEL,
    CYCLE_SLOP,
    CYCLE_TOLERANCE,
    EGPW_OFF_LABEL,
    check_timing_relations,
    within_bound,
)


def _refuse_to_simulate(trace, config):  # pragma: no cover - guard
    raise AssertionError("relation check should not have simulated")


def full_cycles(**overrides):
    """A fully pre-populated cycles dict (no simulation needed)."""
    cycles = {"baseline": 100, "redsoc": 90, "mos": 95,
              EGPW_OFF_LABEL: 95, COARSE_CI_LABEL: 92}
    cycles.update(overrides)
    return cycles


class TestBound:
    def test_within_bound_semantics(self):
        assert within_bound(100, 100)
        assert within_bound(int(100 * CYCLE_TOLERANCE) + CYCLE_SLOP, 100)
        assert not within_bound(200, 100)

    def test_slop_covers_tiny_programs(self):
        # a 3-cycle run may be "worse" by a few absolute cycles
        assert within_bound(CYCLE_SLOP, 0)


class TestRelationsOnRealTraces:
    @pytest.mark.parametrize("index", [0, 5, 9])
    def test_generated_programs_satisfy_all_relations(self, index):
        trace = generate_trace(ProgramGenerator(0).program(index))
        cycles = {}
        assert check_timing_relations(trace, SMALL, cycles) == []
        # the variant runs were recorded for the report
        assert EGPW_OFF_LABEL in cycles
        assert COARSE_CI_LABEL in cycles


class TestRelationViolations:
    def test_recycling_slowdown_flagged(self):
        trace = generate_trace(ProgramGenerator(0).program(0))
        cycles = full_cycles(redsoc=500, **{EGPW_OFF_LABEL: 600})
        out = check_timing_relations(trace, SMALL, cycles,
                                     simulate_fn=_refuse_to_simulate)
        assert any(d.check == "meta.recycling" for d in out)

    def test_egpw_speedup_from_disabling_flagged(self):
        trace = generate_trace(ProgramGenerator(0).program(0))
        # ablated run much faster than the full design: impossible
        cycles = full_cycles(**{EGPW_OFF_LABEL: 40})
        out = check_timing_relations(trace, SMALL, cycles,
                                     simulate_fn=_refuse_to_simulate)
        assert [d.check for d in out] == ["meta.egpw"]

    def test_coarse_precision_win_flagged(self):
        trace = generate_trace(ProgramGenerator(0).program(0))
        cycles = full_cycles(**{COARSE_CI_LABEL: 40})
        out = check_timing_relations(trace, SMALL, cycles,
                                     simulate_fn=_refuse_to_simulate)
        assert [d.check for d in out] == ["meta.precision"]

    def test_all_good_is_silent(self):
        trace = generate_trace(ProgramGenerator(0).program(0))
        out = check_timing_relations(trace, SMALL, full_cycles(),
                                     simulate_fn=_refuse_to_simulate)
        assert out == []
