"""Tests for the delta-debugging shrinker."""

import pytest

from repro.isa.opcodes import Opcode
from repro.verify.defects import inject_defect
from repro.verify.generator import (
    LoopSpec,
    OpSpec,
    ProgramGenerator,
    ProgramSpec,
    SkipSpec,
    materialize,
)
from repro.verify.oracle import check_program
from repro.verify.shrink import shrink


def contains_op(spec: ProgramSpec, name: str) -> bool:
    return any(instr.op is Opcode[name]
               for instr in materialize(spec).instructions)


class TestStructuralShrinking:
    def test_reduces_to_single_relevant_item(self):
        gen = ProgramGenerator(11)
        spec = gen.spec(0)
        spec.body.append(OpSpec(op="EOR", rd="r0", rn="r1", imm=7))
        result = shrink(spec, lambda s: contains_op(s, "EOR"))
        assert contains_op(result.spec, "EOR")
        assert result.instructions <= 10
        assert result.evaluations > 0

    def test_unwraps_control_structure(self):
        spec = ProgramSpec(name="wrapped", seed="", iters=4, body=[
            SkipSpec(cond="al", link=True, body=[
                OpSpec(op="EOR", rd="r0", rn="r1", imm=7)]),
            LoopSpec(iters=3, body=[OpSpec(op="ADD", rd="r2",
                                           rn="r2", imm=1)]),
        ])
        result = shrink(spec, lambda s: contains_op(s, "EOR"))
        # the loop is gone, the skip wrapper unwrapped, the outer trip
        # count collapsed: just init + eor + halt remain
        assert [type(item) for item in result.spec.body] == [OpSpec]
        assert result.spec.iters == 1
        assert not contains_op(result.spec, "BL")

    def test_simplify_drops_decorations(self):
        spec = ProgramSpec(
            name="decorated", seed="",
            init_regs={"r0": 7, "r1": 9},
            body=[OpSpec(op="EOR", rd="r0", rn="r1", rm="r2",
                         shift="lsl", shift_amt=4, s=True)])
        result = shrink(spec, lambda s: contains_op(s, "EOR"))
        [op] = result.spec.body
        assert op.s is False
        assert op.shift is None
        assert result.spec.init_regs == {}

    def test_non_failing_spec_rejected(self):
        spec = ProgramGenerator(0).spec(0)
        with pytest.raises(ValueError, match="does not satisfy"):
            shrink(spec, lambda s: False)

    def test_predicate_exceptions_treated_as_not_failing(self):
        spec = ProgramSpec(name="raises", seed="", body=[
            OpSpec(op="EOR", rd="r0", rn="r1", imm=1),
            OpSpec(op="ADD", rd="r2", rn="r3", imm=1)])

        def picky(candidate: ProgramSpec) -> bool:
            if not contains_op(candidate, "EOR"):
                raise RuntimeError("boom")
            return True

        result = shrink(spec, picky)
        assert contains_op(result.spec, "EOR")

    def test_respects_evaluation_budget(self):
        spec = ProgramGenerator(0).spec(0)
        result = shrink(spec, lambda s: True, max_evaluations=5)
        assert result.evaluations <= 5


class TestEndToEndReproducers:
    def test_injected_defect_shrinks_to_tiny_reproducer(self):
        def fails(spec: ProgramSpec) -> bool:
            with inject_defect("eor-lsb"):
                return not check_program(materialize(spec),
                                         metamorphic=False).ok

        gen = ProgramGenerator(0)
        for i in range(40):
            spec = gen.spec(i)
            if not fails(spec):
                continue
            original = len(materialize(spec).instructions)
            result = shrink(spec, fails)
            assert result.instructions is not None
            assert result.instructions <= 10
            assert result.instructions < original
            assert fails(result.spec)  # reproducer still reproduces
            return
        pytest.fail("no failing program found to shrink")
