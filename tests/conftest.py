"""Shared pytest configuration: hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci``: derandomized (fixed seed, so a
red build is reproducible locally), an explicit example budget, and no
per-example deadline — the simulator's first example can be orders of
magnitude slower than the rest (cold LUTs), which trips wall-clock
deadlines on shared runners.  Local runs keep hypothesis' random
exploration.  Per-test ``@settings`` still override individual fields.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=25,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
