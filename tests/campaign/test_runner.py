"""Runner: job enumeration, parallel == serial, warm-cache behaviour."""

import pytest

from repro.campaign.jobs import (
    CampaignJob,
    SMOKE_BENCHMARKS,
    enumerate_jobs,
    job_config,
    smoke_jobs,
)
from repro.campaign.runner import run_campaign
from repro.core import CORES, RecycleMode
from repro.workloads.suites import SUITES

#: two benchmarks x one core x two modes at tiny scale: fast enough
#: for tier-1, wide enough to exercise speedup joins and sharding
TINY_JOBS = [
    CampaignJob(suite, bench, "small", mode, scale=3)
    for suite, bench in (("ml", "pool0"), ("mibench", "bitcnt"))
    for mode in ("baseline", "redsoc")
]


def _comparable(records):
    return [(r.suite, r.bench, r.core, r.mode, r.key, r.cycles,
             r.committed, r.ipc, r.speedup) for r in records]


class TestEnumeration:
    def test_full_grid_size(self):
        total_benches = sum(len(table) for table in SUITES.values())
        jobs = enumerate_jobs()
        assert len(jobs) == total_benches * len(CORES) * len(RecycleMode)

    def test_filters_compose(self):
        jobs = enumerate_jobs(suites=["ml"], benchmarks=["pool0"],
                              cores=["small"], modes=["redsoc"])
        assert jobs == [CampaignJob("ml", "pool0", "small", "redsoc")]

    def test_unknown_names_fail_loudly(self):
        with pytest.raises(ValueError):
            enumerate_jobs(suites=["specint"])
        with pytest.raises(ValueError):
            enumerate_jobs(modes=["turbo"])
        with pytest.raises(ValueError):
            enumerate_jobs(suites=["ml"], benchmarks=["bitcnt"])

    def test_smoke_is_one_bench_per_suite_on_small(self):
        jobs = smoke_jobs()
        assert {j.suite for j in jobs} == set(SMOKE_BENCHMARKS)
        assert all(j.core == "small" for j in jobs)
        assert all(j.bench == SMOKE_BENCHMARKS[j.suite] for j in jobs)
        assert len(jobs) == len(SMOKE_BENCHMARKS) * len(RecycleMode)

    def test_job_config_applies_mode(self):
        config = job_config(CampaignJob("ml", "pool0", "big", "mos"))
        assert config.name == "big"
        assert config.mode is RecycleMode.MOS


class TestRunCampaign:
    def test_parallel_matches_serial(self, tmp_path):
        serial = run_campaign(TINY_JOBS, workers=1,
                              cache_dir=tmp_path / "serial")
        parallel = run_campaign(TINY_JOBS, workers=2,
                                cache_dir=tmp_path / "parallel")
        assert serial.workers == 1 and parallel.workers == 2
        assert _comparable(serial.records) == \
            _comparable(parallel.records)
        assert serial.misses == len(TINY_JOBS)
        assert parallel.misses == len(TINY_JOBS)

    def test_second_run_is_all_hits(self, tmp_path):
        cold = run_campaign(TINY_JOBS, workers=1, cache_dir=tmp_path)
        warm = run_campaign(TINY_JOBS, workers=1, cache_dir=tmp_path)
        assert cold.hit_rate == 0.0
        assert warm.hit_rate == 1.0
        assert _comparable(cold.records) == _comparable(warm.records)

    def test_force_resimulates(self, tmp_path):
        run_campaign(TINY_JOBS[:2], workers=1, cache_dir=tmp_path)
        forced = run_campaign(TINY_JOBS[:2], workers=1,
                              cache_dir=tmp_path, force=True)
        assert forced.hit_rate == 0.0

    def test_speedup_joined_against_baseline(self, tmp_path):
        result = run_campaign(TINY_JOBS, workers=1, cache_dir=tmp_path)
        by_mode = {(r.suite, r.bench, r.mode): r for r in result.records}
        for (suite, bench, mode), rec in by_mode.items():
            if mode == "baseline":
                assert rec.speedup is None
            else:
                base = by_mode[(suite, bench, "baseline")]
                assert rec.speedup == pytest.approx(
                    base.cycles / rec.cycles - 1.0)

    def test_no_baseline_no_speedup(self, tmp_path):
        jobs = [CampaignJob("ml", "pool0", "small", "redsoc", scale=3)]
        result = run_campaign(jobs, workers=1, cache_dir=tmp_path)
        assert result.records[0].speedup is None

    def test_payload_shape(self, tmp_path):
        result = run_campaign(TINY_JOBS[:2], workers=1,
                              cache_dir=tmp_path)
        payload = result.to_payload()
        assert payload["jobs"] == 2
        assert payload["cache"] == {"hits": 0, "misses": 2,
                                    "hit_rate": 0.0}
        assert {r["suite"] for r in payload["results"]} == {"ml"}
        assert "model_version" in payload
