"""In-process tests for campaign telemetry: spans, workers, profiles."""

import pstats

from repro.campaign.cli import parse_jobspec
from repro.campaign.jobs import CampaignJob
from repro.campaign.runner import job_slug, run_campaign

import pytest

JOBS = [
    CampaignJob("ml", "pool0", "small", "baseline", scale=3),
    CampaignJob("ml", "pool0", "small", "redsoc", scale=3),
]


class TestJobSpans:
    def test_cold_jobs_record_all_spans(self, tmp_path):
        result = run_campaign(JOBS, cache_dir=tmp_path / "cache")
        for record in result.records:
            assert not record.cache_hit
            assert set(record.spans) == {"cache_probe", "trace_gen",
                                         "simulate"}
            assert all(s >= 0.0 for s in record.spans.values())
            assert record.spans["simulate"] <= record.wall_time_s
            assert record.worker.startswith("pid-")

    def test_warm_jobs_skip_simulate_span(self, tmp_path):
        cache = tmp_path / "cache"
        run_campaign(JOBS, cache_dir=cache)
        rerun = run_campaign(JOBS, cache_dir=cache)
        for record in rerun.records:
            assert record.cache_hit
            assert "simulate" not in record.spans
            assert "cache_probe" in record.spans

    def test_sim_throughput_on_misses_only(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_campaign(JOBS, cache_dir=cache)
        for record in cold.records:
            assert record.sim_cycles_per_sec is not None
            assert record.sim_cycles_per_sec == pytest.approx(
                record.cycles / record.spans["simulate"], rel=1e-2)
        warm = run_campaign(JOBS, cache_dir=cache)
        for record in warm.records:
            assert record.sim_cycles_per_sec is None

    def test_span_totals_aggregate(self, tmp_path):
        result = run_campaign(JOBS, cache_dir=tmp_path / "cache")
        totals = result.span_totals()
        assert totals["simulate"] == pytest.approx(
            sum(r.spans["simulate"] for r in result.records), abs=1e-3)
        payload = result.to_payload()
        assert payload["schema"] == 4
        assert payload["telemetry"]["span_totals_s"] == totals
        assert payload["telemetry"]["workers_used"] == \
            sorted({r.worker for r in result.records})


class TestProfileHook:
    def test_profile_dir_gets_one_pstats_per_miss(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        result = run_campaign(JOBS, cache_dir=tmp_path / "cache",
                              profile_dir=profile_dir)
        for record in result.records:
            path = profile_dir / f"{job_slug(record.label)}.pstats"
            assert path.is_file()
            assert pstats.Stats(str(path)).total_calls > 0

    def test_cache_hits_are_not_profiled(self, tmp_path):
        cache = tmp_path / "cache"
        run_campaign(JOBS, cache_dir=cache)
        profile_dir = tmp_path / "profiles"
        rerun = run_campaign(JOBS, cache_dir=cache,
                             profile_dir=profile_dir)
        assert all(r.cache_hit for r in rerun.records)
        assert not profile_dir.exists()


class TestJobspec:
    def test_round_trips_record_labels(self):
        for job in JOBS:
            parsed = parse_jobspec(job.label, scale=3)
            assert parsed == job

    def test_rejects_malformed_spec(self):
        for bad in ("pool0", "ml/pool0", "ml/pool0@small",
                    "ml pool0@small:redsoc"):
            with pytest.raises(ValueError, match="bad job spec"):
                parse_jobspec(bad)

    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_jobspec("ml/pool0@small:warp9")
        with pytest.raises(ValueError, match="unknown"):
            parse_jobspec("nope/pool0@small:redsoc")

    def test_bench_from_wrong_suite_fails(self):
        with pytest.raises(ValueError):
            parse_jobspec("spec/pool0@small:redsoc")
