"""CLI smoke tests via subprocess: run, report, clean."""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _campaign(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.campaign"] + args,
        cwd=str(cwd), env=env, capture_output=True, text=True,
        timeout=300)


RUN_ARGS = ["run", "--suites", "ml", "--benchmarks", "pool0",
            "--cores", "small", "--modes", "baseline", "redsoc",
            "--scale", "3"]


def test_run_report_clean_cycle(tmp_path):
    proc = _campaign(RUN_ARGS + ["--jobs", "2"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "Campaign results" in proc.stdout

    out = tmp_path / "BENCH_campaign.json"
    assert out.is_file()
    payload = json.loads(out.read_text())
    assert payload["jobs"] == 2
    assert payload["cache"]["misses"] == 2
    modes = {r["mode"]: r for r in payload["results"]}
    assert set(modes) == {"baseline", "redsoc"}
    assert modes["redsoc"]["speedup"] is not None
    assert (tmp_path / ".redsoc-cache").is_dir()

    # second invocation: pure cache hits
    proc = _campaign(RUN_ARGS + ["--jobs", "1"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    rerun = json.loads(out.read_text())
    assert rerun["cache"] == {"hits": 2, "misses": 0, "hit_rate": 1.0}
    assert [r["cycles"] for r in rerun["results"]] == \
        [r["cycles"] for r in payload["results"]]

    proc = _campaign(["report"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "Campaign results" in proc.stdout
    assert "100.0%" in proc.stdout  # hit rate of the rerun

    proc = _campaign(["clean"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "removed 2" in proc.stdout
    assert not list((tmp_path / ".redsoc-cache").glob("*.json"))


def test_run_rejects_unknown_selection(tmp_path):
    proc = _campaign(["run", "--suites", "nope"], tmp_path)
    assert proc.returncode == 2
    assert "unknown suite" in proc.stderr


def test_report_without_campaign_json(tmp_path):
    proc = _campaign(["report"], tmp_path)
    assert proc.returncode == 2
    assert "no campaign JSON" in proc.stderr
