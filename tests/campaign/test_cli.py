"""CLI smoke tests via subprocess: run, report, clean, trace, profile."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _campaign(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.campaign"] + args,
        cwd=str(cwd), env=env, capture_output=True, text=True,
        timeout=300)


RUN_ARGS = ["run", "--suites", "ml", "--benchmarks", "pool0",
            "--cores", "small", "--modes", "baseline", "redsoc",
            "--scale", "3"]


def test_run_report_clean_cycle(tmp_path):
    proc = _campaign(RUN_ARGS + ["--jobs", "2"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "Campaign results" in proc.stdout

    out = tmp_path / "BENCH_campaign.json"
    assert out.is_file()
    payload = json.loads(out.read_text())
    assert payload["jobs"] == 2
    assert payload["cache"]["misses"] == 2
    modes = {r["mode"]: r for r in payload["results"]}
    assert set(modes) == {"baseline", "redsoc"}
    assert modes["redsoc"]["speedup"] is not None
    assert (tmp_path / ".redsoc-cache").is_dir()

    # second invocation: pure cache hits
    proc = _campaign(RUN_ARGS + ["--jobs", "1"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    rerun = json.loads(out.read_text())
    assert rerun["cache"] == {"hits": 2, "misses": 0, "hit_rate": 1.0}
    assert [r["cycles"] for r in rerun["results"]] == \
        [r["cycles"] for r in payload["results"]]

    proc = _campaign(["report"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "Campaign results" in proc.stdout
    assert "100.0%" in proc.stdout  # hit rate of the rerun

    proc = _campaign(["clean"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "removed 2" in proc.stdout
    assert not list((tmp_path / ".redsoc-cache").glob("*.json"))


def test_report_and_clean_with_explicit_cache_dir(tmp_path):
    cache = tmp_path / "my-cache"
    proc = _campaign(RUN_ARGS + ["--jobs", "1", "--cache-dir",
                                 str(cache), "-q"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert cache.is_dir() and list(cache.glob("*.json"))

    proc = _campaign(["report"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "Campaign results" in proc.stdout

    proc = _campaign(["clean", "--cache-dir", str(cache)], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "removed 2" in proc.stdout
    assert not list(cache.glob("*.json"))


def test_run_payload_carries_telemetry(tmp_path):
    proc = _campaign(RUN_ARGS + ["--jobs", "1", "-q"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(
        (tmp_path / "BENCH_campaign.json").read_text())
    assert payload["telemetry"]["workers_used"]
    assert "simulate" in payload["telemetry"]["span_totals_s"]
    for record in payload["results"]:
        assert record["worker"].startswith("pid-")
        assert "cache_probe" in record["spans"]
        assert "simulate" in record["spans"]  # cold cache → simulated


def test_trace_subcommand_writes_artifacts(tmp_path):
    proc = _campaign(["trace", "ml/pool0@small:redsoc", "--scale", "3",
                      "--out-dir", "artifacts"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "perfetto trace" in proc.stdout

    slug = "ml_pool0_small_redsoc"
    out = tmp_path / "artifacts"
    doc = json.loads((out / f"{slug}.trace.json").read_text())
    from repro.obs.export import validate_chrome_trace
    assert validate_chrome_trace(doc) == []

    events = [json.loads(line) for line in
              (out / f"{slug}.events.jsonl").read_text().splitlines()]
    assert events[0]["kind"] == "meta"
    assert any(e["kind"] == "exec_window" for e in events)

    metrics = [json.loads(line) for line in
               (out / f"{slug}.metrics.jsonl").read_text().splitlines()]
    assert {m["metric"] for m in metrics} >= {"core.cycles",
                                              "slack.per_op"}


def test_trace_rejects_bad_jobspec(tmp_path):
    proc = _campaign(["trace", "pool0-small"], tmp_path)
    assert proc.returncode == 2
    assert "bad job spec" in proc.stderr


def test_profile_subcommand_prints_hot_functions(tmp_path):
    proc = _campaign(["profile", "ml/pool0@small:baseline",
                      "--scale", "3", "--top", "5",
                      "--output", "prof/job.pstats"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "cumulative" in proc.stdout
    assert "cycles" in proc.stdout

    import pstats
    stats = pstats.Stats(str(tmp_path / "prof" / "job.pstats"))
    assert stats.total_calls > 0


def test_run_rejects_unknown_selection(tmp_path):
    proc = _campaign(["run", "--suites", "nope"], tmp_path)
    assert proc.returncode == 2
    assert "unknown suite" in proc.stderr


def test_report_without_campaign_json(tmp_path):
    proc = _campaign(["report"], tmp_path)
    assert proc.returncode == 2
    assert "no campaign JSON" in proc.stderr


@pytest.mark.parametrize("content", [
    "",                      # empty file (torn write before any bytes)
    "{not json",             # truncated/corrupt JSON
    "{}",                    # valid JSON, wrong document shape
    '{"results": "nope"}',   # right key, wrong type
])
def test_report_rejects_unreadable_json(tmp_path, content):
    (tmp_path / "BENCH_campaign.json").write_text(content)
    proc = _campaign(["report"], tmp_path)
    assert proc.returncode == 2
    assert proc.stderr.startswith("error:")
    assert "Traceback" not in proc.stderr
    assert len(proc.stderr.strip().splitlines()) == 1


PREDICT_ARGS = ["predict", "--suites", "ml", "--benchmarks", "pool0",
                "--cores", "small", "--modes", "baseline", "redsoc",
                "--scale", "3"]


def test_predict_subcommand_attaches_errors(tmp_path):
    proc = _campaign(PREDICT_ARGS + ["--jobs", "1"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "predict:" in proc.stdout and "MAPE" in proc.stdout
    assert "pred err" in proc.stdout

    payload = json.loads(
        (tmp_path / "BENCH_campaign.json").read_text())
    assert payload["schema"] == 4
    assert payload["predict"]["jobs"] == 2
    assert payload["predict"]["mape_pct"] >= 0.0
    for rec in payload["results"]:
        assert rec["predicted_cycles"] is not None
        assert rec["predict_error"] is not None
        assert rec["predict_latency_us"] >= 0

    # a plain run must NOT carry a predict block (schema stays clean)
    proc = _campaign(RUN_ARGS + ["--jobs", "1", "-q"], tmp_path)
    assert proc.returncode == 0, proc.stderr
    rerun = json.loads((tmp_path / "BENCH_campaign.json").read_text())
    assert "predict" not in rerun
    assert rerun["results"][0]["predict_error"] is None


def test_predict_gates_fail_loudly(tmp_path):
    proc = _campaign(PREDICT_ARGS + ["--jobs", "1", "-q",
                                     "--max-abs-err", "0.0001"],
                     tmp_path)
    assert proc.returncode == 1
    assert "FAIL" in proc.stderr


def test_predict_refits_calibration(tmp_path):
    proc = _campaign(PREDICT_ARGS + ["--jobs", "1", "-q",
                                     "--fit-calibration", "cal.json"],
                     tmp_path)
    assert proc.returncode == 0, proc.stderr
    refit = json.loads((tmp_path / "cal.json").read_text())
    assert refit["schema"] == 1
    assert refit["fits"]
