"""Report rendering stays backward-compatible with old BENCH files.

``BENCH_campaign.json`` documents written before the prediction fields
existed (schema 2: no telemetry, no spans; schema 3: telemetry but no
``predict`` block) must keep rendering — no ``KeyError``, no phantom
"pred err" column — because users re-report archived artefacts.
"""

import shutil
from pathlib import Path

import pytest

from repro.campaign.report import load_campaign_json, render_summary

DATA = Path(__file__).parent / "data"
OLD_FIXTURES = ["bench_campaign_schema2.json",
                "bench_campaign_schema3.json"]


@pytest.mark.parametrize("fixture", OLD_FIXTURES)
class TestOldSchemaRendering:
    def test_renders_without_error(self, fixture):
        payload = load_campaign_json(DATA / fixture)
        summary = render_summary(payload)
        assert "Campaign results" in summary
        assert "jobs" in summary

    def test_no_predict_column_for_old_documents(self, fixture):
        summary = render_summary(load_campaign_json(DATA / fixture))
        assert "pred err" not in summary
        assert "predict:" not in summary

    def test_report_subcommand_exits_zero(self, fixture, tmp_path):
        from tests.campaign.test_cli import _campaign
        shutil.copy(DATA / fixture, tmp_path / "BENCH_campaign.json")
        proc = _campaign(["report"], tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "Campaign results" in proc.stdout


def test_schema3_rows_render_speedup_and_cache():
    payload = load_campaign_json(DATA / "bench_campaign_schema3.json")
    summary = render_summary(payload)
    assert "21.6%" in summary       # the mos speedup column
    assert "hit" in summary and "miss" in summary


def test_predict_block_renders_when_present():
    payload = load_campaign_json(DATA / "bench_campaign_schema3.json")
    payload["predict"] = {"jobs": 2, "mape_pct": 1.83,
                          "max_abs_pct": 13.5,
                          "worst": "mibench/crc@small:mos"}
    for rec in payload["results"]:
        rec["predict_error"] = -1.5
        rec["predicted_cycles"] = rec["cycles"] * 0.985
    summary = render_summary(payload)
    assert "pred err" in summary
    assert "predict: MAPE 1.83%" in summary
