"""Cache keys: stability, invalidation, result round-trips."""

from dataclasses import asdict, replace

import pytest

from repro.campaign.cache import (
    ResultCache,
    cached_simulate,
    config_fingerprint,
    payload_to_result,
    result_key,
    result_to_payload,
    trace_fingerprint,
    trace_index_key,
)
from repro.core import CORES, RecycleMode, simulate
from repro.pipeline.trace import generate_trace
from repro.workloads.suites import SUITES


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(SUITES["ml"]["pool0"](scale=3))


@pytest.fixture(scope="module")
def config():
    return CORES["small"].with_mode(RecycleMode.REDSOC)


class TestKeyStability:
    def test_same_inputs_same_key(self, tiny_trace, config):
        assert result_key(tiny_trace, config) == \
            result_key(tiny_trace, config)

    def test_regenerated_trace_same_key(self, tiny_trace, config):
        other = generate_trace(SUITES["ml"]["pool0"](scale=3))
        assert result_key(other, config) == \
            result_key(tiny_trace, config)

    def test_fingerprint_memoised_on_trace(self, tiny_trace):
        assert trace_fingerprint(tiny_trace) is \
            trace_fingerprint(tiny_trace)


class TestKeyInvalidation:
    def test_mode_changes_key(self, tiny_trace, config):
        other = config.with_mode(RecycleMode.BASELINE)
        assert result_key(tiny_trace, other) != \
            result_key(tiny_trace, config)

    def test_ablation_knob_changes_key(self, tiny_trace, config):
        other = config.variant(slack_threshold=3)
        assert result_key(tiny_trace, other) != \
            result_key(tiny_trace, config)

    def test_core_changes_key(self, tiny_trace, config):
        other = CORES["big"].with_mode(RecycleMode.REDSOC)
        assert result_key(tiny_trace, other) != \
            result_key(tiny_trace, config)

    def test_workload_changes_key(self, tiny_trace, config):
        other = generate_trace(SUITES["ml"]["pool0"](scale=4))
        assert result_key(other, config) != \
            result_key(tiny_trace, config)

    def test_model_salt_changes_key(self, tiny_trace, config):
        assert result_key(tiny_trace, config, salt="vNext") != \
            result_key(tiny_trace, config)

    def test_config_fingerprint_covers_nested_dataclasses(self, config):
        slow_mem = config.variant(
            memory=config.memory.__class__(l1_latency=9))
        assert config_fingerprint(slow_mem) != config_fingerprint(config)

    def test_trace_index_key_dimensions(self):
        base = trace_index_key("ml", "pool0")
        assert trace_index_key("ml", "pool0") == base
        assert trace_index_key("ml", "pool1") != base
        assert trace_index_key("ml", "pool0", scale=7) != base
        assert trace_index_key("ml", "pool0", salt="vNext") != base


class TestRoundTrip:
    def test_payload_round_trip(self, tiny_trace, config):
        result = simulate(tiny_trace, config)
        restored = payload_to_result(result_to_payload(result), config)
        assert restored.name == result.name
        assert restored.cycles == result.cycles
        assert asdict(restored.stats) == asdict(result.stats)

    def test_cached_simulate_hits_second_time(self, tiny_trace, config,
                                              tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = cached_simulate(tiny_trace, config, cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert len(cache) == 1
        second = cached_simulate(tiny_trace, config, cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert asdict(second.stats) == asdict(first.stats)

    def test_force_reruns_but_rewrites(self, tiny_trace, config,
                                       tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cached_simulate(tiny_trace, config, cache)
        forced = cached_simulate(tiny_trace, config, cache, force=True)
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 1
        assert forced.cycles > 0

    def test_corrupt_entry_is_a_miss(self, tiny_trace, config,
                                     tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cached_simulate(tiny_trace, config, cache)
        key = result_key(tiny_trace, config)
        cache.path(key).write_text("not json{")
        result = cached_simulate(tiny_trace, config, cache)
        assert result.cycles > 0
        assert cache.misses == 2  # corrupt read counted as miss


class TestCorruptionTolerance:
    """Torn/garbage entries: miss + count + unlink, never a crash."""

    def _warm(self, tiny_trace, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cached_simulate(tiny_trace, config, cache)
        return cache, result_key(tiny_trace, config)

    @pytest.mark.parametrize("garbage", [
        b"not json{",                 # torn mid-write
        b'{"schema": 1, "name": ',    # truncated JSON
        b"\x00\xff\xfe binary",       # not even text
        b"[1, 2, 3]",                 # valid JSON, wrong shape
    ])
    def test_garbage_entry_is_counted_and_removed(
            self, tiny_trace, config, tmp_path, garbage):
        cache, key = self._warm(tiny_trace, config, tmp_path)
        cache.path(key).write_bytes(garbage)
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not cache.path(key).exists()   # unlinked for rewrite
        # and the next simulate round-trips a fresh entry
        result = cached_simulate(tiny_trace, config, cache)
        assert result.cycles > 0
        assert cache.get(key) is not None

    def test_schema_mismatch_is_a_plain_miss(self, tiny_trace, config,
                                             tmp_path):
        cache, key = self._warm(tiny_trace, config, tmp_path)
        cache.path(key).write_text('{"schema": 999}')
        assert cache.get(key) is None
        # an old-but-well-formed entry is not corruption
        assert cache.corrupt == 0
        assert cache.path(key).exists()

    def test_missing_entry_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 32) is None
        assert (cache.misses, cache.corrupt) == (1, 0)

    def test_corrupt_trace_index_entry(self, tiny_trace, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tkey = trace_index_key("ml", "pool0", 3)
        cache.put_trace_fingerprint(tkey, trace_fingerprint(tiny_trace))
        cache.trace_index_path(tkey).write_text("{torn")
        assert cache.get_trace_fingerprint(tkey) is None
        assert cache.corrupt == 1
        assert not cache.trace_index_path(tkey).exists()
        # index entry with the wrong shape is also corrupt
        cache.trace_index_path(tkey).parent.mkdir(exist_ok=True)
        cache.trace_index_path(tkey).write_text('{"fingerprint": 42}')
        assert cache.get_trace_fingerprint(tkey) is None
        assert cache.corrupt == 2

    def test_corruption_logged_via_obs_metrics(self, tiny_trace, config,
                                               tmp_path):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path / "cache", metrics=metrics)
        cached_simulate(tiny_trace, config, cache)
        key = result_key(tiny_trace, config)
        cache.path(key).write_text("}{")
        assert cache.get(key) is None
        assert metrics.counter("cache.corrupt_entries").value == 1

    def test_clear(self, tiny_trace, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cached_simulate(tiny_trace, config, cache)
        cache.put_trace_fingerprint(trace_index_key("ml", "pool0"),
                                    trace_fingerprint(tiny_trace))
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get_trace_fingerprint(
            trace_index_key("ml", "pool0")) is None


class TestEngineInvalidation:
    """Switching ``engine=`` can never serve a stale cached result."""

    def test_engine_changes_key(self, tiny_trace, config):
        compiled = replace(config, engine="compiled")
        reference = replace(config, engine="reference")
        keys = {result_key(tiny_trace, c)
                for c in (config, compiled, reference)}
        assert len(keys) == 3

    def test_lowering_digest_changes_key(self, tiny_trace, config,
                                         monkeypatch):
        import repro.campaign.cache as cache_mod

        before = result_key(tiny_trace, config)
        monkeypatch.setattr(cache_mod, "lowering_digest",
                            lambda: "feedfacefeedface")
        assert result_key(tiny_trace, config) != before

    def test_no_cross_engine_serving(self, tiny_trace, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fast = cached_simulate(tiny_trace,
                               replace(config, engine="fast"), cache)
        compiled = cached_simulate(tiny_trace,
                                   replace(config, engine="compiled"),
                                   cache)
        # the second engine must be a miss, not a stale hit ...
        assert (cache.hits, cache.misses) == (0, 2)
        assert len(cache) == 2
        # ... and (being bit-identical backends) agree on the physics
        assert asdict(compiled.stats) == asdict(fast.stats)
