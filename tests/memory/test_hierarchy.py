"""Unit tests for the two-level cache hierarchy timing model."""

from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.obs import EventKind, Recorder


def make(**kw):
    return MemoryHierarchy(MemoryConfig(**kw))


def total_latency(config=MemoryConfig()):
    return config.l1_latency + config.l2_latency + config.dram_latency


class TestLoadLatencies:
    def test_cold_load_goes_to_dram(self):
        mem = make()
        assert mem.load_latency(0x1000) == total_latency()

    def test_second_load_same_line_hits_l1(self):
        mem = make()
        mem.load_latency(0x1000)
        assert mem.load_latency(0x1020) == mem.config.l1_latency

    def test_next_line_prefetch_turns_miss_into_l2_hit(self):
        mem = make()
        mem.load_latency(0)  # misses everywhere; next-line fills L2
        assert (mem.load_latency(64)
                == mem.config.l1_latency + mem.config.l2_latency)

    def test_prefetch_disabled_pays_full_dram(self):
        mem = make(prefetch=False)
        mem.load_latency(0)
        assert mem.load_latency(64) == total_latency()

    def test_stride_prefetch_hides_latency(self):
        mem = make()
        latencies = [mem.load_latency(k * 256, pc=12) for k in range(8)]
        # after two confirmations (access 3) the stride prefetcher runs
        # 4 steps ahead into L1: the tail of the stream hits L1
        assert latencies[0] == total_latency()
        assert all(lat == mem.config.l1_latency for lat in latencies[4:])

    def test_custom_latency_parameters_respected(self):
        config = MemoryConfig(l1_latency=3, l2_latency=20,
                              dram_latency=200, prefetch=False)
        mem = MemoryHierarchy(config)
        assert mem.load_latency(0) == 223
        assert mem.load_latency(0) == 3


class TestStoresAndCounters:
    def test_store_write_allocates(self):
        mem = make(prefetch=False)
        assert mem.store_latency(0x2000) == total_latency()
        assert mem.store_latency(0x2004) == mem.config.l1_latency

    def test_counters(self):
        mem = make(prefetch=False)
        mem.load_latency(0)
        mem.load_latency(0)
        mem.load_latency(64)
        mem.store_latency(0)
        assert mem.loads == 3
        assert mem.stores == 1
        assert mem.l1_load_misses == 2

    def test_is_l1_hit_probe_is_non_destructive(self):
        mem = make(prefetch=False)
        assert not mem.is_l1_hit(0x3000)
        # probing must not allocate
        assert mem.load_latency(0x3000) == total_latency()
        assert mem.is_l1_hit(0x3000)

    def test_stats_surface_hits_and_misses(self):
        mem = make(prefetch=False)
        mem.load_latency(0)
        mem.load_latency(0)
        assert mem.l1_stats.misses == 1
        assert mem.l1_stats.hits == 1


class TestObservability:
    def test_load_emits_mem_access_event(self):
        mem = make(prefetch=False)
        recorder = Recorder()
        mem.obs = recorder
        mem.now = 7
        mem.load_latency(0x40, pc=3)
        [event] = recorder.of_kind(EventKind.MEM_ACCESS)
        assert event.cycle == 7
        assert event.data["access"] == "load"
        assert event.data["addr"] == 0x40
        assert event.data["pc"] == 3
        assert event.data["level"] == "dram"
        assert event.data["latency"] == total_latency()

    def test_event_levels_track_hit_level(self):
        mem = make(prefetch=False)
        recorder = Recorder()
        mem.obs = recorder
        mem.now = 0
        mem.load_latency(0x40)
        mem.load_latency(0x40)
        mem.store_latency(0x40)
        levels = [e.data["level"]
                  for e in recorder.of_kind(EventKind.MEM_ACCESS)]
        assert levels == ["dram", "l1", "l1"]

    def test_untraced_hierarchy_emits_nothing(self):
        mem = make()
        mem.load_latency(0)  # obs is None: must simply not raise
        assert mem.obs is None
