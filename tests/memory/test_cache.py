"""Unit + property tests for the cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache, MemoryConfig, MemoryHierarchy
from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher


class TestCacheBasics:
    def make(self, **kw):
        defaults = dict(size_bytes=1024, assoc=2, line_bytes=64)
        defaults.update(kw)
        return Cache("T", **defaults)

    def test_geometry(self):
        cache = self.make()
        assert cache.num_sets == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", size_bytes=1000, assoc=3, line_bytes=64)

    def test_cold_miss_then_hit(self):
        cache = self.make()
        hit, _ = cache.access(0x100)
        assert not hit
        hit, _ = cache.access(0x100)
        assert hit

    def test_same_line_different_offset_hits(self):
        cache = self.make()
        cache.access(0x100)
        hit, _ = cache.access(0x13F)  # same 64B line
        assert hit

    def test_lru_eviction(self):
        cache = self.make()  # 2-way, 8 sets, line 64
        set_stride = 8 * 64  # addresses mapping to set 0
        cache.access(0 * set_stride)
        cache.access(1 * set_stride)
        cache.access(0 * set_stride)           # refresh line 0 -> MRU
        cache.access(2 * set_stride)           # evicts line 1 (LRU)
        hit, _ = cache.access(0 * set_stride)
        assert hit
        hit, _ = cache.access(1 * set_stride)
        assert not hit

    def test_dirty_eviction_reports_writeback(self):
        cache = self.make(assoc=1)
        set_stride = cache.num_sets * 64
        cache.access(0, is_write=True)
        _, writeback = cache.access(set_stride)
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = self.make(assoc=1)
        set_stride = cache.num_sets * 64
        cache.access(0)
        _, writeback = cache.access(set_stride)
        assert writeback is None

    def test_prefetch_fill_counts_separately(self):
        cache = self.make()
        cache.fill_prefetch(0x200)
        assert cache.stats.prefetch_fills == 1
        hit, _ = cache.access(0x200)
        assert hit
        assert cache.stats.prefetch_hits == 1

    def test_probe_does_not_disturb(self):
        cache = self.make()
        assert not cache.probe(0x300)
        assert cache.stats.accesses == 0


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 16),
                          st.booleans()), max_size=300))
@settings(max_examples=50)
def test_cache_invariants_hold_under_any_trace(trace):
    cache = Cache("P", size_bytes=2048, assoc=4, line_bytes=64)
    for addr, is_write in trace:
        cache.access(addr, is_write=is_write)
        # a line just accessed must be resident
        assert cache.probe(addr)
    cache.invariant_check()
    assert cache.resident_lines() <= cache.num_sets * cache.assoc


@given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                max_size=200))
@settings(max_examples=50)
def test_rereferencing_resident_lines_always_hits(addrs):
    cache = Cache("P", size_bytes=64 * 1024, assoc=8, line_bytes=64)
    unique_lines = {a // 64 for a in addrs}
    if len(unique_lines) > 8:  # keep within one round of capacity
        return
    for a in addrs:
        cache.access(a)
    for a in addrs:
        hit, _ = cache.access(a)
        assert hit


class TestStridePrefetcher:
    def test_detects_constant_stride(self):
        pf = StridePrefetcher(degree=2, threshold=2)
        pc = 0x40
        out = []
        for i in range(5):
            out = pf.observe(pc, 0x1000 + i * 64)
        assert out == [0x1000 + 5 * 64, 0x1000 + 6 * 64]

    def test_random_pattern_stays_quiet(self):
        pf = StridePrefetcher(threshold=2)
        for addr in (0, 9999, 31, 477, 12):
            assert pf.observe(0, addr) == []

    def test_stride_change_resets(self):
        pf = StridePrefetcher(threshold=2)
        for i in range(5):
            pf.observe(0, i * 64)
        assert pf.observe(0, 10_000) == []
        assert pf.observe(0, 10_128) == []  # new stride, conf 0

    def test_distinct_pcs_tracked_separately(self):
        pf = StridePrefetcher(threshold=1)
        for i in range(3):
            pf.observe(1, i * 64)
            pf.observe(2, i * 128)
        assert pf.observe(1, 3 * 64) != pf.observe(2, 3 * 128)


class TestNextLinePrefetcher:
    def test_next_line(self):
        pf = NextLinePrefetcher(line_bytes=64)
        assert pf.observe_miss(0x1010) == 0x1040


class TestHierarchy:
    def test_latency_ladder(self):
        mem = MemoryHierarchy(MemoryConfig(prefetch=False))
        cfg = mem.config
        cold = mem.load_latency(0x5000)
        assert cold == cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
        warm = mem.load_latency(0x5000)
        assert warm == cfg.l1_latency

    def test_l2_hit_middle_latency(self):
        cfg = MemoryConfig(l1_size=1024, l1_assoc=1, prefetch=False)
        mem = MemoryHierarchy(cfg)
        mem.load_latency(0x0)
        # evict from tiny L1 but stay in L2
        for i in range(1, 64):
            mem.load_latency(i * 1024)
        latency = mem.load_latency(0x0)
        assert latency == cfg.l1_latency + cfg.l2_latency

    def test_stride_stream_gets_prefetched(self):
        mem = MemoryHierarchy(MemoryConfig())
        misses_with_pf = 0
        for i in range(64):
            if mem.load_latency(i * 64, pc=7) > mem.config.l1_latency:
                misses_with_pf += 1
        mem2 = MemoryHierarchy(MemoryConfig(prefetch=False))
        misses_without = 0
        for i in range(64):
            if mem2.load_latency(i * 64, pc=7) > mem2.config.l1_latency:
                misses_without += 1
        assert misses_with_pf < misses_without

    def test_store_allocates(self):
        mem = MemoryHierarchy(MemoryConfig(prefetch=False))
        mem.store_latency(0x9000)
        assert mem.load_latency(0x9000) == mem.config.l1_latency

    def test_load_miss_accounting(self):
        mem = MemoryHierarchy(MemoryConfig(prefetch=False))
        mem.load_latency(0x100)
        mem.load_latency(0x100)
        assert mem.loads == 2
        assert mem.l1_load_misses == 1
