"""Unit tests for the stride and next-line prefetchers."""

from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher


class TestStridePrefetcher:
    def train(self, pf, pc, addrs):
        """Feed accesses; return the last observe() result."""
        out = []
        for addr in addrs:
            out = pf.observe(pc, addr)
        return out

    def test_no_prefetch_before_confirmation(self):
        pf = StridePrefetcher()
        # 1st access trains last_addr, 2nd sets the stride, 3rd is the
        # first confirmation — none may issue under threshold=2
        assert self.train(pf, pc=4, addrs=[0, 256, 512]) == []
        assert pf.issued == 0

    def test_issues_after_two_confirmations(self):
        pf = StridePrefetcher(degree=4)
        out = self.train(pf, pc=4, addrs=[0, 256, 512, 768])
        assert out == [768 + 256 * k for k in range(1, 5)]
        assert pf.issued == 4

    def test_small_stride_clamped_to_line(self):
        # an 8-byte stream must prefetch whole lines ahead, not within
        # the line being fetched
        pf = StridePrefetcher(degree=2, line_bytes=64)
        out = self.train(pf, pc=0, addrs=[0, 8, 16, 24])
        assert out == [24 + 64, 24 + 128]

    def test_negative_stride_clamped(self):
        pf = StridePrefetcher(degree=2, line_bytes=64)
        out = self.train(pf, pc=0, addrs=[1024, 1016, 1008, 1000])
        assert out == [1000 - 64, 1000 - 128]

    def test_large_stride_not_clamped(self):
        pf = StridePrefetcher(degree=1, line_bytes=64)
        out = self.train(pf, pc=0, addrs=[0, 4096, 8192, 12288])
        assert out == [12288 + 4096]

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher()
        self.train(pf, pc=0, addrs=[0, 256, 512, 768])
        assert pf.issued == 4
        # break the pattern, then re-establish a new stride: two fresh
        # confirmations are needed again before anything issues
        issued_before = pf.issued
        assert pf.observe(0, 10_000) == []
        assert pf.observe(0, 10_004) == []
        assert pf.observe(0, 10_008) == []
        assert pf.issued == issued_before
        assert pf.observe(0, 10_012) != []

    def test_zero_stride_never_issues(self):
        pf = StridePrefetcher()
        assert self.train(pf, pc=0, addrs=[64] * 10) == []
        assert pf.issued == 0

    def test_pc_aliasing_shares_table_entry(self):
        # pcs congruent mod `entries` train the same entry, so an
        # interleaved second stream at an aliasing pc destroys the
        # first stream's confidence (this is the modelled capacity limit)
        pf = StridePrefetcher(entries=16)
        stream_a = [0, 256, 512, 768, 1024]
        stream_b = [9000, 9004, 9008, 9012, 9016]
        for a, b in zip(stream_a, stream_b):
            out_a = pf.observe(0, a)
            out_b = pf.observe(16, b)
        assert out_a == [] and out_b == []
        assert pf.issued == 0

    def test_distinct_pcs_train_independently(self):
        pf = StridePrefetcher(entries=16)
        for a, b in zip([0, 256, 512, 768], [9000, 9004, 9008, 9012]):
            out_a = pf.observe(0, a)
            out_b = pf.observe(1, b)
        assert out_a != [] and out_b != []


class TestNextLinePrefetcher:
    def test_next_line_address(self):
        pf = NextLinePrefetcher(line_bytes=64)
        assert pf.observe_miss(0) == 64
        assert pf.observe_miss(130) == 192
        # already line-aligned: still the *next* line
        assert pf.observe_miss(256) == 320
        assert pf.issued == 3
