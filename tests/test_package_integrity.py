"""Source-package integrity: every import-tree dir must be a package."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    path = REPO_ROOT / "tools" / "check_packages.py"
    spec = importlib.util.spec_from_file_location("check_packages", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_packages"] = module
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepo:
    def test_no_broken_packages(self):
        assert checker.check(REPO_ROOT) == []


class TestDetection:
    def test_missing_init_is_flagged(self, tmp_path):
        pkg = tmp_path / "src" / "thing" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "thing" / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        problems = checker.check(tmp_path)
        assert any("missing __init__.py" in p for p in problems)
        assert any("thing/sub" in p.replace("\\", "/")
                   for p in problems)

    def test_ghost_package_is_flagged(self, tmp_path):
        # the fleet/ failure mode: a dir whose only content was
        # __pycache__ (sources deleted, directory left behind)
        ghost = tmp_path / "src" / "ghost"
        (ghost / "__pycache__").mkdir(parents=True)
        (ghost / "__pycache__" / "mod.cpython-312.pyc").write_bytes(b"")
        problems = checker.check(tmp_path)
        assert any("ghost" in p and "stray" in p for p in problems)

    def test_clean_tree_passes(self, tmp_path):
        pkg = tmp_path / "src" / "ok"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        data = tmp_path / "src" / "ok" / "data"
        data.mkdir()
        (data / "table.json").write_text("{}")
        assert checker.check(tmp_path) == []
