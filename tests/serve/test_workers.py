"""Worker execution + crash supervision.

``execute_payload`` runs in-process here (it is a plain function); the
:class:`WorkerPool` tests exercise the real ``ProcessPoolExecutor``
including a SIGKILL mid-request, which is the unit-level half of the
chaos story (tests/serve/test_chaos.py drives the same path over HTTP).
"""

import asyncio
import os
import signal

import pytest

from repro.isa.serialize import program_to_dict
from repro.isa.textasm import assemble_text
from repro.serve.workers import WorkerCrash, WorkerPool, execute_payload

SPIN = "mov r1, #5\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


def inline_payload(mode="baseline", iters=5):
    src = SPIN.replace("#5", f"#{iters}")
    program = assemble_text(src, name="spin")
    return {"program": program_to_dict(program),
            "core": "small", "mode": mode}


def run(coro):
    return asyncio.run(coro)


class TestExecutePayload:
    def test_named_simulate(self, tmp_path):
        result = execute_payload("simulate",
                                 {"suite": "ml", "bench": "pool0",
                                  "core": "small", "mode": "baseline",
                                  "scale": 3},
                                 str(tmp_path))
        assert result["cycles"] > 0
        assert result["workload"] == "ml/pool0"
        assert result["cache_hit"] is False

    def test_inline_simulate_warms_the_cache(self, tmp_path):
        cold = execute_payload("simulate", inline_payload(),
                               str(tmp_path))
        warm = execute_payload("simulate", inline_payload(),
                               str(tmp_path))
        assert cold["cache_hit"] is False
        assert warm["cache_hit"] is True
        assert warm["cycles"] == cold["cycles"]
        assert warm["workload"] == "spin"

    def test_inline_modes_cached_separately(self, tmp_path):
        base = execute_payload("simulate", inline_payload("baseline"),
                               str(tmp_path))
        red = execute_payload("simulate", inline_payload("redsoc"),
                              str(tmp_path))
        assert base["key"] != red["key"]

    def test_verify_batch(self, tmp_path):
        result = execute_payload("verify",
                                 {"seed": 3, "budget": 3,
                                  "metamorphic": False},
                                 str(tmp_path))
        assert result["ok"] is True
        assert result["programs_run"] == 3

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError, match="unknown work kind"):
            execute_payload("transmogrify", {}, str(tmp_path))


class TestWorkerPool:
    def test_runs_work_and_reports_pids(self, tmp_path):
        async def main():
            pool = WorkerPool(1, str(tmp_path))
            try:
                pids = await pool.warm_up()
                assert len(pids) == 1
                result = await pool.run("simulate", inline_payload())
                assert result["cycles"] > 0
            finally:
                pool.shutdown()
        run(main())

    def test_deadline_enforced(self, tmp_path):
        async def main():
            pool = WorkerPool(1, str(tmp_path))
            try:
                await pool.warm_up()
                with pytest.raises(asyncio.TimeoutError):
                    await pool.run("sleep", {"seconds": 5.0},
                                   deadline_s=0.1)
            finally:
                pool.shutdown()
        run(main())

    def test_sigkill_mid_request_respawns_and_retries(self, tmp_path):
        async def main():
            pool = WorkerPool(1, str(tmp_path), backoff_base_s=0.01)
            try:
                await pool.warm_up()
                victim = pool.worker_pids()[0]
                task = asyncio.ensure_future(
                    pool.run("sleep", {"seconds": 1.5}))
                await asyncio.sleep(0.2)     # in flight on the victim
                os.kill(victim, signal.SIGKILL)
                result = await asyncio.wait_for(task, timeout=30)
                # retried on a fresh worker, not the dead one
                assert result["worker"] != f"pid-{victim}"
                assert pool.metrics.counter(
                    "serve.worker_crashes").value >= 1
                assert pool.metrics.counter(
                    "serve.worker_respawns").value >= 1
                assert pool.worker_pids() and \
                    victim not in pool.worker_pids()
            finally:
                pool.shutdown()
        run(main())

    def test_retry_budget_exhausts_to_worker_crash(self, tmp_path):
        async def main():
            pool = WorkerPool(1, str(tmp_path), max_retries=0,
                              backoff_base_s=0.01)
            try:
                await pool.warm_up()
                victim = pool.worker_pids()[0]
                task = asyncio.ensure_future(
                    pool.run("sleep", {"seconds": 3.0}))
                await asyncio.sleep(0.2)
                os.kill(victim, signal.SIGKILL)
                with pytest.raises(WorkerCrash):
                    await asyncio.wait_for(task, timeout=30)
            finally:
                pool.shutdown()
        run(main())
