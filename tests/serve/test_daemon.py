"""End-to-end daemon tests: real sockets, real worker processes.

One module-scoped daemon (2 workers, private cache dir) serves every
test here; each test drives it through the public clients only.
"""

import json

import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeError

SPIN = "mov r1, #60\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    config = ServeConfig(port=0, workers=2,
                         cache_dir=tmp_path_factory.mktemp("cache"),
                         debug=True)
    d = ServeDaemon(config)
    port = d.start_background()
    yield d, port
    d.stop_background()


@pytest.fixture()
def client(daemon):
    _, port = daemon
    with ServeClient(port=port, timeout_s=60) as c:
        yield c


class TestSimulate:
    def test_named_workload(self, client):
        reply = client.simulate(suite="ml", bench="pool0",
                                core="small", mode="baseline", scale=3)
        assert reply["api"] == 1 and reply["kind"] == "simulate"
        assert reply["result"]["cycles"] > 0
        assert reply["result"]["workload"] == "ml/pool0"
        assert reply["served"] in ("worker", "coalesced")

    def test_repeat_is_served_from_lru(self, client):
        body = dict(suite="ml", bench="pool0", core="small",
                    mode="redsoc", scale=3)
        first = client.simulate(**body)
        again = client.simulate(**body)
        assert again["served"] == "lru"
        assert again["result"]["cycles"] == first["result"]["cycles"]

    def test_inline_asm(self, client):
        reply = client.simulate(asm=SPIN, core="small", mode="baseline")
        assert reply["result"]["workload"] == "spin" or \
            reply["result"]["workload"] == "inline"
        assert reply["result"]["cycles"] > 0

    def test_inline_asm_exact_cycles_across_requests(self, client):
        # bit-identical replies: the cache fast path returns the same
        # cycle count the cold path computed
        a = client.simulate(asm=SPIN, core="small", mode="redsoc")
        b = client.simulate(asm=SPIN, core="small", mode="redsoc")
        assert a["result"]["cycles"] == b["result"]["cycles"]

    def test_bad_asm_is_400_not_500(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(asm="frobnicate r1\nhalt",
                            core="small", mode="baseline")
        assert err.value.status == 400
        assert err.value.code == "bad-asm"

    def test_unknown_suite_is_400(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(suite="nope", bench="x",
                            core="small", mode="baseline")
        assert err.value.status == 400


class TestSweep:
    def test_grid_with_speedups(self, client):
        reply = client.sweep(suite="ml", bench="pool0", scale=3,
                             cores=["small"],
                             modes=["baseline", "redsoc"])
        jobs = reply["result"]["jobs"]
        assert [(j["core"], j["mode"]) for j in jobs] == \
            [("small", "baseline"), ("small", "redsoc")]
        assert "speedup" in jobs[1]

    def test_vector_sweep_rides_batch_lanes(self, client):
        # a vector-pinned sweep goes to ONE worker as batched lanes;
        # the reply shape and cycle counts must match the fanned-out
        # path exactly (engines and batching are performance choices)
        reply = client.sweep(suite="ml", bench="pool0", scale=3,
                             cores=["small"],
                             modes=["baseline", "redsoc"],
                             engine="vector")
        jobs = reply["result"]["jobs"]
        assert [(j["core"], j["mode"]) for j in jobs] == \
            [("small", "baseline"), ("small", "redsoc")]
        assert "speedup" in jobs[1]
        plain = client.sweep(suite="ml", bench="pool0", scale=3,
                             cores=["small"],
                             modes=["baseline", "redsoc"])
        assert [j["cycles"] for j in jobs] == \
            [j["cycles"] for j in plain["result"]["jobs"]]


class TestVerify:
    def test_seeded_batch(self, client):
        reply = client.verify(seed=11, budget=3, metamorphic=False)
        assert reply["result"]["ok"] is True
        assert reply["result"]["programs_run"] == 3

    def test_deterministic_across_requests(self, client):
        a = client.verify(seed=12, budget=3, metamorphic=False)
        b = client.verify(seed=12, budget=3, metamorphic=False)
        assert a["result"]["coverage"] == b["result"]["coverage"]


class TestOps:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_status_shape(self, client):
        status = client.status()
        assert status["status"] == "ok"
        assert status["queue"]["max_depth"] == 256
        assert len(status["workers"]["pids"]) == 2
        assert status["uptime_s"] >= 0

    def test_metrics_exposition(self, client):
        client.simulate(suite="ml", bench="pool0", core="small",
                        mode="baseline", scale=3)
        text = client.metrics_text()
        assert "# TYPE redsoc_serve_requests_total counter" in text
        assert "redsoc_serve_admitted" in text
        assert "# TYPE redsoc_serve_latency_us histogram" in text
        assert 'redsoc_serve_latency_us_bucket{le="+Inf"}' in text
        assert "redsoc_serve_latency_us_sum" in text
        assert "redsoc_serve_latency_us_count" in text
        assert "redsoc_serve_uptime_seconds" in text

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.request("GET", "/nope")
        assert err.value.status == 404

    def test_get_on_post_endpoint_is_405(self, client):
        with pytest.raises(ServeError) as err:
            client.request("GET", "/v1/simulate")
        assert err.value.status == 405

    def test_non_json_body_is_400(self, client):
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", client.port)
        conn.request("POST", "/v1/simulate", body=b"not json",
                     headers={"content-type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"] == "bad-request"


class TestDeadlines:
    def test_tiny_deadline_times_out_cleanly(self, daemon):
        _, port = daemon
        with ServeClient(port=port, max_retries=0) as c:
            with pytest.raises(ServeError) as err:
                c.simulate(asm=SPIN.replace("#60", "#20000"),
                           core="small", mode="mos",
                           deadline_ms=50)
            assert err.value.status == 504
            assert err.value.code == "deadline-exceeded"
