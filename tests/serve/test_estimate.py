"""The ``estimate`` request class: fast analytic predictions.

Protocol-level validation (typed 400s for malformed bodies) plus
end-to-end daemon behaviour: a cold estimate runs on the worker pool,
a warm one answers inline on the event loop, and repeats come from the
response LRU — all carrying ``predicted=true`` and an ``error_bound``.
"""

import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeError
from repro.serve.protocol import RequestError, parse_request

SPIN = "mov r1, #40\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


def err(kind, body):
    with pytest.raises(RequestError) as exc_info:
        parse_request(kind, body)
    return exc_info.value


class TestEstimateProtocol:
    NAMED = {"suite": "ml", "bench": "pool0",
             "core": "small", "mode": "redsoc"}

    def test_named_workload_parses(self):
        spec = parse_request("estimate", dict(self.NAMED))
        assert spec.kind == "estimate"
        [payload] = spec.worker_payloads()
        assert payload["suite"] == "ml" and payload["mode"] == "redsoc"
        assert payload["confidence"] == 0.9

    def test_confidence_threads_through(self):
        spec = parse_request("estimate",
                             dict(self.NAMED, confidence=0.5))
        [payload] = spec.worker_payloads()
        assert payload["confidence"] == 0.5

    @pytest.mark.parametrize("confidence",
                             [0.0, 1.0, -0.2, 1.5, "high", True, None])
    def test_malformed_confidence_is_400(self, confidence):
        exc = err("estimate", dict(self.NAMED, confidence=confidence))
        assert (exc.status, exc.code) == (400, "bad-confidence")

    def test_unknown_engine_is_400(self):
        # engines are irrelevant to a prediction, but a typo'd backend
        # name must still fail loudly rather than be silently ignored
        exc = err("estimate", dict(self.NAMED, engine="frobnicate"))
        assert (exc.status, exc.code) == (400, "unknown-engine")
        for name in ("reference", "fast", "compiled", "vector"):
            assert name in exc.message

    def test_unknown_request_kind_is_404(self):
        exc = err("estimote", dict(self.NAMED))
        assert (exc.status, exc.code) == (404, "unknown-endpoint")

    def test_bad_workload_is_400(self):
        exc = err("estimate", {"core": "small", "mode": "baseline"})
        assert (exc.status, exc.code) == (400, "bad-workload")

    def test_fingerprint_varies_with_confidence(self):
        a = parse_request("estimate", dict(self.NAMED))
        b = parse_request("estimate", dict(self.NAMED, confidence=0.5))
        assert a.fingerprint != b.fingerprint


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    config = ServeConfig(port=0, workers=2,
                         cache_dir=tmp_path_factory.mktemp("cache"))
    d = ServeDaemon(config)
    port = d.start_background()
    yield d, port
    d.stop_background()


@pytest.fixture()
def client(daemon):
    _, port = daemon
    with ServeClient(port=port, timeout_s=60) as c:
        yield c


class TestEstimateEndToEnd:
    BODY = dict(suite="ml", bench="pool0", core="small",
                mode="redsoc", scale=3)

    def test_cold_estimate_runs_on_workers(self, client):
        reply = client.estimate(**self.BODY)
        assert reply["api"] == 1 and reply["kind"] == "estimate"
        result = reply["result"]
        assert result["predicted"] is True
        assert result["cycles"] > 0 and result["ipc"] > 0
        assert reply["served"] in ("worker", "coalesced")
        bound = result["error_bound"]
        assert bound["p50_pct"] <= bound["p95_pct"] <= bound["max_pct"]
        assert bound["samples"] > 0
        lo, hi = result["interval"]["lo"], result["interval"]["hi"]
        assert lo <= result["cycles"] <= hi

    def test_repeat_is_served_from_lru(self, client):
        first = client.estimate(**self.BODY)
        again = client.estimate(**self.BODY)
        assert again["served"] == "lru"
        assert again["result"]["cycles"] == first["result"]["cycles"]

    def test_warm_features_answer_inline(self, client):
        # same workload+core → same feature-cache entry; a different
        # confidence dodges the LRU, so this exercises the inline path
        client.estimate(**self.BODY)
        reply = client.estimate(**self.BODY, confidence=0.8)
        assert reply["served"] == "inline"
        assert reply["result"]["predicted"] is True
        assert reply["result"]["interval"]["confidence"] == 0.8

    def test_estimate_consistent_with_simulate_bound(self, client):
        est = client.estimate(**self.BODY)["result"]
        sim = client.simulate(**self.BODY)["result"]
        bound = max(est["error_bound"]["max_pct"], 20.0)
        rel_err = abs(est["cycles"] - sim["cycles"]) / sim["cycles"]
        assert rel_err * 100 <= bound

    def test_inline_program_estimate(self, client):
        reply = client.estimate(asm=SPIN, core="small", mode="baseline")
        assert reply["result"]["predicted"] is True
        assert reply["result"]["cycles"] > 0

    def test_http_bad_confidence_is_400(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.estimate(**self.BODY, confidence=2.0)
        assert exc_info.value.status == 400
        assert exc_info.value.code == "bad-confidence"

    def test_http_unknown_engine_is_400(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.estimate(**self.BODY, engine="nope")
        assert exc_info.value.status == 400
        assert exc_info.value.code == "unknown-engine"

    def test_http_unknown_kind_is_404(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.request("POST", "/v1/predictify",
                           {"api": 1, **self.BODY})
        assert exc_info.value.status == 404
        assert exc_info.value.code == "unknown-endpoint"
