"""End-to-end trace propagation: client SDK → daemon → worker.

Three legs:

* the **client SDK** keeps one trace id across 429/503 retries while
  minting a fresh span id per attempt (proved against a stub server
  that rejects twice, then accepts);
* the **daemon** continues a valid ``traceparent``, mints on a missing
  or malformed one, echoes ``x-trace-id``, and exports a span tree
  whose segments (queue wait, worker attempt, cache probe, trace gen,
  simulate) hang off the request root and explain its wall time;
* the **chaos leg**: a worker SIGKILLed mid-request leaves a
  ``worker-crash`` attempt span, and the respawned worker's retry
  span carries the *same* trace id — one tree tells the whole story.
"""

import http.client
import http.server
import json
import threading
import time

import pytest

from repro.obs.trace import (
    TraceContext,
    read_spans_jsonl,
    span_trees,
    trace_coverage,
    validate_spans,
)
from repro.serve import ServeClient, ServeConfig, ServeDaemon

SPIN = "mov r1, #%d\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Replies with two retryable errors, then 200 — records headers."""

    protocol_version = "HTTP/1.1"
    statuses = [503, 429, 200]
    seen_traceparents = []

    def do_POST(self):
        self.rfile.read(int(self.headers.get("content-length", 0)))
        type(self).seen_traceparents.append(
            self.headers.get("traceparent"))
        index = min(len(type(self).seen_traceparents) - 1,
                    len(self.statuses) - 1)
        status = self.statuses[index]
        body = json.dumps({"ok": status == 200}).encode()
        self.send_response(status)
        self.send_header("content-type", "application/json")
        self.send_header("content-length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture
def flaky_server():
    _FlakyHandler.seen_traceparents = []
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                             _FlakyHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address[1]
    server.shutdown()
    server.server_close()


class TestClientRetryPropagation:
    def test_retries_reuse_trace_id_with_fresh_span_ids(
            self, flaky_server):
        with ServeClient(port=flaky_server, max_retries=3,
                         timeout_s=30, seed=0, trace=True,
                         trace_seed=7) as client:
            reply = client.request("POST", "/v1/simulate", {"x": 1})
        assert reply == {"ok": True}

        headers = _FlakyHandler.seen_traceparents
        assert len(headers) == 3
        contexts = [TraceContext.parse(h) for h in headers]
        assert all(ctx is not None for ctx in contexts)
        assert len({ctx.trace_id for ctx in contexts}) == 1
        assert len({ctx.span_id for ctx in contexts}) == 3

        assert client.last_trace["trace_id"] == contexts[0].trace_id
        assert client.last_trace["attempt_span_ids"] \
            == [ctx.span_id for ctx in contexts]

        spans = client.spans.spans
        assert [s.name for s in spans] == ["client.request"] * 3
        assert [s.status for s in spans] == ["error", "error", "ok"]
        assert [s.attrs["http_status"] for s in spans] \
            == [503, 429, 200]

    def test_each_logical_request_gets_its_own_trace(
            self, flaky_server):
        _FlakyHandler.statuses = [200]
        try:
            with ServeClient(port=flaky_server, max_retries=0,
                             trace=True, trace_seed=7) as client:
                client.request("POST", "/v1/simulate", {"x": 1})
                first = client.last_trace["trace_id"]
                client.request("POST", "/v1/simulate", {"x": 2})
                assert client.last_trace["trace_id"] != first
        finally:
            _FlakyHandler.statuses = [503, 429, 200]

    def test_tracing_off_sends_no_header(self, flaky_server):
        _FlakyHandler.statuses = [200]
        try:
            with ServeClient(port=flaky_server,
                             max_retries=0) as client:
                client.request("POST", "/v1/simulate", {"x": 1})
            assert _FlakyHandler.seen_traceparents == [None]
            assert client.spans is None
        finally:
            _FlakyHandler.statuses = [503, 429, 200]


def _raw_post(port, path, body, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        data = json.dumps(body).encode()
        all_headers = {"content-type": "application/json"}
        all_headers.update(headers or {})
        conn.request("POST", path, body=data, headers=all_headers)
        response = conn.getresponse()
        payload = json.loads(response.read().decode())
        return response, payload
    finally:
        conn.close()


class TestDaemonContextHandling:
    @pytest.fixture
    def traced_daemon(self, tmp_path):
        config = ServeConfig(port=0, workers=1,
                             cache_dir=tmp_path / "cache",
                             trace_dir=tmp_path / "traces")
        daemon = ServeDaemon(config)
        port = daemon.start_background()
        yield daemon, port, tmp_path / "traces" / "spans.jsonl"
        if daemon._thread is not None and daemon._thread.is_alive():
            daemon.stop_background()

    def test_valid_traceparent_is_continued(self, traced_daemon):
        daemon, port, spans_path = traced_daemon
        ctx = TraceContext("ab" * 16, "cd" * 8)
        # a few hundred ms of simulation: the fixed parse/marshal
        # overhead must be a rounding error next to the traced
        # segments, as it is for any real request
        response, payload = _raw_post(
            port, "/v1/simulate",
            {"api": 1, "asm": SPIN % 3000, "core": "small",
             "mode": "baseline"},
            headers={"traceparent": ctx.to_traceparent()})
        assert response.status == 200
        assert payload["result"]["cycles"] > 0
        assert response.getheader("x-trace-id") == ctx.trace_id

        daemon.stop_background()
        spans = read_spans_jsonl(spans_path)
        assert validate_spans(
            [s.to_json_obj() for s in spans]) == []
        (root,) = span_trees(spans)[ctx.trace_id]
        assert root.span.name == "request"
        # remote-parented: the client SDK's span owns the parent slot
        assert root.span.parent_id == ctx.span_id
        assert root.span.attrs["path"] == "/v1/simulate"
        assert root.span.attrs["served"] == "worker"

        child_names = {c.span.name for c in root.children}
        assert child_names == {"admission", "queue.wait",
                               "worker.attempt", "respond"}
        attempt = next(c for c in root.children
                       if c.span.name == "worker.attempt")
        worker_names = {c.span.name for c in attempt.children}
        assert {"cache.probe", "trace.gen",
                "engine.simulate"} <= worker_names
        # segments explain the request's wall latency (the 5% gate)
        assert trace_coverage(root) >= 0.95

    def test_malformed_traceparent_mints_fresh(self, traced_daemon):
        daemon, port, spans_path = traced_daemon
        response, _ = _raw_post(
            port, "/v1/simulate",
            {"api": 1, "asm": SPIN % 30, "core": "small",
             "mode": "baseline"},
            headers={"traceparent": "not-a-traceparent"})
        assert response.status == 200
        minted = response.getheader("x-trace-id")
        assert minted is not None
        assert len(minted) == 32
        assert minted != "not-a-traceparent"

        daemon.stop_background()
        spans = read_spans_jsonl(spans_path)
        roots = span_trees(spans)[minted]
        assert roots[0].span.parent_id is None

    def test_absent_traceparent_mints_fresh(self, traced_daemon):
        _, port, _ = traced_daemon
        response, _ = _raw_post(
            port, "/v1/simulate",
            {"api": 1, "asm": SPIN % 30, "core": "small",
             "mode": "baseline"})
        assert response.status == 200
        assert response.getheader("x-trace-id") is not None

    def test_lru_hit_is_marked_and_segmentless(self, traced_daemon):
        daemon, port, spans_path = traced_daemon
        body = {"api": 1, "asm": SPIN % 35, "core": "small",
                "mode": "baseline"}
        ctx_cold = TraceContext("aa" * 16, "11" * 8)
        ctx_warm = TraceContext("bb" * 16, "22" * 8)
        _raw_post(port, "/v1/simulate", body,
                  headers={"traceparent": ctx_cold.to_traceparent()})
        _, payload = _raw_post(
            port, "/v1/simulate", body,
            headers={"traceparent": ctx_warm.to_traceparent()})
        assert payload["served"] == "lru"

        daemon.stop_background()
        spans = read_spans_jsonl(spans_path)
        trees = span_trees(spans)
        (warm_root,) = trees[ctx_warm.trace_id]
        assert warm_root.span.attrs["served"] == "lru"
        assert warm_root.children == []

    def test_tracing_off_leaves_no_artifacts(self, tmp_path):
        config = ServeConfig(port=0, workers=1,
                             cache_dir=tmp_path / "cache")
        daemon = ServeDaemon(config)
        port = daemon.start_background()
        try:
            response, _ = _raw_post(
                port, "/v1/simulate",
                {"api": 1, "asm": SPIN % 30, "core": "small",
                 "mode": "baseline"})
            assert response.status == 200
            assert response.getheader("x-trace-id") is None
        finally:
            daemon.stop_background()
        assert not (tmp_path / "traces").exists()


class TestChaosRetrySpans:
    def test_respawned_worker_retry_links_to_original_trace(
            self, tmp_path):
        config = ServeConfig(port=0, workers=1,
                             cache_dir=tmp_path / "cache",
                             debug=True,
                             trace_dir=tmp_path / "traces")
        daemon = ServeDaemon(config)
        port = daemon.start_background()
        ctx = TraceContext("ab" * 16, "cd" * 8)
        outcome = {}
        try:
            def slow_request():
                # ~2 s of cold simulation: mid-flight when killed
                response, payload = _raw_post(
                    port, "/v1/simulate",
                    {"api": 1, "asm": SPIN % 20000, "core": "small",
                     "mode": "baseline"},
                    headers={"traceparent": ctx.to_traceparent()})
                outcome["status"] = response.status
                outcome["payload"] = payload

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.6)     # the spin is now on the victim worker

            with ServeClient(port=port, max_retries=0) as client:
                client.request("POST", "/v1/chaos/kill-worker")
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert outcome["status"] == 200
            assert outcome["payload"]["result"]["cycles"] > 0
        finally:
            daemon.stop_background()

        spans = read_spans_jsonl(tmp_path / "traces" / "spans.jsonl")
        assert validate_spans(
            [s.to_json_obj() for s in spans]) == []
        (root,) = span_trees(spans)[ctx.trace_id]
        attempts = sorted(
            (c for c in root.children
             if c.span.name == "worker.attempt"),
            key=lambda n: n.span.attrs["attempt"])
        assert len(attempts) >= 2
        assert attempts[0].span.status == "worker-crash"
        assert attempts[-1].span.status == "ok"
        # the respawned worker's simulate span is in the same tree
        retry_names = {c.span.name for c in attempts[-1].children}
        assert "engine.simulate" in retry_names
