"""Admission queue: bounds, priority, dedup, expiry, drain."""

import asyncio

import pytest

from repro.serve.admission import AdmissionQueue, Draining, QueueFull
from repro.serve.protocol import parse_request

NAMED = {"suite": "ml", "bench": "pool0",
         "core": "small", "mode": "baseline"}


def spec(**overrides):
    body = dict(NAMED)
    body.update(overrides)
    return parse_request("simulate", body)


def run(coro):
    return asyncio.run(coro)


class TestBounds:
    def test_queue_full_rejects(self):
        async def main():
            queue = AdmissionQueue(max_depth=2)
            queue.submit(spec(mode="baseline"))
            queue.submit(spec(mode="redsoc"))
            with pytest.raises(QueueFull):
                queue.submit(spec(mode="mos"))
            assert queue.metrics.counter(
                "serve.rejected_queue_full").value == 1
        run(main())

    def test_draining_rejects(self):
        async def main():
            queue = AdmissionQueue()
            queue.begin_drain()
            with pytest.raises(Draining):
                queue.submit(spec())
        run(main())


class TestPriority:
    def test_interactive_preempts_batch(self):
        async def main():
            queue = AdmissionQueue()
            batch = queue.submit(spec(mode="redsoc", priority="batch"))
            inter = queue.submit(spec(mode="baseline"))
            first = await queue.next_ticket()
            second = await queue.next_ticket()
            assert first is inter and second is batch
            for t in (batch, inter):
                t.future.cancel()
        run(main())


class TestSingleFlight:
    def test_identical_requests_share_a_ticket(self):
        async def main():
            queue = AdmissionQueue()
            leader = queue.submit(spec())
            follower = queue.submit(spec(deadline_ms=500))
            assert follower is leader        # deadline excluded from work
            assert queue.depth == 1
            assert queue.metrics.counter(
                "serve.singleflight_coalesced").value == 1
            leader.future.cancel()
        run(main())

    def test_different_work_not_coalesced(self):
        async def main():
            queue = AdmissionQueue()
            a = queue.submit(spec(mode="baseline"))
            b = queue.submit(spec(mode="redsoc"))
            assert a is not b and queue.depth == 2
            for t in (a, b):
                t.future.cancel()
        run(main())

    def test_resolved_leader_is_not_reused(self):
        async def main():
            queue = AdmissionQueue()
            leader = queue.submit(spec())
            leader.future.set_result({"cycles": 1})
            await asyncio.sleep(0)           # let done-callback run
            again = queue.submit(spec())
            assert again is not leader
            again.future.cancel()
        run(main())


class TestExpiry:
    def test_expired_ticket_is_cancelled_not_executed(self):
        async def main():
            queue = AdmissionQueue()
            dead = queue.submit(spec(deadline_ms=1))
            live = queue.submit(spec(mode="redsoc"))
            await asyncio.sleep(0.01)
            ticket = await queue.next_ticket()
            assert ticket is live
            assert dead.future.cancelled()
            assert queue.metrics.counter(
                "serve.expired_in_queue").value == 1
            live.future.cancel()
        run(main())

    def test_abandoned_ticket_is_skipped(self):
        async def main():
            queue = AdmissionQueue()
            gone = queue.submit(spec())
            gone.abandoned = True
            live = queue.submit(spec(mode="redsoc"))
            ticket = await queue.next_ticket()
            assert ticket is live
            live.future.cancel()
            gone.future.cancel()
        run(main())


class TestDrain:
    def test_next_ticket_returns_none_when_drained_and_empty(self):
        async def main():
            queue = AdmissionQueue()
            queue.begin_drain()
            assert await queue.next_ticket() is None
        run(main())

    def test_admitted_work_survives_drain(self):
        async def main():
            queue = AdmissionQueue()
            ticket = queue.submit(spec())
            queue.begin_drain()
            assert await queue.next_ticket() is ticket
            ticket.future.set_result({})
            assert await queue.next_ticket() is None
            await queue.join()
        run(main())

    def test_idle_dispatcher_wakes_on_drain(self):
        async def main():
            queue = AdmissionQueue()
            waiter = asyncio.ensure_future(queue.next_ticket())
            await asyncio.sleep(0.01)
            queue.begin_drain()
            assert await asyncio.wait_for(waiter, timeout=1.0) is None
        run(main())
