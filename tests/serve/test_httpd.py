"""HTTP framing: request parsing, keep-alive, bounds, bad input."""

import asyncio
import json

from repro.serve.httpd import HttpResponse, HttpServer, render_response


def run(coro):
    return asyncio.run(coro)


async def echo_handler(request):
    return HttpResponse.json({"path": request.path,
                              "method": request.method,
                              "body_bytes": len(request.body)})


async def _start(handler=echo_handler, **kwargs):
    server = HttpServer(handler, **kwargs)
    await server.start()
    return server


async def _roundtrip(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    return data


def _get(path, extra=b""):
    return (f"GET {path} HTTP/1.1\r\nhost: x\r\n".encode()
            + extra + b"\r\n")


class TestFraming:
    def test_simple_get(self):
        async def main():
            server = await _start()
            data = await _roundtrip(server.port, _get("/hello"))
            assert data.startswith(b"HTTP/1.1 200 OK")
            body = json.loads(data.split(b"\r\n\r\n", 1)[1])
            assert body == {"path": "/hello", "method": "GET",
                            "body_bytes": 0}
            await server.close(grace_s=1)
        run(main())

    def test_post_body_with_content_length(self):
        async def main():
            server = await _start()
            payload = b'{"x": 1}'
            raw = (b"POST /v1/x HTTP/1.1\r\nhost: x\r\n"
                   + f"content-length: {len(payload)}\r\n\r\n".encode()
                   + payload)
            data = await _roundtrip(server.port, raw)
            body = json.loads(data.split(b"\r\n\r\n", 1)[1])
            assert body["body_bytes"] == len(payload)
            await server.close(grace_s=1)
        run(main())

    def test_query_string_stripped(self):
        async def main():
            server = await _start()
            data = await _roundtrip(server.port, _get("/p?q=1"))
            body = json.loads(data.split(b"\r\n\r\n", 1)[1])
            assert body["path"] == "/p"
            await server.close(grace_s=1)
        run(main())

    def test_keep_alive_serves_two_requests(self):
        async def main():
            server = await _start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            for expected in ("/one", "/two"):
                writer.write(f"GET {expected} HTTP/1.1\r\n"
                             f"host: x\r\n\r\n".encode())
                await writer.drain()
                status = await reader.readline()
                assert b"200" in status
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                body = json.loads(await reader.readexactly(length))
                assert body["path"] == expected
            writer.close()
            await server.close(grace_s=1)
        run(main())


class TestBadInput:
    def test_malformed_request_line_is_400(self):
        async def main():
            server = await _start()
            data = await _roundtrip(server.port, b"GARBAGE\r\n\r\n")
            assert data.startswith(b"HTTP/1.1 400")
            await server.close(grace_s=1)
        run(main())

    def test_oversized_body_is_413(self):
        async def main():
            server = await _start(max_body=64)
            raw = (b"POST /x HTTP/1.1\r\nhost: x\r\n"
                   b"content-length: 100000\r\n\r\n")
            data = await _roundtrip(server.port, raw)
            assert data.startswith(b"HTTP/1.1 413")
            await server.close(grace_s=1)
        run(main())

    def test_chunked_rejected(self):
        async def main():
            server = await _start()
            raw = (b"POST /x HTTP/1.1\r\nhost: x\r\n"
                   b"transfer-encoding: chunked\r\n\r\n")
            data = await _roundtrip(server.port, raw)
            assert data.startswith(b"HTTP/1.1 400")
            await server.close(grace_s=1)
        run(main())

    def test_bad_content_length_is_400(self):
        async def main():
            server = await _start()
            raw = (b"POST /x HTTP/1.1\r\nhost: x\r\n"
                   b"content-length: lots\r\n\r\n")
            data = await _roundtrip(server.port, raw)
            assert data.startswith(b"HTTP/1.1 400")
            await server.close(grace_s=1)
        run(main())


class TestRender:
    def test_response_bytes(self):
        resp = HttpResponse.json({"ok": True}, status=200)
        raw = render_response(resp, keep_alive=True)
        head, body = raw.split(b"\r\n\r\n", 1)
        assert b"HTTP/1.1 200 OK" in head
        assert b"connection: keep-alive" in head
        assert f"content-length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}

    def test_close_header(self):
        raw = render_response(HttpResponse.text("bye"), keep_alive=False)
        assert b"connection: close" in raw

    def test_drain_closes_idle_connections(self):
        async def main():
            server = await _start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            await asyncio.sleep(0.01)
            assert server.open_connections == 1
            await server.close(grace_s=0.05)
            assert server.open_connections == 0
            writer.close()
        run(main())
