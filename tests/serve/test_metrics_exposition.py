"""/metrics exposition: canonical histograms, exemplars, parse-back.

The oracle is :func:`repro.obs.metrics.parse_prometheus` — if that
round-trips the daemon's exposition into monotone cumulative buckets
with matching ``_sum``/``_count`` and readable exemplars, so can a
real Prometheus scraper.
"""

import math

import pytest

from repro.obs.metrics import histogram_quantile, parse_prometheus
from repro.obs.trace import TraceContext
from repro.serve import ServeClient, ServeConfig, ServeDaemon

SPIN = "mov r1, #%d\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


@pytest.fixture(scope="module")
def traced_daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("metrics")
    config = ServeConfig(port=0, workers=2,
                         cache_dir=root / "cache",
                         trace_dir=root / "traces")
    daemon = ServeDaemon(config)
    port = daemon.start_background()
    with ServeClient(port=port, timeout_s=60) as client:
        for i in range(4):
            client.simulate(asm=SPIN % (50 + i), core="small",
                            mode="baseline")
    yield port
    daemon.stop_background()


@pytest.fixture(scope="module")
def parsed(traced_daemon):
    with ServeClient(port=traced_daemon, max_retries=0) as client:
        text = client.metrics_text()
    return text, parse_prometheus(text)


class TestCanonicalHistogram:
    def test_latency_histogram_is_typed_and_present(self, parsed):
        text, doc = parsed
        assert doc["types"]["redsoc_serve_latency_us"] == "histogram"
        assert "redsoc_serve_latency_us" in doc["histograms"]

    def test_buckets_are_cumulative_and_monotone(self, parsed):
        _, doc = parsed
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        buckets = sorted(hist["buckets"])
        assert len(buckets) >= 2
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)

    def test_inf_bucket_equals_count(self, parsed):
        _, doc = parsed
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        le, top = sorted(hist["buckets"])[-1]
        assert math.isinf(le)
        assert top == hist["count"]
        assert hist["count"] == 4

    def test_sum_is_consistent_with_buckets(self, parsed):
        _, doc = parsed
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        assert hist["sum"] > 0
        # mean latency must sit inside the observed bucket range
        mean = hist["sum"] / hist["count"]
        bounded = [le for le, count in sorted(hist["buckets"])
                   if count == hist["count"]
                   and not math.isinf(le)]
        if bounded:
            assert mean <= bounded[0]

    def test_quantiles_are_derivable(self, parsed):
        _, doc = parsed
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        p50 = histogram_quantile(hist["buckets"], 0.50)
        p99 = histogram_quantile(hist["buckets"], 0.99)
        assert p50 is not None and p99 is not None
        assert p50 <= p99

    def test_counters_survive_parse_back(self, parsed):
        _, doc = parsed
        assert doc["samples"]["redsoc_serve_requests_total"] >= 4
        assert doc["types"]["redsoc_serve_requests_total"] == "counter"


class TestExemplars:
    def test_exemplars_carry_resolvable_trace_ids(self, parsed):
        text, doc = parsed
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        assert hist["exemplars"], \
            "traced requests must pin exemplars on their buckets"
        for exemplar in hist["exemplars"].values():
            ctx = TraceContext.parse(
                f"00-{exemplar['trace_id']}-{'ab' * 8}-01")
            assert ctx is not None
            assert exemplar["value"] > 0

    def test_exemplar_sits_in_its_bucket(self, parsed):
        _, doc = parsed
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        bounds = sorted(le for le, _ in hist["buckets"])
        for le_text, exemplar in hist["exemplars"].items():
            le = math.inf if le_text == "+Inf" else float(le_text)
            below = [b for b in bounds if b < le]
            lower = below[-1] if below else 0.0
            assert lower < exemplar["value"] <= le


class TestTracingOffExposition:
    def test_histogram_is_canonical_without_exemplars(self, tmp_path):
        config = ServeConfig(port=0, workers=1,
                             cache_dir=tmp_path / "cache")
        daemon = ServeDaemon(config)
        port = daemon.start_background()
        try:
            with ServeClient(port=port, timeout_s=60) as client:
                client.simulate(asm=SPIN % 60, core="small",
                                mode="baseline")
                doc = parse_prometheus(client.metrics_text())
        finally:
            daemon.stop_background()
        hist = doc["histograms"]["redsoc_serve_latency_us"]
        assert hist["count"] == 1
        assert not hist["exemplars"]
