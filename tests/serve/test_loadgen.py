"""Load generator: deterministic mix, honest accounting, report shape."""

import json
import random

import pytest

from repro.serve import ServeConfig, ServeDaemon, run_loadgen
from repro.serve.loadgen import LoadReport, Sample, default_mix, \
    write_report


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    config = ServeConfig(port=0, workers=2,
                         cache_dir=tmp_path_factory.mktemp("cache"))
    d = ServeDaemon(config)
    port = d.start_background()
    yield port
    d.stop_background()


class TestMix:
    def test_mix_is_deterministic_under_seed(self):
        from repro.serve.loadgen import _pick

        def draws(seed):
            rng = random.Random(seed)
            mix = default_mix()
            out = []
            for _ in range(20):
                kind, body = _pick(mix, rng).make_body(rng)
                out.append((kind, json.dumps(body, sort_keys=True)))
            return out
        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_error_mix_is_opt_in(self):
        names = [m.name for m in default_mix()]
        assert "bad-asm" not in names
        assert "bad-asm" in [m.name for m in default_mix(True)]


class TestReport:
    def _report(self):
        report = LoadReport(mode="closed", concurrency=2)
        for i, status in enumerate([200, 200, 200, 400, 429]):
            report.samples.append(Sample(
                kind="simulate", status=status,
                latency_us=(i + 1) * 1000, served="worker"))
        report.wall_time_s = 0.5
        return report

    def test_status_buckets_and_throughput(self):
        payload = self._report().to_payload()
        assert payload["status_counts"] == {"2xx": 3, "4xx": 2}
        assert payload["throughput_rps"] == 10.0
        assert payload["schema"] == 2

    def test_percentiles_exclude_errors(self):
        # errors (the two slowest samples here) must not pollute the
        # latency distribution
        payload = self._report().to_payload()
        assert payload["latency_ms"]["max"] == 3.0

    def test_empty_report_has_null_latencies(self):
        payload = LoadReport(mode="open").to_payload()
        assert payload["latency_ms"]["p99"] is None
        assert payload["throughput_rps"] == 0.0

    def test_write_report_round_trips(self, tmp_path):
        path = write_report(self._report(), tmp_path / "BENCH_serve.json",
                            extra={"drain_s": 0.05})
        payload = json.loads(path.read_text())
        assert payload["drain_s"] == 0.05
        assert payload["requests"] == 5


class TestAgainstDaemon:
    def test_closed_loop_end_to_end(self, daemon, tmp_path):
        report = run_loadgen("127.0.0.1", daemon, mode="closed",
                             requests=20, concurrency=4, seed=1,
                             timeout_s=60)
        payload = report.to_payload()
        assert payload["requests"] == 20
        assert payload["status_counts"].get("2xx", 0) == 20
        assert payload["status_counts"].get("5xx", 0) == 0
        assert not payload["transport_errors"]
        assert payload["latency_ms"]["p99"] is not None

    def test_open_loop_end_to_end(self, daemon):
        report = run_loadgen("127.0.0.1", daemon, mode="open",
                             requests=15, rate=50.0, seed=2,
                             timeout_s=60)
        payload = report.to_payload()
        assert payload["mode"] == "open"
        assert payload["requests"] == 15
        assert payload["status_counts"].get("5xx", 0) == 0

    def test_bad_mode_rejected(self, daemon):
        with pytest.raises(ValueError, match="mode must be"):
            run_loadgen("127.0.0.1", daemon, mode="sideways")
