"""Chaos: worker SIGKILL mid-request, SIGTERM drain under load.

Two failure modes the daemon must absorb without dropping a single
in-flight request:

* a **worker process dies** while executing a request — the supervisor
  respawns the pool and retries; the client sees a 200, slightly late;
* the **daemon gets SIGTERM** while requests are in flight — everything
  already admitted completes (200), the process exits 0 within the
  drain budget, and nobody observes a torn connection.
"""

import concurrent.futures
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.serve import ServeClient, ServeConfig, ServeDaemon

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

#: ~2 s of cold simulation — long enough to be mid-flight on a kill
SLOW_SPIN = "mov r1, #20000\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


class TestWorkerKillMidRequest:
    def test_request_survives_worker_sigkill(self, tmp_path):
        config = ServeConfig(port=0, workers=1, cache_dir=tmp_path,
                             debug=True)
        daemon = ServeDaemon(config)
        port = daemon.start_background()
        try:
            with ServeClient(port=port, timeout_s=120,
                             max_retries=0) as probe:
                victim = probe.status()["workers"]["pids"][0]

            outcome = {}

            def slow_request():
                with ServeClient(port=port, timeout_s=120,
                                 max_retries=0) as c:
                    outcome["reply"] = c.simulate(
                        asm=SLOW_SPIN, core="small", mode="baseline")

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.6)     # the spin is now on the victim worker

            with ServeClient(port=port, max_retries=0) as c:
                killed = c.request("POST", "/v1/chaos/kill-worker")
            assert killed["killed"] == victim

            thread.join(timeout=120)
            assert not thread.is_alive()
            reply = outcome["reply"]    # 200 despite the dead worker
            assert reply["result"]["cycles"] > 0

            with ServeClient(port=port, max_retries=0) as c:
                status = c.status()
                metrics = c.metrics_text()
            assert victim not in status["workers"]["pids"]
            assert "redsoc_serve_worker_respawns 1" in metrics
        finally:
            daemon.stop_background()


class TestSigtermDrainUnderLoad:
    def _spawn(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "start",
             "--port", "0", "--workers", "2",
             "--cache-dir", str(tmp_path / "cache")],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        assert proc.stdout is not None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line.startswith("serving on http://"):
                address = line.split("http://", 1)[1].split()[0]
                return proc, int(address.rsplit(":", 1)[1])
        proc.kill()
        pytest.fail("daemon never announced its port")

    def test_zero_dropped_inflight_requests(self, tmp_path):
        proc, port = self._spawn(tmp_path)
        lanes = 6

        def one_request(lane):
            # distinct iteration counts -> distinct work, no dedup,
            # each ~0.1-0.3 s: plenty still in flight at SIGTERM
            asm = SLOW_SPIN.replace("#20000", f"#{1500 + lane * 300}")
            with ServeClient(port=port, timeout_s=60,
                             max_retries=0) as c:
                return c.simulate(asm=asm, core="small",
                                  mode="baseline")

        try:
            with concurrent.futures.ThreadPoolExecutor(lanes) as pool:
                futures = [pool.submit(one_request, lane)
                           for lane in range(lanes)]
                time.sleep(0.4)     # all admitted, most still running
                proc.send_signal(signal.SIGTERM)
                replies = [f.result(timeout=60) for f in futures]

            # zero dropped: every admitted request got a real answer
            assert len(replies) == lanes
            for reply in replies:
                assert reply["result"]["cycles"] > 0

            proc.wait(timeout=15)   # drain budget from the issue
            assert proc.returncode == 0
            output = proc.stdout.read()
            assert "draining" in output and "bye" in output
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_post_sigterm_requests_get_clean_503(self, tmp_path):
        proc, port = self._spawn(tmp_path)
        try:
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)
            # the daemon may already be gone (nothing was in flight);
            # acceptable outcomes are a typed 503 or a refused
            # connection -- never a hung socket or a torn response
            from repro.serve import ServeError
            with ServeClient(port=port, timeout_s=5,
                             max_retries=0) as c:
                try:
                    c.simulate(suite="ml", bench="pool0",
                               core="small", mode="baseline", scale=3)
                except ServeError as exc:
                    assert exc.status in (0, 503)
            proc.wait(timeout=15)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
