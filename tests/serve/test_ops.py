"""Ops dashboard rendering: pure frames from synthetic scrapes."""

import math

from repro.obs.slo import SloSpec
from repro.serve.ops import OpsSample, render_frame


def _metrics(requests=100.0, latency_buckets=None, count=None,
             **counters):
    buckets = latency_buckets if latency_buckets is not None else [
        (1_000.0, 40), (10_000.0, 90), (100_000.0, 99),
        (math.inf, 100)]
    samples = {"redsoc_serve_requests_total": requests}
    for name, value in counters.items():
        samples[f"redsoc_serve_{name}"] = value
    return {
        "types": {},
        "samples": samples,
        "histograms": {
            "redsoc_serve_latency_us": {
                "buckets": buckets,
                "sum": 1_000_000.0,
                "count": count if count is not None
                else (buckets[-1][1] if buckets else 0),
                "exemplars": {},
            },
        },
    }


def _status(**overrides):
    status = {
        "status": "ok", "uptime_s": 12.5, "model_version": "abcd",
        "queue": {"depth": 3, "max_depth": 256, "inflight": 2},
        "workers": {"configured": 4, "pids": [101, 102, 103, 104]},
        "lru_entries": 9,
        "slowest_traces": [],
    }
    status.update(overrides)
    return status


def _sample(ts=10.0, status=None, metrics=None):
    return OpsSample(ts=ts, status=status or _status(),
                     metrics=metrics if metrics is not None
                     else _metrics())


class TestRenderFrame:
    def test_header_and_structure(self):
        frame = render_frame(_sample())
        assert frame.startswith("redsoc-serve ops — ok")
        assert "model abcd" in frame
        assert frame.endswith("\n")

    def test_rps_needs_two_scrapes(self):
        assert "rps -" in render_frame(_sample())
        prev = _sample(ts=10.0, metrics=_metrics(requests=100.0))
        cur = _sample(ts=12.0, metrics=_metrics(requests=150.0))
        assert "rps 25.0" in render_frame(cur, prev)

    def test_percentiles_come_from_buckets(self):
        frame = render_frame(_sample())
        # p50 of the synthetic buckets interpolates inside 1-10 ms:
        # rank 50 sits 10/50 of the way through the 1-10 ms bucket
        assert "p50=2.8" in frame
        assert "p99=100.0" in frame

    def test_queue_and_worker_health(self):
        frame = render_frame(_sample())
        assert "queue 3/256" in frame
        assert "inflight 2" in frame
        assert "workers 4/4" in frame

    def test_cache_tier_counters(self):
        metrics = _metrics(lru_hits=7.0, cache_hits=20.0,
                           cache_misses=5.0,
                           singleflight_coalesced=3.0,
                           rejected_queue_full=1.0)
        frame = render_frame(_sample(metrics=metrics))
        assert "lru 7" in frame
        assert "20 hit / 5 miss" in frame
        assert "coalesced 3" in frame
        assert "429 1" in frame

    def test_healthy_slo_has_no_alarm(self):
        frame = render_frame(_sample(), spec=SloSpec(
            availability=0.999, latency_ms=250.0,
            latency_objective=0.9))
        assert "availability burn 0.00" in frame
        assert "!!" not in frame

    def test_burning_availability_is_flagged(self):
        metrics = _metrics(requests=1000.0, responses_5xx=10.0)
        frame = render_frame(_sample(metrics=metrics),
                             spec=SloSpec(availability=0.999))
        assert "availability burn 10.00 !!" in frame

    def test_burning_latency_is_flagged(self):
        # 10% of requests over 10 ms against a 99% <= 10 ms objective
        frame = render_frame(_sample(), spec=SloSpec(
            latency_ms=10.0, latency_objective=0.99))
        assert "latency<=10ms burn 10.00 !!" in frame

    def test_slowest_traces_panel(self):
        status = _status(slowest_traces=[
            {"latency_us": 250_000, "trace_id": "ab" * 16},
            {"latency_us": 90_000, "trace_id": "cd" * 16},
        ])
        frame = render_frame(_sample(status=status))
        assert "slowest traces:" in frame
        assert "250.0 ms" in frame
        assert "ab" * 16 in frame

    def test_empty_daemon_renders_dashes(self):
        metrics = {"types": {}, "samples": {}, "histograms": {}}
        frame = render_frame(_sample(metrics=metrics))
        assert "rps -" in frame
        assert "p50=-" in frame
        assert "burn -" in frame
