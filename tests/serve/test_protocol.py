"""Request validation: every malformed body is a typed 4xx."""

import pytest

from repro.serve.protocol import (
    API_VERSION,
    MAX_SWEEP_JOBS,
    MAX_VERIFY_BUDGET,
    Priority,
    RequestError,
    parse_request,
)

SPIN = "mov r1, #3\nloop:\nsubs r1, r1, #1\nbne loop\nhalt"


def err(kind, body):
    with pytest.raises(RequestError) as exc_info:
        parse_request(kind, body)
    return exc_info.value


class TestEnvelope:
    def test_unknown_kind_is_404(self):
        exc = err("transmogrify", {})
        assert (exc.status, exc.code) == (404, "unknown-endpoint")

    def test_non_object_body(self):
        assert err("simulate", [1, 2]).code == "bad-body"

    def test_wrong_api_version(self):
        exc = err("simulate", {"api": 99, "suite": "ml",
                               "bench": "pool0", "core": "small",
                               "mode": "baseline"})
        assert exc.code == "bad-api-version"

    def test_error_payload_shape(self):
        payload = err("simulate", {}).to_payload()
        assert payload["api"] == API_VERSION
        assert set(payload) == {"api", "error", "message"}


class TestSimulate:
    NAMED = {"suite": "ml", "bench": "pool0",
             "core": "small", "mode": "baseline"}

    def test_named_workload_parses(self):
        spec = parse_request("simulate", dict(self.NAMED))
        assert spec.kind == "simulate"
        assert spec.priority is Priority.INTERACTIVE
        [payload] = spec.worker_payloads()
        assert payload["suite"] == "ml" and payload["core"] == "small"

    def test_unknown_suite_bench_core_mode(self):
        for field, code in [("suite", "unknown-suite"),
                            ("bench", "unknown-bench"),
                            ("core", "unknown-core"),
                            ("mode", "unknown-mode")]:
            body = dict(self.NAMED)
            body[field] = "nope"
            assert err("simulate", body).code == code

    def test_neither_named_nor_inline(self):
        assert err("simulate", {"core": "small",
                                "mode": "baseline"}).code == "bad-workload"

    def test_both_named_and_inline(self):
        body = dict(self.NAMED)
        body["asm"] = SPIN
        assert err("simulate", body).code == "bad-workload"

    def test_inline_asm_is_assembled_server_side(self):
        spec = parse_request("simulate", {"asm": SPIN, "core": "small",
                                          "mode": "redsoc"})
        [payload] = spec.worker_payloads()
        assert "program" in payload      # serialised, not text
        assert payload["program"]["instructions"]

    def test_bad_asm_is_a_400(self):
        exc = err("simulate", {"asm": "frobnicate r1\nhalt",
                               "core": "small", "mode": "baseline"})
        assert (exc.status, exc.code) == (400, "bad-asm")
        assert "line 1" in exc.message

    def test_undefined_label_is_a_400(self):
        exc = err("simulate", {"asm": "b nowhere\nhalt",
                               "core": "small", "mode": "baseline"})
        assert exc.code == "bad-asm"

    def test_bad_scale(self):
        body = dict(self.NAMED)
        body["scale"] = 0
        assert err("simulate", body).code == "bad-scale"

    def test_bad_deadline_and_priority(self):
        body = dict(self.NAMED)
        body["deadline_ms"] = -5
        assert err("simulate", body).code == "bad-deadline"
        body = dict(self.NAMED)
        body["priority"] = "urgent"
        assert err("simulate", body).code == "bad-priority"

    def test_batch_priority(self):
        body = dict(self.NAMED)
        body["priority"] = "batch"
        spec = parse_request("simulate", body)
        assert spec.priority is Priority.BATCH


class TestFingerprint:
    BODY = {"suite": "ml", "bench": "pool0",
            "core": "small", "mode": "baseline"}

    def test_same_work_same_fingerprint(self):
        a = parse_request("simulate", dict(self.BODY))
        b = parse_request("simulate", dict(self.BODY))
        assert a.fingerprint == b.fingerprint

    def test_deadline_and_priority_excluded(self):
        hurried = dict(self.BODY, deadline_ms=500, priority="batch")
        assert parse_request("simulate", hurried).fingerprint == \
            parse_request("simulate", dict(self.BODY)).fingerprint

    def test_work_changes_fingerprint(self):
        other = dict(self.BODY, mode="redsoc")
        assert parse_request("simulate", other).fingerprint != \
            parse_request("simulate", dict(self.BODY)).fingerprint

    def test_inline_equivalent_to_itself(self):
        body = {"asm": SPIN, "core": "small", "mode": "baseline"}
        assert parse_request("simulate", dict(body)).fingerprint == \
            parse_request("simulate", dict(body)).fingerprint


class TestSweep:
    def test_defaults_cover_grid(self):
        spec = parse_request("sweep", {"suite": "ml", "bench": "pool0",
                                       "cores": ["small"],
                                       "modes": ["baseline", "redsoc"]})
        assert spec.kind == "sweep"
        payloads = spec.worker_payloads()
        assert [(p["core"], p["mode"]) for p in payloads] == \
            [("small", "baseline"), ("small", "redsoc")]

    def test_duplicates_collapse_and_full_grid_fits_cap(self):
        spec = parse_request("sweep", {"suite": "ml", "bench": "pool0",
                                       "cores": ["small", "small"],
                                       "modes": ["baseline"]})
        assert spec.cores == ("small",)
        # the defaults grid (all cores x all modes) must stay servable
        full = parse_request("sweep", {"suite": "ml", "bench": "pool0"})
        assert len(full.worker_payloads()) <= MAX_SWEEP_JOBS

    def test_empty_grid_rejected(self):
        exc = err("sweep", {"suite": "ml", "bench": "pool0",
                            "cores": [], "modes": ["baseline"]})
        assert exc.code == "bad-grid"

    def test_unknown_core_in_grid(self):
        exc = err("sweep", {"suite": "ml", "bench": "pool0",
                            "cores": ["small", "nope"],
                            "modes": ["baseline"]})
        assert exc.code == "unknown-core"


class TestVerify:
    def test_defaults(self):
        spec = parse_request("verify", {"seed": 7})
        [payload] = spec.worker_payloads()
        assert payload == {"seed": 7, "budget": 10, "core": "small",
                           "metamorphic": True}

    def test_budget_bounds(self):
        assert err("verify", {"budget": 0}).code == "bad-budget"
        assert err("verify",
                   {"budget": MAX_VERIFY_BUDGET + 1}).code == "bad-budget"
        assert err("verify", {"budget": True}).code == "bad-budget"

    def test_bad_seed(self):
        assert err("verify", {"seed": -1}).code == "bad-seed"

    def test_bad_metamorphic(self):
        assert err("verify", {"metamorphic": "yes"}).code == \
            "bad-metamorphic"


class TestEngine:
    NAMED = {"suite": "ml", "bench": "pool0",
             "core": "small", "mode": "baseline"}

    def test_simulate_engine_parses_and_reaches_payload(self):
        spec = parse_request("simulate",
                             dict(self.NAMED, engine="compiled"))
        assert spec.engine == "compiled"
        [payload] = spec.worker_payloads()
        assert payload["engine"] == "compiled"

    def test_engine_absent_means_server_default(self):
        spec = parse_request("simulate", dict(self.NAMED))
        assert spec.engine is None
        [payload] = spec.worker_payloads()
        assert "engine" not in payload

    def test_unknown_engine_is_a_400(self):
        for kind, body in [
                ("simulate", dict(self.NAMED, engine="warp")),
                ("sweep", {"suite": "ml", "bench": "pool0",
                           "engine": "warp"})]:
            exc = err(kind, body)
            assert (exc.status, exc.code) == (400, "unknown-engine")
            # the 400 must enumerate every registered backend so a
            # client can self-correct — vector included
            for name in ("reference", "fast", "compiled", "vector"):
                assert name in exc.message

    def test_vector_engine_accepted(self):
        spec = parse_request("simulate",
                             dict(self.NAMED, engine="vector"))
        [payload] = spec.worker_payloads()
        assert payload["engine"] == "vector"

    def test_engine_changes_fingerprint_only_when_pinned(self):
        base = parse_request("simulate", dict(self.NAMED))
        pinned = parse_request("simulate",
                               dict(self.NAMED, engine="reference"))
        assert pinned.fingerprint != base.fingerprint

    def test_sweep_engine_reaches_every_payload(self):
        spec = parse_request("sweep",
                             {"suite": "ml", "bench": "pool0",
                              "cores": ["small"],
                              "modes": ["baseline", "redsoc"],
                              "engine": "compiled"})
        assert all(p["engine"] == "compiled"
                   for p in spec.worker_payloads())

    def test_verify_engines_validated_and_deduped(self):
        spec = parse_request(
            "verify", {"seed": 1,
                       "engines": ["compiled", "reference", "compiled"]})
        assert spec.engines == ("compiled", "reference")
        [payload] = spec.worker_payloads()
        assert payload["engines"] == ["compiled", "reference"]

    def test_verify_bad_engines(self):
        assert err("verify", {"engines": "compiled"}).code == \
            "bad-engines"
        assert err("verify", {"engines": ["warp"]}).code == \
            "unknown-engine"
