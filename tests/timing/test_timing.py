"""Unit tests for the structural delay models."""


import pytest

from repro.isa.opcodes import Opcode, SimdType
from repro.timing import (
    DEFAULT_TECH,
    KoggeStoneAdder,
    TechParams,
    barrel_shifter_delay_ps,
    fig1_table,
    fig2_series,
    ks_adder_delay_ps,
    scalar_op_delay_ps,
    shifter_stages,
    simd_op_delay_ps,
    type_slack_table,
    validate_tech,
    vmla_accumulate_delay_ps,
    worst_case_alu_delay_ps,
)


class TestKoggeStone:
    def test_levels_matches_log2(self):
        assert KoggeStoneAdder(16).levels == 4
        assert KoggeStoneAdder(32).levels == 5
        assert KoggeStoneAdder(64).levels == 6

    def test_prefix_network_shape(self):
        adder = KoggeStoneAdder(8)
        network = adder.prefix_network()
        # level 0: 8 nodes with no fan-in
        assert all(network[(0, b)] == [] for b in range(8))
        # top level bit 7 combines with bit 3 (span 4)
        assert (2, 3) in network[(3, 7)]

    def test_critical_levels_grow_with_width(self):
        adder = KoggeStoneAdder(16)
        levels = [adder.critical_path_levels(w) for w in range(1, 17)]
        assert levels == sorted(levels)
        assert levels[-1] == 4
        assert levels[0] >= 1

    def test_critical_levels_log_steps(self):
        """Delay steps occur at powers of two (Fig. 2 colour bands)."""
        adder = KoggeStoneAdder(16)
        assert (adder.critical_path_levels(4)
                < adder.critical_path_levels(5))
        assert (adder.critical_path_levels(8)
                < adder.critical_path_levels(9))

    def test_delay_monotone_in_width(self):
        delays = [ks_adder_delay_ps(w) for w in range(1, 33)]
        assert delays == sorted(delays)

    def test_delay_clamps_beyond_word(self):
        assert ks_adder_delay_ps(64) == ks_adder_delay_ps(32)

    def test_fig2_series_covers_all_widths(self):
        series = fig2_series(16)
        assert [w for w, _ in series] == list(range(1, 17))
        assert series[-1][1] > series[0][1]


class TestShifter:
    def test_stage_count(self):
        assert shifter_stages(32) == 5
        assert shifter_stages(16) == 4
        assert shifter_stages(2) == 1

    def test_delay_scales_with_stages(self):
        assert (barrel_shifter_delay_ps(32)
                == 5 * DEFAULT_TECH.shifter_stage_ps)


class TestScalarOpDelays:
    def test_logic_faster_than_shift_faster_than_arith(self):
        logic = scalar_op_delay_ps(Opcode.AND)
        shift = scalar_op_delay_ps(Opcode.LSR)
        arith = scalar_op_delay_ps(Opcode.ADD)
        flex = scalar_op_delay_ps(Opcode.ADD, flex_shift=True)
        assert logic < shift < arith < flex

    def test_logic_width_independent(self):
        assert (scalar_op_delay_ps(Opcode.AND, effective_width=8)
                == scalar_op_delay_ps(Opcode.AND, effective_width=32))

    def test_arith_width_dependent(self):
        assert (scalar_op_delay_ps(Opcode.ADD, effective_width=8)
                < scalar_op_delay_ps(Opcode.ADD, effective_width=32))

    def test_carry_ops_slower(self):
        assert (scalar_op_delay_ps(Opcode.ADC)
                > scalar_op_delay_ps(Opcode.ADD))

    def test_non_alu_op_rejected(self):
        with pytest.raises(ValueError):
            scalar_op_delay_ps(Opcode.MUL)

    def test_worst_case_fits_clock(self):
        validate_tech(DEFAULT_TECH)
        worst = worst_case_alu_delay_ps()
        assert worst + DEFAULT_TECH.setup_ps <= DEFAULT_TECH.clock_ps

    def test_miscalibrated_tech_rejected(self):
        bad = TechParams(adder_prefix_ps=100.0)
        with pytest.raises(ValueError):
            validate_tech(bad)

    def test_fig1_table_shape(self):
        """Fig. 1's qualitative shape: logic < shifts < arith < composites,
        and everything is positive and below the clock."""
        table = dict(fig1_table())
        assert len(table) == 23
        assert all(0 < ps < DEFAULT_TECH.clock_ps for ps in table.values())
        assert table["MOV"] < table["LSR"] < table["ADD"] < table["ADD-LSR"]
        assert table["ADD-LSR"] == table["SUB-ROR"]
        # logic group spans roughly a quarter of the cycle
        assert table["AND"] / DEFAULT_TECH.clock_ps < 0.35

    def test_more_than_half_cycle_slack_is_common(self):
        """Sec. I: data slack 'can often be as high as half the clock
        period' — logic and shift ops must leave > 50 % slack."""
        for name in ("AND", "ORR", "EOR", "MOV", "LSR", "ROR"):
            ps = dict(fig1_table())[name]
            assert 1 - ps / DEFAULT_TECH.clock_ps > 0.5


class TestSimdTiming:
    def test_type_slack_monotone(self):
        table = type_slack_table()
        assert (table[SimdType.I8] < table[SimdType.I16]
                < table[SimdType.I32] < table[SimdType.I64])

    def test_lane_logic_type_independent(self):
        assert (simd_op_delay_ps(Opcode.VAND, SimdType.I8)
                == simd_op_delay_ps(Opcode.VAND, SimdType.I64))

    def test_lane_adders_type_dependent(self):
        assert (simd_op_delay_ps(Opcode.VADD, SimdType.I8)
                < simd_op_delay_ps(Opcode.VADD, SimdType.I64))

    def test_vmax_slower_than_vadd(self):
        assert (simd_op_delay_ps(Opcode.VMAX, SimdType.I16)
                > simd_op_delay_ps(Opcode.VADD, SimdType.I16))

    def test_vmla_accumulate_within_cycle(self):
        for dtype in SimdType:
            assert (vmla_accumulate_delay_ps(dtype)
                    < DEFAULT_TECH.clock_ps)

    def test_multicycle_op_rejected(self):
        with pytest.raises(ValueError):
            simd_op_delay_ps(Opcode.VMUL, SimdType.I8)

    def test_i64_lane_near_cycle(self):
        """64-bit lanes are the SIMD worst case timing the unit."""
        worst = type_slack_table()[SimdType.I64]
        assert worst / DEFAULT_TECH.clock_ps > 0.8


class TestTimingProperties:
    def test_all_single_cycle_delays_fit_clock(self):
        from repro.isa.opcodes import ARITH_OPS, LOGICAL_OPS, SHIFT_OPS
        for op in ARITH_OPS | LOGICAL_OPS | SHIFT_OPS:
            for width in (1, 8, 16, 24, 32):
                for flex in (False, True):
                    ps = scalar_op_delay_ps(op, effective_width=width,
                                            flex_shift=flex)
                    assert ps + DEFAULT_TECH.setup_ps <= DEFAULT_TECH.clock_ps

    def test_delay_monotone_in_width_for_all_arith(self):
        from repro.isa.opcodes import ARITH_OPS
        for op in ARITH_OPS:
            prev = 0.0
            for width in range(1, 33):
                ps = scalar_op_delay_ps(op, effective_width=width)
                assert ps >= prev
                prev = ps
