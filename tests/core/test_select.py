"""Unit tests for the select arbiter (conventional + skewed, Fig. 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.select import (
    AgeMaskTable,
    SelectRequest,
    multi_grant_bitlevel,
    select_requests,
)


def make_table(n=4, order=None):
    """Table with entries allocated in `order` (defines age)."""
    table = AgeMaskTable(n)
    for idx in order or range(n):
        table.allocate(idx)
    return table


class TestAgeMaskTable:
    def test_allocation_builds_masks(self):
        table = make_table(4)  # allocated 0,1,2,3 in order
        assert table.mask[0] == 0b0000
        assert table.mask[1] == 0b0001
        assert table.mask[3] == 0b0111

    def test_out_of_order_allocation(self):
        table = make_table(4, order=[2, 0, 3, 1])
        # entry 2 is oldest: empty mask; entry 1 is youngest
        assert table.mask[2] == 0
        assert table.mask[1] == 0b1101

    def test_free_clears_bit_everywhere(self):
        table = make_table(4)
        table.free(0)
        assert all((table.mask[j] & 1) == 0 for j in range(4))

    def test_double_allocate_rejected(self):
        table = make_table(2)
        with pytest.raises(ValueError):
            table.allocate(0)

    def test_free_unallocated_rejected(self):
        table = AgeMaskTable(2)
        with pytest.raises(ValueError):
            table.free(0)


class TestConventionalGrant:
    def test_oldest_woken_wins(self):
        table = make_table(4)
        # paper's example: entries 1,2,3 woken; 3's mask would be 0111 but
        # only woken entries matter; oldest woken is 1
        assert table.grant_conventional(0b1110) == 1

    def test_fig9a_example(self):
        """Fig. 9.a: ages such that entry 3 is highest-priority awake."""
        table = make_table(4, order=[0, 3, 1, 2])  # 0 oldest, then 3, 1, 2
        # wakeup = entries 1,2,3 -> oldest woken is 3
        assert table.grant_conventional(0b1110) == 3

    def test_no_request_no_grant(self):
        assert make_table(4).grant_conventional(0) == -1


class TestSkewedGrant:
    def test_fig9b_example(self):
        """Fig. 9.b: entry 2 is the only P request among woken 1,2,3 and
        wins despite being younger than 3."""
        table = make_table(4, order=[0, 3, 1, 2])
        wakeup = 0b1110
        p_array = 0b0100  # only entry 2 is non-speculative
        assert table.grant_skewed(wakeup, p_array) == 2

    def test_all_p_matches_conventional(self):
        table = make_table(4, order=[0, 3, 1, 2])
        wakeup = 0b1110
        assert (table.grant_skewed(wakeup, 0b1111)
                == table.grant_conventional(wakeup))

    def test_all_gp_preserves_age_order(self):
        table = make_table(4, order=[0, 3, 1, 2])
        wakeup = 0b1110
        assert (table.grant_skewed(wakeup, 0b0000)
                == table.grant_conventional(wakeup))

    def test_gp_never_beats_p(self):
        table = make_table(4)
        # entry 0 oldest but speculative; entry 3 youngest but P
        assert table.grant_skewed(0b1001, 0b1000) == 3


class TestMultiGrant:
    def test_grants_in_priority_order(self):
        table = make_table(4)
        granted = multi_grant_bitlevel(table, 0b1111, 0b1111, 2,
                                       skewed=True)
        assert granted == [0, 1]

    def test_p_requests_first_then_gp(self):
        table = make_table(4)
        # entries 0,1 speculative; 2,3 non-speculative
        granted = multi_grant_bitlevel(table, 0b1111, 0b1100, 3,
                                       skewed=True)
        assert granted == [2, 3, 0]

    def test_slots_limit(self):
        table = make_table(4)
        assert len(multi_grant_bitlevel(table, 0b1111, 0b1111, 1,
                                        skewed=True)) == 1


class TestBehaviouralEquivalence:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                    max_size=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=200)
    def test_fast_path_matches_circuit(self, entry_bits, slots):
        """select_requests == the bit-level effective-mask circuit."""
        n = len(entry_bits)
        table = make_table(n)
        wakeup = 0
        p_array = 0
        requests = []
        for i, (woken, is_p) in enumerate(entry_bits):
            if woken:
                wakeup |= 1 << i
                if is_p:
                    p_array |= 1 << i
                requests.append(SelectRequest(entry=i, age=i,
                                              speculative=not is_p))
        circuit = multi_grant_bitlevel(table, wakeup, p_array, slots,
                                       skewed=True)
        fast = [q.entry for q in select_requests(requests, slots,
                                                 skewed=True)]
        assert circuit == fast

    @given(st.lists(st.booleans(), min_size=1, max_size=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_unskewed_equivalence(self, woken_bits, slots):
        n = len(woken_bits)
        table = make_table(n)
        wakeup = sum(1 << i for i, w in enumerate(woken_bits) if w)
        requests = [SelectRequest(entry=i, age=i, speculative=False)
                    for i, w in enumerate(woken_bits) if w]
        circuit = multi_grant_bitlevel(table, wakeup, wakeup, slots,
                                       skewed=False)
        fast = [q.entry for q in select_requests(requests, slots,
                                                 skewed=False)]
        assert circuit == fast

    def test_skew_invariant_no_p_starves(self):
        """No conventional request loses a slot to a speculative one."""
        requests = [
            SelectRequest(entry=0, age=0, speculative=True),
            SelectRequest(entry=1, age=1, speculative=True),
            SelectRequest(entry=2, age=2, speculative=False),
        ]
        granted = select_requests(requests, 1, skewed=True)
        assert granted[0].entry == 2
