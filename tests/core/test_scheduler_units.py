"""Unit tests for the wakeup/eager-issue machinery in core.scheduler."""


from repro.core.config import RecycleMode
from repro.core.scheduler import (
    ReadyQueues,
    consumer_avail_tick,
    eager_issue_allowed,
    last_source_avail,
    other_sources_ready,
    unissued_sources,
    wake_cycle,
)
from repro.core.ticks import DEFAULT_TICK_BASE as BASE
from repro.isa import Instruction, Opcode, r
from repro.isa.opcodes import OpClass
from repro.pipeline.trace import TraceEntry
from repro.pipeline.uop import Uop, UopState


def make_uop(seq=0, op=Opcode.ADD, transparent=True):
    entry = TraceEntry(
        instr=Instruction(op=op, rd=r(0), rn=r(1), rm=r(2)), pc=seq,
        next_pc=seq + 1, taken=False, op_width=8, mem_addr=None,
        mem_size=0, is_store=False)
    uop = Uop(seq, entry)
    uop.transparent = transparent
    return uop


def issue(uop, cycle, start, ex):
    uop.state = UopState.ISSUED
    uop.issue_cycle = cycle
    uop.start_tick = start
    uop.end_tick = start + ex
    uop.avail_tick = uop.end_tick
    uop.sync_avail = BASE.next_edge(uop.end_tick)
    return uop


class TestConsumerAvail:
    def test_transparent_pair_sees_ci(self):
        producer = issue(make_uop(0), 0, 8, 3)
        consumer = make_uop(1)
        assert consumer_avail_tick(producer, consumer) == 11

    def test_sync_consumer_waits_for_edge(self):
        producer = issue(make_uop(0), 0, 8, 3)
        consumer = make_uop(1, transparent=False)
        assert consumer_avail_tick(producer, consumer) == 16

    def test_sync_producer_latches_first(self):
        producer = issue(make_uop(0, transparent=False), 0, 8, 3)
        consumer = make_uop(1)
        assert consumer_avail_tick(producer, consumer) == 16


class TestWakeCycle:
    def test_single_cycle_back_to_back(self):
        producer = issue(make_uop(0), 3, 32, 3)
        consumer = make_uop(1)
        assert wake_cycle(producer, consumer, BASE) == 4

    def test_held_producer_still_wakes_next_cycle(self):
        # producer crosses the edge: end mid next cycle
        producer = issue(make_uop(0), 3, 38, 7)  # ends at 45 (cycle 5)
        consumer = make_uop(1)
        # transparent consumer arrives at cycle_of(45)=5 -> issue at 4
        assert wake_cycle(producer, consumer, BASE) == 4

    def test_sync_consumer_of_held_producer(self):
        producer = issue(make_uop(0), 3, 38, 7)   # sync_avail = 48
        consumer = make_uop(1, transparent=False)
        assert wake_cycle(producer, consumer, BASE) == 5


class TestReadyQueues:
    def test_wake_and_drain(self):
        queues = ReadyQueues()
        uop = make_uop(5)
        queues.schedule_wake(uop, 3)
        queues.advance_to(2)
        assert queues.pending(OpClass.ALU) == []
        queues.advance_to(3)
        assert queues.pending(OpClass.ALU) == [uop]

    def test_pending_is_age_ordered(self):
        queues = ReadyQueues()
        young, old = make_uop(9), make_uop(2)
        queues.schedule_wake(young, 1)
        queues.schedule_wake(old, 1)
        queues.advance_to(1)
        assert [u.seq for u in queues.pending(OpClass.ALU)] == [2, 9]

    def test_issued_uops_pruned_lazily(self):
        queues = ReadyQueues()
        uop = make_uop(1)
        queues.schedule_wake(uop, 1)
        queues.advance_to(1)
        uop.state = UopState.ISSUED
        assert queues.pending(OpClass.ALU) == []

    def test_remove(self):
        queues = ReadyQueues()
        a, b = make_uop(1), make_uop(2)
        queues.schedule_wake(a, 1)
        queues.schedule_wake(b, 1)
        queues.advance_to(1)
        queues.remove(a)
        assert queues.pending(OpClass.ALU) == [b]

    def test_removed_uop_rewoken_appears_exactly_once(self):
        # tombstone remove + re-wake must resurrect the existing slot,
        # never queue a second copy (a duplicate would double-issue)
        queues = ReadyQueues()
        uop = make_uop(1)
        queues.schedule_wake(uop, 1)
        queues.advance_to(1)
        queues.remove(uop)
        assert queues.pending(OpClass.ALU) == []
        queues.schedule_wake(uop, 2)
        queues.schedule_wake(uop, 3)   # duplicate wake: harmless
        queues.advance_to(3)
        assert queues.pending(OpClass.ALU) == [uop]
        assert queues._queues[uop.cls_idx].count(uop) == 1
        assert queues.live_total == 1

    def test_duplicate_wake_of_live_uop_not_requeued(self):
        queues = ReadyQueues()
        uop = make_uop(1)
        queues.schedule_wake(uop, 1)
        queues.schedule_wake(uop, 1)
        queues.advance_to(1)
        assert queues.pending(OpClass.ALU) == [uop]
        assert queues.live_total == 1

    def test_compaction_preserves_order_and_liveness(self):
        # push enough tombstones to trip the amortised compaction and
        # check the survivors stay age-ordered with no duplicates
        queues = ReadyQueues()
        uops = [make_uop(seq) for seq in range(12)]
        for uop in uops:
            queues.schedule_wake(uop, 1)
        queues.advance_to(1)
        for uop in uops[:10]:
            queues.remove(uop)
        lane = queues.lane(uops[0].cls_idx)    # triggers _compact
        assert lane == uops[10:]
        assert queues.live_total == 2
        # a removed-then-rewoken uop re-enters in age order, once
        queues.schedule_wake(uops[3], 2)
        queues.advance_to(2)
        assert [u.seq for u in queues.pending(OpClass.ALU)] == [3, 10, 11]

    def test_stale_wake_of_issued_uop_ignored(self):
        queues = ReadyQueues()
        uop = make_uop(1)
        uop.state = UopState.ISSUED
        queues.schedule_wake(uop, 1)
        queues.advance_to(1)
        assert queues.pending(OpClass.ALU) == []


class TestEagerIssueAllowed:
    def _parent(self, start, ex, cycle=0):
        return issue(make_uop(0), cycle, start, ex)

    def test_allows_within_threshold(self):
        parent = self._parent(8, 3)   # CI = 3
        child = make_uop(1)
        assert eager_issue_allowed(parent, child,
                                   mode=RecycleMode.REDSOC,
                                   threshold=7, base=BASE)

    def test_blocks_beyond_threshold(self):
        parent = self._parent(8, 7)   # CI = 7
        child = make_uop(1)
        assert not eager_issue_allowed(parent, child,
                                       mode=RecycleMode.REDSOC,
                                       threshold=6, base=BASE)

    def test_blocks_when_parent_crosses(self):
        parent = self._parent(13, 7)  # ends at 20, crosses edge 16
        child = make_uop(1)
        assert not eager_issue_allowed(parent, child,
                                       mode=RecycleMode.REDSOC,
                                       threshold=8, base=BASE)

    def test_blocks_in_baseline_mode(self):
        parent = self._parent(8, 3)
        child = make_uop(1)
        assert not eager_issue_allowed(parent, child,
                                       mode=RecycleMode.BASELINE,
                                       threshold=7, base=BASE)

    def test_blocks_non_transparent_child(self):
        parent = self._parent(8, 3)
        child = make_uop(1, transparent=False)
        assert not eager_issue_allowed(parent, child,
                                       mode=RecycleMode.REDSOC,
                                       threshold=7, base=BASE)

    def test_mos_requires_single_cycle_fit(self):
        parent = self._parent(8, 3)
        small_child = make_uop(1)
        small_child.ex_ticks = 4      # 3 + 4 <= 8: fits
        big_child = make_uop(2)
        big_child.ex_ticks = 7        # 3 + 7 > 8: no fusion
        assert eager_issue_allowed(parent, small_child,
                                   mode=RecycleMode.MOS,
                                   threshold=0, base=BASE)
        assert not eager_issue_allowed(parent, big_child,
                                       mode=RecycleMode.MOS,
                                       threshold=0, base=BASE)

    def test_full_cycle_parent_never_recycles(self):
        parent = self._parent(8, 8)   # CI wraps to the edge: no slack
        child = make_uop(1)
        assert not eager_issue_allowed(parent, child,
                                       mode=RecycleMode.REDSOC,
                                       threshold=8, base=BASE)


class TestSourceHelpers:
    def test_unissued_sources(self):
        producer = make_uop(0)
        done = issue(make_uop(1), 0, 8, 3)
        consumer = make_uop(2)
        consumer.sources = [producer, done]
        assert unissued_sources(consumer) == [producer]

    def test_last_source_avail_takes_max(self):
        early = issue(make_uop(0), 0, 8, 3)     # avail 11
        late = issue(make_uop(1), 0, 8, 6)      # avail 14
        consumer = make_uop(2)
        consumer.sources = [early, late]
        assert last_source_avail(consumer, BASE) == 14

    def test_other_sources_ready_checks_deadline(self):
        ontime = issue(make_uop(0), 0, 8, 3)
        consumer = make_uop(2)
        consumer.sources = [ontime]
        assert other_sources_ready(consumer, arrival_cycle=1, base=BASE)
        # a source landing in cycle 3 misses a cycle-1 arrival
        tardy = issue(make_uop(1), 1, 24, 3)
        consumer.sources = [ontime, tardy]
        assert not other_sources_ready(consumer, arrival_cycle=1,
                                       base=BASE)

    def test_unissued_source_blocks_readiness(self):
        consumer = make_uop(2)
        consumer.sources = [make_uop(0)]
        assert not other_sources_ready(consumer, arrival_cycle=5,
                                       base=BASE)

    def test_committed_sources_are_transparent_to_checks(self):
        committed = issue(make_uop(0), 0, 8, 3)
        committed.state = UopState.COMMITTED
        consumer = make_uop(1)
        consumer.sources = [committed]
        assert unissued_sources(consumer) == []
        assert other_sources_ready(consumer, arrival_cycle=0, base=BASE)
