"""Unit tests for the hardware-overhead accounting."""

import pytest

from repro.core import CORES
from repro.core.overheads import (
    StructureCost,
    baseline_inventory,
    overhead_report,
    redsoc_additions,
)


class TestStructureCost:
    def test_energy_is_area_times_activity(self):
        s = StructureCost("x", area=100.0, access_rate=0.5,
                          energy_per_access=0.2)
        assert s.energy == pytest.approx(10.0)


class TestInventories:
    def test_baseline_has_all_major_structures(self):
        inv = baseline_inventory()
        for name in ("L1D cache", "L1I cache", "ROB", "LSQ", "RSE",
                     "register file", "execute units"):
            assert name in inv
            assert inv[name].area > 0

    def test_additions_cover_the_papers_list(self):
        extra = redsoc_additions()
        for name in ("slack LUT", "width predictor",
                     "last-arrival predictor", "RSE slack fields",
                     "CI bus", "transparent-FF muxes", "skewed select"):
            assert name in extra

    def test_slack_lut_is_tiny(self):
        extra = redsoc_additions()
        assert extra["slack LUT"].area < 300  # a few dozen bits + logic

    def test_rse_additions_scale_with_entries(self):
        small = redsoc_additions(CORES["small"])["RSE slack fields"].area
        big = redsoc_additions(CORES["big"])["RSE slack fields"].area
        assert big == pytest.approx(small * 128 / 32)


class TestReport:
    def test_total_fractions_small(self):
        rep = overhead_report()
        assert 0 < rep.area_fraction < 0.05
        assert 0 < rep.energy_fraction < 0.05

    def test_component_fractions_match_papers_order(self):
        rep = overhead_report()
        # predictors ~0.5-1%, RSE machinery ~0.3-1%, both small
        assert rep.predictor_area_fraction < 0.02
        assert rep.rse_area_fraction < 0.015
        assert rep.rse_energy_fraction < 0.02

    def test_select_delay_negligible(self):
        rep = overhead_report()
        assert rep.select_delay_ps / rep.baseline_select_delay_ps <= 0.03

    def test_bigger_core_has_smaller_relative_predictor_cost(self):
        """Predictor tables are fixed-size; the core grows."""
        small = overhead_report(CORES["small"])
        big = overhead_report(CORES["big"])
        assert big.predictor_area_fraction < small.predictor_area_fraction
