"""Engine registry: selection, equivalence, fallback, registration."""

from dataclasses import replace

import pytest

from repro.core import CORES, ENGINES, EngineRegistry, RecycleMode, simulate
from repro.core.compiled import CompiledSimulator
from repro.core.vector import VectorSimulator, simulate_batch
from repro.core.cpu import CoreSimulator
from repro.obs import Recorder
from repro.pipeline.trace import generate_trace
from repro.workloads.suites import SUITES


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(SUITES["ml"]["pool0"](scale=3))


@pytest.fixture(scope="module")
def config():
    return CORES["small"].with_mode(RecycleMode.REDSOC)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert set(ENGINES.names()) >= {"reference", "fast",
                                        "compiled", "vector"}
        for name in ("reference", "fast", "compiled", "vector"):
            assert name in ENGINES

    def test_unknown_engine_is_loud(self, tiny_trace, config):
        with pytest.raises(ValueError, match="unknown engine"):
            ENGINES.create("warp", tiny_trace, config)

    def test_unknown_engine_lists_registered_names(self, tiny_trace,
                                                   config):
        # the error must enumerate what IS registered, vector included
        with pytest.raises(ValueError) as err:
            ENGINES.create("warp", tiny_trace, config)
        message = str(err.value)
        for name in ("reference", "fast", "compiled", "vector"):
            assert name in message

    def test_batch_probe(self):
        assert ENGINES.batch("vector") is not None
        assert ENGINES.batch("reference") is None
        with pytest.raises(ValueError, match="unknown engine"):
            ENGINES.batch("warp")

    def test_reregistration_drops_stale_batch(self):
        registry = EngineRegistry()
        registry.register("x", lambda *a, **k: None,
                          batch=lambda items: [])
        assert registry.batch("x") is not None
        registry.register("x", lambda *a, **k: None)
        assert registry.batch("x") is None

    def test_unknown_engine_via_config(self, tiny_trace, config):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(tiny_trace, replace(config, engine="warp"))

    def test_register_rejects_bad_names(self):
        registry = EngineRegistry()
        with pytest.raises(ValueError):
            registry.register("", lambda *a, **k: None)
        with pytest.raises(ValueError):
            registry.register(None, lambda *a, **k: None)

    def test_registration_order_preserved(self):
        registry = EngineRegistry()
        registry.register("b", lambda *a, **k: None)
        registry.register("a", lambda *a, **k: None)
        assert registry.names() == ("b", "a")

    def test_default_engine_is_fast(self, config):
        assert config.engine == "fast"


class TestBackendSelection:
    def test_reference_pins_step_loop(self, tiny_trace, config):
        runner = ENGINES.create("reference", tiny_trace, config)
        assert isinstance(runner, CoreSimulator)
        assert runner._force_step

    def test_fast_is_the_event_driven_simulator(self, tiny_trace, config):
        runner = ENGINES.create("fast", tiny_trace, config)
        assert isinstance(runner, CoreSimulator)
        assert not runner._force_step

    def test_compiled_backend(self, tiny_trace, config):
        runner = ENGINES.create("compiled", tiny_trace, config)
        assert isinstance(runner, CompiledSimulator)

    def test_compiled_falls_back_under_observation(self, tiny_trace,
                                                   config):
        # the compiled loop has no probe points: observed runs must
        # route to the reference simulator so traces stay complete
        runner = ENGINES.create("compiled", tiny_trace, config,
                                obs=Recorder())
        assert isinstance(runner, CoreSimulator)

    def test_vector_backend(self, tiny_trace, config):
        runner = ENGINES.create("vector", tiny_trace, config)
        assert isinstance(runner, VectorSimulator)

    def test_vector_falls_back_under_observation(self, tiny_trace,
                                                 config):
        runner = ENGINES.create("vector", tiny_trace, config,
                                obs=Recorder())
        assert isinstance(runner, CoreSimulator)


class TestBackendEquivalence:
    @pytest.mark.parametrize("mode", list(RecycleMode))
    def test_engines_bit_identical(self, tiny_trace, mode):
        config = CORES["small"].with_mode(mode)
        stats = [simulate(tiny_trace, replace(config, engine=e)).stats
                 for e in ("reference", "fast", "compiled", "vector")]
        assert stats[0] == stats[1] == stats[2] == stats[3]

    def test_batched_replay_matches_single_runs(self, tiny_trace):
        items = [(tiny_trace, replace(CORES[core].with_mode(mode),
                                      engine="vector"))
                 for core in ("small", "big")
                 for mode in RecycleMode]
        batched = simulate_batch(items)
        for (trace, cfg), result in zip(items, batched):
            assert result.stats == simulate(trace, cfg).stats

    def test_observed_run_matches_unobserved(self, tiny_trace, config):
        plain = simulate(tiny_trace, replace(config, engine="compiled"))
        observed = simulate(tiny_trace,
                            replace(config, engine="compiled"),
                            obs=Recorder())
        assert observed.stats == plain.stats
