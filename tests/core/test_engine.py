"""Engine registry: selection, equivalence, fallback, registration."""

from dataclasses import replace

import pytest

from repro.core import CORES, ENGINES, EngineRegistry, RecycleMode, simulate
from repro.core.compiled import CompiledSimulator
from repro.core.cpu import CoreSimulator
from repro.obs import Recorder
from repro.pipeline.trace import generate_trace
from repro.workloads.suites import SUITES


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(SUITES["ml"]["pool0"](scale=3))


@pytest.fixture(scope="module")
def config():
    return CORES["small"].with_mode(RecycleMode.REDSOC)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert set(ENGINES.names()) >= {"reference", "fast", "compiled"}
        for name in ("reference", "fast", "compiled"):
            assert name in ENGINES

    def test_unknown_engine_is_loud(self, tiny_trace, config):
        with pytest.raises(ValueError, match="unknown engine"):
            ENGINES.create("warp", tiny_trace, config)

    def test_unknown_engine_via_config(self, tiny_trace, config):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(tiny_trace, replace(config, engine="warp"))

    def test_register_rejects_bad_names(self):
        registry = EngineRegistry()
        with pytest.raises(ValueError):
            registry.register("", lambda *a, **k: None)
        with pytest.raises(ValueError):
            registry.register(None, lambda *a, **k: None)

    def test_registration_order_preserved(self):
        registry = EngineRegistry()
        registry.register("b", lambda *a, **k: None)
        registry.register("a", lambda *a, **k: None)
        assert registry.names() == ("b", "a")

    def test_default_engine_is_fast(self, config):
        assert config.engine == "fast"


class TestBackendSelection:
    def test_reference_pins_step_loop(self, tiny_trace, config):
        runner = ENGINES.create("reference", tiny_trace, config)
        assert isinstance(runner, CoreSimulator)
        assert runner._force_step

    def test_fast_is_the_event_driven_simulator(self, tiny_trace, config):
        runner = ENGINES.create("fast", tiny_trace, config)
        assert isinstance(runner, CoreSimulator)
        assert not runner._force_step

    def test_compiled_backend(self, tiny_trace, config):
        runner = ENGINES.create("compiled", tiny_trace, config)
        assert isinstance(runner, CompiledSimulator)

    def test_compiled_falls_back_under_observation(self, tiny_trace,
                                                   config):
        # the compiled loop has no probe points: observed runs must
        # route to the reference simulator so traces stay complete
        runner = ENGINES.create("compiled", tiny_trace, config,
                                obs=Recorder())
        assert isinstance(runner, CoreSimulator)


class TestBackendEquivalence:
    @pytest.mark.parametrize("mode", list(RecycleMode))
    def test_engines_bit_identical(self, tiny_trace, mode):
        config = CORES["small"].with_mode(mode)
        stats = [simulate(tiny_trace, replace(config, engine=e)).stats
                 for e in ("reference", "fast", "compiled")]
        assert stats[0] == stats[1] == stats[2]

    def test_observed_run_matches_unobserved(self, tiny_trace, config):
        plain = simulate(tiny_trace, replace(config, engine="compiled"))
        observed = simulate(tiny_trace,
                            replace(config, engine="compiled"),
                            obs=Recorder())
        assert observed.stats == plain.stats
