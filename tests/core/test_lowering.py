"""Lowering pass: column round-trip, dataflow, blocks, property tests."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CORES, RecycleMode, simulate
from repro.core.lower import (
    MAX_BLOCK_LEN,
    lower_trace,
    lowering_digest,
)
from repro.isa.opcodes import OpClass
from repro.pipeline.trace import generate_trace
from repro.verify.generator import GenConfig, ProgramGenerator, materialize
from repro.workloads.suites import SUITES


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SUITES["mibench"]["bitcnt"](scale=12))


@pytest.fixture(scope="module")
def lowered(trace):
    return lower_trace(trace)


class TestColumnsRoundTrip:
    def test_every_entry_round_trips(self, trace, lowered):
        assert lowered.n == len(trace.entries)
        for i, entry in enumerate(trace.entries):
            assert lowered.entry_tuple(i) == (
                entry.instr, entry.pc, entry.next_pc, entry.taken,
                entry.op_width, entry.mem_addr, entry.mem_size or 0,
                entry.is_store, entry.cls)

    def test_static_table_is_keyed_by_pc(self, trace, lowered):
        for i, entry in enumerate(trace.entries):
            sidx = lowered.static_idx[i]
            assert lowered.instrs[sidx] is entry.instr
            assert lowered.static_pcs[sidx] == entry.pc

    def test_memoized_on_trace(self, trace, lowered):
        assert lower_trace(trace) is lowered


class TestStaticDataflow:
    def test_producers_match_a_dynamic_rat(self, trace, lowered):
        rat = {}
        for i, entry in enumerate(trace.entries):
            expected = []
            for reg in entry.instr.sources():
                p = rat.get(reg)
                if p is not None and p not in expected:
                    expected.append(p)
            assert lowered.producers[i] == tuple(expected)
            for reg in entry.instr.dests():
                rat[reg] = i

    def test_order_dep_is_youngest_older_overlapping_store(
            self, trace, lowered):
        for i, entry in enumerate(trace.entries):
            if entry.cls is not OpClass.LOAD:
                assert lowered.order_dep[i] == -1
                continue
            lo, hi = entry.mem_addr, entry.mem_addr + entry.mem_size
            expected = -1
            for j in range(i):
                other = trace.entries[j]
                if not other.is_store:
                    continue
                s_lo = other.mem_addr
                if s_lo < hi and lo < s_lo + other.mem_size:
                    expected = j
            assert lowered.order_dep[i] == expected

    def test_dependents_are_sorted_and_inverse_of_producers(
            self, trace, lowered):
        for i in range(lowered.n):
            deps = lowered.dependents[i]
            assert list(deps) == sorted(deps)
        for child in range(lowered.n):
            for p in lowered.producers[child]:
                assert child in lowered.dependents[p]
            od = lowered.order_dep[child]
            if od >= 0:
                assert child in lowered.dependents[od]


class TestBasicBlocks:
    def test_blocks_partition_the_trace(self, trace, lowered):
        for i in range(lowered.n):
            bid = lowered.block_id[i]
            off = lowered.block_offset[i]
            block = lowered.blocks[bid]
            assert len(block) <= MAX_BLOCK_LEN
            assert block[off] == lowered.static_idx[i]

    def test_blocks_end_at_branches_and_discontinuities(
            self, trace, lowered):
        # inside a block, control flow is straight-line: no branch and
        # next_pc == pc + 1 everywhere except the last slot
        for i in range(lowered.n - 1):
            same_block = (
                lowered.block_id[i + 1] == lowered.block_id[i]
                and lowered.block_offset[i + 1]
                == lowered.block_offset[i] + 1)
            if same_block:
                entry = trace.entries[i]
                assert entry.cls is not OpClass.BRANCH
                assert entry.next_pc == entry.pc + 1

    def test_loop_iterations_share_one_block(self):
        # a counted loop re-executes the same straight-line body; the
        # dedup by static-pc tuple must map every iteration to the same
        # block id
        trace = generate_trace(SUITES["ml"]["act"](scale=16))
        low = lower_trace(trace)
        assert len(low.blocks) < len(
            [s for starts in low.block_starts.values() for s in starts])
        for bid, starts in low.block_starts.items():
            for start in starts:
                assert low.block_id[start] == bid
                assert low.block_offset[start] == 0


class TestLoweringDigest:
    def test_shape_and_stability(self):
        digest = lowering_digest()
        assert len(digest) == 16
        int(digest, 16)     # hex
        assert lowering_digest() == digest


class TestLoweredExecutionProperty:
    """Seeded repro.verify programs: lowered execution == reference."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           mode=st.sampled_from([RecycleMode.BASELINE,
                                 RecycleMode.REDSOC,
                                 RecycleMode.MOS]))
    def test_engines_match_reference(self, seed, mode):
        spec = ProgramGenerator(seed, GenConfig()).spec(0)
        trace = generate_trace(materialize(spec))
        config = CORES["small"].with_mode(mode)
        ref = simulate(trace, replace(config, engine="reference"))
        for engine in ("fast", "compiled", "vector"):
            run = simulate(trace, replace(config, engine=engine))
            assert run.stats == ref.stats, engine
