"""Unit tests for the width and last-arrival predictors."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.last_arrival import LastArrivalPredictor
from repro.core.width_predictor import MAX_WIDTH, WidthPredictor


class TestWidthPredictorBasics:
    def test_initial_prediction_is_conservative(self):
        pred = WidthPredictor()
        assert pred.predict(0x40) == MAX_WIDTH

    def test_needs_saturation_before_trusting(self):
        pred = WidthPredictor(confidence_bits=2)
        pc = 0x10
        pred.update(pc, 8)
        assert pred.predict(pc) == MAX_WIDTH  # confidence 0 -> reset path
        pred.update(pc, 8)
        pred.update(pc, 8)
        pred.update(pc, 8)
        assert pred.predict(pc) == 8

    def test_mismatch_resets_confidence(self):
        pred = WidthPredictor(confidence_bits=2)
        pc = 0x10
        for _ in range(4):
            pred.update(pc, 8)
        assert pred.predict(pc) == 8
        pred.update(pc, 32)
        assert pred.predict(pc) == MAX_WIDTH

    def test_widths_train_at_class_granularity(self):
        pred = WidthPredictor(confidence_bits=1)
        pc = 0
        pred.update(pc, 11)  # class 16
        pred.update(pc, 14)  # class 16 again -> saturates 1-bit counter
        assert pred.predict(pc) == 16

    def test_aliasing_uses_modulo_index(self):
        pred = WidthPredictor(entries=16, confidence_bits=1)
        pred.update(0, 8)
        pred.update(16, 8)  # same entry
        assert pred.predict(0) == 8

    def test_state_bytes_about_1_5kb(self):
        """Paper: 4K-entry predictor needs ~1.5 KB of state."""
        pred = WidthPredictor(entries=4096, confidence_bits=2)
        assert 1024 <= pred.state_bytes() <= 3072


class TestWidthPredictorOutcomes:
    def test_exact_outcome(self):
        pred = WidthPredictor()
        assert pred.record_outcome(8, 7) is False
        assert pred.stats.exact == 1

    def test_conservative_outcome_not_aggressive(self):
        pred = WidthPredictor()
        assert pred.record_outcome(32, 5) is False
        assert pred.stats.conservative == 1

    def test_aggressive_outcome_flagged(self):
        pred = WidthPredictor()
        assert pred.record_outcome(8, 20) is True
        assert pred.stats.aggressive == 1

    def test_rates(self):
        pred = WidthPredictor()
        pred.record_outcome(8, 7)
        pred.record_outcome(8, 30)
        assert pred.stats.aggressive_rate == 0.5
        assert pred.stats.accuracy == 0.5

    def test_stable_width_stream_converges(self):
        """A PC that always sees 8-bit data ends up predicted narrow with
        no aggressive errors."""
        pred = WidthPredictor(confidence_bits=2)
        pc = 0x100
        aggressive = 0
        for _ in range(100):
            predicted = pred.predict(pc)
            actual = 6
            if pred.record_outcome(predicted, actual):
                aggressive += 1
            pred.update(pc, actual)
        assert aggressive == 0
        assert pred.predict(pc) == 8

    def test_alternating_stream_stays_conservative(self):
        """Widths that never repeat keep confidence low -> conservative
        prediction -> zero aggressive errors (the resetting property)."""
        pred = WidthPredictor(confidence_bits=2)
        pc = 0x200
        widths = [6, 30, 12, 28, 6, 30, 12, 28] * 10
        aggressive = 0
        for actual in widths:
            predicted = pred.predict(pc)
            if pred.record_outcome(predicted, actual):
                aggressive += 1
            pred.update(pc, actual)
        assert aggressive == 0


@given(st.lists(st.integers(min_value=1, max_value=32), min_size=1,
                max_size=200))
def test_width_predictor_aggressive_only_after_saturation(widths):
    """Property: an aggressive error can only happen when the predictor
    was confident, which requires `max_confidence` consecutive repeats
    immediately before — so any aggressive error was preceded by a run of
    the same (narrower) class."""
    pred = WidthPredictor(entries=1, confidence_bits=2)
    from repro.isa.semantics import width_bucket
    history = []
    for actual in widths:
        predicted = pred.predict(0)
        aggressive = pred.record_outcome(predicted, actual)
        if aggressive:
            assert len(history) >= 3
            last = history[-3:]
            assert len({width_bucket(w) for w in last}) == 1
            assert width_bucket(last[-1]) == predicted
        pred.update(0, actual)
        history.append(actual)


class TestLastArrivalPredictor:
    def test_default_predicts_second_last(self):
        pred = LastArrivalPredictor()
        assert pred.predict_second_last(123) is True

    def test_training_flips_prediction(self):
        pred = LastArrivalPredictor()
        pred.update(5, second_was_last=False)
        assert pred.predict_second_last(5) is False

    def test_outcome_accounting(self):
        pred = LastArrivalPredictor()
        assert pred.record_outcome(True, True) is False
        assert pred.record_outcome(True, False) is True
        assert pred.stats.predictions == 2
        assert pred.stats.mispredictions == 1
        assert pred.stats.misprediction_rate == 0.5

    def test_stable_pattern_perfectly_predicted(self):
        pred = LastArrivalPredictor()
        pc = 77
        wrong = 0
        for _ in range(50):
            predicted = pred.predict_second_last(pc)
            if pred.record_outcome(predicted, second_was_last=False):
                wrong += 1
            pred.update(pc, second_was_last=False)
        assert wrong <= 1  # only the cold first prediction can miss

    def test_state_is_1k_bits(self):
        assert LastArrivalPredictor(entries=1024).state_bytes() == 128

    def test_index_aliasing(self):
        pred = LastArrivalPredictor(entries=8)
        pred.update(0, False)
        assert pred.predict_second_last(8) is False
