"""Unit tests for the PVT drift / CPM / recalibration machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pvt import (
    NOMINAL_TEMP_C,
    NOMINAL_VOLTAGE,
    CriticalPathMonitor,
    DriftScenario,
    PVTCondition,
    PVTRecalibrator,
    SCENARIOS,
    delay_scale,
    recalibration_report,
)
from repro.core.slack_lut import SlackLUT


class TestDelayScale:
    def test_nominal_is_unity(self):
        assert delay_scale(PVTCondition()) == pytest.approx(1.0)

    def test_lower_voltage_is_slower(self):
        low = delay_scale(PVTCondition(voltage=0.95))
        assert low > 1.0

    def test_hotter_is_slower(self):
        hot = delay_scale(PVTCondition(temp_c=NOMINAL_TEMP_C + 30))
        assert hot > 1.0

    def test_fast_process_is_faster(self):
        fast = delay_scale(PVTCondition(process=0.9))
        assert fast < 1.0

    @given(st.floats(min_value=0.85, max_value=1.2),
           st.floats(min_value=0.0, max_value=110.0))
    def test_scale_monotone_in_stress(self, voltage, temp):
        base = delay_scale(PVTCondition(voltage=voltage, temp_c=temp))
        worse = delay_scale(PVTCondition(voltage=voltage - 0.02,
                                         temp_c=temp + 5))
        assert worse > base


class TestDriftScenario:
    def test_thermal_ramp_saturates(self):
        scenario = SCENARIOS["thermal-ramp"]
        early = scenario.condition_at(0).temp_c
        late = scenario.condition_at(5_000_000).temp_c
        assert early == pytest.approx(NOMINAL_TEMP_C)
        assert late == pytest.approx(NOMINAL_TEMP_C
                                     + scenario.ramp_temp_c, abs=0.5)

    def test_droops_are_periodic(self):
        scenario = SCENARIOS["droopy"]
        in_droop = scenario.condition_at(scenario.droop_period)
        outside = scenario.condition_at(scenario.droop_period
                                        + scenario.droop_width + 1)
        assert in_droop.voltage < outside.voltage

    def test_nominal_scenario_flat_voltage(self):
        scenario = SCENARIOS["nominal"]
        assert scenario.condition_at(123_456).voltage == NOMINAL_VOLTAGE

    def test_corners(self):
        assert SCENARIOS["slow-corner"].scale_at(0) > 1.0
        assert SCENARIOS["fast-corner"].scale_at(0) < 1.0

    def test_deterministic(self):
        s = DriftScenario(name="x", droop_depth_v=0.06)
        assert s.scale_at(70_000) == s.scale_at(70_000)


class TestCPM:
    def test_sensing_is_conservative(self):
        cpm = CriticalPathMonitor()
        assert cpm.sense(1.0) >= 1.0
        assert cpm.sense(1.037) >= 1.037

    def test_quantisation_rounds_up(self):
        cpm = CriticalPathMonitor(quantum=0.05, guard_band=0.0)
        assert cpm.sense(1.01) == pytest.approx(1.05)

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            CriticalPathMonitor(quantum=0.0)

    @given(st.floats(min_value=0.8, max_value=1.3))
    def test_never_under_reports(self, true_scale):
        cpm = CriticalPathMonitor()
        assert cpm.sense(true_scale) >= true_scale


class TestRecalibrator:
    def test_fires_on_interval(self):
        lut = SlackLUT()
        recal = PVTRecalibrator(lut, SCENARIOS["thermal-ramp"],
                                interval=1000)
        fired = sum(recal.tick(c) for c in range(0, 5000, 500))
        assert fired == 5  # cycles 0,1000,...,4000
        assert len(recal.events) == 5

    def test_lut_tracks_drift(self):
        lut = SlackLUT()
        before = sum(lut.buckets().values())
        recal = PVTRecalibrator(lut, SCENARIOS["slow-corner"],
                                interval=1000)
        recal.tick(1000)
        after = sum(lut.buckets().values())
        assert after >= before  # slow silicon -> longer EX-TIMEs

    def test_report_is_safe_under_all_scenarios(self):
        for name, scenario in SCENARIOS.items():
            report = recalibration_report(scenario, cycles=100_000,
                                          interval=10_000)
            assert report["unsafe_windows"] <= report["windows"] * 0.1, name

    def test_report_retains_most_slack(self):
        report = recalibration_report(SCENARIOS["thermal-ramp"],
                                      cycles=100_000)
        assert report["retained_slack"] > 0.7


class TestCornerSimulation:
    def test_slow_corner_recycles_less(self):
        from repro.core import BIG, RecycleMode, simulate
        from repro.isa import Asm, Cond, r

        a = Asm("chain")
        a.mov(r(1), 1)
        a.mov(r(2), 300)
        a.label("loop")
        for _ in range(4):
            a.add(r(1), r(1), 0x1000000)
        a.subs(r(2), r(2), 1)
        a.b("loop", cond=Cond.NE)
        a.halt()
        program = a.finish()
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        nominal = simulate(program, BIG)
        slow = simulate(program, BIG.variant(pvt_scale=1.1))
        fast = simulate(program, BIG.variant(pvt_scale=0.85))
        nominal_gain = base.cycles / nominal.cycles
        slow_gain = base.cycles / slow.cycles
        fast_gain = base.cycles / fast.cycles
        assert fast_gain >= nominal_gain >= slow_gain
