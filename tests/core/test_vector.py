"""Vector engine: batch lanes, decode memoization, edge cases."""

from dataclasses import replace

import pytest

from repro.core import CORES, RecycleMode, simulate
from repro.core.lower import lower_trace
from repro.core.vector import (
    VectorSimulator,
    _decode_key,
    simulate_batch,
)
from repro.pipeline.trace import Trace, generate_trace
from repro.workloads.suites import SUITES


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(SUITES["ml"]["pool0"](scale=3))


@pytest.fixture(scope="module")
def other_trace():
    # a different workload at a different scale: ragged lane lengths
    return generate_trace(SUITES["mibench"]["crc"](scale=2))


def _cfg(core="small", mode=RecycleMode.REDSOC):
    return replace(CORES[core].with_mode(mode), engine="vector")


def _empty_trace():
    return Trace(name="empty", entries=[], final_regs={}, final_mem={})


class TestSingleRun:
    def test_run_matches_reference(self, small_trace):
        vec = VectorSimulator(small_trace, _cfg()).run()
        ref = simulate(small_trace, replace(_cfg(), engine="reference"))
        assert vec.stats == ref.stats

    def test_empty_trace(self):
        result = VectorSimulator(_empty_trace(), _cfg()).run()
        assert result.stats.cycles == 0
        assert result.stats.committed == 0

    def test_repeat_runs_are_deterministic(self, small_trace):
        # the decode memo and the per-run ex copy must not leak width
        # predictions (or any other state) between runs
        first = VectorSimulator(small_trace, _cfg()).run()
        second = VectorSimulator(small_trace, _cfg()).run()
        assert first.stats == second.stats


class TestDecodeMemo:
    def test_redsoc_and_mos_share_decode(self, small_trace):
        # decode depends on recycling on/off only, never the flavour
        assert _decode_key(_cfg(mode=RecycleMode.REDSOC)) == \
            _decode_key(_cfg(mode=RecycleMode.MOS))
        assert _decode_key(_cfg(mode=RecycleMode.BASELINE)) != \
            _decode_key(_cfg(mode=RecycleMode.REDSOC))

    def test_memo_lands_on_lowered_trace(self, small_trace):
        VectorSimulator(small_trace, _cfg()).run()
        low = lower_trace(small_trace)
        assert _decode_key(_cfg()) in low._vector_decode


class TestBatchLanes:
    def test_k_equals_one(self, small_trace):
        cfg = _cfg()
        (result,) = simulate_batch([(small_trace, cfg)])
        assert result.stats == simulate(small_trace, cfg).stats

    def test_empty_items(self):
        assert simulate_batch([]) == []

    def test_ragged_lane_lengths(self, small_trace, other_trace):
        # lanes of different trace lengths share one concatenated
        # decode pass; results must match unbatched runs lane by lane
        items = [(small_trace, _cfg()), (other_trace, _cfg()),
                 (small_trace, _cfg("big"))]
        results = simulate_batch(items)
        for (trace, cfg), result in zip(items, results):
            assert result.stats == simulate(trace, cfg).stats

    def test_empty_trace_lane(self, small_trace):
        items = [(_empty_trace(), _cfg()), (small_trace, _cfg())]
        empty, real = simulate_batch(items)
        assert empty.stats.cycles == 0
        assert real.stats == simulate(small_trace, _cfg()).stats

    def test_duplicate_trace_lanes(self, small_trace):
        # the same trace under several configs: one lowering, decode
        # computed once per distinct decode key
        items = [(small_trace, _cfg(mode=m)) for m in RecycleMode]
        results = simulate_batch(items)
        for (trace, cfg), result in zip(items, results):
            assert result.stats == simulate(trace, cfg).stats

    def test_lane_times_telemetry(self, small_trace, other_trace):
        lane_times = []
        simulate_batch([(small_trace, _cfg()), (other_trace, _cfg())],
                       lane_times=lane_times)
        assert len(lane_times) == 2
        assert all(t > 0 for t in lane_times)

    def test_rejects_programs(self):
        with pytest.raises(TypeError, match="pre-generated Traces"):
            simulate_batch([(SUITES["ml"]["pool0"](scale=3), _cfg())])

    def test_order_preserved(self, small_trace, other_trace):
        items = [(other_trace, _cfg()), (small_trace, _cfg())]
        results = simulate_batch(items)
        assert results[0].name == other_trace.name
        assert results[1].name == small_trace.name
