"""Unit tests for transparent-execution timing (Fig. 4 semantics)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ticks import DEFAULT_TICK_BASE as BASE
from repro.core.transparent import (
    SequenceTracker,
    resolve_execution,
)


class TestResolveExecution:
    def test_synchronous_op_starts_at_edge(self):
        t = resolve_execution(arrival_cycle=2, source_avail=13, ex_ticks=4,
                              transparent=False, base=BASE)
        assert t.start_tick == 16
        assert not t.recycled

    def test_transparent_op_starts_at_producer_ci(self):
        # producer completes at tick 19 (mid cycle 2); consumer arrives
        # in cycle 2 and starts exactly there
        t = resolve_execution(arrival_cycle=2, source_avail=19, ex_ticks=3,
                              transparent=True, base=BASE)
        assert t.start_tick == 19
        assert t.end_tick == 22
        assert t.recycled

    def test_early_source_means_edge_start(self):
        t = resolve_execution(arrival_cycle=2, source_avail=5, ex_ticks=3,
                              transparent=True, base=BASE)
        assert t.start_tick == 16
        assert not t.recycled

    def test_extra_cycle_hold_on_boundary_cross(self):
        # start 19, ex 7 -> end 26 crosses edge 24
        t = resolve_execution(arrival_cycle=2, source_avail=19, ex_ticks=7,
                              transparent=True, base=BASE)
        assert t.extra_cycle_hold

    def test_no_hold_when_exactly_at_edge(self):
        # start 16, ex 8 -> end 24 == edge: not crossing
        t = resolve_execution(arrival_cycle=2, source_avail=10, ex_ticks=8,
                              transparent=True, base=BASE)
        assert not t.extra_cycle_hold

    def test_sync_avail_rounds_up(self):
        t = resolve_execution(arrival_cycle=2, source_avail=19, ex_ticks=3,
                              transparent=True, base=BASE)
        assert t.avail_tick == 22
        assert t.sync_avail_tick == 24

    def test_fig4_walkthrough(self):
        """The paper's Fig. 4.c example: 0.8 ns, 0.6 ns, 0.5 ns ops on a
        0.5 ns clock -> in ticks (1 tick = 62.5 ps): 13, 10, 8 ticks on a
        16-tick... scaled to our 8-tick cycle: ex = 7, 5, 4."""
        x1 = resolve_execution(arrival_cycle=1, source_avail=0, ex_ticks=7,
                               transparent=True, base=BASE)
        assert (x1.start_tick, x1.end_tick) == (8, 15)
        assert not x1.extra_cycle_hold          # ends within cycle 1
        x2 = resolve_execution(arrival_cycle=1, source_avail=x1.avail_tick,
                               ex_ticks=5, transparent=True, base=BASE)
        assert x2.start_tick == 15              # starts at x1's completion
        assert x2.end_tick == 20
        assert x2.extra_cycle_hold              # crosses the edge at 16
        x3 = resolve_execution(arrival_cycle=2, source_avail=x2.avail_tick,
                               ex_ticks=4, transparent=True, base=BASE)
        assert x3.start_tick == 20
        assert x3.end_tick == 24
        # a true-synchronous successor clocks at the edge: tick 24 =
        # cycle 3, one cycle earlier than the pure synchronous baseline
        # (which needs cycles 1,2,3 -> result at edge 32)
        assert x3.sync_avail_tick == 24


@given(st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=120),
       st.integers(min_value=1, max_value=8),
       st.booleans())
def test_resolution_invariants(arrival, avail, ex, transparent):
    t = resolve_execution(arrival_cycle=arrival, source_avail=avail,
                          ex_ticks=ex, transparent=transparent, base=BASE)
    # never starts before the FU-arrival edge nor before the operand
    assert t.start_tick >= BASE.cycle_start(arrival)
    assert t.start_tick >= (avail if transparent else min(avail, t.start_tick))
    assert t.end_tick == t.start_tick + ex
    assert t.sync_avail_tick >= t.avail_tick
    assert t.sync_avail_tick % BASE.ticks_per_cycle == 0
    # synchronous ops never start mid-cycle
    if not transparent:
        assert t.start_tick % BASE.ticks_per_cycle == 0
        assert not t.recycled


@given(st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=120),
       st.integers(min_value=1, max_value=8))
def test_transparent_never_slower_than_sync(arrival, avail, ex):
    trans = resolve_execution(arrival_cycle=arrival, source_avail=avail,
                              ex_ticks=ex, transparent=True, base=BASE)
    sync = resolve_execution(arrival_cycle=arrival, source_avail=avail,
                             ex_ticks=ex, transparent=False, base=BASE)
    assert trans.end_tick <= sync.end_tick


class TestSequenceTracker:
    def test_single_op_chain(self):
        tracker = SequenceTracker()
        tracker.start_chain()
        assert tracker.lengths() == [1]
        assert tracker.expected_length() == 1.0

    def test_extension(self):
        tracker = SequenceTracker()
        c = tracker.start_chain()
        assert tracker.extend_chain(c) == c
        assert tracker.lengths() == [2]

    def test_extend_unknown_starts_new(self):
        tracker = SequenceTracker()
        tracker.extend_chain(None)
        assert tracker.lengths() == [1]

    def test_expected_length_is_length_weighted(self):
        tracker = SequenceTracker()
        a = tracker.start_chain()
        for _ in range(3):
            tracker.extend_chain(a)          # chain of 4
        tracker.start_chain()                # chain of 1
        tracker.start_chain()                # chain of 1
        # plain mean = 2.0; weighted EV = (16+1+1)/6 = 3.0
        assert tracker.mean_length() == 2.0
        assert tracker.expected_length() == 3.0

    def test_multi_op_sequences(self):
        tracker = SequenceTracker()
        a = tracker.start_chain()
        tracker.extend_chain(a)
        tracker.start_chain()
        assert tracker.multi_op_sequences() == 1
