"""Unit and property tests for the tick time base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ticks import DEFAULT_TICK_BASE, TickBase


class TestTickBase:
    def test_default_is_3_bits(self):
        assert DEFAULT_TICK_BASE.ticks_per_cycle == 8
        assert DEFAULT_TICK_BASE.precision_bits == 3

    def test_ps_per_tick(self):
        assert DEFAULT_TICK_BASE.ps_per_tick == 62.5

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            TickBase(ticks_per_cycle=6)

    def test_quantisation_is_ceil(self):
        base = DEFAULT_TICK_BASE
        assert base.ps_to_ticks(62.5) == 1
        assert base.ps_to_ticks(62.6) == 2
        assert base.ps_to_ticks(1.0) == 1

    def test_zero_delay_still_costs_a_tick(self):
        assert DEFAULT_TICK_BASE.ps_to_ticks(0.0) == 1

    def test_cycle_math(self):
        base = DEFAULT_TICK_BASE
        assert base.cycle_of(17) == 2
        assert base.tick_in_cycle(17) == 1
        assert base.cycle_start(3) == 24
        assert base.next_edge(17) == 24
        assert base.next_edge(16) == 16

    def test_ex_time_clamped_to_cycle(self):
        base = DEFAULT_TICK_BASE
        assert base.ex_time_ticks(10_000.0) == 8

    @pytest.mark.parametrize("bits,ticks", [(1, 2), (2, 4), (3, 8),
                                            (4, 16), (5, 32)])
    def test_precision_sweep_instantiation(self, bits, ticks):
        base = TickBase(ticks_per_cycle=ticks)
        assert base.precision_bits == bits


class TestTickEdgeCases:
    """Boundary behaviour the event-driven fast loop leans on."""

    def test_next_edge_at_exact_edges_is_identity(self):
        # a value already on a clock edge must not round up a cycle:
        # the fast loop's skip target would otherwise drift past
        # wakeups scheduled exactly on the edge
        base = DEFAULT_TICK_BASE
        for cycle in (0, 1, 2, 7, 100):
            edge = cycle * base.ticks_per_cycle
            assert base.next_edge(edge) == edge

    def test_next_edge_one_tick_before_and_after_edge(self):
        base = DEFAULT_TICK_BASE
        assert base.next_edge(15) == 16
        assert base.next_edge(17) == 24

    def test_next_edge_zero(self):
        assert DEFAULT_TICK_BASE.next_edge(0) == 0

    def test_cycle_of_tick_zero(self):
        base = DEFAULT_TICK_BASE
        assert base.cycle_of(0) == 0
        assert base.tick_in_cycle(0) == 0

    def test_cycle_of_at_cycle_boundaries(self):
        # the first tick of cycle N belongs to N, the last to N too
        base = DEFAULT_TICK_BASE
        assert base.cycle_of(8) == 1
        assert base.cycle_of(7) == 0
        assert base.cycle_of(15) == 1
        assert base.cycle_of(16) == 2

    def test_ex_time_ticks_at_bucket_boundaries(self):
        # raw + bypass landing exactly on a tick boundary must not
        # bump into the next bucket; one epsilon past it must
        base = DEFAULT_TICK_BASE          # 62.5 ps/tick, 20 ps bypass
        assert base.ex_time_ticks(105.0) == 2      # 125.0 = 2 ticks
        assert base.ex_time_ticks(105.1) == 3      # 125.1 -> ceil 3
        assert base.ex_time_ticks(104.9) == 2

    def test_ex_time_ticks_minimum_one_tick(self):
        assert DEFAULT_TICK_BASE.ex_time_ticks(0.0) == 1

    def test_ex_time_ticks_clamp_boundary(self):
        # exactly one full cycle is allowed; anything past it clamps
        base = DEFAULT_TICK_BASE          # cycle = 500 ps
        assert base.ex_time_ticks(480.0) == 8      # 500.0 exactly
        assert base.ex_time_ticks(480.1) == 8      # clamped

    @pytest.mark.parametrize("ticks", [2, 4, 16, 32])
    def test_next_edge_exact_edges_other_bases(self, ticks):
        base = TickBase(ticks_per_cycle=ticks)
        assert base.next_edge(ticks) == ticks
        assert base.next_edge(ticks + 1) == 2 * ticks
        assert base.next_edge(0) == 0


@given(st.floats(min_value=0.1, max_value=499.0))
def test_quantisation_never_underestimates(ps):
    """Conservative quantisation: tick time >= real time (non-speculative)."""
    base = DEFAULT_TICK_BASE
    ticks = base.ps_to_ticks(ps)
    assert ticks * base.ps_per_tick >= ps - 1e-6


@given(st.floats(min_value=0.1, max_value=499.0))
def test_quantisation_wastes_less_than_one_tick(ps):
    base = DEFAULT_TICK_BASE
    ticks = base.ps_to_ticks(ps)
    assert (ticks - 1) * base.ps_per_tick < ps + 1e-6


@given(st.integers(min_value=0, max_value=10_000))
def test_next_edge_properties(t):
    base = DEFAULT_TICK_BASE
    edge = base.next_edge(t)
    assert edge >= t
    assert edge % base.ticks_per_cycle == 0
    assert edge - t < base.ticks_per_cycle
