"""Unit tests for the slack LUT and 5-bit classification."""

import pytest

from repro.core.slack_lut import (
    SlackKey,
    SlackLUT,
    WIDTH_CLASSES,
    width_class_index,
)
from repro.core.ticks import TickBase
from repro.isa import Instruction, Opcode, ShiftOp, SimdType, r, v


@pytest.fixture(scope="module")
def lut():
    return SlackLUT()


def alu(op, **kw):
    return Instruction(op=op, rd=r(0), rn=r(1), rm=r(2), **kw)


class TestSlackKey:
    def test_address_roundtrip(self):
        for addr in range(32):
            assert SlackKey.from_address(addr).address() == addr

    def test_address_is_5_bits(self):
        key = SlackKey(arith=True, shift=True, simd=True, width_class=3)
        assert key.address() < 32

    def test_canonical_collapses_simd_dont_cares(self):
        a = SlackKey(True, True, True, 2).canonical()
        b = SlackKey(False, False, True, 2).canonical()
        assert a == b

    def test_canonical_collapses_logic_width(self):
        a = SlackKey(False, False, False, 0).canonical()
        b = SlackKey(False, False, False, 3).canonical()
        assert a == b


class TestBucketStructure:
    def test_exactly_14_buckets(self, lut):
        """2 logic + 8 arith + 4 SIMD-type = the paper's 14 categories."""
        assert len(lut.buckets()) == 14

    def test_all_ex_times_within_cycle(self, lut):
        for ticks in lut.buckets().values():
            assert 1 <= ticks <= lut.tick_base.ticks_per_cycle

    def test_logic_bucket_fastest(self, lut):
        logic = lut.lookup(SlackKey(False, False, False, 3))
        assert logic == min(lut.buckets().values())

    def test_arith_monotone_in_width_class(self, lut):
        ticks = [lut.lookup(SlackKey(True, False, False, wc))
                 for wc in range(4)]
        assert ticks == sorted(ticks)

    def test_shift_adds_delay_to_arith(self, lut):
        for wc in range(4):
            plain = lut.lookup(SlackKey(True, False, False, wc))
            flex = lut.lookup(SlackKey(True, True, False, wc))
            assert flex >= plain

    def test_simd_types_monotone(self, lut):
        ticks = [lut.lookup(SlackKey(False, False, True, wc))
                 for wc in range(4)]
        assert ticks == sorted(ticks)

    def test_worst_bucket_uses_whole_cycle(self, lut):
        assert max(lut.buckets().values()) == 8


class TestClassification:
    def test_logic_op(self, lut):
        key = lut.classify(alu(Opcode.AND))
        assert not key.arith and not key.shift and not key.simd

    def test_arith_uses_predicted_width(self, lut):
        narrow = lut.classify(alu(Opcode.ADD), predicted_width=8)
        wide = lut.classify(alu(Opcode.ADD), predicted_width=32)
        assert narrow.width_class == 0
        assert wide.width_class == 3

    def test_no_prediction_is_conservative(self, lut):
        key = lut.classify(alu(Opcode.ADD))
        assert key.width_class == 3

    def test_flexible_shift_sets_shift_bit(self, lut):
        key = lut.classify(alu(Opcode.ADD, shift=ShiftOp.LSR, shift_amt=3))
        assert key.shift

    def test_standalone_shift(self, lut):
        key = lut.classify(alu(Opcode.LSR))
        assert key.shift and not key.arith

    def test_simd_uses_dtype(self, lut):
        instr = Instruction(op=Opcode.VADD, rd=v(0), rn=v(1), rm=v(2),
                            dtype=SimdType.I8)
        key = lut.classify(instr)
        assert key.simd and key.width_class == 0

    def test_multicycle_rejected(self, lut):
        with pytest.raises(ValueError):
            lut.classify(Instruction(op=Opcode.MUL, rd=r(0), rn=r(1),
                                     rm=r(2)))

    def test_narrow_add_has_more_slack(self, lut):
        assert lut.ex_time(alu(Opcode.ADD), 8) < lut.ex_time(alu(Opcode.ADD))

    def test_simd_i8_faster_than_i64(self, lut):
        i8 = Instruction(op=Opcode.VADD, rd=v(0), rn=v(1), rm=v(2),
                         dtype=SimdType.I8)
        i64 = Instruction(op=Opcode.VADD, rd=v(0), rn=v(1), rm=v(2),
                          dtype=SimdType.I64)
        assert lut.ex_time(i8) < lut.ex_time(i64)


class TestWidthClassIndex:
    @pytest.mark.parametrize("width,idx", [(1, 0), (8, 0), (9, 1), (16, 1),
                                           (17, 2), (24, 2), (25, 3),
                                           (32, 3), (99, 3)])
    def test_boundaries(self, width, idx):
        assert width_class_index(width) == idx

    def test_classes_cover_word(self):
        assert WIDTH_CLASSES[-1] == 32


class TestPVTRecalibration:
    def test_slower_corner_raises_ex_times(self):
        nominal = SlackLUT()
        slow = SlackLUT(pvt_scale=1.15)
        assert all(
            slow.buckets()[a] >= nominal.buckets()[a]
            for a in nominal.buckets())

    def test_faster_corner_lowers_ex_times(self):
        nominal = SlackLUT()
        fast = SlackLUT(pvt_scale=0.8)
        assert sum(fast.buckets().values()) < sum(nominal.buckets().values())

    def test_recalibrate_in_place(self):
        lut = SlackLUT()
        before = dict(lut.buckets())
        lut.recalibrate_pvt(0.8)
        after = lut.buckets()
        assert after != before
        lut.recalibrate_pvt(1.0)
        assert lut.buckets() == before

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            SlackLUT(pvt_scale=0.0)


class TestPrecisionSweep:
    def test_coarser_precision_more_conservative(self):
        """Fewer bits → coarser ceil → EX-TIMEs never shrink (in time)."""
        fine = SlackLUT(TickBase(ticks_per_cycle=8))
        coarse = SlackLUT(TickBase(ticks_per_cycle=2))
        for addr, ticks in fine.buckets().items():
            fine_frac = ticks / 8
            coarse_frac = coarse.buckets()[addr] / 2
            assert coarse_frac >= fine_frac - 1e-9
