#!/usr/bin/env python3
"""Fail on broken source packages.

Two failure modes, both seen in the wild in this repo:

* a directory in an import tree that contains Python files (or python
  subpackages) but no ``__init__.py`` — silently unimportable under
  some launchers, invisible to packaging;
* a "ghost package": a directory whose only content is ``__pycache__``
  (left behind when a package's sources are deleted but the dir
  survives), which keeps shadowing the import name forever.

Run from the repo root (CI lint job does)::

    python tools/check_packages.py

Exits non-zero listing every offender.
"""

from __future__ import annotations

import sys
from pathlib import Path

#: import trees that must be package-complete
ROOTS = ("src", "tests")

#: directory names that never need __init__.py
IGNORE = {"__pycache__", ".hypothesis", ".pytest_cache"}


def check(repo_root: Path) -> list:
    problems = []
    for root_name in ROOTS:
        root = repo_root / root_name
        if not root.is_dir():
            continue
        for directory in sorted(p for p in root.rglob("*")
                                if p.is_dir()):
            if IGNORE & set(directory.relative_to(repo_root).parts):
                continue
            entries = [p for p in directory.iterdir()
                       if p.name not in IGNORE]
            has_py = any(p.suffix == ".py" for p in entries)
            has_subpkg = any(p.is_dir() and (p / "__init__.py").is_file()
                             for p in entries)
            rel = directory.relative_to(repo_root)
            if not entries:
                problems.append(f"{rel}: empty directory in an import "
                                f"tree (stray package?)")
            elif not (directory / "__init__.py").is_file():
                if has_py or has_subpkg:
                    problems.append(f"{rel}: missing __init__.py")
    return problems


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    problems = check(repo_root)
    if problems:
        print("package integrity check failed:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"package integrity OK ({', '.join(ROOTS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
