"""Fig. 13 — Speedup over baseline for the three cores.

Regenerates the headline result: per-benchmark ReDSOC speedup on the
Small/Medium/Big cores.  Shape targets (not absolute numbers): all
speedups non-negative, MiBench > SPEC on every core, benefits growing
with core size, and bitcount among the strongest MiBench members on the
big core.
"""

from repro.analysis.report import print_table

from conftest import CORE_ORDER, SUITE_ORDER


def generate_fig13(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        for bench in evaluation.benchmarks(suite):
            speedups = [100 * evaluation.speedup(suite, bench, core)
                        for core in CORE_ORDER]
            rows.append((suite, bench) + tuple(
                round(s, 1) for s in speedups))
        means = [100 * evaluation.suite_mean_speedup(suite, core)
                 for core in CORE_ORDER]
        rows.append((suite, "MEAN") + tuple(round(m, 1) for m in means))
    return rows


def test_fig13_speedup(evaluation, bench_once):
    rows = bench_once(generate_fig13, evaluation)
    print_table("Fig. 13: ReDSOC speedup over baseline (%)",
                ["suite", "benchmark", "BIG", "MEDIUM", "SMALL"], rows)
    table = {(r[0], r[1]): {"big": r[2], "medium": r[3], "small": r[4]}
             for r in rows}

    # ReDSOC never loses to the baseline beyond measurement noise
    for cells in table.values():
        for value in cells.values():
            assert value > -1.5

    # MiBench beats SPEC on every core size (paper Sec. VI-C)
    for core in CORE_ORDER:
        assert (table[("mibench", "MEAN")][core]
                >= table[("spec", "MEAN")][core])

    # benefits grow with core size at the suite level (small tolerance:
    # individual kernels can invert when a narrow core's weaker FU pool
    # makes it *more* chain-bound, e.g. gsm's single multiplier)
    for suite in ("spec", "mibench"):
        mean = table[(suite, "MEAN")]
        assert mean["big"] >= mean["medium"] - 0.5
        assert mean["medium"] >= mean["small"] - 1.5

    # the big core shows substantial gains on MiBench
    assert table[("mibench", "MEAN")]["big"] > 8.0
    # bitcount is among the strongest MiBench members on the big core
    mib = sorted((table[("mibench", b)]["big"]
                  for b in evaluation.benchmarks("mibench")),
                 reverse=True)
    assert table[("mibench", "bitcnt")]["big"] >= mib[2]
    # SPEC gains are positive but modest, as the paper reports
    assert 0.5 < table[("spec", "MEAN")]["big"] < 20.0
