"""Sec. II-B — data-width predictor accuracy across the workloads.

The paper's 4K-entry resetting predictor keeps aggressive (unsafe-
direction) mispredictions around 0.3-0.4 %; conservative mistakes only
cost recycling opportunity.
"""

from repro.analysis.report import print_table
from repro.core import RecycleMode

from conftest import SUITE_ORDER


def generate_accuracy(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        for bench in evaluation.benchmarks(suite):
            run = evaluation.run(suite, bench, "big", RecycleMode.REDSOC)
            stats = run.stats
            rows.append((suite, bench,
                         round(100 * stats.width_accuracy, 1),
                         round(100 * stats.width_aggressive_rate, 2),
                         stats.width_replays))
    return rows


def test_width_predictor_accuracy(evaluation, bench_once):
    rows = bench_once(generate_accuracy, evaluation)
    print_table("Width predictor accuracy (BIG, ReDSOC)",
                ["suite", "benchmark", "exact %", "aggressive %",
                 "replays"], rows)

    aggressive = [r[3] for r in rows]
    # SPEC stays within the paper's sub-percent band; image kernels
    # with threshold-crossing accumulators are noisier (documented in
    # EXPERIMENTS.md) but bounded
    spec_aggr = [r[3] for r in rows if r[0] == "spec"]
    assert all(a < 1.0 for a in spec_aggr)
    assert all(a < 4.5 for a in aggressive)
    mean_aggr = sum(aggressive) / len(aggressive)
    assert mean_aggr < 1.5
    # the predictor learns: overall exact accuracy is high on average
    mean_exact = sum(r[2] for r in rows) / len(rows)
    assert mean_exact > 55.0
