"""Fig. 15 — Comparison with other proposals (TS and MOS).

Regenerates the suite-mean speedups of ReDSOC against our
implementations of timing speculation (Razor-like static
frequency boost, optimistic: no recovery cost) and MOS
(single-cycle operation fusion).  Shape target: ReDSOC
clearly outperforms both on every core (the paper reports 2x or more).
"""

from repro.analysis.report import print_table
from repro.core import RecycleMode

from conftest import CORE_ORDER, SUITE_ORDER


def generate_fig15(evaluation):
    rows = []
    for core in CORE_ORDER:
        for suite in SUITE_ORDER:
            red = 100 * evaluation.suite_mean_speedup(
                suite, core, RecycleMode.REDSOC)
            mos = 100 * evaluation.suite_mean_speedup(
                suite, core, RecycleMode.MOS)
            ts_values = [100 * evaluation.ts(suite, b).speedup
                         for b in evaluation.benchmarks(suite)]
            ts = sum(ts_values) / len(ts_values)
            rows.append((f"{core.upper()}:{suite}-MEAN", round(red, 1),
                         round(ts, 1), round(mos, 1)))
    return rows


def test_fig15_comparison(evaluation, bench_once):
    rows = bench_once(generate_fig15, evaluation)
    print_table("Fig. 15: speedup vs other proposals (%)",
                ["core:suite", "ReDSOC", "TS", "MOS"], rows)

    # ReDSOC at least matches MOS everywhere (transparent flow subsumes
    # fusion) and TS on the general-purpose suites; our ML kernels are
    # throughput-bound at small widths (documented deviation in
    # EXPERIMENTS.md), so TS's frequency bump can tie there
    for label, red, ts, mos in rows:
        assert red >= mos - 0.3, label
        if "ml" not in label:
            assert red >= ts - 0.6, label
        assert red >= -0.5, label
    # ...and clearly beats them where slack is plentiful (big core)
    big_rows = [r for r in rows if r[0].startswith("BIG")]
    assert any(red > 2 * max(ts, 0.1) for _, red, ts, _ in big_rows)
    assert any(red > 2 * max(mos, 0.1) for _, red, _, mos in big_rows)
    # TS stays bounded by conventional-stage margins (Sec. I's argument)
    for _, _, ts, _ in rows:
        assert ts < 10.0
