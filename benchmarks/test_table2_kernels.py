"""Table II — Kernels for machine learning.

Checks that every ML kernel exists, runs functionally, and computes what
its Table II description says it computes.
"""

from repro.analysis.report import print_table
from repro.isa import run_program
from repro.workloads import ML_KERNELS, pool_max, relu


DESCRIPTIONS = {
    "conv": "Convolution: Gaussian 3x3",
    "act": "Activation: ReLU",
    "pool0": "Pooling: 2x2 Max",
    "pool1": "Pooling: 2x2 Average",
    "softmax": "Softmax function",
}


def generate_table2():
    rows = []
    for name in ("conv", "act", "pool0", "pool1", "softmax"):
        program = ML_KERNELS[name](2 if name != "act" else 4)
        result = run_program(program)
        rows.append((name.upper(), DESCRIPTIONS[name], len(program),
                     result.instructions))
    return rows


def test_table2_ml_kernels(bench_once):
    rows = bench_once(generate_table2)
    print_table("Table II: ML kernels",
                ["kernel", "description", "static ops", "dynamic ops"],
                rows)
    assert len(rows) == 5
    assert set(ML_KERNELS) == {"conv", "act", "pool0", "pool1", "softmax"}
    for _, _, static, dynamic in rows:
        assert dynamic > static  # every kernel actually loops


def test_relu_is_max_with_zero():
    result = run_program(relu(2))
    data_in = result.mem.read_block(0x4000, 32)
    data_out = result.mem.read_block(0x20000, 32)
    expected = bytes(b if b < 128 else 0 for b in data_in)
    assert data_out == expected


def test_pool_max_dominates_pool_input():
    def signed(b):
        return b - 256 if b >= 128 else b

    result = run_program(pool_max(2))
    width = 256
    out = result.mem.read_block(0x20000, 16)
    img = result.mem.read_block(0x4000, 2 * width)
    for i, o in enumerate(out):
        window = (img[i], img[i + 1], img[width + i], img[width + i + 1])
        assert signed(o) == max(signed(b) for b in window)
