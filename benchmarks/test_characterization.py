"""Characterisation — per-slack-class chain acceleration factors.

Measures the recycling speedup of a pure dependence chain in every
slack bucket and compares against the closed-form prediction
``ticks_per_cycle / EX-TIME - 1`` (Sec. III's accumulation argument).
This pins the timing model and the scheduler together: a regression in
either moves a measured factor off its prediction.
"""

from repro.analysis.report import print_table
from repro.core import BIG, RecycleMode, simulate
from repro.workloads.microbench import MICROBENCHES


def generate_characterization():
    rows = []
    for name, micro in MICROBENCHES.items():
        program = micro.build(500)
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        red = simulate(program, BIG.with_mode(RecycleMode.REDSOC))
        measured = base.cycles / red.cycles - 1
        predicted = micro.predicted_speedup()
        rows.append((name, micro.chain_ticks,
                     f"{100 * predicted:.0f}%",
                     f"{100 * measured:.1f}%"))
    return rows


def test_slack_class_characterization(bench_once):
    rows = bench_once(generate_characterization)
    print_table("Per-slack-class chain speedup (BIG): predicted vs "
                "measured", ["class", "EX-TIME", "predicted", "measured"],
                rows)
    table = {name: (ticks, float(p.rstrip("%")), float(m.rstrip("%")))
             for name, ticks, p, m in rows}

    # zero-slack controls do not accelerate
    for control in ("flex-arith", "simd-i64"):
        assert table[control][2] < 3.0, control
    # every sub-cycle class accelerates, ordered by its slack
    assert table["logic"][2] > table["shift"][2] > table["wide-arith"][2]
    # measured factors sit near (within half of) the chain prediction;
    # FU holds and loop overhead absorb the rest
    for name, (ticks, predicted, measured) in table.items():
        if ticks < 8:
            assert measured > 0.5 * predicted, name
            assert measured < predicted + 8.0, name
    # the headline cases: logic chains approach 2x, wide arithmetic 8/7
    assert table["logic"][2] > 55.0
    assert 5.0 < table["wide-arith"][2] < 18.0
