"""Fig. 1 — Computation time for ALU operations.

Regenerates the per-opcode single-cycle ALU computation times (ps) of
the synthetic 2 GHz datapath, in the paper's display order: bitwise
logic, shifts/rotates, arithmetic, carry arithmetic, and shift-modified
composites (ADD-LSR / SUB-ROR).
"""

from repro.analysis.report import print_table
from repro.timing import DEFAULT_TECH, fig1_table


def generate_fig1():
    rows = []
    for name, ps in fig1_table():
        fraction = ps / DEFAULT_TECH.clock_ps
        rows.append((name, round(ps, 1), f"{100 * fraction:.0f}%"))
    return rows


def test_fig1_alu_computation_times(bench_once):
    rows = bench_once(generate_fig1)
    print_table("Fig. 1: ALU computation times (ps, 500 ps clock)",
                ["op", "delay_ps", "of cycle"], rows)
    table = {name: ps for name, ps, _ in rows}

    # logic ops sit in the bottom third of the cycle
    for op in ("BIC", "MVN", "AND", "EOR", "TST", "TEQ", "ORR", "MOV"):
        assert table[op] < 0.35 * DEFAULT_TECH.clock_ps
    # shifts between logic and arithmetic
    for op in ("LSR", "ASR", "LSL", "ROR", "RRX"):
        assert table["MOV"] < table[op] < table["ADD"]
    # arithmetic uses 60-80% of the cycle
    for op in ("RSB", "SUB", "CMP", "ADD", "CMN"):
        assert 0.55 < table[op] / DEFAULT_TECH.clock_ps < 0.85
    # carry variants are slightly slower
    assert table["ADDC"] > table["ADD"]
    assert table["SUBC"] > table["SUB"]
    # shift-modified composites are the critical path, still in-cycle
    worst = max(table.values())
    assert worst == table["ADD-LSR"] == table["SUB-ROR"]
    assert worst + DEFAULT_TECH.setup_ps <= DEFAULT_TECH.clock_ps
