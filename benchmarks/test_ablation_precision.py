"""Sec. V ablation — slack-tracking precision in the RSE.

The paper quantised slack at 1-8 bits and found performance saturates
at 3 bits (1/8 of a cycle).  This bench sweeps the CI precision on
representative benchmarks (MEDIUM core).
"""

from repro.analysis.report import print_table
from repro.core import CORES, RecycleMode, simulate

REPRESENTATIVE = {"spec": "bzip2", "mibench": "crc", "ml": "conv"}
PRECISIONS = (1, 2, 3, 4)  # bits -> 2,4,8,16 ticks/cycle


def generate_sweep(evaluation):
    rows = []
    for suite, bench in REPRESENTATIVE.items():
        trace = evaluation.trace(suite, bench)
        base = evaluation.run(suite, bench, "medium",
                              RecycleMode.BASELINE)
        cells = []
        for bits in PRECISIONS:
            ticks = 1 << bits
            cfg = CORES["medium"].variant(
                ticks_per_cycle=ticks, slack_threshold=ticks - 1)
            red = simulate(trace, cfg)
            cells.append(round(100 * (base.cycles / red.cycles - 1), 1))
        rows.append((f"{suite}:{bench}",) + tuple(cells))
    return rows


def test_ablation_slack_precision(evaluation, bench_once):
    rows = bench_once(generate_sweep, evaluation)
    print_table("Ablation: CI precision sweep (MEDIUM, speedup %)",
                ["benchmark"] + [f"{b}-bit" for b in PRECISIONS], rows)

    for row in rows:
        label, cells = row[0], list(row[1:])
        by_bits = dict(zip(PRECISIONS, cells))
        # 3 bits captures (nearly) all of the benefit: 4 bits adds
        # less than 2 percentage points (the paper's saturation)
        assert by_bits[4] - by_bits[3] < 2.0, label
        # coarse 1-bit tracking forfeits benefit vs 3-bit
        assert by_bits[1] <= by_bits[3] + 0.5, label
