"""Sec. VI-C — Power savings via application-level V/F scaling.

The paper converts speedup into power savings at baseline performance
on an ARM A57-style DVFS model and reports mean savings of 8-15 %
(SPEC), 12-36 % (MiBench) and 8-18 % (ML) across the cores.
"""

from repro.analysis.power import power_savings_from_speedup
from repro.analysis.report import print_table

from conftest import CORE_ORDER, SUITE_ORDER


def generate_power(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        savings = []
        for core in CORE_ORDER:
            speedup = evaluation.suite_mean_speedup(suite, core)
            savings.append(100 * power_savings_from_speedup(speedup))
        rows.append((f"{suite}-MEAN",) + tuple(
            round(s, 1) for s in savings))
    return rows


def test_power_savings(evaluation, bench_once):
    rows = bench_once(generate_power, evaluation)
    print_table("Power savings at iso-performance via V/F scaling (%)",
                ["suite", "BIG", "MEDIUM", "SMALL"], rows)
    table = {r[0]: r[1:] for r in rows}

    # savings are non-negative everywhere and track speedup order:
    # MiBench saves the most
    for values in table.values():
        assert all(v >= 0.0 for v in values)
    assert max(table["mibench-MEAN"]) >= max(table["spec-MEAN"])
    # the strongest configuration saves double-digit power
    assert max(table["mibench-MEAN"]) > 10.0
    # conversion sanity: more speedup can never save less power
    from repro.analysis.power import power_savings_from_speedup as f
    assert f(0.25) > f(0.10) > f(0.02) >= 0.0
