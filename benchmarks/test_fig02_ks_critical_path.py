"""Fig. 2 — Critical path of a Kogge-Stone adder vs effective width.

Regenerates the varying critical-delay bands of the 16-bit KS adder for
different effective operand widths (the Width-Slack source).
"""

from repro.analysis.report import print_table
from repro.timing import fig2_series, ks_adder_delay_ps


def generate_fig2():
    return fig2_series(16)


def test_fig2_ks_adder_critical_path(bench_once):
    series = bench_once(generate_fig2)
    print_table("Fig. 2: KS-adder critical delay vs effective width",
                ["width", "delay_ps"], series)
    delays = dict(series)

    # monotone non-decreasing with width
    values = [d for _, d in series]
    assert values == sorted(values)
    # the paper's colour bands: steps at powers of two
    assert delays[4] < delays[5]
    assert delays[8] < delays[9]
    # narrow operands leave large slack vs the full-width path
    assert delays[4] < 0.6 * delays[16]
    # consistent with the 32-bit model used by the ALU table
    assert ks_adder_delay_ps(16) >= delays[16]
