"""Sec. IV-C ablation — slack-threshold design sweep.

The threshold balances recycling aggressiveness against 2-cycle-hold FU
pressure; the paper tunes it per application set.  This bench sweeps the
static threshold on one representative benchmark per suite (MEDIUM
core, adaptation off) and also shows the dynamic controller's result.
"""


from repro.analysis.report import print_table
from repro.core import CORES, RecycleMode, simulate

REPRESENTATIVE = {"spec": "bzip2", "mibench": "crc", "ml": "conv"}
THRESHOLDS = (0, 2, 4, 6, 7)


def generate_sweep(evaluation):
    rows = []
    core = CORES["medium"]
    for suite, bench in REPRESENTATIVE.items():
        trace = evaluation.trace(suite, bench)
        base = evaluation.run(suite, bench, "medium",
                              RecycleMode.BASELINE)
        cells = []
        for threshold in THRESHOLDS:
            cfg = core.variant(slack_threshold=threshold,
                               adaptive_threshold=False)
            red = simulate(trace, cfg)
            cells.append(round(100 * (base.cycles / red.cycles - 1), 1))
        adaptive = evaluation.run(suite, bench, "medium",
                                  RecycleMode.REDSOC)
        cells.append(round(100 * (base.cycles / adaptive.cycles - 1), 1))
        rows.append((f"{suite}:{bench}",) + tuple(cells))
    return rows


def test_ablation_slack_threshold(evaluation, bench_once):
    rows = bench_once(generate_sweep, evaluation)
    print_table("Ablation: slack-threshold sweep (MEDIUM, speedup %)",
                ["benchmark"] + [f"t={t}" for t in THRESHOLDS]
                + ["dynamic"], rows)

    for row in rows:
        label, cells = row[0], row[1:]
        static, dynamic = cells[:-1], cells[-1]
        # threshold 0 disables eager issue: no recycling speedup
        assert abs(static[0]) < 1.0, label
        # some positive threshold beats threshold 0
        assert max(static) >= static[0], label
        # the dynamic controller lands near the best static setting
        # (within the probe overhead of the sweep phases)
        assert dynamic >= max(static) - 3.5, label
