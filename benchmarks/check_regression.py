#!/usr/bin/env python
"""Perf-regression gate over a smoke-campaign JSON.

Compares the per-job IPC and speedup of a fresh
``BENCH_campaign.json`` (produced by ``python -m repro.campaign run
--smoke``) against the committed reference numbers in
``benchmarks/smoke_reference.json`` and exits non-zero when any metric
drifts by more than the tolerance (default 2%).

Both metrics reduce to cycle-count ratios, so drift is measured
relatively: IPC as ``|new/ref - 1|`` and speedup on the ``1 + s``
ratio (i.e. the baseline/mode cycle ratio), which keeps the check
meaningful when speedups are close to zero.

The timing model is deterministic — identical source always reproduces
the reference exactly.  The tolerance only absorbs *intentional* small
model changes; anything larger must update the reference explicitly::

    python -m repro.campaign run --smoke --force
    python benchmarks/check_regression.py BENCH_campaign.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_REFERENCE = Path(__file__).parent / "smoke_reference.json"
DEFAULT_TOLERANCE = 0.02


def _job_key(record):
    return (record["suite"], record["bench"], record["core"],
            record["mode"])


def _reference_payload(campaign):
    """Strip a campaign document down to the gated metrics."""
    jobs = {}
    for rec in campaign["results"]:
        jobs["/".join(_job_key(rec))] = {
            "cycles": rec["cycles"],
            "ipc": round(rec["ipc"], 6),
            "speedup": (round(rec["speedup"], 6)
                        if rec.get("speedup") is not None else None),
        }
    return {"schema": 1, "jobs": jobs}


def compare(campaign, reference, tolerance, exact_cycles=False):
    """Return a list of human-readable drift failures.

    With *exact_cycles*, cycle counts must match the reference bit for
    bit — zero tolerance.  CI runs this on a tracing-disabled campaign
    to prove the observability layer is truly compiled out: any
    instrumentation that perturbs timing shows up as a cycle diff even
    when IPC drift rounds to within tolerance.
    """
    failures = []
    seen = set()
    ref_jobs = reference["jobs"]
    for rec in campaign["results"]:
        name = "/".join(_job_key(rec))
        seen.add(name)
        ref = ref_jobs.get(name)
        if ref is None:
            failures.append(f"{name}: no reference entry "
                            f"(update smoke_reference.json)")
            continue
        if exact_cycles and rec["cycles"] != ref["cycles"]:
            failures.append(
                f"{name}: cycles not bit-identical "
                f"(ref {ref['cycles']}, got {rec['cycles']})")
        drift = abs(rec["ipc"] / ref["ipc"] - 1.0)
        if drift > tolerance:
            failures.append(
                f"{name}: IPC drift {drift:.1%} "
                f"(ref {ref['ipc']:.3f}, got {rec['ipc']:.3f})")
        if ref.get("speedup") is not None:
            got = rec.get("speedup")
            if got is None:
                failures.append(f"{name}: speedup missing "
                                f"(baseline job absent?)")
                continue
            drift = abs((1.0 + got) / (1.0 + ref["speedup"]) - 1.0)
            if drift > tolerance:
                failures.append(
                    f"{name}: speedup drift {drift:.1%} "
                    f"(ref {ref['speedup']:+.4f}, got {got:+.4f})")
    missing = set(ref_jobs) - seen
    for name in sorted(missing):
        failures.append(f"{name}: in reference but not in campaign "
                        f"(smoke set shrank?)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("campaign", type=Path,
                        help="BENCH_campaign.json to check")
    parser.add_argument("--reference", type=Path,
                        default=DEFAULT_REFERENCE,
                        help=f"reference JSON (default: "
                             f"{DEFAULT_REFERENCE})")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="max relative drift (default: 0.02)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the reference from this campaign "
                             "instead of checking")
    parser.add_argument("--exact-cycles", action="store_true",
                        help="additionally require cycle counts to "
                             "match the reference exactly (the "
                             "tracing-off bit-identity gate)")
    args = parser.parse_args(argv)

    with open(args.campaign, "r", encoding="utf-8") as fh:
        campaign = json.load(fh)

    if args.update:
        payload = _reference_payload(campaign)
        with open(args.reference, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.reference} ({len(payload['jobs'])} jobs)")
        return 0

    if not args.reference.is_file():
        print(f"error: no reference at {args.reference}; create one "
              f"with --update", file=sys.stderr)
        return 2

    with open(args.reference, "r", encoding="utf-8") as fh:
        reference = json.load(fh)

    failures = compare(campaign, reference, args.tolerance,
                       exact_cycles=args.exact_cycles)
    if failures:
        print(f"PERF REGRESSION ({len(failures)} failure(s), "
              f"tolerance {args.tolerance:.0%}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    jobs = len(campaign["results"])
    extra = ", cycles bit-identical" if args.exact_cycles else ""
    print(f"perf gate OK: {jobs} jobs within {args.tolerance:.0%} "
          f"of reference{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
