"""Shared infrastructure for the evaluation benches.

Every bench regenerates one of the paper's tables/figures.  Simulations
are expensive, so results are cached at two levels: a session-scoped
in-memory memo (Fig. 13/14/15 and the power table reuse the same runs
within one pytest session) and the persistent on-disk campaign cache
(``.redsoc-cache/``), which is shared with ``python -m repro.campaign``
— a bench session warms the CLI's cache and vice versa.  Traces are
generated once per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import pytest

from repro.baselines.ts import TSResult, analyze_ts
from repro.campaign.cache import (
    ResultCache,
    cached_simulate,
    trace_fingerprint,
    trace_index_key,
)
from repro.core import CORES, RecycleMode, SimResult
from repro.pipeline.trace import Trace, generate_trace
from repro.workloads.suites import SUITES, default_scale

#: evaluation order used by every figure
SUITE_ORDER = ("spec", "mibench", "ml")
CORE_ORDER = ("big", "medium", "small")


@dataclass
class Evaluation:
    """Lazy, memoised access to every simulation the figures need."""

    cache: ResultCache = field(default_factory=ResultCache)
    _traces: Dict[Tuple[str, str], Trace] = field(default_factory=dict)
    _runs: Dict[Tuple[str, str, str, str], SimResult] = field(
        default_factory=dict)
    _ts: Dict[Tuple[str, str], TSResult] = field(default_factory=dict)

    def trace(self, suite: str, bench: str) -> Trace:
        key = (suite, bench)
        if key not in self._traces:
            builder = SUITES[suite][bench]
            program = builder(**default_scale(suite, bench))
            trace = generate_trace(program)
            self._traces[key] = trace
            # publish the fingerprint so CLI campaigns can answer
            # warm jobs without regenerating this trace
            self.cache.put_trace_fingerprint(
                trace_index_key(suite, bench), trace_fingerprint(trace))
        return self._traces[key]

    def run(self, suite: str, bench: str, core: str,
            mode: RecycleMode) -> SimResult:
        key = (suite, bench, core, mode.value)
        if key not in self._runs:
            config = CORES[core].with_mode(mode)
            self._runs[key] = cached_simulate(
                self.trace(suite, bench), config, self.cache)
        return self._runs[key]

    def speedup(self, suite: str, bench: str, core: str,
                mode: RecycleMode = RecycleMode.REDSOC) -> float:
        base = self.run(suite, bench, core, RecycleMode.BASELINE)
        other = self.run(suite, bench, core, mode)
        return base.cycles / other.cycles - 1.0

    def ts(self, suite: str, bench: str) -> TSResult:
        key = (suite, bench)
        if key not in self._ts:
            self._ts[key] = analyze_ts(self.trace(suite, bench))
        return self._ts[key]

    def benchmarks(self, suite: str):
        return list(SUITES[suite])

    def suite_mean_speedup(self, suite: str, core: str,
                           mode: RecycleMode = RecycleMode.REDSOC
                           ) -> float:
        values = [self.speedup(suite, b, core, mode)
                  for b in self.benchmarks(suite)]
        return sum(values) / len(values)


_EVALUATION = Evaluation()


@pytest.fixture(scope="session")
def evaluation() -> Evaluation:
    return _EVALUATION


@pytest.fixture()
def bench_once(benchmark):
    """Run a figure-generating callable exactly once under
    pytest-benchmark (simulations are far too heavy to repeat)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
