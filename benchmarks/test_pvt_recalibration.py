"""Sec. V — PVT variation, CPM sensing and on-the-fly recalibration.

The paper isolates data slack at the worst-case corner but notes that
nominal conditions add PVT slack, harvested safely via localised CPMs
re-calibrating the slack LUT at Tribeca's 10 000-cycle granularity.
This bench exercises the drift scenarios and verifies the control loop
is safe (never over-promises slack) while retaining most of it, and
shows the corner sensitivity of end-to-end recycling.
"""

from repro.analysis.report import print_table
from repro.core import BIG, RecycleMode, simulate
from repro.core.pvt import SCENARIOS, recalibration_report
from repro.workloads import bitcount


def generate_pvt():
    rows = []
    for name, scenario in SCENARIOS.items():
        report = recalibration_report(scenario, cycles=200_000)
        rows.append((name, report["windows"],
                     report["recalibrations"],
                     report["unsafe_windows"],
                     f"{100 * report['retained_slack']:.1f}%"))
    return rows


def test_pvt_recalibration(bench_once):
    rows = bench_once(generate_pvt)
    print_table("PVT recalibration: safety & retained slack "
                "(10k-cycle windows)",
                ["scenario", "windows", "recals", "unsafe",
                 "retained slack"], rows)
    for name, windows, recals, unsafe, retained in rows:
        assert recals == windows, name
        # the CPM guard band keeps calibration safe except when a droop
        # strikes mid-window before the next recalibration (the known
        # limitation Tribeca's local recovery addresses)
        budget = windows // 3 if SCENARIOS[name].droop_period else 0
        assert unsafe <= budget, name
        assert float(retained.rstrip("%")) > 60.0, name


def test_corner_sensitivity(bench_once):
    def run():
        program = bitcount(60)
        rows = []
        base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
        for label, scale in (("fast (0.8x)", 0.8), ("nominal", 1.0),
                             ("slow (1.2x)", 1.2)):
            red = simulate(program, BIG.variant(pvt_scale=scale))
            rows.append((label,
                         f"{100 * (base.cycles / red.cycles - 1):.1f}%"))
        return rows

    rows = bench_once(run)
    print_table("ReDSOC speedup vs PVT corner (bitcnt, BIG)",
                ["corner", "speedup"], rows)
    values = [float(s.rstrip("%")) for _, s in rows]
    # faster silicon -> more recyclable slack -> larger gains (ties are
    # possible when bucket quantisation absorbs the corner delta)
    assert values[0] >= values[1] - 2.0
    assert values[1] >= values[2]
    assert values[1] > 5.0
