"""Fig. 14 — Pipeline stall rates from busy FUs.

Regenerates the FU-stall comparison: ReDSOC's 2-cycle holds raise
functional-unit pressure relative to the baseline, most visibly on the
smaller cores — the effect that bounds their speedup (Sec. VI-C).
"""

from repro.analysis.report import print_table
from repro.core import RecycleMode

from conftest import CORE_ORDER, SUITE_ORDER


def generate_fig14(evaluation):
    rows = []
    for core in CORE_ORDER:
        for suite in SUITE_ORDER:
            rates = {}
            for mode in (RecycleMode.BASELINE, RecycleMode.REDSOC):
                values = [evaluation.run(suite, b, core, mode)
                          .stats.fu_stall_rate
                          for b in evaluation.benchmarks(suite)]
                rates[mode] = sum(values) / len(values)
            rows.append((f"{core.upper()}:{suite}-MEAN",
                         round(100 * rates[RecycleMode.BASELINE], 1),
                         round(100 * rates[RecycleMode.REDSOC], 1)))
    return rows


def test_fig14_fu_stall_rates(evaluation, bench_once):
    rows = bench_once(generate_fig14, evaluation)
    print_table("Fig. 14: FU stall rate (% of cycles)",
                ["core:suite", "baseline", "ReDSOC"], rows)

    higher = sum(1 for _, base, red in rows if red >= base - 0.2)
    # recycling increases FU pressure in (nearly) every configuration
    assert higher >= len(rows) - 2
    # and somewhere the increase is clearly visible
    assert any(red > base + 1.0 for _, base, red in rows)
