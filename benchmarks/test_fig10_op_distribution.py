"""Fig. 10 — Benchmark operation characteristics.

Regenerates the per-benchmark committed-operation distribution over the
paper's six classes: MEM-HL (L1-missing), MEM-LL, SIMD, OtherMulti
(multi-cycle), ALU-LS (low-slack) and ALU-HS (slack > 20 % of the
cycle).  Measured on the BIG core's baseline runs.
"""

from repro.analysis.report import print_table
from repro.analysis.stats import OP_CLASSES
from repro.core import RecycleMode

from conftest import SUITE_ORDER


def generate_fig10(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        fractions = {cls: 0.0 for cls in OP_CLASSES}
        benches = evaluation.benchmarks(suite)
        for bench in benches:
            run = evaluation.run(suite, bench, "big",
                                 RecycleMode.BASELINE)
            dist = run.stats.distribution.fractions()
            rows.append((suite, bench) + tuple(
                round(dist[cls], 3) for cls in OP_CLASSES))
            for cls in OP_CLASSES:
                fractions[cls] += dist[cls] / len(benches)
        rows.append((suite, "MEAN") + tuple(
            round(fractions[cls], 3) for cls in OP_CLASSES))
    return rows


def test_fig10_operation_distribution(evaluation, bench_once):
    rows = bench_once(generate_fig10, evaluation)
    print_table("Fig. 10: operation distribution (BIG core, baseline)",
                ["suite", "benchmark"] + list(OP_CLASSES), rows)
    table = {(r[0], r[1]): dict(zip(OP_CLASSES, r[2:])) for r in rows}

    # distributions sum to ~1 (rounded cells; branches/NOPs excluded)
    for dist in table.values():
        assert 0.9 <= sum(dist.values()) <= 1.01

    # bitcount: almost no memory, dominated by high-slack ALU ops
    bitcnt = table[("mibench", "bitcnt")]
    assert bitcnt["MEM-HL"] + bitcnt["MEM-LL"] < 0.05
    assert bitcnt["ALU-HS"] > 0.6

    # SPEC has the memory-heavy profile of the paper
    spec = table[("spec", "MEAN")]
    assert 0.1 < spec["MEM-HL"] + spec["MEM-LL"] < 0.5
    assert spec["ALU-LS"] > 0.1

    # MiBench averages more high-slack ALU work than SPEC
    mib = table[("mibench", "MEAN")]
    assert mib["ALU-HS"] > spec["ALU-HS"]

    # only the ML suite exercises SIMD
    ml = table[("ml", "MEAN")]
    assert ml["SIMD"] > 0.1
    assert spec["SIMD"] == 0.0

    # FP-heavy SPEC members show multi-cycle fractions
    assert table[("spec", "gromacs")]["OtherMulti"] > 0.03
