"""Sec. IV-C ablation — Illustrative vs Operational RSE design.

The Operational design (2 predicted tags per RSE) should track the
Illustrative design (2 parent + 4 grandparent tags) within ~1 % thanks
to near-perfect last-arrival prediction; the ablation measures the gap.
"""

from repro.analysis.report import print_table
from repro.core import CORES, RecycleMode, SchedulerDesign, simulate

REPRESENTATIVE = {"spec": "bzip2", "mibench": "crc", "ml": "conv"}


def generate_comparison(evaluation):
    rows = []
    for suite, bench in REPRESENTATIVE.items():
        trace = evaluation.trace(suite, bench)
        base = evaluation.run(suite, bench, "medium",
                              RecycleMode.BASELINE)
        results = {}
        for design in SchedulerDesign:
            cfg = CORES["medium"].variant(scheduler=design)
            results[design] = simulate(trace, cfg)
        op = results[SchedulerDesign.OPERATIONAL]
        il = results[SchedulerDesign.ILLUSTRATIVE]
        rows.append((
            f"{suite}:{bench}",
            round(100 * (base.cycles / il.cycles - 1), 1),
            round(100 * (base.cycles / op.cycles - 1), 1),
            round(100 * op.stats.la_misprediction_rate, 2),
            op.stats.la_replays,
        ))
    return rows


def test_ablation_rse_design(evaluation, bench_once):
    rows = bench_once(generate_comparison, evaluation)
    print_table("Ablation: Illustrative vs Operational RSE (MEDIUM)",
                ["benchmark", "illustrative %", "operational %",
                 "LA mispred %", "LA replays"], rows)

    for label, il, op, mispred, _replays in rows:
        # the cheap Operational design stays close to Illustrative
        assert op >= il - 3.0, label
        # last-arrival prediction is accurate
        assert mispred < 10.0, label
    # and the illustrative design never replays on wrong tags
    # (it watches every source) - checked via a direct run
    trace = evaluation.trace("mibench", "crc")
    il = simulate(trace, CORES["medium"].variant(
        scheduler=SchedulerDesign.ILLUSTRATIVE))
    assert il.stats.la_replays == 0
