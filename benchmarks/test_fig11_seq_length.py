"""Fig. 11 — Expected value of transparent-sequence length.

Regenerates the length-weighted expected value of transparent sequences
per suite and core.  The paper observes 4-6 on average with enough
slack per op (10-60 % of the cycle) for sequences to accumulate whole
cycles.
"""

from repro.analysis.report import print_table
from repro.core import RecycleMode

from conftest import CORE_ORDER, SUITE_ORDER


def generate_fig11(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        for core in CORE_ORDER:
            evs = [evaluation.run(suite, b, core, RecycleMode.REDSOC)
                   .stats.seq_expected_length
                   for b in evaluation.benchmarks(suite)]
            rows.append((f"{suite}-MEAN", core,
                         round(sum(evs) / len(evs), 2)))
    return rows


def test_fig11_transparent_sequence_length(evaluation, bench_once):
    rows = bench_once(generate_fig11, evaluation)
    print_table("Fig. 11: EV of transparent sequence length",
                ["suite", "core", "EV(length)"], rows)
    table = {(s, c): ev for s, c, ev in rows}

    for (suite, core), ev in table.items():
        # sequences exist and are bounded by sane chain lengths
        assert 1.0 <= ev <= 16.0
    # bigger cores sustain longer transparent sequences (more idle FUs
    # and more RS entries to schedule aggressively - Sec. VI-A/VI-C)
    for suite in SUITE_ORDER:
        assert table[(f"{suite}-MEAN", "big")] >= table[
            (f"{suite}-MEAN", "small")] - 0.05
    # at least one suite reaches multi-op sequences on the big core
    assert max(table[(f"{s}-MEAN", "big")] for s in SUITE_ORDER) > 1.5
