#!/usr/bin/env python
"""Core-simulator throughput benchmark (sim-cycles per second).

Times every selected ``(suite, bench, core, mode)`` job **per engine**
(schema 2) and two ways per engine:

* **cold** — trace generation plus simulation, the cost of a
  first-ever run of a job (what a forced campaign pays per miss).  The
  compiled engine generates its trace through the codegen'd per-block
  step functions (:mod:`repro.pipeline.codegen`); program lowering
  itself is compiled once per process and amortised, exactly like the
  trace memo on the warm path;
* **warm** — simulation alone against a pre-generated trace, the
  steady-state cost once the per-process trace memo is hot.

Each measurement is the **minimum of N repeats** (default 3, the
standard ``timeit`` practice): wall-clock on shared runners jitters by
10-20%, and the minimum is the best estimator of the true cost because
noise is strictly additive.  A throwaway warm-up run precedes timing so
allocator and bytecode-cache effects land outside the window.

Results go to ``BENCH_core.json`` with one row per
``(job, engine)`` and one aggregate per engine.  ``--check`` gates
against a committed reference (``benchmarks/core_reference.json``):

* per-engine aggregate cold and warm cost must stay within
  ``--tolerance`` (default 10%) of the reference **in
  machine-normalised units** — a short pure-Python calibration probe is
  timed immediately before every repeat, each repeat's wall time is
  expressed in multiples of its adjacent probe ("quanta"), and the gate
  compares min-of-N quanta;
* engines listed under the reference's ``floors`` section must beat
  their absolute ``min_cold_cyc_per_s`` floor (a loose machine-speed
  sanity bound, deliberately far below typical measurements);
* every job's simulated cycle count must match the reference row for
  the same engine, and all engines must agree on every job's cycle
  count within the run itself (backend bit-identity).

Gate failures name the offending engine and bench row.

::

    python benchmarks/bench_core.py --smoke --check --engines fast
    python benchmarks/bench_core.py --smoke --update-reference
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.jobs import (enumerate_jobs, job_config,  # noqa: E402
                                 smoke_jobs)
from repro.core import ENGINES  # noqa: E402
from repro.core.cpu import simulate  # noqa: E402
from repro.pipeline.codegen import generate_trace_compiled  # noqa: E402
from repro.pipeline.trace import generate_trace  # noqa: E402
from repro.workloads.suites import SUITES, default_scale  # noqa: E402

DEFAULT_REFERENCE = Path(__file__).parent / "core_reference.json"
DEFAULT_OUTPUT = Path("BENCH_core.json")
DEFAULT_REPEATS = 3
DEFAULT_TOLERANCE = 0.10
SCHEMA = 2

#: iteration count of the machine-speed calibration probe; sized so one
#: pass takes ~25 ms on a 2020s-era core — cheap enough to run before
#: every timing repeat, long enough to be stable.
_CALIBRATION_ITERS = 500_000


def _calibrate() -> float:
    """Seconds for a fixed pure-Python integer loop (one probe).

    The loop exercises the same interpreter machinery the simulator
    leans on (integer arithmetic, name lookups, loop overhead), so the
    ratio ``job_time / probe_time`` is roughly host-invariant.  A probe
    runs *adjacent to each timing repeat* and normalises only that
    repeat, which also cancels slowly-varying background load.
    """
    start = time.perf_counter()
    acc = 0
    for i in range(_CALIBRATION_ITERS):
        acc += i & 7
    elapsed = time.perf_counter() - start
    assert acc >= 0  # keep the loop body live
    return elapsed


def _build_program(job):
    builder = SUITES[job.suite][job.bench]
    if job.scale is not None:
        kwargs = {"scale": job.scale}
    else:
        kwargs = default_scale(job.suite, job.bench)
    return builder(**kwargs)


def _generator_for(engine: str):
    """The trace generator a cold run of *engine* pays for.

    The lowered backends both ride the codegen trace generator — it
    produces entry-identical traces (fuzzed nightly) several times
    faster, and its per-program code cache is exactly the state a
    warm service process holds.
    """
    if engine in ("compiled", "vector"):
        return generate_trace_compiled
    return generate_trace


def _time_job(job, repeats: int, engine: str):
    """Min-of-N cold and warm timings for one job on one engine."""
    program = _build_program(job)
    config = replace(job_config(job), engine=engine)
    gen = _generator_for(engine)

    # warm-up: one untimed full pass (also yields the reusable trace
    # and, for the compiled engine, the per-program lowering)
    trace = gen(program)
    result = simulate(trace, config)
    cycles = result.cycles

    best_gen = best_sim = best_warm = None
    best_cold_q = best_warm_q = None
    for _ in range(repeats):
        probe = _calibrate()

        start = time.perf_counter()
        cold_trace = gen(program)
        mid = time.perf_counter()
        simulate(cold_trace, config)
        end = time.perf_counter()
        gen_s, sim_s = mid - start, end - mid
        if best_gen is None or gen_s < best_gen:
            best_gen = gen_s
        if best_sim is None or sim_s < best_sim:
            best_sim = sim_s
        cold_q = (gen_s + sim_s) / probe
        if best_cold_q is None or cold_q < best_cold_q:
            best_cold_q = cold_q

        probe = _calibrate()
        start = time.perf_counter()
        simulate(trace, config)
        warm_s = time.perf_counter() - start
        if best_warm is None or warm_s < best_warm:
            best_warm = warm_s
        warm_q = warm_s / probe
        if best_warm_q is None or warm_q < best_warm_q:
            best_warm_q = warm_q

    cold_s = best_gen + best_sim
    return {
        "suite": job.suite, "bench": job.bench,
        "core": job.core, "mode": job.mode,
        "engine": engine,
        "cycles": cycles,
        "trace_gen_s": round(best_gen, 6),
        "cold_s": round(cold_s, 6),
        "warm_s": round(best_warm, 6),
        "cold_cyc_per_s": round(cycles / cold_s, 1),
        "warm_cyc_per_s": round(cycles / best_warm, 1),
        # machine-normalised cost (wall time in calibration quanta);
        # the regression gate compares these, not raw seconds
        "cold_quanta": round(best_cold_q, 3),
        "warm_quanta": round(best_warm_q, 3),
    }


def run_bench(jobs, repeats: int, engines, *, quiet: bool = False) -> dict:
    """Benchmark *jobs* on *engines*; returns the BENCH_core payload."""
    jobs = list(jobs)
    rows = []
    aggregates = {}
    for engine in engines:
        total_cycles = 0
        total_cold = total_warm = 0.0
        total_cold_q = total_warm_q = 0.0
        for job in jobs:
            row = _time_job(job, repeats, engine)
            rows.append(row)
            total_cycles += row["cycles"]
            total_cold += row["cold_s"]
            total_warm += row["warm_s"]
            total_cold_q += row["cold_quanta"]
            total_warm_q += row["warm_quanta"]
            if not quiet:
                print(f"  [{engine:>9s}] {job.label:35s} "
                      f"cold {row['cold_s']:6.3f}s "
                      f"({row['cold_cyc_per_s']:>9,.0f} cyc/s)  "
                      f"warm {row['warm_s']:6.3f}s "
                      f"({row['warm_cyc_per_s']:>9,.0f} cyc/s)")
        aggregates[engine] = {
            "cycles": total_cycles,
            "cold_s": round(total_cold, 3),
            "warm_s": round(total_warm, 3),
            "cold_cyc_per_s": round(total_cycles / total_cold, 1),
            "warm_cyc_per_s": round(total_cycles / total_warm, 1),
            "cold_quanta": round(total_cold_q, 3),
            "warm_quanta": round(total_warm_q, 3),
        }
        if not quiet:
            agg = aggregates[engine]
            print(f"aggregate [{engine}]: "
                  f"cold {agg['cold_cyc_per_s']:,.0f} cyc/s, "
                  f"warm {agg['warm_cyc_per_s']:,.0f} cyc/s "
                  f"({total_cycles} cycles, {len(jobs)} jobs)")
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "calibration_iters": _CALIBRATION_ITERS,
        "engines": list(engines),
        "jobs": rows,
        "aggregates": aggregates,
    }


def _row_key(row):
    return (row["suite"], row["bench"], row["core"], row["mode"])


def _row_label(row):
    return "/".join(_row_key(row)) + f" [{row['engine']}]"


def check_against_reference(payload: dict, reference: dict,
                            tolerance: float):
    """Return drift failures of *payload* vs *reference* (schema 2).

    Costs are compared per engine in calibration quanta (wall time
    divided by the adjacent probe's time), which cancels the host's raw
    CPU speed and slow background-load drift.  Lower quanta = faster
    simulator.  Every failure message names the engine and, for
    row-level checks, the offending bench row.
    """
    failures = []
    ref_aggs = reference.get("aggregates", {})
    for engine, agg in payload["aggregates"].items():
        ref_agg = ref_aggs.get(engine)
        if ref_agg is None:
            failures.append(f"engine {engine!r}: no reference aggregate "
                            "— regenerate with --update-reference")
            continue
        for metric in ("cold_quanta", "warm_quanta"):
            ratio = agg[metric] / ref_agg[metric]
            if ratio > 1.0 + tolerance:
                failures.append(
                    f"engine {engine!r} aggregate {metric}: "
                    f"{ratio - 1.0:.1%} above reference "
                    f"({agg[metric]:,.1f} vs {ref_agg[metric]:,.1f} "
                    f"quanta — slower)")

    # absolute throughput floors (loose machine-speed sanity bounds)
    for engine, floor in reference.get("floors", {}).items():
        agg = payload["aggregates"].get(engine)
        minimum = floor.get("min_cold_cyc_per_s")
        if agg is None or minimum is None:
            continue
        if agg["cold_cyc_per_s"] < minimum:
            failures.append(
                f"engine {engine!r} aggregate cold throughput "
                f"{agg['cold_cyc_per_s']:,.0f} cyc/s is below its floor "
                f"of {minimum:,.0f} cyc/s")

    # per-row cycle identity vs the reference for the same engine
    ref_rows = {(_row_key(r), r["engine"]): r
                for r in reference.get("jobs", [])}
    measured_engines = set(payload["aggregates"])
    for (key, engine), ref_row in sorted(ref_rows.items()):
        if engine in measured_engines and \
                (key, engine) not in {(_row_key(r), r["engine"])
                                      for r in payload["jobs"]}:
            failures.append("missing job vs reference: "
                            + "/".join(key) + f" [{engine}]")
    for row in payload["jobs"]:
        ref_row = ref_rows.get((_row_key(row), row["engine"]))
        if ref_row is not None and row["cycles"] != ref_row["cycles"]:
            failures.append(
                f"{_row_label(row)}: simulated cycles changed "
                f"(ref {ref_row['cycles']}, got {row['cycles']}) — "
                f"timing-model change, update the reference")

    # backend bit-identity inside this run: every engine must report
    # the same cycle count for the same job
    by_job = {}
    for row in payload["jobs"]:
        by_job.setdefault(_row_key(row), []).append(row)
    for key, rows in sorted(by_job.items()):
        cycles = {r["cycles"] for r in rows}
        if len(cycles) > 1:
            detail = ", ".join(f"{r['engine']}={r['cycles']}"
                               for r in rows)
            failures.append("cross-engine cycle mismatch on "
                            + "/".join(key) + f": {detail}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="benchmark the CI smoke set (one small "
                             "benchmark per suite, small core, all "
                             "modes)")
    parser.add_argument("--suites", nargs="*", default=None)
    parser.add_argument("--cores", nargs="*", default=None)
    parser.add_argument("--modes", nargs="*", default=None)
    parser.add_argument("--engines", nargs="+", metavar="ENGINE",
                        choices=list(ENGINES.names()), default=None,
                        help="simulation backends to measure "
                             "(default: all registered engines)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="timing repeats per job; each metric is "
                             "the minimum (default: 3)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="result JSON path (default: "
                             "BENCH_core.json)")
    parser.add_argument("--reference", type=Path,
                        default=DEFAULT_REFERENCE,
                        help="reference JSON for --check / "
                             "--update-reference")
    parser.add_argument("--check", action="store_true",
                        help="fail if any engine regresses more than "
                             "--tolerance vs the reference "
                             "(machine-speed normalised), misses its "
                             "floor, or breaks cycle identity")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="max relative regression (default: 0.10)")
    parser.add_argument("--update-reference", action="store_true",
                        help="rewrite the reference from this run "
                             "(preserves a hand-maintained floors "
                             "section)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        jobs = smoke_jobs(modes=args.modes)
    else:
        jobs = enumerate_jobs(suites=args.suites, cores=args.cores,
                              modes=args.modes)
    engines = args.engines or list(ENGINES.names())

    payload = run_bench(jobs, args.repeats, engines, quiet=args.quiet)

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.update_reference:
        if args.reference.is_file():
            with open(args.reference, "r", encoding="utf-8") as fh:
                floors = json.load(fh).get("floors")
            if floors:
                payload = dict(payload, floors=floors)
        with open(args.reference, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.reference}")
        return 0

    if args.check:
        if not args.reference.is_file():
            print(f"error: no reference at {args.reference}; create "
                  f"one with --update-reference", file=sys.stderr)
            return 2
        with open(args.reference, "r", encoding="utf-8") as fh:
            reference = json.load(fh)
        failures = check_against_reference(payload, reference,
                                           args.tolerance)
        if failures:
            print(f"CORE-BENCH REGRESSION ({len(failures)} failure(s), "
                  f"tolerance {args.tolerance:.0%}):")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"core-bench gate OK: every engine within "
              f"{args.tolerance:.0%} of reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
