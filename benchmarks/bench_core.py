#!/usr/bin/env python
"""Core-simulator throughput benchmark (sim-cycles per second).

Times every selected ``(suite, bench, core, mode)`` job two ways:

* **cold** — trace generation plus simulation, the cost of a
  first-ever run of a job (what a forced campaign pays per miss);
* **warm** — simulation alone against a pre-generated trace, the
  steady-state cost once the per-process trace memo is hot.

Each measurement is the **minimum of N repeats** (default 3, the
standard ``timeit`` practice): wall-clock on shared runners jitters by
10-20%, and the minimum is the best estimator of the true cost because
noise is strictly additive.  A throwaway warm-up run precedes timing so
allocator and bytecode-cache effects land outside the window.

Results go to ``BENCH_core.json``.  ``--check`` gates against a
committed reference (``benchmarks/core_reference.json``): aggregate
cold and warm cost must stay within ``--tolerance`` (default 10%) of
the reference **in machine-normalised units** — a short pure-Python
calibration probe is timed immediately before every repeat, each
repeat's wall time is expressed in multiples of its adjacent probe
("quanta"), and the gate compares min-of-N quanta.  Pinning the probe
next to the measurement cancels both host CPU speed and slow load
drift, so the gate tracks simulator efficiency, not runner weather::

    python benchmarks/bench_core.py --smoke --check
    python benchmarks/bench_core.py --smoke --update-reference
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.jobs import (enumerate_jobs, job_config,  # noqa: E402
                                 smoke_jobs)
from repro.core.cpu import simulate  # noqa: E402
from repro.pipeline.trace import generate_trace  # noqa: E402
from repro.workloads.suites import SUITES, default_scale  # noqa: E402

DEFAULT_REFERENCE = Path(__file__).parent / "core_reference.json"
DEFAULT_OUTPUT = Path("BENCH_core.json")
DEFAULT_REPEATS = 3
DEFAULT_TOLERANCE = 0.10
SCHEMA = 1

#: iteration count of the machine-speed calibration probe; sized so one
#: pass takes ~25 ms on a 2020s-era core — cheap enough to run before
#: every timing repeat, long enough to be stable.
_CALIBRATION_ITERS = 500_000


def _calibrate() -> float:
    """Seconds for a fixed pure-Python integer loop (one probe).

    The loop exercises the same interpreter machinery the simulator
    leans on (integer arithmetic, name lookups, loop overhead), so the
    ratio ``job_time / probe_time`` is roughly host-invariant.  A probe
    runs *adjacent to each timing repeat* and normalises only that
    repeat, which also cancels slowly-varying background load.
    """
    start = time.perf_counter()
    acc = 0
    for i in range(_CALIBRATION_ITERS):
        acc += i & 7
    elapsed = time.perf_counter() - start
    assert acc >= 0  # keep the loop body live
    return elapsed


def _build_program(job):
    builder = SUITES[job.suite][job.bench]
    if job.scale is not None:
        kwargs = {"scale": job.scale}
    else:
        kwargs = default_scale(job.suite, job.bench)
    return builder(**kwargs)


def _time_job(job, repeats: int):
    """Min-of-N cold and warm timings for one job."""
    program = _build_program(job)
    config = job_config(job)

    # warm-up: one untimed full pass (also yields the reusable trace)
    trace = generate_trace(program)
    result = simulate(trace, config)
    cycles = result.cycles

    best_gen = best_sim = best_warm = None
    best_cold_q = best_warm_q = None
    for _ in range(repeats):
        probe = _calibrate()

        start = time.perf_counter()
        cold_trace = generate_trace(program)
        mid = time.perf_counter()
        simulate(cold_trace, config)
        end = time.perf_counter()
        gen_s, sim_s = mid - start, end - mid
        if best_gen is None or gen_s < best_gen:
            best_gen = gen_s
        if best_sim is None or sim_s < best_sim:
            best_sim = sim_s
        cold_q = (gen_s + sim_s) / probe
        if best_cold_q is None or cold_q < best_cold_q:
            best_cold_q = cold_q

        probe = _calibrate()
        start = time.perf_counter()
        simulate(trace, config)
        warm_s = time.perf_counter() - start
        if best_warm is None or warm_s < best_warm:
            best_warm = warm_s
        warm_q = warm_s / probe
        if best_warm_q is None or warm_q < best_warm_q:
            best_warm_q = warm_q

    cold_s = best_gen + best_sim
    return {
        "suite": job.suite, "bench": job.bench,
        "core": job.core, "mode": job.mode,
        "cycles": cycles,
        "trace_gen_s": round(best_gen, 6),
        "cold_s": round(cold_s, 6),
        "warm_s": round(best_warm, 6),
        "cold_cyc_per_s": round(cycles / cold_s, 1),
        "warm_cyc_per_s": round(cycles / best_warm, 1),
        # machine-normalised cost (wall time in calibration quanta);
        # the regression gate compares these, not raw seconds
        "cold_quanta": round(best_cold_q, 3),
        "warm_quanta": round(best_warm_q, 3),
    }


def run_bench(jobs, repeats: int, *, quiet: bool = False) -> dict:
    """Benchmark *jobs* and return the ``BENCH_core.json`` payload."""
    rows = []
    total_cycles = 0
    total_cold = total_warm = 0.0
    total_cold_q = total_warm_q = 0.0
    for job in jobs:
        row = _time_job(job, repeats)
        rows.append(row)
        total_cycles += row["cycles"]
        total_cold += row["cold_s"]
        total_warm += row["warm_s"]
        total_cold_q += row["cold_quanta"]
        total_warm_q += row["warm_quanta"]
        if not quiet:
            print(f"  {job.label:35s} cold {row['cold_s']:6.3f}s "
                  f"({row['cold_cyc_per_s']:>9,.0f} cyc/s)  "
                  f"warm {row['warm_s']:6.3f}s "
                  f"({row['warm_cyc_per_s']:>9,.0f} cyc/s)")
    aggregate = {
        "cycles": total_cycles,
        "cold_s": round(total_cold, 3),
        "warm_s": round(total_warm, 3),
        "cold_cyc_per_s": round(total_cycles / total_cold, 1),
        "warm_cyc_per_s": round(total_cycles / total_warm, 1),
        "cold_quanta": round(total_cold_q, 3),
        "warm_quanta": round(total_warm_q, 3),
    }
    if not quiet:
        print(f"aggregate: cold {aggregate['cold_cyc_per_s']:,.0f} cyc/s, "
              f"warm {aggregate['warm_cyc_per_s']:,.0f} cyc/s "
              f"({total_cycles} cycles, {len(rows)} jobs)")
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "calibration_iters": _CALIBRATION_ITERS,
        "jobs": rows,
        "aggregate": aggregate,
    }


def check_against_reference(payload: dict, reference: dict,
                            tolerance: float):
    """Return drift failures of *payload* vs *reference*.

    Costs are compared in calibration quanta (wall time divided by the
    adjacent probe's time), which cancels the host's raw CPU speed and
    slow background-load drift.  Lower quanta = faster simulator.
    """
    failures = []
    for metric in ("cold_quanta", "warm_quanta"):
        got = payload["aggregate"][metric]
        ref = reference["aggregate"][metric]
        ratio = got / ref
        if ratio > 1.0 + tolerance:
            failures.append(
                f"aggregate {metric}: {ratio - 1.0:.1%} above reference "
                f"({got:,.1f} vs {ref:,.1f} quanta — slower)")
    new_jobs = {(r["suite"], r["bench"], r["core"], r["mode"])
                for r in payload["jobs"]}
    ref_jobs = {(r["suite"], r["bench"], r["core"], r["mode"])
                for r in reference["jobs"]}
    for key in sorted(ref_jobs - new_jobs):
        failures.append("missing job vs reference: " + "/".join(key))
    for row in payload["jobs"]:
        key = (row["suite"], row["bench"], row["core"], row["mode"])
        ref_row = next((r for r in reference["jobs"]
                        if (r["suite"], r["bench"], r["core"],
                            r["mode"]) == key), None)
        if ref_row is not None and row["cycles"] != ref_row["cycles"]:
            failures.append(
                f"{'/'.join(key)}: simulated cycles changed "
                f"(ref {ref_row['cycles']}, got {row['cycles']}) — "
                f"timing-model change, update the reference")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="benchmark the CI smoke set (one small "
                             "benchmark per suite, small core, all "
                             "modes)")
    parser.add_argument("--suites", nargs="*", default=None)
    parser.add_argument("--cores", nargs="*", default=None)
    parser.add_argument("--modes", nargs="*", default=None)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="timing repeats per job; each metric is "
                             "the minimum (default: 3)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="result JSON path (default: "
                             "BENCH_core.json)")
    parser.add_argument("--reference", type=Path,
                        default=DEFAULT_REFERENCE,
                        help="reference JSON for --check / "
                             "--update-reference")
    parser.add_argument("--check", action="store_true",
                        help="fail if aggregate throughput regresses "
                             "more than --tolerance vs the reference "
                             "(machine-speed normalised)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="max relative regression (default: 0.10)")
    parser.add_argument("--update-reference", action="store_true",
                        help="rewrite the reference from this run")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        jobs = smoke_jobs(modes=args.modes)
    else:
        jobs = enumerate_jobs(suites=args.suites, cores=args.cores,
                              modes=args.modes)

    payload = run_bench(jobs, args.repeats, quiet=args.quiet)

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.update_reference:
        with open(args.reference, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.reference}")
        return 0

    if args.check:
        if not args.reference.is_file():
            print(f"error: no reference at {args.reference}; create "
                  f"one with --update-reference", file=sys.stderr)
            return 2
        with open(args.reference, "r", encoding="utf-8") as fh:
            reference = json.load(fh)
        failures = check_against_reference(payload, reference,
                                           args.tolerance)
        if failures:
            print(f"CORE-BENCH REGRESSION ({len(failures)} failure(s), "
                  f"tolerance {args.tolerance:.0%}):")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"core-bench gate OK: aggregate throughput within "
              f"{args.tolerance:.0%} of reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
