"""Table I — Processor baselines (Small / Medium / Big)."""

from repro.analysis.report import print_table
from repro.core import CORES


def generate_table1():
    rows = []
    for name in ("small", "medium", "big"):
        c = CORES[name]
        rows.append((name.capitalize(), c.front_width,
                     f"{c.rob_size}/{c.lsq_size}/{c.rse_size}",
                     f"{c.alu_units}/{c.simd_units}/{c.fp_units}"))
    return rows


def test_table1_processor_baselines(bench_once):
    rows = bench_once(generate_table1)
    print_table("Table I: processor baselines (2 GHz, 64kB L1 / 2MB L2)",
                ["core", "width", "ROB/LSQ/RSE", "ALU/SIMD/FP"], rows)
    small, medium, big = (CORES[n] for n in ("small", "medium", "big"))

    # the paper's exact structure sizes
    assert (small.front_width, medium.front_width, big.front_width) == (3, 4, 8)
    assert (small.rob_size, medium.rob_size, big.rob_size) == (40, 80, 160)
    assert (small.lsq_size, medium.lsq_size, big.lsq_size) == (16, 32, 64)
    assert (small.rse_size, medium.rse_size, big.rse_size) == (32, 64, 128)
    assert (small.alu_units, medium.alu_units, big.alu_units) == (3, 4, 6)
    assert (small.simd_units, medium.simd_units, big.simd_units) == (2, 3, 4)
    assert (small.fp_units, medium.fp_units, big.fp_units) == (2, 3, 4)
    for cfg in (small, medium, big):
        assert cfg.memory.l1_size == 64 * 1024
        assert cfg.memory.l2_size == 2 * 1024 * 1024
        assert cfg.memory.prefetch
