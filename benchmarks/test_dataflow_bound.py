"""Analysis — measured speedup vs the dataflow-bound upper limit.

For every benchmark, the dataflow critical path gives an upper bound on
what slack recycling can achieve (see
:mod:`repro.analysis.critical_path`).  The bench verifies measured
speedups respect the bound and reports harvest efficiency — separating
"no slack on the critical path" from "the scheduler failed to catch it".
"""

from repro.analysis.critical_path import analyze_critical_path
from repro.analysis.report import print_table

from conftest import SUITE_ORDER


def generate_bounds(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        for bench in evaluation.benchmarks(suite):
            trace = evaluation.trace(suite, bench)
            bound = analyze_critical_path(trace).bound_speedup
            measured = evaluation.speedup(suite, bench, "big")
            harvest = measured / bound if bound > 0.01 else float("nan")
            rows.append((suite, bench, f"{100 * bound:.1f}%",
                         f"{100 * measured:.1f}%",
                         f"{100 * harvest:.0f}%" if harvest == harvest
                         else "-"))
    return rows


def test_dataflow_bound(evaluation, bench_once):
    rows = bench_once(generate_bounds, evaluation)
    print_table("Dataflow bound vs measured speedup (BIG)",
                ["suite", "benchmark", "bound", "measured", "harvest"],
                rows)

    for suite, bench, bound_s, measured_s, _ in rows:
        bound = float(bound_s.rstrip("%"))
        measured = float(measured_s.rstrip("%"))
        # the dataflow bound holds a comfortable margin over measured
        # (cross-iteration overlap can add a little on top of the
        # single-chain bound, hence the tolerance)
        assert measured <= bound + 12.0, (suite, bench)
    # chain-bound kernels harvest a large share of their bound
    table = {(r[0], r[1]): r for r in rows}
    crc_bound = float(table[("mibench", "crc")][2].rstrip("%"))
    crc_meas = float(table[("mibench", "crc")][3].rstrip("%"))
    assert crc_meas > 0.4 * crc_bound
