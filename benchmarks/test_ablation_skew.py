"""Sec. IV-D ablation — skewed vs plain select arbitration.

Skewing prioritises conventional requests over speculative GP requests:
it prevents GP-mispeculation entirely (global arbitration) and avoids
wasting units on unusable speculative grants.  The ablation removes the
skew and measures both effects.
"""

from repro.analysis.report import print_table
from repro.core import CORES, RecycleMode, simulate

REPRESENTATIVE = {"spec": "bzip2", "mibench": "crc", "ml": "conv"}


def generate_comparison(evaluation):
    rows = []
    for suite, bench in REPRESENTATIVE.items():
        trace = evaluation.trace(suite, bench)
        base = evaluation.run(suite, bench, "medium",
                              RecycleMode.BASELINE)
        skewed = evaluation.run(suite, bench, "medium",
                                RecycleMode.REDSOC)
        unskewed = simulate(trace, CORES["medium"].variant(
            skewed_select=False))
        rows.append((
            f"{suite}:{bench}",
            round(100 * (base.cycles / skewed.cycles - 1), 1),
            round(100 * (base.cycles / unskewed.cycles - 1), 1),
            skewed.stats.gp_mispeculations,
            unskewed.stats.gp_mispeculations,
        ))
    return rows


def test_ablation_skewed_selection(evaluation, bench_once):
    rows = bench_once(generate_comparison, evaluation)
    print_table("Ablation: skewed vs plain selection (MEDIUM)",
                ["benchmark", "skewed %", "plain %",
                 "GP-misp (skewed)", "GP-misp (plain)"], rows)

    for label, skewed, plain, misp_skewed, _misp_plain in rows:
        # skewed selection with global arbitration never mispeculates
        assert misp_skewed == 0, label
        # removing the skew never helps
        assert skewed >= plain - 1.0, label
