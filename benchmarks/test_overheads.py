"""Secs. II-B & IV-E — hardware overheads of the Operational design.

Paper claims: predictors + LUT ≈ 0.52 % area / 0.5 % energy of the OOO
core; RSE slack machinery ≈ 0.3 % area / 0.8 % energy; skewed selection
adds 3 ps to a 100 ps select.  The bench regenerates the overhead table
from the register-bit-equivalent inventory.
"""

from repro.analysis.report import print_table
from repro.core import CORES
from repro.core.overheads import (
    baseline_inventory,
    overhead_report,
    redsoc_additions,
)


def generate_overheads():
    rows = []
    for name in ("small", "medium", "big"):
        rep = overhead_report(CORES[name])
        rows.append((name,
                     f"{100 * rep.predictor_area_fraction:.2f}%",
                     f"{100 * rep.rse_area_fraction:.2f}%",
                     f"{100 * rep.rse_energy_fraction:.2f}%",
                     f"{100 * rep.area_fraction:.2f}%",
                     f"{100 * rep.energy_fraction:.2f}%"))
    return rows


def test_overhead_table(bench_once):
    rows = bench_once(generate_overheads)
    print_table("ReDSOC hardware overheads (vs baseline core)",
                ["core", "LUT+predictors area", "RSE area",
                 "RSE energy", "total area", "total energy"], rows)

    for name in ("small", "medium", "big"):
        rep = overhead_report(CORES[name])
        # all additions are small fractions of the core, as claimed
        assert rep.predictor_area_fraction < 0.02
        assert rep.rse_area_fraction < 0.015
        assert rep.rse_energy_fraction < 0.02
        assert rep.area_fraction < 0.03
        assert rep.energy_fraction < 0.03
        # skewed selection: 3 ps on a 100 ps select arbiter
        assert rep.select_delay_ps / rep.baseline_select_delay_ps <= 0.03


def test_inventory_structure():
    base = baseline_inventory()
    extra = redsoc_additions()
    # caches dominate baseline area, as in any real core
    total = sum(s.area for s in base.values())
    caches = base["L1D cache"].area + base["L1I cache"].area
    assert caches > 0.25 * total
    # the width predictor is the largest single addition
    assert max(extra.values(), key=lambda s: s.area).name == \
        "width predictor"
    # width predictor state matches the paper's ~1.5 KB + class bits
    assert 8 * 1024 <= extra["width predictor"].area <= 4 * 8 * 1024
