"""Fig. 12 — Last parent / grandparent tag-prediction accuracy.

Regenerates the Operational design's last-arrival misprediction rate
per suite and core (paper: around 1 %, slightly worse on larger cores
due to higher scheduling traffic).
"""

from repro.analysis.report import print_table
from repro.core import RecycleMode

from conftest import CORE_ORDER, SUITE_ORDER


def generate_fig12(evaluation):
    rows = []
    for suite in SUITE_ORDER:
        for core in CORE_ORDER:
            mispredicts = predictions = 0
            for b in evaluation.benchmarks(suite):
                stats = evaluation.run(suite, b, core,
                                       RecycleMode.REDSOC).stats
                mispredicts += stats.la_mispredictions
                predictions += stats.la_predictions
            rate = mispredicts / predictions if predictions else 0.0
            rows.append((f"{suite}-MEAN", core, round(100 * rate, 2),
                         predictions))
    return rows


def test_fig12_tag_prediction(evaluation, bench_once):
    rows = bench_once(generate_fig12, evaluation)
    print_table("Fig. 12: P/GP last-arrival misprediction (%)",
                ["suite", "core", "mispredict %", "predictions"], rows)
    table = {(s, c): pct for s, c, pct, _ in rows}

    # mispredictions stay low (paper: ~1%; we tolerate the single digits
    # because our kernels' zipped chains are noisier than Simpoints)
    for pct in table.values():
        assert pct < 12.0
    # at least one suite is near the paper's ~1% level
    assert min(table[(f"{s}-MEAN", "big")] for s in SUITE_ORDER) < 3.0
