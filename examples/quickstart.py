#!/usr/bin/env python3
"""Quickstart: write a kernel, run it on a baseline core and on ReDSOC.

Builds a small CRC-like loop with the assembler API, simulates it on the
paper's BIG core with and without slack recycling, and reports the
speedup plus the recycling statistics that explain it.

Run:  python examples/quickstart.py
"""

from repro import BIG, RecycleMode, simulate
from repro.isa import Asm, Cond, r


def build_kernel():
    """A dependent logic/shift chain — prime slack-recycling material."""
    a = Asm("quickstart")
    a.mov(r(1), 0xDEADBEEF)     # working value
    a.mov(r(2), 2000)           # loop count
    a.label("loop")
    a.eor(r(1), r(1), 0x5A5A)   # each op depends on the previous one
    a.ror(r(1), r(1), 7)
    a.orr(r(1), r(1), 0x10)
    a.add(r(1), r(1), 0x33)
    a.subs(r(2), r(2), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def main():
    program = build_kernel()

    baseline = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
    redsoc = simulate(program, BIG.with_mode(RecycleMode.REDSOC))

    speedup = baseline.cycles / redsoc.cycles - 1
    print(f"program           : {program.name} "
          f"({baseline.stats.committed} dynamic instructions)")
    print(f"baseline          : {baseline.cycles} cycles "
          f"(IPC {baseline.ipc:.2f})")
    print(f"ReDSOC            : {redsoc.cycles} cycles "
          f"(IPC {redsoc.ipc:.2f})")
    print(f"speedup           : {speedup:.1%}")
    print()
    stats = redsoc.stats
    print(f"recycled ops      : {stats.recycled_ops} "
          f"(started mid-cycle off a producer's completion instant)")
    print(f"eager (GP) issues : {stats.eager_issues}")
    print(f"2-cycle FU holds  : {stats.two_cycle_holds}")
    print(f"transparent seq EV: {stats.seq_expected_length:.2f} ops")

    # slack recycling must never change architectural results
    assert (baseline.stats.committed == redsoc.stats.committed)
    print("\narchitectural-equivalence check passed")


if __name__ == "__main__":
    main()
