#!/usr/bin/env python3
"""Slack analysis: from gate delays to the 14-bucket LUT (Secs. II-III).

Walks the paper's slack pipeline bottom-up:

1. structural delays of the datapath units (Fig. 1 / Fig. 2),
2. the 5-bit slack classification and the 14 bucket EX-TIMEs,
3. per-operation slack for a real instruction stream, and
4. a Fig. 4-style transparent-chain walkthrough in ticks.

Run:  python examples/slack_analysis.py
"""

from repro.analysis.report import print_table
from repro.core import SlackLUT
from repro.core.ticks import DEFAULT_TICK_BASE
from repro.core.transparent import resolve_execution
from repro.core.slack_lut import SlackKey
from repro.timing import fig1_table, fig2_series


def main():
    base = DEFAULT_TICK_BASE
    lut = SlackLUT()

    print_table("Fig. 1: ALU computation times (ps)",
                ["op", "ps"],
                [(name, round(ps, 1)) for name, ps in fig1_table()])

    print_table("Fig. 2: KS-adder delay vs effective width (16-bit)",
                ["width", "ps"],
                [(w, round(d, 1)) for w, d in fig2_series(16)][::3])

    rows = []
    for address, ticks in lut.buckets().items():
        key = SlackKey.from_address(address)
        kind = ("SIMD" if key.simd
                else "arith" if key.arith else "logic")
        shift = "+shift" if key.shift else ""
        rows.append((f"{kind}{shift}", key.width_class, ticks,
                     f"{(base.ticks_per_cycle - ticks) / base.ticks_per_cycle:.0%}"))
    print_table("The 14 slack buckets (EX-TIME in 1/8-cycle ticks)",
                ["class", "width/type", "EX-TIME", "slack"], rows)

    # Fig. 4 walkthrough: three chained ops of 7, 5 and 4 ticks
    print("Fig. 4 walkthrough (ticks, 8 ticks = 1 cycle):")
    x1 = resolve_execution(arrival_cycle=1, source_avail=0, ex_ticks=7,
                           transparent=True, base=base)
    x2 = resolve_execution(arrival_cycle=1, source_avail=x1.avail_tick,
                           ex_ticks=5, transparent=True, base=base)
    x3 = resolve_execution(arrival_cycle=2, source_avail=x2.avail_tick,
                           ex_ticks=4, transparent=True, base=base)
    for name, t in (("x1", x1), ("x2", x2), ("x3", x3)):
        hold = " (holds FU 2 cycles)" if t.extra_cycle_hold else ""
        print(f"  {name}: computes [{t.start_tick}, {t.end_tick})"
              f", synchronous consumer clocks at {t.sync_avail_tick}"
              f"{hold}")
    saved = 3 * base.ticks_per_cycle + 8 - x3.sync_avail_tick
    print(f"  -> a pure synchronous schedule needs ticks 8..32; "
          f"recycling saved {saved} ticks (1 cycle)")


if __name__ == "__main__":
    main()
