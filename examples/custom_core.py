#!/usr/bin/env python3
"""Configure a custom core and explore the ReDSOC design space.

Shows the configuration surface a microarchitect would sweep: structure
sizes, the slack threshold (static vs the dynamic controller), the
Illustrative vs Operational RSE, and skewed selection — all on one
workload (MiBench bitcount).

Run:  python examples/custom_core.py
"""

from repro import CoreConfig, RecycleMode, generate_trace, simulate
from repro.analysis.report import print_table
from repro.core import SchedulerDesign
from repro.workloads import bitcount


def main():
    trace = generate_trace(bitcount(80))

    # A custom 6-wide core between MEDIUM and BIG
    core = CoreConfig(name="custom", front_width=6, rob_size=128,
                      lsq_size=48, rse_size=96, alu_units=5,
                      simd_units=3, fp_units=3)

    baseline = simulate(trace, core.with_mode(RecycleMode.BASELINE))

    variants = {
        "ReDSOC (dynamic threshold)": core,
        "ReDSOC (static t=7)": core.variant(adaptive_threshold=False,
                                            slack_threshold=7),
        "ReDSOC (static t=3)": core.variant(adaptive_threshold=False,
                                            slack_threshold=3),
        "Illustrative RSE": core.variant(
            scheduler=SchedulerDesign.ILLUSTRATIVE),
        "plain (unskewed) select": core.variant(skewed_select=False),
        "MOS fusion": core.with_mode(RecycleMode.MOS),
    }

    rows = [("baseline", baseline.cycles, f"{baseline.ipc:.2f}", "-")]
    for label, config in variants.items():
        result = simulate(trace, config)
        speedup = baseline.cycles / result.cycles - 1
        rows.append((label, result.cycles, f"{result.ipc:.2f}",
                     f"{speedup:+.1%}"))
    print_table("bitcount on a custom 6-wide core",
                ["configuration", "cycles", "IPC", "speedup"], rows)


if __name__ == "__main__":
    main()
