#!/usr/bin/env python3
"""PVT drift and CPM-driven slack recalibration (Sec. V).

Walks the PVT machinery: how voltage/temperature drift scales the
datapath delays, how the critical-path monitors sense it, and how the
10 000-cycle recalibration loop keeps the slack LUT safe while
retaining nearly all the available slack.

Run:  python examples/pvt_drift.py
"""

from repro.analysis.report import print_table
from repro.core import SlackLUT
from repro.core.pvt import (
    PVTCondition,
    PVTRecalibrator,
    SCENARIOS,
    delay_scale,
    recalibration_report,
)


def main():
    print_table(
        "Delay scaling across operating points",
        ["condition", "delay scale"],
        [
            ("nominal (1.10 V, 60 C)", f"{delay_scale(PVTCondition()):.3f}"),
            ("droop   (1.02 V)",
             f"{delay_scale(PVTCondition(voltage=1.02)):.3f}"),
            ("hot     (95 C)",
             f"{delay_scale(PVTCondition(temp_c=95)):.3f}"),
            ("slow corner (+8 %)",
             f"{delay_scale(PVTCondition(process=1.08)):.3f}"),
            ("fast corner (-8 %)",
             f"{delay_scale(PVTCondition(process=0.92)):.3f}"),
        ])

    # watch the LUT follow a thermal ramp
    lut = SlackLUT()
    recal = PVTRecalibrator(lut, SCENARIOS["thermal-ramp"],
                            interval=50_000)
    rows = []
    for cycle in range(0, 400_001, 50_000):
        recal.tick(cycle)
        event = recal.events[-1]
        logic = lut.buckets()[3]          # the logic bucket address
        worst = max(lut.buckets().values())
        rows.append((cycle, f"{event.true_scale:.3f}",
                     f"{event.sensed_scale:.3f}", logic, worst))
    print_table("Thermal ramp: LUT EX-TIMEs tracking the CPM",
                ["cycle", "true scale", "sensed", "logic bucket",
                 "worst bucket"], rows)

    rows = []
    for name, scenario in SCENARIOS.items():
        report = recalibration_report(scenario, cycles=200_000)
        rows.append((name, report["unsafe_windows"],
                     f"{100 * report['retained_slack']:.1f}%"))
    print_table("Recalibration safety per scenario (20 windows)",
                ["scenario", "unsafe windows", "retained slack"], rows)
    print("The CPM guard band keeps every non-droop scenario perfectly "
          "safe;\nmid-window droops are the case Tribeca-style local "
          "recovery handles.")


if __name__ == "__main__":
    main()
