#!/usr/bin/env python3
"""Visualise transparent execution: assembly text in, tick diagram out.

Assembles a kernel from text (the .s-style frontend), runs it under the
instrumented simulator in baseline and ReDSOC modes, and renders both
execution timelines — showing exactly where consumers start mid-cycle
off their producers' completion instants and where FUs are held for two
cycles (the paper's Fig. 4/5 pictures, regenerated from a live run).

Run:  python examples/chain_visualizer.py
"""

from repro.analysis.timeline import render_uops
from repro.core import BIG, RecycleMode
from repro.core.audit import _RecordingSimulator
from repro.isa import assemble_text
from repro.pipeline.trace import generate_trace

KERNEL = """
    ; a mixed-slack dependence chain, 20 iterations
        mov  r1, #0x1234
        mov  r2, #20
    loop:
        eor  r1, r1, #0x5A      ; logic: 3 ticks
        add  r1, r1, #0x33      ; narrow arith: 5-6 ticks
        ror  r1, r1, #7         ; shift: 5 ticks
        subs r2, r2, #1
        bne  loop
        halt
"""


def run(mode):
    trace = generate_trace(assemble_text(KERNEL, name="viz"))
    sim = _RecordingSimulator(trace, BIG.with_mode(mode))
    result = sim.run()
    # pick a steady-state slice of the chain ops
    chain = [u for u in sim.issued_log
             if u.instr.op.name in ("EOR", "ADD", "ROR")
             and 20 <= u.seq <= 40]
    chain.sort(key=lambda u: u.seq)
    return result, chain


def main():
    for mode in (RecycleMode.BASELINE, RecycleMode.REDSOC):
        result, chain = run(mode)
        print(f"\n=== {mode.value}: {result.cycles} cycles "
              f"(IPC {result.ipc:.2f}) ===")
        print(render_uops(chain, limit=12))
    print("\nIn the ReDSOC timeline, each op begins the instant its "
          "producer's output\nstabilises (mid-cycle), and ops whose "
          "window crosses a clock edge hold\ntheir FU for two cycles — "
          "the slack accumulates until a whole cycle is saved.")


if __name__ == "__main__":
    main()
