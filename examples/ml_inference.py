#!/usr/bin/env python3
"""ML inference pipeline: the paper's Table II kernels end to end.

Runs the five ARM-Compute-Library-style kernels (CONV, ACT, POOL0,
POOL1, SOFTMAX) on all three cores, comparing baseline vs ReDSOC —
the experiment behind the ML columns of Figs. 10/13.

Run:  python examples/ml_inference.py
"""

from repro import CORES, RecycleMode, generate_trace, simulate
from repro.analysis.report import print_table
from repro.workloads import ML_KERNELS
from repro.workloads.suites import default_scale


def main():
    rows = []
    for name, builder in ML_KERNELS.items():
        trace = generate_trace(builder(**default_scale("ml", name)))
        cells = [name.upper(), len(trace)]
        for core_name in ("big", "medium", "small"):
            config = CORES[core_name]
            base = simulate(trace, config.with_mode(RecycleMode.BASELINE))
            red = simulate(trace, config.with_mode(RecycleMode.REDSOC))
            cells.append(f"{base.cycles / red.cycles - 1:+.1%}")
        simd_frac = base.stats.distribution.fraction("SIMD")
        cells.append(f"{simd_frac:.0%}")
        rows.append(tuple(cells))
    print_table(
        "ML kernels: ReDSOC speedup per core (Table II workloads)",
        ["kernel", "dyn ops", "BIG", "MEDIUM", "SMALL", "SIMD frac"],
        rows)
    print("Type-Slack at work: I8/I16 lanes finish well before the "
          "I64-sized worst case that times the SIMD unit.")


if __name__ == "__main__":
    main()
