#!/usr/bin/env python3
"""Trace a microbenchmark end-to-end through the observability layer.

Runs one kernel under the traced simulator, writes the three artefacts
the campaign ``trace`` subcommand produces (Perfetto/Chrome trace JSON,
raw events JSONL, metrics JSONL), replays the timing audit *from the
recorded stream* — no second simulation — and prints the ten uops that
carried the most recyclable slack, straight from the event dump.

Run:  python examples/trace_viewer.py [out_dir]
"""

import sys
from pathlib import Path

from repro.core import BIG
from repro.core.audit import audit_from_events
from repro.core.cpu import CoreSimulator
from repro.obs import (
    EventKind,
    Recorder,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
)
from repro.pipeline.trace import generate_trace
from repro.workloads.microbench import MICROBENCHES


def main():
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("traces")
    trace = generate_trace(MICROBENCHES["flex-arith"].build(60))

    recorder = Recorder()
    sim = CoreSimulator(trace, BIG, obs=recorder)
    result = sim.run()
    tpc = sim.base.ticks_per_cycle
    print(f"{trace.name}: {result.cycles} cycles, "
          f"ipc={result.ipc:.3f}, {len(recorder)} events recorded")

    trace_path = write_chrome_trace(recorder.events,
                                    out_dir / "flex-arith.trace.json")
    events_path = write_events_jsonl(recorder.events,
                                     out_dir / "flex-arith.events.jsonl")
    metrics_path = write_metrics_jsonl(sim.metrics,
                                       out_dir / "flex-arith.metrics.jsonl")
    print(f"wrote {trace_path} (open at https://ui.perfetto.dev)")
    print(f"wrote {events_path}")
    print(f"wrote {metrics_path}")

    # the JSONL dump is a sufficient artefact: re-audit without rerunning
    replay = audit_from_events(recorder.events)
    verdict = "OK" if replay.ok else f"{len(replay.violations)} violations"
    print(f"\nreplayed audit from events: {replay.audited_uops} uops, "
          f"{verdict}")

    # top-10 highest-slack uops, straight from the recorded windows
    windows = recorder.of_kind(EventKind.EXEC_WINDOW)
    slack = [(tpc - e.data["ex_actual"], e) for e in windows
             if not e.data["mem"] and e.data["lat"] == 1]
    slack.sort(key=lambda pair: (-pair[0], pair[1].seq))
    print(f"\ntop 10 highest-slack uops (of {len(slack)}; "
          f"{tpc} ticks/cycle):")
    print(f"{'seq':>5} {'op':<8} {'fu':<6} {'slack':>5}  "
          f"{'exec window':<14} recycled")
    for slack_ticks, event in slack[:10]:
        d = event.data
        window = f"[{d['start']}, {d['end']})"
        print(f"{event.seq:>5} {d['op'].lower():<8} {d['fu']:<6} "
              f"{slack_ticks:>4}t  {window:<14} "
              f"{'yes' if d['recycled'] else 'no'}")

    hist = sim.metrics.histograms["slack.per_op"]
    print(f"\nslack/op over the whole run: mean {hist.mean:.2f} ticks, "
          f"p50 {hist.percentile(0.5)}, max {hist.max} "
          f"(of {tpc}/cycle)")


if __name__ == "__main__":
    main()
