"""Sub-cycle time base: ticks, completion instants, quantisation.

ReDSOC tracks slack with a 3-bit fractional representation — 1/8th of the
clock period (Sec. IV-C); the paper's precision sweep (Sec. V) shows
performance saturates at 3 bits.  We therefore divide the clock cycle
into ``ticks_per_cycle`` *ticks* (default 8) and express every EX-TIME
and Completion Instant (CI) as an integer tick count.

Quantisation is **conservative** (ceil): a computation is never assumed
to finish earlier than its real delay, so slack recycling stays timing
non-speculative — the core property that distinguishes ReDSOC from
timing-speculative (Razor-style) designs.

Global simulation time is a plain integer number of ticks;
:func:`cycle_of` / :func:`tick_in_cycle` split it when needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.timing.gates import DEFAULT_TECH, TechParams

#: The paper's operating point: 3 bits → 8 ticks per cycle.
DEFAULT_TICKS_PER_CYCLE = 8


@dataclass(frozen=True)
class TickBase:
    """Conversion between picoseconds, ticks and cycles.

    ``ticks_per_cycle`` must be a power of two (it is 2^precision_bits);
    the precision-sweep ablation instantiates bases from 2 (1 bit) to 32
    (5 bits).
    """

    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE
    tech: TechParams = DEFAULT_TECH

    def __post_init__(self) -> None:
        t = self.ticks_per_cycle
        if t < 1 or (t & (t - 1)) != 0:
            raise ValueError(f"ticks_per_cycle must be a power of 2, got {t}")

    @property
    def precision_bits(self) -> int:
        return self.ticks_per_cycle.bit_length() - 1

    @property
    def ps_per_tick(self) -> float:
        return self.tech.clock_ps / self.ticks_per_cycle

    def ps_to_ticks(self, ps: float) -> int:
        """Conservatively quantise a delay to ticks (ceil, min 1)."""
        return max(1, math.ceil(ps / self.ps_per_tick - 1e-9))

    def ex_time_ticks(self, raw_delay_ps: float) -> int:
        """EX-TIME of a single-cycle op: raw delay + bypass, quantised.

        The transparent-bypass mux/wire (``tech.bypass_ps``) is charged
        into every EX-TIME because a recycled consumer receives its
        operand over that path.  Clamped to one full cycle — by
        construction (validate_tech) no single-cycle op exceeds it.
        """
        ticks = self.ps_to_ticks(raw_delay_ps + self.tech.bypass_ps)
        return min(ticks, self.ticks_per_cycle)

    def cycle_of(self, time_ticks: int) -> int:
        return time_ticks // self.ticks_per_cycle

    def tick_in_cycle(self, time_ticks: int) -> int:
        return time_ticks % self.ticks_per_cycle

    def cycle_start(self, cycle: int) -> int:
        return cycle * self.ticks_per_cycle

    def next_edge(self, time_ticks: int) -> int:
        """First clock edge at or after *time_ticks*."""
        t = self.ticks_per_cycle
        return ((time_ticks + t - 1) // t) * t


#: Shared default tick base (8 ticks/cycle, default technology).
DEFAULT_TICK_BASE = TickBase()
