"""Select arbiter: conventional oldest-first and skewed selection (Fig. 9).

The select logic grants functional units to woken reservation-station
entries.  The paper's *skewed* variant prioritises non-speculative
(parent-woken) requests over speculative (grandparent-woken) ones while
preserving age order inside each group, by rewriting each entry's age
mask ("effective mask") before the normal grant circuit runs:

* a P-entry's mask bits for GP-entries are cleared (P never yields to GP),
* a GP-entry's mask bits are set for every requesting P-entry.

With a single global arbitration window this guarantees a GP-woken child
can never be granted while its (P-woken) parent is denied — eliminating
GP-mispeculation (Sec. IV-D).

Implemented both ways: a bit-level model mirroring the paper's circuit
(used by unit tests and small windows) and the equivalent sort-based
fast path used in the hot simulator loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.obs.events import Event, EventKind


@dataclass(frozen=True)
class SelectRequest:
    """One woken RSE requesting a unit."""

    entry: int          # RSE index (arbitrary id)
    age: int            # smaller = older = higher priority
    speculative: bool   # True for GP-woken requests


class AgeMaskTable:
    """Explicit age-mask state as in Fig. 9's selection table.

    ``mask[i]`` has bit ``j`` set when entry *j* is older than entry *i*
    (so *i* must yield to *j*).  Allocation order defines age.
    """

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self.valid = [False] * entries
        self.mask = [0] * entries

    def allocate(self, index: int) -> None:
        """Insert a new youngest entry at *index*."""
        if self.valid[index]:
            raise ValueError(f"entry {index} already allocated")
        self.mask[index] = sum(1 << j for j in range(self.entries)
                               if self.valid[j])
        self.valid[index] = True

    def free(self, index: int) -> None:
        if not self.valid[index]:
            raise ValueError(f"entry {index} not allocated")
        self.valid[index] = False
        self.mask[index] = 0
        clear = ~(1 << index)
        for j in range(self.entries):
            if self.valid[j]:
                self.mask[j] &= clear

    # -- grant circuits ---------------------------------------------------

    def grant_conventional(self, wakeup: int) -> int:
        """Fig. 9.a: grant the oldest woken entry; -1 when none request.

        An entry wins when no *woken* entry appears in its age mask:
        ``(wakeup & mask[i]) == 0``.
        """
        for i in range(self.entries):
            if (wakeup >> i) & 1 and (wakeup & self.mask[i]) == 0:
                return i
        return -1

    def effective_masks(self, wakeup: int, p_array: int) -> List[int]:
        """Fig. 9.b: rewrite masks so P-requests dominate GP-requests.

        ``p_array`` bit i = 1 → entry i's request is non-speculative.
        """
        requesting_p = wakeup & p_array
        effective = list(self.mask)
        for i in range(self.entries):
            if not (wakeup >> i) & 1:
                continue
            if (p_array >> i) & 1:
                # P-entry: never yields to speculative entries
                effective[i] &= ~(wakeup & ~p_array)
            else:
                # GP-entry: yields to every requesting P-entry
                effective[i] |= requesting_p & ~(1 << i)
        return effective

    def grant_skewed(self, wakeup: int, p_array: int) -> int:
        """Single skewed grant using the effective-mask circuit."""
        effective = self.effective_masks(wakeup, p_array)
        for i in range(self.entries):
            if (wakeup >> i) & 1 and (wakeup & effective[i]) == 0:
                return i
        return -1


def select_requests(requests: Sequence[SelectRequest], slots: int, *,
                    skewed: bool, obs=None,
                    cycle: int = -1) -> List[SelectRequest]:
    """Grant up to *slots* requests (the fast behavioural equivalent).

    Skewed order: all non-speculative requests age-ordered, then
    speculative ones age-ordered.  Plain order: pure age.  Matches the
    bit-level circuit grant-for-grant (see tests).  With an event sink
    attached, each grant is published as a SELECT event.
    """
    if skewed:
        ranked = sorted(requests, key=lambda q: (q.speculative, q.age))
    else:
        ranked = sorted(requests, key=lambda q: q.age)
    granted = list(ranked[:slots])
    if obs is not None:
        for request in granted:
            obs.emit(Event(EventKind.SELECT, cycle, -1, {
                "entry": request.entry, "age": request.age,
                "phase": "GP" if request.speculative else "P",
            }))
    return granted


def multi_grant_bitlevel(table: AgeMaskTable, wakeup: int, p_array: int,
                         slots: int, *, skewed: bool) -> List[int]:
    """Iterated single-grant circuit → up to *slots* winners (for tests)."""
    granted: List[int] = []
    remaining = wakeup
    for _ in range(slots):
        if skewed:
            winner = table.grant_skewed(remaining, p_array)
        else:
            winner = table.grant_conventional(remaining)
        if winner < 0:
            break
        granted.append(winner)
        remaining &= ~(1 << winner)
    return granted
