"""Transparent-dataflow execution timing (Sec. III, Fig. 4).

Given an issued operation and the availability instants of its source
values, this module decides

* when real computation starts at the FU (``start``),
* when the result stabilises (``end`` — the Completion Instant),
* when consumers may use it (``avail``): transparent consumers take the
  bypass at ``end``; a true-synchronous consumer waits for the next
  clock edge (the FF turns opaque),
* whether the FU must be held for an extra cycle (IT3: the execution
  window crossed a clock edge),

and tracks *transparent sequences* — maximal chains of operations that
kept flowing through open FFs — whose expected length is Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ticks import TickBase


@dataclass
class ExecTiming:
    """Resolved execution window of one operation."""

    __slots__ = ("start_tick", "end_tick", "avail_tick",
                 "sync_avail_tick", "extra_cycle_hold", "recycled")

    start_tick: int
    end_tick: int
    avail_tick: int        # for transparent consumers
    sync_avail_tick: int   # for true-synchronous consumers (next edge)
    extra_cycle_hold: bool
    recycled: bool         # started mid-cycle off a producer's slack


def resolve_execution(*, arrival_cycle: int, source_avail: int,
                      ex_ticks: int, transparent: bool,
                      base: TickBase) -> ExecTiming:
    """Compute the execution window of an op arriving at its FU.

    ``source_avail`` is the max availability tick over all sources (for
    this consumer's view: transparent producers contribute their CI,
    synchronous producers their latching edge).  A conventional
    (non-transparent) op always starts at a clock edge.
    """
    cycle_start = base.cycle_start(arrival_cycle)
    if transparent:
        start = max(cycle_start, source_avail)
    else:
        start = max(cycle_start, base.next_edge(source_avail))
    end = start + ex_ticks
    next_edge_after_start = base.cycle_start(base.cycle_of(start) + 1)
    extra = end > next_edge_after_start
    return ExecTiming(
        start_tick=start,
        end_tick=end,
        avail_tick=end,
        sync_avail_tick=base.next_edge(end),
        extra_cycle_hold=extra,
        recycled=start % base.ticks_per_cycle != 0,
    )


@dataclass
class _Chain:
    length: int = 1


@dataclass
class SequenceTracker:
    """Transparent-sequence length accounting (Fig. 11).

    A sequence starts with an op that launches from a clock edge and
    extends through every dependent that starts mid-cycle directly off a
    predecessor's completion instant.  We record the length of each
    maximal chain and report the expected value an operation experiences
    (length-weighted mean), plus the plain mean.
    """

    _chains: Dict[int, _Chain] = field(default_factory=dict)
    _next_id: int = 0

    def start_chain(self) -> int:
        chain_id = self._next_id
        self._next_id += 1
        self._chains[chain_id] = _Chain()
        return chain_id

    def extend_chain(self, chain_id: Optional[int]) -> int:
        """Continue a producer's chain (transparent hand-off)."""
        if chain_id is None or chain_id not in self._chains:
            return self.start_chain()
        self._chains[chain_id].length += 1
        return chain_id

    def lengths(self) -> List[int]:
        return [c.length for c in self._chains.values()]

    @property
    def num_sequences(self) -> int:
        return len(self._chains)

    def mean_length(self) -> float:
        lengths = self.lengths()
        return sum(lengths) / len(lengths) if lengths else 0.0

    def expected_length(self) -> float:
        """Length-weighted EV: the sequence length a random transparent
        operation finds itself in — the paper's 'expected value
        (weighted mean) of the length of all such sequences'."""
        lengths = self.lengths()
        total = sum(lengths)
        if not total:
            return 0.0
        return sum(n * n for n in lengths) / total

    def multi_op_sequences(self) -> int:
        """Chains that actually recycled slack (length >= 2)."""
        return sum(1 for n in self.lengths() if n >= 2)
