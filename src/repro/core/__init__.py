"""ReDSOC core: slack classification, slack-aware scheduling, recycling.

The paper's contribution lives here:

* :class:`~repro.core.slack_lut.SlackLUT` — 14-bucket slack table,
* :class:`~repro.core.width_predictor.WidthPredictor` /
  :class:`~repro.core.last_arrival.LastArrivalPredictor`,
* :class:`~repro.core.cpu.CoreSimulator` / :func:`~repro.core.cpu.simulate`
  — the cycle-level OOO core with transparent slack recycling,
* :data:`~repro.core.config.SMALL` / ``MEDIUM`` / ``BIG`` — Table I cores.
"""

from .config import (
    BIG,
    CORES,
    CoreConfig,
    MEDIUM,
    RecycleMode,
    SMALL,
    SchedulerDesign,
)
from .cpu import CoreSimulator, SimResult, simulate
from .engine import ENGINES, EngineRegistry
from .last_arrival import LastArrivalPredictor
from .lower import LoweredTrace, lower_trace, lowering_digest
from .overheads import OverheadReport, overhead_report
from .pvt import (
    CriticalPathMonitor,
    DriftScenario,
    PVTCondition,
    PVTRecalibrator,
    SCENARIOS,
    delay_scale,
    recalibration_report,
)
from .scheduler import ReadyQueues, wake_cycle
from .select import (
    AgeMaskTable,
    SelectRequest,
    multi_grant_bitlevel,
    select_requests,
)
from .slack_lut import SlackKey, SlackLUT, WIDTH_CLASSES
from .ticks import DEFAULT_TICK_BASE, DEFAULT_TICKS_PER_CYCLE, TickBase
from .transparent import ExecTiming, SequenceTracker, resolve_execution
from .width_predictor import WidthPredictor

__all__ = [
    "AgeMaskTable", "BIG", "CORES", "CoreConfig", "CoreSimulator",
    "DEFAULT_TICKS_PER_CYCLE", "DEFAULT_TICK_BASE", "ENGINES",
    "EngineRegistry", "ExecTiming",
    "CriticalPathMonitor", "DriftScenario", "LastArrivalPredictor",
    "LoweredTrace", "MEDIUM", "OverheadReport", "PVTCondition",
    "PVTRecalibrator", "ReadyQueues", "RecycleMode", "SCENARIOS",
    "SMALL", "SchedulerDesign", "SelectRequest", "SequenceTracker",
    "SimResult", "SlackKey", "SlackLUT", "TickBase", "WIDTH_CLASSES",
    "WidthPredictor", "lower_trace", "lowering_digest",
    "multi_grant_bitlevel", "resolve_execution",
    "delay_scale", "overhead_report", "recalibration_report",
    "select_requests", "simulate", "wake_cycle",
]
