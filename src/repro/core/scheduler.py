"""Slack-aware wakeup machinery (Sec. IV).

This module holds the scheduler-side building blocks the core simulator
drives each cycle:

* :func:`consumer_avail_tick` / :func:`wake_cycle` — when a producer's
  tag broadcast wakes a consumer, and when the consumer's operand is
  actually usable (transparent CI vs synchronous latching edge);
* :class:`ReadyQueues` — wakeup bookkeeping: consumers become
  select-eligible when their *watched* tags have broadcast (all sources
  in the Illustrative design / baseline; only the predicted-last parent
  in the Operational design);
* :class:`GPCandidate` collection — Eager Grandparent Wakeup: children
  that may issue *in the same cycle as their parent* to catch its slack
  (Sec. IV-B), subject to the slack-threshold condition (Sec. IV-C
  step 10) and, under MOS, the single-cycle fit condition.

Selection itself (oldest-first, skewed) lives in
:mod:`repro.core.select`.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Optional

from repro.isa.opcodes import OpClass
from repro.obs.events import Event, EventKind
from repro.pipeline.uop import Uop, UopState

from .config import RecycleMode
from .ticks import TickBase


def consumer_avail_tick(producer: Uop, consumer: Uop) -> int:
    """The tick at which *consumer* can use *producer*'s value.

    Transparent producer → transparent consumer rides the open-FF bypass
    and sees the value at the producer's completion instant; any
    synchronous endpoint waits for the next clock edge, where the FF
    turns opaque and latches (Sec. III).
    """
    if producer.transparent and consumer.transparent:
        return producer.avail_tick
    return producer.sync_avail


def wake_cycle(producer: Uop, consumer: Uop, base: TickBase) -> int:
    """Earliest cycle *consumer* may issue once *producer* has issued.

    Tag broadcast happens in the producer's issue cycle, so the consumer
    can issue no earlier than ``issue + 1``; producers with longer
    latencies broadcast later so the consumer arrives at its execution
    stage just as the value becomes usable.  The consumer needs the
    operand ``latency_cycles`` after issue (1 for ALU ops; the
    accumulate stage of a VMLA comes ``simd_multicycle_latency`` later,
    which is what makes back-to-back accumulate chains run at one per
    cycle — the late-forwarding behaviour of Sec. V).
    """
    avail = consumer_avail_tick(producer, consumer)
    return max(producer.issue_cycle + 1,
               base.cycle_of(avail) - consumer.latency_cycles)


class ReadyQueues:
    """Wakeup + pending-request state for the select stage.

    Consumers whose watched tags have all broadcast are *scheduled* to
    wake at their computed wake cycle; each simulated cycle the core
    drains that cycle's wakeups into per-FU-class pending lists, kept in
    age (sequence-number) order for oldest-first selection.
    """

    def __init__(self) -> None:
        self._wake_at: Dict[int, List[Uop]] = defaultdict(list)
        self._pending: Dict[OpClass, List[Uop]] = defaultdict(list)
        self._pending_seqs: Dict[OpClass, List[int]] = defaultdict(list)
        #: event sink (attached by the simulator on traced runs)
        self.obs = None

    def schedule_wake(self, uop: Uop, cycle: int) -> None:
        self._wake_at[cycle].append(uop)

    def advance_to(self, cycle: int) -> None:
        """Drain wakeups due at *cycle* into the pending lists."""
        obs = self.obs
        for uop in self._wake_at.pop(cycle, ()):
            if uop.state is not UopState.DISPATCHED:
                continue
            if obs is not None:
                obs.emit(Event(EventKind.WAKEUP, cycle, uop.seq,
                               {"fu": uop.fu_class.value}))
            seqs = self._pending_seqs[uop.fu_class]
            pos = bisect.bisect_left(seqs, uop.seq)
            seqs.insert(pos, uop.seq)
            self._pending[uop.fu_class].insert(pos, uop)

    def pending(self, op_class: OpClass) -> List[Uop]:
        """Live pending requests, oldest first (lazily pruned)."""
        live = [u for u in self._pending[op_class]
                if u.state is UopState.DISPATCHED]
        if len(live) != len(self._pending[op_class]):
            self._pending[op_class] = live
            self._pending_seqs[op_class] = [u.seq for u in live]
        return live

    def remove(self, uop: Uop) -> None:
        seqs = self._pending_seqs[uop.fu_class]
        pos = bisect.bisect_left(seqs, uop.seq)
        if pos < len(seqs) and seqs[pos] == uop.seq:
            seqs.pop(pos)
            self._pending[uop.fu_class].pop(pos)

    def has_any_pending(self) -> bool:
        return any(self.pending(cls) for cls in list(self._pending))


def eager_issue_allowed(parent: Uop, child: Uop, *, mode: RecycleMode,
                        threshold: int, base: TickBase) -> bool:
    """May *child* issue in *parent*'s issue cycle (EGPW grant check)?

    Checks the paper's step-10 conditions against the parent timing
    resolved earlier this cycle:

    a. recycling is enabled (REDSOC or MOS fusion),
    b. the parent completes inside its arrival cycle (no extra-cycle
       hold — otherwise a conventional next-cycle wakeup already catches
       the slack) with a completion instant within the slack threshold,
    c. (MOS only) the child's execution must also fit before the same
       clock edge — MOS has no transparent boundary crossing.

    The FU-availability and other-source checks are the caller's job.
    """
    if mode is RecycleMode.BASELINE:
        return False
    if not (parent.transparent and child.transparent):
        return False
    arrival_end = base.cycle_start(base.cycle_of(parent.start_tick) + 1)
    if parent.end_tick >= arrival_end:
        # the parent either crosses the edge (a conventional next-cycle
        # wakeup already catches its CI) or ends exactly on it (no slack)
        return False
    ci = parent.end_tick % base.ticks_per_cycle
    if mode is RecycleMode.MOS:
        return parent.end_tick + child.ex_ticks <= arrival_end
    return ci <= threshold


def other_sources_ready(child: Uop, *, arrival_cycle: int,
                        base: TickBase) -> bool:
    """All of *child*'s sources issued & usable within its arrival cycle.

    Used to validate a speculative (GP-woken) issue before granting —
    with skewed global arbitration this check is what keeps
    GP-mispeculation at zero (Sec. IV-D).
    """
    deadline = base.cycle_start(arrival_cycle + 1)
    for src in child.sources:
        if src is None or src.state is UopState.COMMITTED:
            continue
        if src.issue_cycle is None:
            return False
        if consumer_avail_tick(src, child) >= deadline:
            return False
    return True


def last_source_avail(child: Uop, base: TickBase) -> int:
    """Max availability tick over all live sources (the MAX logic)."""
    avail = 0
    for src in child.sources:
        if src is None or src.state is UopState.COMMITTED:
            continue
        avail = max(avail, consumer_avail_tick(src, child))
    return avail


def unissued_sources(child: Uop) -> List[Uop]:
    return [src for src in child.sources
            if src is not None and src.state is not UopState.COMMITTED
            and src.issue_cycle is None]


def constraining_parent(child: Uop, start_tick: int) -> Optional[Uop]:
    """The transparent source whose CI equals the child's start tick.

    This identifies the producer whose slack the child recycled — used
    for transparent-sequence chaining (Fig. 11).
    """
    for src in child.sources:
        if (src is not None and src.transparent and child.transparent
                and src.avail_tick == start_tick):
            return src
    return None
