"""Slack-aware wakeup machinery (Sec. IV).

This module holds the scheduler-side building blocks the core simulator
drives each cycle:

* :func:`consumer_avail_tick` / :func:`wake_cycle` — when a producer's
  tag broadcast wakes a consumer, and when the consumer's operand is
  actually usable (transparent CI vs synchronous latching edge);
* :class:`ReadyQueues` — wakeup bookkeeping: consumers become
  select-eligible when their *watched* tags have broadcast (all sources
  in the Illustrative design / baseline; only the predicted-last parent
  in the Operational design);
* :class:`GPCandidate` collection — Eager Grandparent Wakeup: children
  that may issue *in the same cycle as their parent* to catch its slack
  (Sec. IV-B), subject to the slack-threshold condition (Sec. IV-C
  step 10) and, under MOS, the single-cycle fit condition.

Selection itself (oldest-first, skewed) lives in
:mod:`repro.core.select`.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.isa.opcodes import OpClass
from repro.obs.events import Event, EventKind
from repro.pipeline.uop import OPCLASS_INDEX, Uop, UopState

from .config import RecycleMode
from .ticks import TickBase


def consumer_avail_tick(producer: Uop, consumer: Uop) -> int:
    """The tick at which *consumer* can use *producer*'s value.

    Transparent producer → transparent consumer rides the open-FF bypass
    and sees the value at the producer's completion instant; any
    synchronous endpoint waits for the next clock edge, where the FF
    turns opaque and latches (Sec. III).
    """
    if producer.transparent and consumer.transparent:
        return producer.avail_tick
    return producer.sync_avail


def wake_cycle(producer: Uop, consumer: Uop, base: TickBase) -> int:
    """Earliest cycle *consumer* may issue once *producer* has issued.

    Tag broadcast happens in the producer's issue cycle, so the consumer
    can issue no earlier than ``issue + 1``; producers with longer
    latencies broadcast later so the consumer arrives at its execution
    stage just as the value becomes usable.  The consumer needs the
    operand ``latency_cycles`` after issue (1 for ALU ops; the
    accumulate stage of a VMLA comes ``simd_multicycle_latency`` later,
    which is what makes back-to-back accumulate chains run at one per
    cycle — the late-forwarding behaviour of Sec. V).
    """
    avail = consumer_avail_tick(producer, consumer)
    return max(producer.issue_cycle + 1,
               base.cycle_of(avail) - consumer.latency_cycles)


class ReadyQueues:
    """Wakeup + pending-request state for the select stage.

    Consumers whose watched tags have all broadcast are *scheduled* to
    wake at their computed wake cycle; each simulated cycle the core
    drains that cycle's wakeups into per-FU-class pending queues, kept
    in age (sequence-number) order for oldest-first selection.

    The structure is indexed for the event-driven hot loop:

    * wake buckets live in a ``cycle -> [uops]`` map with a min-heap of
      bucket cycles, so :meth:`next_wake_cycle` (the skip-ahead target)
      is an O(1) peek and :meth:`advance_to` touches only due buckets;
    * per-class pending queues are seq-sorted lists addressed by the
      uop's :data:`~repro.pipeline.uop.OPCLASS_INDEX` (no enum hashing),
      and :meth:`remove` is an O(1) tombstone (``uop.in_ready`` flips
      off; the slot is compacted lazily) instead of a list ``pop``;
    * a uop is never queued twice: re-waking a tombstoned entry
      resurrects its existing slot, which also makes duplicate
      ``schedule_wake`` calls harmless.
    """

    __slots__ = ("_wake_at", "_wake_heap", "_queues", "_seqs", "_dead",
                 "live_total", "obs")

    def __init__(self) -> None:
        n_classes = len(OPCLASS_INDEX)
        self._wake_at: Dict[int, List[Uop]] = {}
        self._wake_heap: List[int] = []
        self._queues: List[List[Uop]] = [[] for _ in range(n_classes)]
        self._seqs: List[List[int]] = [[] for _ in range(n_classes)]
        self._dead: List[int] = [0] * n_classes
        #: live (selectable) entries across every class — the hot loop's
        #: "is there anything to select?" check
        self.live_total = 0
        #: event sink (attached by the simulator on traced runs)
        self.obs = None

    def schedule_wake(self, uop: Uop, cycle: int) -> None:
        bucket = self._wake_at.get(cycle)
        if bucket is None:
            self._wake_at[cycle] = [uop]
            heappush(self._wake_heap, cycle)
        else:
            bucket.append(uop)

    def next_wake_cycle(self) -> Optional[int]:
        """Earliest cycle with a scheduled wakeup (None when idle)."""
        return self._wake_heap[0] if self._wake_heap else None

    def advance_to(self, cycle: int) -> None:
        """Drain wakeups due at or before *cycle* into the queues."""
        heap = self._wake_heap
        if not heap or heap[0] > cycle:
            return
        obs = self.obs
        wake_at = self._wake_at
        while heap and heap[0] <= cycle:
            for uop in wake_at.pop(heappop(heap)):
                if uop.state is not UopState.DISPATCHED or uop.in_ready:
                    continue
                if obs is not None:
                    obs.emit(Event(EventKind.WAKEUP, cycle, uop.seq,
                                   {"fu": uop.fu_class.value}))
                idx = uop.cls_idx
                seqs = self._seqs[idx]
                pos = bisect_left(seqs, uop.seq)
                if pos < len(seqs) and seqs[pos] == uop.seq:
                    # resurrect this uop's tombstoned slot (seqs are
                    # unique, so an equal seq is the same uop)
                    self._dead[idx] -= 1
                else:
                    seqs.insert(pos, uop.seq)
                    self._queues[idx].insert(pos, uop)
                uop.in_ready = True
                self.live_total += 1

    def lane(self, idx: int) -> List[Uop]:
        """The class-*idx* queue list for the simulator's select lanes.

        Returned by reference (compaction mutates it in place, so the
        simulator may prebuild lane tuples once and keep them); iterate
        it skipping entries whose ``in_ready`` flag is off.  Compaction
        is amortised: tombstones are reclaimed once enough accumulate.
        """
        if self._dead[idx] > 8:
            self._compact(idx)
        return self._queues[idx]

    def _compact(self, idx: int) -> None:
        queue = self._queues[idx]
        live = [u for u in queue
                if u.in_ready and u.state is UopState.DISPATCHED]
        queue[:] = live
        self._seqs[idx][:] = [u.seq for u in live]
        self._dead[idx] = 0

    def pending(self, op_class: OpClass) -> List[Uop]:
        """Live pending requests, oldest first (lazily pruned)."""
        idx = OPCLASS_INDEX[op_class]
        queue = self._queues[idx]
        for uop in queue:
            if not (uop.in_ready and uop.state is UopState.DISPATCHED):
                self._compact(idx)
                break
        return list(queue)

    def remove(self, uop: Uop) -> None:
        if not uop.in_ready:
            return
        uop.in_ready = False
        self._dead[uop.cls_idx] += 1
        self.live_total -= 1

    def has_any_pending(self) -> bool:
        return any(u.in_ready and u.state is UopState.DISPATCHED
                   for queue in self._queues for u in queue)


def eager_issue_allowed(parent: Uop, child: Uop, *, mode: RecycleMode,
                        threshold: int, base: TickBase) -> bool:
    """May *child* issue in *parent*'s issue cycle (EGPW grant check)?

    Checks the paper's step-10 conditions against the parent timing
    resolved earlier this cycle:

    a. recycling is enabled (REDSOC or MOS fusion),
    b. the parent completes inside its arrival cycle (no extra-cycle
       hold — otherwise a conventional next-cycle wakeup already catches
       the slack) with a completion instant within the slack threshold,
    c. (MOS only) the child's execution must also fit before the same
       clock edge — MOS has no transparent boundary crossing.

    The FU-availability and other-source checks are the caller's job.
    """
    if mode is RecycleMode.BASELINE:
        return False
    if not (parent.transparent and child.transparent):
        return False
    arrival_end = base.cycle_start(base.cycle_of(parent.start_tick) + 1)
    if parent.end_tick >= arrival_end:
        # the parent either crosses the edge (a conventional next-cycle
        # wakeup already catches its CI) or ends exactly on it (no slack)
        return False
    ci = parent.end_tick % base.ticks_per_cycle
    if mode is RecycleMode.MOS:
        return parent.end_tick + child.ex_ticks <= arrival_end
    return ci <= threshold


def other_sources_ready(child: Uop, *, arrival_cycle: int,
                        base: TickBase) -> bool:
    """All of *child*'s sources issued & usable within its arrival cycle.

    Used to validate a speculative (GP-woken) issue before granting —
    with skewed global arbitration this check is what keeps
    GP-mispeculation at zero (Sec. IV-D).
    """
    deadline = base.cycle_start(arrival_cycle + 1)
    for src in child.sources:
        if src is None or src.state is UopState.COMMITTED:
            continue
        if src.issue_cycle is None:
            return False
        if consumer_avail_tick(src, child) >= deadline:
            return False
    return True


def last_source_avail(child: Uop, base: TickBase) -> int:
    """Max availability tick over all live sources (the MAX logic)."""
    avail = 0
    for src in child.sources:
        if src is None or src.state is UopState.COMMITTED:
            continue
        avail = max(avail, consumer_avail_tick(src, child))
    return avail


def unissued_sources(child: Uop) -> List[Uop]:
    return [src for src in child.sources
            if src is not None and src.state is not UopState.COMMITTED
            and src.issue_cycle is None]


def constraining_parent(child: Uop, start_tick: int) -> Optional[Uop]:
    """The transparent source whose CI equals the child's start tick.

    This identifies the producer whose slack the child recycled — used
    for transparent-sequence chaining (Fig. 11).
    """
    for src in child.sources:
        if (src is not None and src.transparent and child.transparent
                and src.avail_tick == start_tick):
            return src
    return None
