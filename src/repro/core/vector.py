"""NumPy-vectorized timing backend: columnar batch replay.

:class:`VectorSimulator` is the fourth engine of the registry.  It
consumes the same :class:`~repro.core.lower.LoweredTrace` as the
``compiled`` backend but moves every per-entry quantity that the
compiled engine still derives with Python loops into **whole-column
NumPy passes**, computed once and memoized on the lowered trace:

* **decode columns** — transparency, latency, static EX-TIME, width
  buckets and the width-resolved actual EX-TIME are single ``np.take``
  gathers from per-static-instruction tables into flat per-entry
  vectors, keyed by the timing-relevant slice of the config (recycling
  on/off, tick base, PVT scale, fixed latencies) so a cores × modes
  sweep shares them wherever they are provably identical (REDSOC and
  MOS decode the same columns; only BASELINE differs);
* **front-end resolution column** — the gshare predictor is a pure
  function of the *trace-ordered* conditional-branch stream (fetch
  trains it strictly in program order, whatever the timing does), so
  every mispredict is resolved ahead of time into one per-entry column
  and the replay's fetch stage never touches a predictor table;
* **slack LUT / tick base** — read-only after construction and shared
  process-wide per (ticks, tech, PVT) instead of rebuilt per run.

What remains per run is the serializing replay of the machine itself —
wakeup/select, FU reservation, ROB/RS/LSQ occupancy, the width/
last-arrival predictors and the adaptive threshold controller, whose
table state is timing-dependent and cannot be resolved ahead of time
without re-deriving the schedule.  That loop is a line-by-line port of
the ``compiled`` engine (same semantics, same quirks, bit-identical by
CI), entered only after every column above is precomputed.

On top of single-trace replay, :func:`simulate_batch` stacks K
independent jobs into one columnar pass: traces are lowered once,
decode gathers run over the **concatenated** entry columns of every
lane that shares a decode key (one ``np.take`` per column for the whole
batch, split back at lane boundaries), and the per-run replay loops
then reuse the shared columns.  Campaign workers, the fuzz oracle and
sweep requests use it to amortize per-job dispatch overhead.

The engine is **cycle-identical** to ``reference`` by construction and
by CI: the backend-equivalence matrix, the engine-diff fuzz legs and
the hypothesis property tests all pin SimStats equality.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError as exc:                        # pragma: no cover
    raise ImportError(
        "the 'vector' engine requires numpy>=1.24 (declared in "
        "pyproject.toml); install it or pick another engine "
        "(reference/fast/compiled)") from exc

_NUMPY_MIN = (1, 24)
_numpy_version = tuple(int(part) for part in
                       np.__version__.split(".")[:2])
if _numpy_version < _NUMPY_MIN:                   # pragma: no cover
    raise ImportError(
        f"the 'vector' engine needs numpy>="
        f"{'.'.join(map(str, _NUMPY_MIN))}, found {np.__version__}; "
        "upgrade numpy or pick another engine "
        "(reference/fast/compiled)")

from repro.analysis.stats import HIGH_SLACK_FRACTION, SimStats
from repro.isa.opcodes import OpClass
from repro.isa.semantics import width_bucket
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.trace import Trace
from repro.pipeline.uop import OPCLASS_INDEX

from .compiled import _decode_static
from .config import CoreConfig, RecycleMode, SchedulerDesign
from .lower import LoweredTrace, lower_trace
from .slack_lut import SlackLUT
from .ticks import TickBase

_I_ALU = OPCLASS_INDEX[OpClass.ALU]
_I_SIMD = OPCLASS_INDEX[OpClass.SIMD]
_I_MUL = OPCLASS_INDEX[OpClass.MUL]
_I_DIV = OPCLASS_INDEX[OpClass.DIV]
_I_FP = OPCLASS_INDEX[OpClass.FP]
_I_LOAD = OPCLASS_INDEX[OpClass.LOAD]
_I_STORE = OPCLASS_INDEX[OpClass.STORE]
_I_BRANCH = OPCLASS_INDEX[OpClass.BRANCH]
_I_NOP = OPCLASS_INDEX[OpClass.NOP]
_I_HALT = OPCLASS_INDEX[OpClass.HALT]

#: select-lane order — the ExecutionResources pools insertion order
_LANE_ORDER = (_I_ALU, _I_SIMD, _I_FP, _I_LOAD, _I_STORE, _I_MUL,
               _I_DIV, _I_BRANCH)

_WIDTH_CLASSES = (8, 16, 24, 32)

#: effective width → predictor class, as one gather table
_WIDTH_BUCKET_LUT = np.array([width_bucket(w) for w in range(33)],
                             dtype=np.int64)

#: process-wide read-only SlackLUT / TickBase per timing corner — the
#: LUT is pure design-time analysis, identical for every run that
#: shares (ticks_per_cycle, tech, pvt_scale)
_lut_memo: Dict[tuple, Tuple[TickBase, SlackLUT]] = {}


def _shared_lut(config: CoreConfig) -> Tuple[TickBase, SlackLUT]:
    key = (config.ticks_per_cycle, config.tech, config.pvt_scale)
    pair = _lut_memo.get(key)
    if pair is None:
        base = TickBase(config.ticks_per_cycle, config.tech)
        lut = SlackLUT(base, pvt_scale=config.pvt_scale)
        pair = _lut_memo[key] = (base, lut)
    return pair


# ---------------------------------------------------------------------
# per-trace columnar precompute
# ---------------------------------------------------------------------


class _EntryColumns:
    """Config-independent flat views of one lowered trace.

    Materialized once per trace (memoized on the LoweredTrace): the
    int64/uint8 NumPy views share memory with the lowering's columns,
    and the Python lists the scalar replay loop indexes are built once
    instead of per run.
    """

    __slots__ = ("np_static", "np_width", "np_cls", "np_pc",
                 "sidx", "pcs", "addrs", "sizes", "clsi", "takens",
                 "stores", "condbr", "odeps", "misp",
                 "phash", "lhash", "br_n", "br_wrong")

    def __init__(self, low: LoweredTrace) -> None:
        self.np_static = np.frombuffer(low.static_idx, dtype=np.int64)
        self.np_width = np.frombuffer(low.op_width, dtype=np.int64)
        self.np_cls = np.frombuffer(low.cls_idx, dtype=np.int64)
        self.np_pc = np.frombuffer(low.pc, dtype=np.int64)
        self.sidx = low.static_idx.tolist()
        self.pcs = low.pc.tolist()
        self.addrs = low.mem_addr.tolist()
        self.sizes = low.mem_size.tolist()
        self.clsi = low.cls_idx.tolist()
        self.takens = list(low.taken)
        self.stores = list(low.is_store)
        self.condbr = list(low.is_cond_branch)
        self.odeps = low.order_dep.tolist()
        # predictor hash columns (width predictor / LA predictor)
        self.phash = (self.np_pc % 4096).tolist()
        self.lhash = (self.np_pc % 1024).tolist()
        # gshare resolution column: fetch trains the branch predictor
        # strictly in trace order (its state never depends on timing),
        # so every conditional branch's mispredict bit is a pure
        # function of the trace and resolves ahead of the replay
        n = low.n
        misp = bytearray(n)
        counters = [2] * 4096
        hist = 0
        pcs = self.pcs
        takens = self.takens
        wrong = 0
        branch_sites = np.flatnonzero(
            np.frombuffer(low.is_cond_branch, dtype=np.uint8)).tolist()
        for i in branch_sites:
            t = takens[i]
            g = (pcs[i] ^ hist) % 4096
            c = counters[g]
            if t:
                if c < 3:
                    counters[g] = c + 1
            elif c > 0:
                counters[g] = c - 1
            hist = ((hist << 1) | t) & 4095
            if (c >= 2) != bool(t):
                misp[i] = 1
                wrong += 1
        self.misp = misp
        self.br_n = len(branch_sites)
        self.br_wrong = wrong


class _DecodeColumns:
    """Config-dependent decode vectors (one gather pass per column)."""

    __slots__ = ("transp", "lat", "ex", "arith", "wb", "actual_ex",
                 "s_exwc", "np_transp", "np_lat", "np_ex", "np_arith",
                 "np_actual_ex")

    def __init__(self, static_tables, gathered) -> None:
        (self.s_exwc,) = static_tables
        (self.np_transp, self.np_lat, self.np_ex, self.np_arith,
         wb, self.np_actual_ex) = gathered
        self.transp = self.np_transp.tolist()
        self.lat = self.np_lat.tolist()
        self.ex = self.np_ex.tolist()
        self.arith = self.np_arith.tolist()
        self.wb = wb.tolist()
        self.actual_ex = self.np_actual_ex.tolist()


def _decode_key(config: CoreConfig) -> tuple:
    """The slice of the config the decode columns depend on.

    ``_decode_static`` reads only recycling-on/off (not which recycling
    flavour), the tick base, the PVT corner and the fixed latencies —
    REDSOC and MOS therefore share one decode, BASELINE gets its own.
    """
    return (config.mode is RecycleMode.BASELINE,
            config.ticks_per_cycle, config.tech, config.pvt_scale,
            config.mul_latency, config.div_latency, config.fp_latency,
            config.fdiv_latency, config.simd_multicycle_latency)


def _static_decode_tables(low: LoweredTrace, config: CoreConfig,
                          lut: SlackLUT, tpc: int):
    """Per-static-instruction decode tables (the small dimension)."""
    n_static = len(low.instrs)
    s_transp = np.zeros(n_static, dtype=bool)
    s_lat = np.ones(n_static, dtype=np.int64)
    s_ex = np.zeros(n_static, dtype=np.int64)
    s_arith = np.zeros(n_static, dtype=bool)
    s_exwc: List[Optional[tuple]] = [None] * n_static
    exwc_mat = np.zeros((max(n_static, 1), 4), dtype=np.int64)
    for si, instr in enumerate(low.instrs):
        t, latency, ex, arith = _decode_static(instr, config, lut, tpc)
        s_transp[si] = t
        s_lat[si] = latency
        s_ex[si] = ex
        s_arith[si] = arith
        if arith:
            widths = tuple(lut.ex_time(instr, w)
                           for w in _WIDTH_CLASSES)
            s_exwc[si] = widths
            exwc_mat[si] = widths
    return s_transp, s_lat, s_ex, s_arith, s_exwc, exwc_mat


def _gather_decode(entry: _EntryColumns, tables) -> tuple:
    """One NumPy gather per decode column over a lane's entries."""
    s_transp, s_lat, s_ex, s_arith, _s_exwc, exwc_mat = tables
    sidx = entry.np_static
    transp = np.take(s_transp, sidx)
    lat = np.take(s_lat, sidx)
    ex = np.take(s_ex, sidx)
    arith = np.take(s_arith, sidx)
    wb = np.where(arith,
                  np.take(_WIDTH_BUCKET_LUT,
                          np.minimum(entry.np_width, 32)),
                  0)
    actual_ex = np.where(
        arith,
        exwc_mat[sidx, np.where(arith, (wb >> 3) - 1, 0)],
        ex)
    return transp, lat, ex, arith, wb, actual_ex


def _entry_columns(low: LoweredTrace) -> _EntryColumns:
    cached = getattr(low, "_vector_entries", None)
    if cached is None:
        cached = _EntryColumns(low)
        low._vector_entries = cached
    return cached


def _decode_columns(low: LoweredTrace, config: CoreConfig,
                    lut: SlackLUT, tpc: int) -> _DecodeColumns:
    cache: Dict[tuple, _DecodeColumns] = getattr(
        low, "_vector_decode", None) or {}
    if not hasattr(low, "_vector_decode"):
        low._vector_decode = cache
    key = _decode_key(config)
    decode = cache.get(key)
    if decode is None:
        tables = _static_decode_tables(low, config, lut, tpc)
        gathered = _gather_decode(_entry_columns(low), tables)
        decode = cache[key] = _DecodeColumns((tables[4],), gathered)
    return decode


# ---------------------------------------------------------------------
# the replay engine
# ---------------------------------------------------------------------


class VectorSimulator:
    """One vector-backend run over one trace (single-use object)."""

    def __init__(self, trace: Trace, config: CoreConfig) -> None:
        self.trace = trace
        self.config = config

    # Like the compiled engine, the whole replay is one closure nest:
    # every mutable piece of state is a cell, every constant a local.
    # The body is a line-by-line port of CompiledSimulator.run() with
    # the decode, width-class and branch-resolution work replaced by
    # the precomputed columns above (see the equivalence notes in
    # repro.core.lower and repro.core.compiled — they apply unchanged).
    def run(self):                                      # noqa: C901
        from .cpu import SimResult

        trace = self.trace
        config = self.config
        low: LoweredTrace = lower_trace(trace)
        n = low.n

        base, lut = _shared_lut(config)
        mem = MemoryHierarchy(config.memory)
        load_latency = mem.load_latency
        store_latency = mem.store_latency

        # -- baked config constants ------------------------------------
        TPC = base.ticks_per_cycle
        FRONT = config.front_width
        QUEUE_CAP = 2 * FRONT
        ROB_SIZE = config.rob_size
        RSE_SIZE = config.rse_size
        LSQ_SIZE = config.lsq_size
        MISPRED_PEN = config.mispredict_penalty
        REPLAY_PEN = config.replay_penalty
        TAKEN_PER_CYCLE = config.taken_branches_per_cycle
        L1_LAT = config.memory.l1_latency
        IS_MOS = config.mode is RecycleMode.MOS
        DO_GP = (config.mode is not RecycleMode.BASELINE
                 and config.eager_issue)
        SKEWED = config.skewed_select
        SPARE = config.eager_spare_units
        ADAPTIVE = (config.adaptive_threshold
                    and config.mode is RecycleMode.REDSOC)
        WINDOW = config.threshold_window
        WATCH_ALL = (config.mode is RecycleMode.BASELINE
                     or config.scheduler is SchedulerDesign.ILLUSTRATIVE)

        # -- memoized columnar precompute ------------------------------
        cols = _entry_columns(low)
        decode = _decode_columns(low, config, lut, TPC)

        sidx = cols.sidx
        pcs = cols.pcs
        addrs = cols.addrs
        sizes = cols.sizes
        clsi = cols.clsi
        takens = cols.takens
        stores_f = cols.stores
        odeps = cols.odeps
        misp = cols.misp
        phash = cols.phash
        lhash = cols.lhash
        producers = low.producers
        dependents = low.dependents

        s_exwc = decode.s_exwc
        transp = decode.transp
        lat = decode.lat
        arith = decode.arith
        wb = decode.wb
        actual_ex = decode.actual_ex
        ex = decode.ex.copy()     # mutated by width prediction per run

        # -- per-seq dynamic state -------------------------------------
        state = bytearray(n)      # 0 DISPATCHED / 1 ISSUED / 2 COMMITTED
        in_ready = bytearray(n)
        replayed = bytearray(n)
        la_app = bytearray(n)
        width_app = bytearray(n)
        sec_pred = bytearray(n)
        mem_hl = bytearray(n)
        issue_c = [-1] * n
        done_c = [-1] * n
        eligible = [-1] * n
        start_t = [0] * n
        end_t = [0] * n
        avail_t = [0] * n
        sync_t = [0] * n
        pred_w = [32] * n
        chain = [-1] * n
        srcs = [()] * n           # live producers, set at dispatch
        waiting = [None] * n      # set[int], set at dispatch

        # -- machine state ---------------------------------------------
        C = 0                     # ROB head (next to commit)
        D = 0                     # next to dispatch (ROB tail + 1)
        F = 0                     # next to fetch
        rs_used = 0
        lsq_used = 0
        committed = 0
        fetch_resume = 0
        blocked = -1              # seq fetch is blocked on (-1 none)
        live_stores = []          # issued, uncommitted store seqs

        # ready queues (seq-sorted per class, lazy tombstones)
        queues = [[] for _ in range(len(OPCLASS_INDEX))]
        dead = [0] * len(OPCLASS_INDEX)
        live_total = 0
        wake_at = {}
        wake_heap = []

        # FU pools: per-class busy dicts with baked unit counts
        counts = [0] * len(OPCLASS_INDEX)
        counts[_I_ALU] = config.alu_units
        counts[_I_SIMD] = config.simd_units
        counts[_I_FP] = config.fp_units
        counts[_I_LOAD] = config.mem_ports
        counts[_I_STORE] = config.mem_ports
        counts[_I_MUL] = config.complex_units
        counts[_I_DIV] = config.complex_units
        counts[_I_BRANCH] = config.branch_units
        busies = [{} for _ in range(len(OPCLASS_INDEX))]
        lanes = tuple((idx, counts[idx], busies[idx], queues[idx])
                      for idx in _LANE_ORDER)

        # width / last-arrival predictors as plain tables (the gshare
        # front end is gone: `misp` resolved it per entry already)
        w_class = [32] * 4096
        w_conf = [0] * 4096
        w_lookups = w_exact = w_cons = w_aggr = 0
        la_tab = [True] * 1024
        la_n = la_wrong = 0

        # transparent-sequence chains
        chain_len = []

        # adaptive-threshold controller
        threshold = config.slack_threshold
        probe_plan = []
        probe_results = []
        window_start_committed = 0
        exploit_left = 0

        # stats counters
        st_cycles = 0
        st_fu_stall = 0
        st_dispatch_stall = 0
        st_recycled = 0
        st_eager = 0
        st_holds = 0
        st_la_replays = 0
        st_width_replays = 0
        st_gp_mispec = 0
        st_wasted_gp = 0
        d_memhl = d_memll = d_simd = d_multi = d_aluls = d_aluhs = 0

        HSF = HIGH_SLACK_FRACTION

        # ---------------------------------------------------------------
        # wakeup plumbing
        # ---------------------------------------------------------------

        def schedule_wake(s, c):
            b = wake_at.get(c)
            if b is None:
                wake_at[c] = [s]
                heappush(wake_heap, c)
            else:
                b.append(s)

        def advance_to(cycle):
            nonlocal live_total
            while wake_heap and wake_heap[0] <= cycle:
                for s in wake_at.pop(heappop(wake_heap)):
                    if state[s] or in_ready[s]:
                        continue
                    idx = clsi[s]
                    q = queues[idx]
                    pos = bisect_left(q, s)
                    if pos < len(q) and q[pos] == s:
                        dead[idx] -= 1
                    else:
                        q.insert(pos, s)
                    in_ready[s] = 1
                    live_total += 1

        def compact(idx):
            q = queues[idx]
            q[:] = [s for s in q if in_ready[s] and not state[s]]
            dead[idx] = 0

        def remove_ready(s):
            nonlocal live_total
            if in_ready[s]:
                in_ready[s] = 0
                dead[clsi[s]] += 1
                live_total -= 1

        # ---------------------------------------------------------------
        # issue
        # ---------------------------------------------------------------

        def notify_dependents(s, cycle, p_avail, p_sync):
            p_trans = transp[s]
            floor = cycle + 1
            for d in dependents[s]:
                if d >= D:
                    break           # not yet dispatched (lists ascend)
                w = waiting[d]
                if w is None or s not in w:
                    continue
                w.discard(s)
                a = p_avail if p_trans and transp[d] else p_sync
                wk = a // TPC - lat[d]
                if wk < floor:
                    wk = floor
                e = eligible[d]
                if e < 0 or wk > e:
                    eligible[d] = e = wk
                if not w:
                    schedule_wake(d, e if e > floor else floor)

        def finish(s, cycle, start, end, avail, sync, extra, recycled,
                   eager):
            nonlocal rs_used, fetch_resume, blocked, st_holds, st_eager, \
                st_recycled
            state[s] = 1
            issue_c[s] = cycle
            start_t[s] = start
            end_t[s] = end
            avail_t[s] = avail
            sync_t[s] = sync
            done_c[s] = sync // TPC
            if extra:
                st_holds += 1
            if eager:
                st_eager += 1
            if transp[s]:
                if recycled:
                    st_recycled += 1
                    pid = -1
                    for p in srcs[s]:
                        if transp[p] and avail_t[p] == start:
                            pid = chain[p]
                            break
                    if pid >= 0:
                        chain_len[pid] += 1
                        chain[s] = pid
                    else:
                        chain_len.append(1)
                        chain[s] = len(chain_len) - 1
                else:
                    chain_len.append(1)
                    chain[s] = len(chain_len) - 1
            rs_used -= 1
            remove_ready(s)
            if s == blocked:
                fetch_resume = cycle + lat[s] + MISPRED_PEN
                blocked = -1
            notify_dependents(s, cycle, avail, sync)

        def train_predictors(s):
            nonlocal w_lookups, w_exact, w_cons, w_aggr, la_n, la_wrong
            if width_app[s]:
                w_lookups += 1
                actual = wb[s]
                predicted = pred_w[s]
                if predicted == actual:
                    w_exact += 1
                elif predicted > actual:
                    w_cons += 1
                else:
                    w_aggr += 1
                e = phash[s]
                if w_class[e] == actual:
                    c = w_conf[e] + 1
                    w_conf[e] = c if c < 3 else 3
                else:
                    w_class[e] = actual
                    w_conf[e] = 0
            if la_app[s]:
                ss = srcs[s]
                if len(ss) >= 2:
                    la_n += 1
                    c1 = issue_c[ss[0]]
                    c2 = issue_c[ss[1]]
                    if c1 != c2:
                        second_last = c2 > c1
                        if bool(sec_pred[s]) != second_last:
                            la_wrong += 1
                        la_tab[lhash[s]] = second_last

        def try_issue(s, cycle, eager):
            """0 = issued, 1 = stall, 2 = replayed."""
            nonlocal st_la_replays, st_width_replays
            latency = lat[s]
            arrival = cycle + latency
            ci = clsi[s]
            busy = busies[ci]
            cnt = counts[ci]
            ss = srcs[s]

            unissued = [p for p in ss
                        if state[p] != 2 and issue_c[p] < 0]
            if ci == _I_LOAD:
                od = odeps[s]
                if od >= 0 and issue_c[od] < 0:
                    unissued.append(od)
            if unissued:
                # woke off the wrong (predicted-last) tag: reissue later
                replayed[s] = 1
                if la_app[s]:
                    st_la_replays += 1
                waiting[s] = set(unissued)
                eligible[s] = cycle + 1
                remove_ready(s)
                nb = busy.get(arrival, 0)       # the grant burnt a slot
                if nb < cnt:
                    busy[arrival] = nb + 1
                return 2

            if ci == _I_LOAD:
                nb = busy.get(arrival, 0)
                if nb >= cnt:
                    return 1
                busy[arrival] = nb + 1
                addr_avail = 0
                for p in ss:
                    if state[p] != 2:
                        a = sync_t[p]           # a load is synchronous
                        if a > addr_avail:
                            addr_avail = a
                addr_cycle = (addr_avail + TPC - 1) // TPC
                if addr_cycle < arrival:
                    addr_cycle = arrival
                latency_m = load_latency(addrs[s], pcs[s])
                mem_hl[s] = 1 if latency_m > L1_LAT else 0
                lo = addrs[s]
                hi = lo + sizes[s]
                fwd = -1
                for f in reversed(live_stores):
                    if f > s:
                        continue
                    s_lo = addrs[f]
                    if s_lo < hi and lo < s_lo + sizes[f]:
                        fwd = f
                        break
                if fwd >= 0:
                    dc = done_c[fwd]
                    data_cycle = (dc if dc > 0 else 0) + 1
                    if data_cycle < addr_cycle + 1:
                        data_cycle = addr_cycle + 1
                else:
                    data_cycle = addr_cycle + latency_m
                edge = data_cycle * TPC
                finish(s, cycle, addr_cycle * TPC, edge, edge, edge,
                       False, False, False)
                return 0

            if ci == _I_STORE:
                nb = busy.get(arrival, 0)
                if nb >= cnt:
                    return 1
                busy[arrival] = nb + 1
                edge = arrival * TPC
                finish(s, cycle, edge, edge + TPC, edge, edge,
                       False, False, False)
                live_stores.append(s)
                return 0

            # generic FU path (ALU / SIMD / MUL / DIV / FP / BRANCH)
            t = transp[s]
            source_avail = 0
            for p in ss:
                if state[p] != 2:
                    a = avail_t[p] if t and transp[p] else sync_t[p]
                    if a > source_avail:
                        source_avail = a
            cycle_start = arrival * TPC
            if t:
                start = (source_avail if source_avail > cycle_start
                         else cycle_start)
            else:
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cycle_start else cycle_start
            ext = ex[s]
            end = start + ext
            sync = ((end + TPC - 1) // TPC) * TPC
            extra = end > (start // TPC + 1) * TPC
            recycled = start % TPC != 0
            if IS_MOS and recycled and extra:
                # MOS cannot cross a clock edge: normal edge start
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cycle_start else cycle_start
                end = start + ext
                sync = ((end + TPC - 1) // TPC) * TPC
                extra = end > (start // TPC + 1) * TPC
                recycled = start % TPC != 0

            if start >= cycle_start + TPC:
                # an (unwatched but issued) operand lands after our window
                replayed[s] = 1
                if la_app[s]:
                    st_la_replays += 1
                la_avail = 0
                for p in ss:
                    if state[p] != 2:
                        a = avail_t[p] if t and transp[p] else sync_t[p]
                        if a > la_avail:
                            la_avail = a
                remove_ready(s)
                wk = la_avail // TPC - 1
                nxt = cycle + 1
                schedule_wake(s, wk if wk > nxt else nxt)
                nb = busy.get(arrival, 0)
                if nb < cnt:
                    busy[arrival] = nb + 1
                return 2

            if width_app[s] and wb[s] > pred_w[s]:
                # aggressive width mispredict: conservative re-execution
                arr2 = arrival + REPLAY_PEN
                cs2 = arr2 * TPC
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cs2 else cs2
                end = start + actual_ex[s]
                sync = ((end + TPC - 1) // TPC) * TPC
                extra = end > (start // TPC + 1) * TPC
                recycled = start % TPC != 0
                st_width_replays += 1

            occupy = start // TPC
            if extra and (busy.get(occupy, 0) >= cnt
                          or busy.get(occupy + 1, 0) >= cnt):
                # 2-cycle hold unaffordable: opaque edge-aligned start
                cs2 = arrival * TPC
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cs2 else cs2
                end = start + ext
                sync = ((end + TPC - 1) // TPC) * TPC
                extra = end > (start // TPC + 1) * TPC
                recycled = start % TPC != 0
                occupy = start // TPC
            nb = busy.get(occupy, 0)
            if nb >= cnt:
                return 1
            if extra:
                mb = busy.get(occupy + 1, 0)
                if mb >= cnt:
                    return 1
                busy[occupy + 1] = mb + 1
            busy[occupy] = nb + 1

            train_predictors(s)
            finish(s, cycle, start, end, end, sync, extra, recycled,
                   eager)
            return 0

        # ---------------------------------------------------------------
        # schedule (select lanes + eager-grandparent phase)
        # ---------------------------------------------------------------

        def gp_candidates(cycle, issued_now):
            seen = set()
            candidates = []
            for parent in issued_now:
                if not transp[parent] or replayed[parent]:
                    continue
                p_end = end_t[parent]
                arrival_end = (start_t[parent] // TPC + 1) * TPC
                if p_end >= arrival_end:
                    continue
                ci_ticks = p_end % TPC
                p_lat = lat[parent]
                for child in dependents[parent]:
                    if child >= D:
                        break
                    if (child in seen or state[child]
                            or issue_c[child] >= 0 or not transp[child]
                            or lat[child] != p_lat):
                        continue
                    if IS_MOS:
                        if p_end + ex[child] > arrival_end:
                            continue
                    elif ci_ticks > threshold:
                        continue
                    deadline = (cycle + lat[child] + 1) * TPC
                    ok = True
                    for p in srcs[child]:
                        if state[p] == 2:
                            continue
                        if issue_c[p] < 0:
                            ok = False
                            break
                        a = (avail_t[p] if transp[p] and transp[child]
                             else sync_t[p])
                        if a >= deadline:
                            ok = False
                            break
                    if not ok:
                        continue
                    seen.add(child)
                    candidates.append(child)
            candidates.sort()
            return candidates

        def schedule(cycle):
            nonlocal st_fu_stall, st_gp_mispec, st_wasted_gp
            issued_now = []
            stalled = False
            for idx, cnt, busy, q in lanes:
                if dead[idx] > 8:
                    compact(idx)
                if not q:
                    continue
                for s in q:
                    if not in_ready[s]:
                        continue
                    if cnt <= busy.get(cycle + lat[s], 0):
                        stalled = True
                        break
                    r = try_issue(s, cycle, False)
                    if r == 0:
                        issued_now.append(s)
                    elif r == 1:
                        stalled = True
                        break
            if DO_GP and issued_now:
                for child in gp_candidates(cycle, issued_now):
                    idx = clsi[child]
                    busy = busies[idx]
                    cnt = counts[idx]
                    if (cnt - busy.get(cycle + 1, 0) <= SPARE
                            or cnt - busy.get(cycle + 2, 0) <= SPARE):
                        continue
                    if SKEWED:
                        try_issue(child, cycle, True)
                    else:
                        q = queues[idx]
                        for u in q:
                            if not (in_ready[u] and not state[u]):
                                compact(idx)
                                break
                        older_pending = any(u < child for u in q)
                        r = try_issue(child, cycle, True)
                        if r == 0 and older_pending:
                            st_gp_mispec += 1
                            st_wasted_gp += 1
            if stalled:
                st_fu_stall += 1

        # ---------------------------------------------------------------
        # dispatch (rename/allocate — decode was hoisted into lowering)
        # ---------------------------------------------------------------

        def dispatch(cycle):
            nonlocal D, rs_used, lsq_used, st_dispatch_stall
            count = 0
            stalled = False
            nxt = cycle + 1
            while F > D and count < FRONT:
                i = D
                if D - C >= ROB_SIZE:
                    stalled = True
                    break
                ci = clsi[i]
                if ci != _I_NOP and ci != _I_HALT and rs_used >= RSE_SIZE:
                    stalled = True
                    break
                if (ci == _I_LOAD or ci == _I_STORE) \
                        and lsq_used >= LSQ_SIZE:
                    stalled = True
                    break
                D += 1
                count += 1

                if arith[i]:
                    e = phash[i]
                    p_w = w_class[e] if w_conf[e] >= 3 else 32
                    width_app[i] = 1
                    pred_w[i] = p_w
                    ex[i] = s_exwc[sidx[i]][(p_w >> 3) - 1]

                live = [p for p in producers[i] if state[p] != 2]
                srcs[i] = live

                if ci == _I_LOAD or ci == _I_STORE:
                    lsq_used += 1

                if WATCH_ALL or not transp[i] or len(live) != 2:
                    watched = live
                else:
                    sp = la_tab[lhash[i]]
                    la_app[i] = 1
                    sec_pred[i] = 1 if sp else 0
                    watched = [live[1] if sp else live[0]]
                w = {p for p in watched if issue_c[p] < 0}
                waiting[i] = w
                od = odeps[i]
                if od >= 0 and issue_c[od] < 0:
                    w.add(od)

                if ci == _I_NOP or ci == _I_HALT:
                    state[i] = 1
                    issue_c[i] = cycle
                    done_c[i] = cycle
                    continue
                rs_used += 1

                wake = nxt
                li = lat[i]
                t = transp[i]
                for p in watched:
                    pi = issue_c[p]
                    if pi >= 0:
                        a = avail_t[p] if transp[p] and t else sync_t[p]
                        w2 = a // TPC - li
                        if w2 <= pi:
                            w2 = pi + 1
                        if w2 > wake:
                            wake = w2
                if od >= 0:
                    pi = issue_c[od]
                    if pi >= 0:
                        w2 = sync_t[od] // TPC - li
                        if w2 <= pi:
                            w2 = pi + 1
                        if w2 > wake:
                            wake = w2
                eligible[i] = wake
                if not w:
                    schedule_wake(i, wake)
            if stalled:
                st_dispatch_stall += 1

        # ---------------------------------------------------------------
        # fetch — gshare already resolved into the `misp` column
        # ---------------------------------------------------------------

        def fetch(cycle):
            nonlocal F, blocked
            fetched = 0
            taken_seen = 0
            while F < n and fetched < FRONT and F - D < QUEUE_CAP:
                i = F
                F += 1
                fetched += 1
                if clsi[i] == _I_BRANCH:
                    if misp[i]:
                        blocked = i
                        break
                    if takens[i]:
                        taken_seen += 1
                        if taken_seen > TAKEN_PER_CYCLE:
                            break

        # ---------------------------------------------------------------
        # commit
        # ---------------------------------------------------------------

        def commit(cycle):
            nonlocal C, committed, lsq_used, d_memhl, d_memll, d_simd, \
                d_multi, d_aluls, d_aluhs
            width = FRONT
            done = 0
            while C < D and done < width:
                s = C
                if state[s] != 1:
                    break
                dc = done_c[s]
                if dc < 0 or dc > cycle:
                    break
                ci = clsi[s]
                if stores_f[s]:
                    latency = store_latency(addrs[s], pcs[s])
                    mem_hl[s] = 1 if latency > L1_LAT else 0
                    if s in live_stores:
                        live_stores.remove(s)
                if ci == _I_LOAD or ci == _I_STORE:
                    lsq_used -= 1
                    if mem_hl[s]:
                        d_memhl += 1
                    else:
                        d_memll += 1
                elif ci == _I_SIMD:
                    d_simd += 1
                elif ci == _I_MUL or ci == _I_DIV or ci == _I_FP:
                    d_multi += 1
                elif ci == _I_ALU:
                    if 1.0 - actual_ex[s] / TPC > HSF:
                        d_aluhs += 1
                    else:
                        d_aluls += 1
                state[s] = 2
                C += 1
                committed += 1
                done += 1

        # ---------------------------------------------------------------
        # adaptive-threshold controller
        # ---------------------------------------------------------------

        def adapt_threshold():
            nonlocal threshold, window_start_committed, exploit_left, \
                probe_plan, probe_results
            done = committed - window_start_committed
            window_start_committed = committed
            probe_results.append((done, threshold))
            if probe_plan:
                threshold = probe_plan.pop(0)
                return
            if len(probe_results) > 1:
                threshold = max(probe_results)[1]
                probe_results = []
                exploit_left = 20
                return
            probe_results = []
            exploit_left -= 1
            if exploit_left <= 0:
                grid = sorted({0, TPC // 4, TPC // 2, 3 * TPC // 4,
                               TPC - 1})
                probe_plan = [t for t in grid if t != threshold]
                probe_results = [(done, threshold)]
                threshold = probe_plan.pop(0)

        # ---------------------------------------------------------------
        # main event-driven loop (mirrors CompiledSimulator.run)
        # ---------------------------------------------------------------

        limit = 200 * n + 100_000
        cycle = 0
        while committed < n:
            if wake_heap and wake_heap[0] <= cycle:
                advance_to(cycle)
            if C < D:
                commit(cycle)
            if live_total:
                schedule(cycle)
            if F > D:
                dispatch(cycle)
            if (blocked < 0 and cycle >= fetch_resume and F < n
                    and F - D < QUEUE_CAP):
                fetch(cycle)
            st_cycles += 1
            if cycle and not cycle & 4095:
                for busy in busies:
                    for c in [c for c in busy if c < cycle]:
                        del busy[c]
            if ADAPTIVE and cycle and not cycle % WINDOW:
                adapt_threshold()
            cycle += 1
            if cycle > limit:
                raise RuntimeError(
                    f"simulation wedged: {committed}/{n} committed "
                    f"after {cycle} cycles (trace {trace.name!r})")
            if committed >= n:
                break

            # -- skip-ahead: is the machine provably idle at `cycle`? --
            if live_total:
                continue
            head_done = None
            if C < D and state[C] == 1:
                hd = done_c[C]
                if hd >= 0:
                    if hd <= cycle:
                        continue
                    head_done = hd
            can_fetch = (blocked < 0 and F < n and F - D < QUEUE_CAP)
            if can_fetch and fetch_resume <= cycle:
                continue
            if F > D:
                ci = clsi[D]
                if not (D - C >= ROB_SIZE
                        or (ci != _I_NOP and ci != _I_HALT
                            and rs_used >= RSE_SIZE)
                        or ((ci == _I_LOAD or ci == _I_STORE)
                            and lsq_used >= LSQ_SIZE)):
                    continue
            target = wake_heap[0] if wake_heap else None
            if head_done is not None and (target is None
                                          or head_done < target):
                target = head_done
            if can_fetch and (target is None or fetch_resume < target):
                target = fetch_resume
            if target is None or target <= cycle:
                continue
            if ADAPTIVE:
                rem = cycle % WINDOW
                boundary = cycle - rem + (WINDOW if rem or not cycle
                                          else 0)
                if boundary < target:
                    target = boundary
            rem = cycle & 4095
            boundary = cycle - rem + (4096 if rem or not cycle else 0)
            if boundary < target:
                target = boundary
            if target > cycle:
                skipped = target - cycle
                st_cycles += skipped
                if F > D:
                    st_dispatch_stall += skipped
                cycle = target

        # ---------------------------------------------------------------
        # finalize (mirrors CompiledSimulator.run)
        # ---------------------------------------------------------------

        stats = SimStats()
        stats.cycles = st_cycles
        stats.committed = committed
        stats.recycled_ops = st_recycled
        stats.eager_issues = st_eager
        stats.two_cycle_holds = st_holds
        stats.fu_stall_cycles = st_fu_stall
        stats.dispatch_stall_cycles = st_dispatch_stall
        stats.gp_mispeculations = st_gp_mispec
        stats.wasted_gp_grants = st_wasted_gp
        stats.la_replays = st_la_replays
        stats.width_replays = st_width_replays
        dist = stats.distribution.counts
        dist["MEM-HL"] = d_memhl
        dist["MEM-LL"] = d_memll
        dist["SIMD"] = d_simd
        dist["OtherMulti"] = d_multi
        dist["ALU-LS"] = d_aluls
        dist["ALU-HS"] = d_aluhs

        m = MetricsRegistry()
        m.gauge("predict.width.aggressive_rate").set(
            w_aggr / w_lookups if w_lookups else 0.0)
        m.gauge("predict.width.accuracy").set(
            w_exact / w_lookups if w_lookups else 0.0)
        m.gauge("predict.la.misprediction_rate").set(
            la_wrong / la_n if la_n else 0.0)
        m.gauge("predict.la.predictions").set(la_n)
        m.gauge("predict.la.mispredictions").set(la_wrong)
        total_len = sum(chain_len)
        m.gauge("seq.expected_length").set(
            sum(x * x for x in chain_len) / total_len if total_len
            else 0.0)
        m.gauge("seq.mean_length").set(
            total_len / len(chain_len) if chain_len else 0.0)
        m.gauge("seq.count").set(len(chain_len))
        m.gauge("front.branches").set(cols.br_n)
        m.gauge("front.branch_mispredicts").set(cols.br_wrong)
        stats.populate_from(m)
        stats.export_counters(m)
        m.gauge("core.ipc").set(stats.ipc)
        return SimResult(name=trace.name, config=config, stats=stats)


# ---------------------------------------------------------------------
# batch lanes
# ---------------------------------------------------------------------


def _batch_decode(lowereds: Sequence[LoweredTrace],
                  config: CoreConfig) -> None:
    """Decode every lane that misses the cache in one columnar pass.

    The per-entry gathers of all missing lanes run over concatenated
    columns (one ``np.take`` per decode column for the whole batch),
    then split back at lane boundaries — K lanes pay one NumPy
    dispatch per column instead of K.
    """
    base, lut = _shared_lut(config)
    tpc = base.ticks_per_cycle
    key = _decode_key(config)
    missing = []
    for low in lowereds:
        cache = getattr(low, "_vector_decode", None)
        if cache is None:
            cache = low._vector_decode = {}
        if key not in cache and low.n and id(low) not in \
                {id(m) for m in missing}:
            missing.append(low)
    if not missing:
        return
    tables = [_static_decode_tables(low, config, lut, tpc)
              for low in missing]
    entries = [_entry_columns(low) for low in missing]
    # stack the static tables with per-lane offsets so one gather
    # serves every lane
    offsets = []
    off = 0
    for low in missing:
        offsets.append(off)
        off += len(low.instrs)
    cat_transp = np.concatenate([t[0] for t in tables])
    cat_lat = np.concatenate([t[1] for t in tables])
    cat_ex = np.concatenate([t[2] for t in tables])
    cat_arith = np.concatenate([t[3] for t in tables])
    cat_exwc = np.concatenate([t[5][:len(low.instrs)]
                               for t, low in zip(tables, missing)]) \
        if off else np.zeros((0, 4), dtype=np.int64)
    cat_sidx = np.concatenate(
        [e.np_static + o for e, o in zip(entries, offsets)])
    cat_width = np.concatenate([e.np_width for e in entries])

    transp = np.take(cat_transp, cat_sidx)
    lat = np.take(cat_lat, cat_sidx)
    ex = np.take(cat_ex, cat_sidx)
    arith = np.take(cat_arith, cat_sidx)
    wb = np.where(arith,
                  np.take(_WIDTH_BUCKET_LUT, np.minimum(cat_width, 32)),
                  0)
    actual_ex = np.where(
        arith, cat_exwc[cat_sidx, np.where(arith, (wb >> 3) - 1, 0)],
        ex)

    bounds = np.cumsum([low.n for low in missing])[:-1]
    for low, table, *cols in zip(
            missing, tables,
            np.split(transp, bounds), np.split(lat, bounds),
            np.split(ex, bounds), np.split(arith, bounds),
            np.split(wb, bounds), np.split(actual_ex, bounds)):
        low._vector_decode[key] = _DecodeColumns(
            (table[4],), tuple(cols))


def simulate_batch(items, *, lane_times: Optional[list] = None):
    """Replay K independent ``(trace, config)`` jobs in one batch pass.

    Lowers every lane, runs the shared columnar decode over the
    concatenated columns of all lanes (grouped by decode key), then
    replays each lane.  Returns one :class:`SimResult` per item, in
    order.  K=1, ragged lane lengths and empty traces are all fine —
    lanes are concatenated, not padded, so nothing is wasted on rag.

    *lane_times*, when given a list, receives one per-lane replay
    wall-time (seconds) per item — campaign telemetry uses it to keep
    per-job ``sim_cycles_per_sec`` meaningful under batching.
    """
    import time

    from .cpu import SimResult  # noqa: F401  (re-exported result type)

    pairs: List[Tuple[Trace, CoreConfig]] = []
    for workload, config in items:
        if not isinstance(workload, Trace):
            raise TypeError(
                f"simulate_batch expects pre-generated Traces, got "
                f"{type(workload)}")
        pairs.append((workload, config))

    lowereds = [lower_trace(trace) for trace, _ in pairs]

    # one concatenated decode pass per distinct decode key
    by_key: Dict[tuple, List[int]] = {}
    for i, (_, config) in enumerate(pairs):
        by_key.setdefault(_decode_key(config), []).append(i)
    for indices in by_key.values():
        _batch_decode([lowereds[i] for i in indices],
                      pairs[indices[0]][1])

    results = []
    for trace, config in pairs:
        start = time.perf_counter()
        results.append(VectorSimulator(trace, config).run())
        if lane_times is not None:
            lane_times.append(time.perf_counter() - start)
    return results


__all__ = ["VectorSimulator", "simulate_batch"]
