"""Slack look-up table: the 5-bit classification of Sec. II-B / Fig. 3.

Static timing analysis at design time measures computation times for
coarse *classes* of operations; the results live in a small LUT that the
decode stage reads.  The 5-bit lookup address is::

    [ arith/logic | shift | simd | width/type (2 bits) ]

* ``arith/logic`` and ``shift`` are don't-cares for SIMD instructions
  (the SIMD unit's lane path is selected by type alone);
* ``width/type`` holds the *predicted data width* class for scalar ops
  and the *data type* for SIMD ops.

Because the logic unit's delay is width-independent, logic classes
collapse across widths; the distinct buckets are

    2 (logic × shift?) + 8 (arith × shift? × 4 widths) + 4 (SIMD types)
    = 14 slack buckets,

exactly the paper's count.  Each bucket stores the worst-case EX-TIME
(in ticks) over every operation mapping to it — conservative within the
bucket, so recycling never overtakes real signal propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    ARITH_OPS,
    LOGICAL_OPS,
    SHIFT_OPS,
    SIMD_ACCUMULATE_OPS,
    SIMD_SINGLE_CYCLE_OPS,
    ShiftOp,
    SimdType,
    is_single_cycle_alu,
)
from repro.timing.alu_timing import scalar_op_delay_ps
from repro.timing.simd_timing import (
    simd_op_delay_ps,
    vmla_accumulate_delay_ps,
)

from .ticks import DEFAULT_TICK_BASE, TickBase

#: The four width/type classes (scalar widths in bits / SIMD lane types).
WIDTH_CLASSES = (8, 16, 24, 32)
_TYPE_TO_CLASS = {SimdType.I8: 0, SimdType.I16: 1, SimdType.I32: 2,
                  SimdType.I64: 3}


def width_class_index(width: int) -> int:
    """Map an effective width (1..32) to its class index (0..3)."""
    for idx, bound in enumerate(WIDTH_CLASSES):
        if width <= bound:
            return idx
    return len(WIDTH_CLASSES) - 1


#: width → class index, precomputed over the in-range widths so the
#: decode-side fast path is one tuple index instead of a bounds loop
_WIDTH_TO_CLASS = tuple(width_class_index(w)
                        for w in range(WIDTH_CLASSES[-1] + 1))


@dataclass(frozen=True)
class SlackKey:
    """Decoded form of the 5-bit lookup address."""

    arith: bool
    shift: bool
    simd: bool
    width_class: int  # 0..3

    def address(self) -> int:
        """Pack into the 5-bit LUT address (Fig. 3)."""
        return ((int(self.arith) << 4) | (int(self.shift) << 3)
                | (int(self.simd) << 2) | self.width_class)

    @classmethod
    def from_address(cls, address: int) -> "SlackKey":
        return cls(arith=bool(address & 16), shift=bool(address & 8),
                   simd=bool(address & 4), width_class=address & 3)

    def canonical(self) -> "SlackKey":
        """Collapse don't-care bits: the bucket identity.

        SIMD ignores arith/shift; logic ignores width.  The canonical
        keys enumerate the paper's 14 buckets.
        """
        if self.simd:
            return SlackKey(False, False, True, self.width_class)
        if not self.arith:
            return SlackKey(False, self.shift, False,
                            len(WIDTH_CLASSES) - 1)
        return self


class SlackLUT:
    """The design-time slack table plus decode-time classification.

    Construction performs the "static circuit-level timing analysis":
    every single-cycle operation is timed by the structural models at the
    upper bound of each width class, and each bucket records the worst
    case.  ``pvt_scale`` supports the on-the-fly PVT recalibration the
    paper describes (Sec. V) — all entries scale together, re-quantised.
    """

    def __init__(self, tick_base: TickBase = DEFAULT_TICK_BASE, *,
                 pvt_scale: float = 1.0) -> None:
        if pvt_scale <= 0:
            raise ValueError("pvt_scale must be positive")
        self.tick_base = tick_base
        self.pvt_scale = pvt_scale
        self._table: Dict[int, int] = {}
        #: decode-side fast table, derived from ``_table`` at build
        #: time: ``(op, flex_shift, width_class) → ticks`` for scalar
        #: ops, ``(op, SimdType) → ticks`` for SIMD — one flat dict read
        #: per EX-TIME query instead of a SlackKey build + canonical walk
        self._fast: Dict[Tuple, int] = {}
        self._build()

    # -- design-time construction ---------------------------------------

    def _store(self, key: SlackKey, raw_ps: float) -> None:
        address = key.canonical().address()
        ticks = self.tick_base.ex_time_ticks(raw_ps * self.pvt_scale)
        self._table[address] = max(self._table.get(address, 0), ticks)

    def _build(self) -> None:
        for shift in (False, True):
            for op in LOGICAL_OPS:
                key = SlackKey(False, shift, False, 3)
                self._store(key, scalar_op_delay_ps(op, flex_shift=shift))
            for wc, bound in enumerate(WIDTH_CLASSES):
                for op in ARITH_OPS:
                    key = SlackKey(True, shift, False, wc)
                    self._store(key, scalar_op_delay_ps(
                        op, effective_width=bound, flex_shift=shift))
        # standalone shifts live in the logic-with-shift bucket: their
        # datapath is the barrel shifter, the same unit the flexible
        # operand uses
        for op in SHIFT_OPS:
            self._store(SlackKey(False, True, False, 3),
                        scalar_op_delay_ps(op))
        for dtype, wc in _TYPE_TO_CLASS.items():
            key = SlackKey(False, False, True, wc)
            for op in SIMD_SINGLE_CYCLE_OPS:
                self._store(key, simd_op_delay_ps(op, dtype))
            self._store(key, vmla_accumulate_delay_ps(dtype))
        self._build_fast()

    def _build_fast(self) -> None:
        """Flatten the bucket table into the per-opcode fast table.

        Enumerates every (opcode, shift, width-class) the decode stage
        can ever ask for, resolving the don't-care collapses (SIMD by
        type; logic/shift independent of width) ahead of time so
        :meth:`ex_time` is a single dict read.
        """
        fast = self._fast
        fast.clear()
        n_wc = len(WIDTH_CLASSES)
        for shift in (False, True):
            for wc in range(n_wc):
                for op in ARITH_OPS:
                    ticks = self.lookup(SlackKey(True, shift, False, wc))
                    fast[(op, shift, wc)] = ticks
                for op in LOGICAL_OPS:
                    ticks = self.lookup(SlackKey(False, shift, False, 3))
                    fast[(op, shift, wc)] = ticks
                for op in SHIFT_OPS:
                    ticks = self.lookup(SlackKey(False, True, False, 3))
                    fast[(op, shift, wc)] = ticks
        for dtype, wc in _TYPE_TO_CLASS.items():
            ticks = self.lookup(SlackKey(False, False, True, wc))
            for op in SIMD_SINGLE_CYCLE_OPS:
                fast[(op, dtype)] = ticks
            for op in SIMD_ACCUMULATE_OPS:
                fast[(op, dtype)] = ticks

    # -- decode-time lookup ----------------------------------------------

    def classify(self, instr: Instruction,
                 predicted_width: Optional[int] = None) -> SlackKey:
        """Build the lookup key for *instr*.

        ``predicted_width`` is the data-width predictor's output (bits);
        absent a prediction the conservative full width is used.  SIMD
        types come from the instruction itself.
        """
        op = instr.op
        if op in SIMD_SINGLE_CYCLE_OPS or op in SIMD_ACCUMULATE_OPS:
            dtype = instr.dtype or SimdType.I32
            return SlackKey(False, False, True, _TYPE_TO_CLASS[dtype])
        if not is_single_cycle_alu(op):
            raise ValueError(f"{op} has no slack bucket (not single-cycle)")
        if op in SHIFT_OPS:
            return SlackKey(False, True, False, len(WIDTH_CLASSES) - 1)
        shift = instr.has_flexible_shift()
        if op in LOGICAL_OPS:
            return SlackKey(False, shift, False, len(WIDTH_CLASSES) - 1)
        width = predicted_width if predicted_width is not None else 32
        return SlackKey(True, shift, False, width_class_index(width))

    def lookup(self, key: SlackKey) -> int:
        """EX-TIME in ticks for a slack key."""
        return self._table[key.canonical().address()]

    def ex_time(self, instr: Instruction,
                predicted_width: Optional[int] = None) -> int:
        """EX-TIME in ticks for an instruction (decode-stage read).

        Equivalent to ``lookup(classify(instr, predicted_width))`` but
        served from the precomputed per-opcode fast table — no key
        object is built per read.
        """
        op = instr.op
        if op in SIMD_SINGLE_CYCLE_OPS or op in SIMD_ACCUMULATE_OPS:
            return self._fast[(op, instr.dtype or SimdType.I32)]
        width = 32 if predicted_width is None else predicted_width
        wc = (_WIDTH_TO_CLASS[width] if 0 <= width <= WIDTH_CLASSES[-1]
              else len(WIDTH_CLASSES) - 1)
        ticks = self._fast.get((op, instr.shift is not ShiftOp.NONE, wc))
        if ticks is None:
            raise ValueError(f"{op} has no slack bucket (not single-cycle)")
        return ticks

    def slack_ticks(self, key: SlackKey) -> int:
        """Data slack of the bucket: cycle length minus EX-TIME."""
        return self.tick_base.ticks_per_cycle - self.lookup(key)

    def buckets(self) -> Dict[int, int]:
        """All canonical (address → EX-TIME ticks) entries."""
        return dict(sorted(self._table.items()))

    def recalibrate_pvt(self, scale: float) -> None:
        """On-the-fly PVT recalibration (CPM-driven, Sec. V)."""
        if scale <= 0:
            raise ValueError("pvt scale must be positive")
        self.pvt_scale = scale
        self._table.clear()
        self._build()
