"""Core configuration: Table I presets + ReDSOC mode switches.

The paper evaluates three cores (Table I):

========  =====  ======  ====
param     Small  Medium  Big
========  =====  ======  ====
width       3      4      8
ROB        40     80     160
LSQ        16     32      64
RSE        32     64     128
ALU         3      4      6
SIMD        2      3      4
FP          2      3      4
========  =====  ======  ====

all at 2 GHz with 64 kB L1 / 2 MB L2 and prefetching.

``CoreConfig`` also carries every ReDSOC/ablation switch: recycling
on/off, Illustrative vs Operational RSE, skewed vs plain selection, the
slack threshold, CI precision, and MOS fusion mode (the Sec. VI-D
comparator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.memory.hierarchy import MemoryConfig
from repro.timing.gates import DEFAULT_TECH, TechParams

from .ticks import DEFAULT_TICKS_PER_CYCLE


class SchedulerDesign(enum.Enum):
    """Slack-aware RSE flavour (Sec. IV-C)."""

    ILLUSTRATIVE = "illustrative"  # full 2P + 4GP tags, no predictions
    OPERATIONAL = "operational"    # predicted last parent/grandparent


class RecycleMode(enum.Enum):
    """Execution-timing mode of the core."""

    BASELINE = "baseline"     # conventional synchronous OOO
    REDSOC = "redsoc"         # transparent slack recycling
    MOS = "mos"               # fuse ops that fit in a single cycle


@dataclass(frozen=True)
class CoreConfig:
    """Full parameterisation of one simulated core."""

    name: str = "medium"
    front_width: int = 4
    rob_size: int = 80
    lsq_size: int = 32
    rse_size: int = 64
    alu_units: int = 4
    simd_units: int = 3
    fp_units: int = 3
    mem_ports: int = 2
    branch_units: int = 2     # dedicated branch-resolution pipes
    complex_units: int = 2    # integer multiply/divide pipes
    mispredict_penalty: int = 8       # redirect + refill cycles
    replay_penalty: int = 2           # selective-reissue bubble (cycles)
    #: predicted-taken branches the front end can follow per cycle
    taken_branches_per_cycle: int = 1

    mode: RecycleMode = RecycleMode.REDSOC
    scheduler: SchedulerDesign = SchedulerDesign.OPERATIONAL
    #: simulation backend (timing-irrelevant: every registered engine is
    #: cycle-identical, enforced by the CI backend-equivalence matrix).
    #: ``reference`` forces the per-cycle step loop, ``fast`` is the
    #: event-driven skip-ahead loop, ``compiled`` lowers the trace into
    #: flat columns and runs specialized straight-line code, ``vector``
    #: replays the lowered columns with memoized NumPy decode passes
    #: and supports batched multi-trace runs (requires numpy>=1.24)
    engine: str = "fast"
    skewed_select: bool = True
    #: run the Eager-Grandparent (GP) select phase at all; False keeps
    #: transparent execution but never co-issues children with their
    #: parents — the "EGPW off" ablation the verification layer's
    #: metamorphic properties compare against
    eager_issue: bool = True
    #: eager (same-cycle-as-parent) issue allowed when the parent's CI is
    #: at or below this many ticks into its completion cycle; 7 admits
    #: any parent with at least one tick of slack (tuned per suite in
    #: the Sec. VI-C sweep)
    slack_threshold: int = 7
    #: functional units an eager (GP-phase) issue must leave free for
    #: conventional requests; 0 relies on the adaptive threshold alone
    #: (kept as an ablation knob for the Sec. IV-C trade-off)
    eager_spare_units: int = 0
    #: adapt the slack threshold at run time from observed FU-stall
    #: rates (the "simple but intelligent dynamic mechanism" of
    #: Sec. IV-C); when False the static slack_threshold is used as-is
    adaptive_threshold: bool = True
    #: adaptation window in cycles
    threshold_window: int = 128
    #: PVT corner for the slack LUT (1.0 = worst-case design corner, the
    #: paper's measurement point; < 1.0 models CPM-harvested PVT slack,
    #: > 1.0 a slow corner the LUT must cover) — see repro.core.pvt
    pvt_scale: float = 1.0
    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE
    tech: TechParams = DEFAULT_TECH
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    #: fixed latencies (cycles) for true-synchronous op classes
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 4
    fdiv_latency: int = 12
    simd_multicycle_latency: int = 3

    def with_mode(self, mode: RecycleMode) -> "CoreConfig":
        return replace(self, mode=mode)

    def variant(self, **kwargs) -> "CoreConfig":
        """A modified copy (ablation helper)."""
        return replace(self, **kwargs)


#: Table I presets.
SMALL = CoreConfig(name="small", front_width=3, rob_size=40, lsq_size=16,
                   rse_size=32, alu_units=3, simd_units=2, fp_units=2,
                   complex_units=1, branch_units=1)
MEDIUM = CoreConfig(name="medium")
BIG = CoreConfig(name="big", front_width=8, rob_size=160, lsq_size=64,
                 rse_size=128, alu_units=6, simd_units=4, fp_units=4)

CORES = {"small": SMALL, "medium": MEDIUM, "big": BIG}
