"""Last-arriving operand predictor for the Operational RSE (Sec. IV-C).

The Illustrative slack-aware RSE needs 2 parent + 4 grandparent tags; the
extra comparators load every wakeup bus, which is exactly what makes wide
schedulers expensive.  The Operational design instead exploits two
observations the paper cites: most arithmetic ops have a single source,
and when there are two, the *last-arriving* one is highly predictable
(Ernst & Austin's tag elimination).

This module implements that predictor: a PC-indexed table (default 1K
entries, Fig. 12) with one bit per entry stating whether the *second*
source operand arrives last.  Instructions with fewer than two register
sources need no prediction.  A misprediction means the RSE watched the
wrong tag and may have issued before its other operand was ready — it is
caught by the register-read scoreboard check and replayed like a latency
misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LastArrivalStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class LastArrivalPredictor:
    """1-bit, PC-indexed last-arriving-tag predictor."""

    def __init__(self, *, entries: int = 1024) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        #: True → second source is predicted last-arriving
        self._table = [True] * entries
        self.stats = LastArrivalStats()

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict_second_last(self, pc: int) -> bool:
        """Predict whether source 2 (vs source 1) arrives last."""
        return self._table[self._index(pc)]

    def update(self, pc: int, second_was_last: bool) -> None:
        """Train with the arrival order observed by the scheduler."""
        self._table[self._index(pc)] = second_was_last

    def record_outcome(self, predicted_second: bool,
                       second_was_last: bool) -> bool:
        """Account one resolved prediction; True when mispredicted."""
        self.stats.predictions += 1
        wrong = predicted_second != second_was_last
        if wrong:
            self.stats.mispredictions += 1
        return wrong

    def state_bytes(self) -> int:
        """Table storage (1 bit/entry)."""
        return self.entries // 8
