"""Hardware-overhead accounting for ReDSOC (Secs. II-B and IV-E).

The paper quantifies ReDSOC's costs against the baseline OOO core:

* slack LUT + width predictor: **0.52 % area / 0.5 % access energy**,
* Operational RSE additions (10 extra bits per entry, two 3-bit adders
  with overflow, muxes, a comparator): **0.3 % area / 0.8 % energy**,
* skewed selection: **+3 ps** on a 100 ps select (negligible after wire
  delay),
* scheduling-loop timing unchanged (slack computation is 3 bits wide
  and runs in parallel with selection).

This module reproduces those numbers with a transparent register-bit-
equivalent (RBE) inventory: every baseline structure is counted in
storage bits (SRAM bits at 1 RBE, CAM/tag bits at 2 RBE for their
match logic, plus gate-equivalents for small logic), and the ReDSOC
additions are counted the same way.  Energy uses per-access costs
weighted by how often each structure is touched per instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import BIG, CoreConfig

#: cost weights (relative units per bit / per gate)
SRAM_BIT = 1.0
CAM_BIT = 2.0          # match line + comparator per bit
FLOP_BIT = 1.5
GATE = 6.0             # one gate-equivalent in bit units


@dataclass
class StructureCost:
    name: str
    area: float
    #: relative accesses per committed instruction
    access_rate: float
    #: energy per access, relative to area touched
    energy_per_access: float = 1.0

    @property
    def energy(self) -> float:
        return self.area * self.access_rate * self.energy_per_access


def baseline_inventory(config: CoreConfig = BIG) -> Dict[str, StructureCost]:
    """RBE inventory of the baseline core (caches included: the paper
    normalises against 'the OOO core' with its L1)."""
    inv: Dict[str, StructureCost] = {}

    def add(name, area, rate, epa=1.0):
        inv[name] = StructureCost(name, area, rate, epa)

    l1_bits = config.memory.l1_size * 8
    add("L1D cache", l1_bits * SRAM_BIT, 0.35, 0.08)
    add("L1I cache", l1_bits * SRAM_BIT, 1.0, 0.03)
    add("branch predictor", 16 * 1024 * 8 * SRAM_BIT, 1.0, 0.05)
    add("TLBs", 2 * 64 * 96 * CAM_BIT, 1.3, 0.2)
    # physical register files: int + vector, ~2x architectural
    add("register file",
        (64 * 32 + 48 * 128) * FLOP_BIT, 2.0, 0.3)
    add("ROB", config.rob_size * 80 * FLOP_BIT, 2.0, 0.2)
    add("LSQ", config.lsq_size * (48 * FLOP_BIT + 40 * CAM_BIT),
        0.4, 0.3)
    # baseline RSE: 2 source tags (CAM) + payload
    add("RSE", config.rse_size * (2 * 8 * CAM_BIT + 48 * FLOP_BIT),
        1.0, 0.4)
    # execution: integer ALUs ~8k gates; 128-bit SIMD ~35k; FP ~70k
    add("execute units",
        (config.alu_units * 8_000 + config.simd_units * 35_000
         + config.fp_units * 70_000) * GATE / 6.0, 1.0, 0.25)
    add("front end / rename", 80_000 * GATE / 6.0, 1.0, 0.3)
    return inv


def redsoc_additions(config: CoreConfig = BIG) -> Dict[str, StructureCost]:
    """The mechanism's hardware additions, costed the same way."""
    inv: Dict[str, StructureCost] = {}

    def add(name, area, rate, epa=1.0):
        inv[name] = StructureCost(name, area, rate, epa)

    # slack LUT: 14 buckets x 3-bit EX-TIME, read at decode
    add("slack LUT", 14 * 3 * SRAM_BIT + 30 * GATE, 1.0, 0.3)
    # width predictor: 4K entries x (2-bit class + 2-bit confidence)
    add("width predictor", 4096 * 4 * SRAM_BIT, 0.6, 0.1)
    # last-arrival predictor: 1K x 1 bit
    add("last-arrival predictor", 1024 * 1 * SRAM_BIT, 0.5, 0.1)
    # Operational RSE additions per entry: 10 bits (two 3-bit EX-TIMEs,
    # 3-bit CI, P/GP flag) + two 3-bit adders + muxes + comparator
    per_entry_bits = 10 * FLOP_BIT
    # two 3-bit ripple adders (~5 gates each), muxes and a 3-bit
    # comparator, in compact pass-gate logic
    per_entry_logic = (2 * 5 + 3 + 2) * GATE
    add("RSE slack fields",
        config.rse_size * (per_entry_bits + per_entry_logic), 1.0, 0.15)
    # CI bus: 3 extra bits alongside each destination tag broadcast
    add("CI bus", config.rse_size * 3 * CAM_BIT, 1.0, 0.2)
    # transparent-FF bypass muxes per EU input
    eus = config.alu_units + config.simd_units
    add("transparent-FF muxes", eus * 2 * 32 * GATE / 6.0, 1.0, 0.5)
    # skewed-selection mask logic
    add("skewed select", config.rse_size * 4 * GATE, 1.0, 0.2)
    return inv


@dataclass
class OverheadReport:
    """Relative costs of the additions vs the baseline core."""

    baseline_area: float
    added_area: float
    baseline_energy: float
    added_energy: float
    predictor_area_fraction: float
    rse_area_fraction: float
    rse_energy_fraction: float
    select_delay_ps: float = 3.0
    baseline_select_delay_ps: float = 100.0

    @property
    def area_fraction(self) -> float:
        return self.added_area / self.baseline_area

    @property
    def energy_fraction(self) -> float:
        return self.added_energy / self.baseline_energy


def overhead_report(config: CoreConfig = BIG) -> OverheadReport:
    """Compute the paper's overhead table for *config*."""
    base = baseline_inventory(config)
    extra = redsoc_additions(config)
    base_area = sum(s.area for s in base.values())
    base_energy = sum(s.energy for s in base.values())
    predictor_area = (extra["slack LUT"].area
                      + extra["width predictor"].area
                      + extra["last-arrival predictor"].area)
    rse_keys = ("RSE slack fields", "CI bus", "skewed select")
    rse_area = sum(extra[k].area for k in rse_keys)
    rse_energy = sum(extra[k].energy for k in rse_keys)
    return OverheadReport(
        baseline_area=base_area,
        added_area=sum(s.area for s in extra.values()),
        baseline_energy=base_energy,
        added_energy=sum(s.energy for s in extra.values()),
        predictor_area_fraction=predictor_area / base_area,
        rse_area_fraction=rse_area / base_area,
        rse_energy_fraction=rse_energy / base_energy,
    )
