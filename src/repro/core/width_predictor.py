"""Loh-style resetting-counter data-width predictor (Sec. II-B).

Width slack cannot be read off the instruction encoding: operand values
arrive only at execute, but ReDSOC needs the width at *decode* so the
slack LUT can be consulted and the EX-TIME written into the RSE.  The
paper adopts Loh's resetting confidence predictor:

* table indexed by instruction PC (default 4K entries, the paper's size);
* each entry holds the most recent observed width class and a k-bit
  confidence counter;
* **predict**: if confidence is saturated (``2^k - 1``), predict the
  stored class; otherwise predict the conservative maximum width;
* **update**: on a match increment (saturating); on a mismatch store the
  new class and reset the counter to zero.

Mispredictions split into *conservative* (predicted wider than actual —
lost recycling opportunity, no correctness issue) and *aggressive*
(predicted narrower — the scheduled EX-TIME was too small, so the
instruction must be squashed and selectively reissued, like a cache-miss
replay).  The resetting policy keeps aggressive errors in the paper's
0.1–0.6 % band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.semantics import width_bucket

#: Prediction classes are the same four width buckets the LUT uses.
MAX_WIDTH = 32


@dataclass
class WidthPredictorStats:
    """Counters for accuracy accounting (Sec. II-B overheads/accuracy)."""

    lookups: int = 0
    exact: int = 0
    conservative: int = 0
    aggressive: int = 0

    @property
    def aggressive_rate(self) -> float:
        return self.aggressive / self.lookups if self.lookups else 0.0

    @property
    def conservative_rate(self) -> float:
        return self.conservative / self.lookups if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        return self.exact / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    width_class: int = MAX_WIDTH
    confidence: int = 0


class WidthPredictor:
    """The resetting-counter predictor with a direct-mapped PC index."""

    def __init__(self, *, entries: int = 4096, confidence_bits: int = 2
                 ) -> None:
        if entries < 1 or confidence_bits < 1:
            raise ValueError("entries and confidence_bits must be >= 1")
        self.entries = entries
        self.max_confidence = (1 << confidence_bits) - 1
        self._table = [_Entry() for _ in range(entries)]
        self.stats = WidthPredictorStats()

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> int:
        """Predicted width class (8/16/24/32) for the instruction at *pc*.

        Conservative (= MAX_WIDTH) until the stored width has repeated
        enough times to saturate the confidence counter.
        """
        entry = self._table[self._index(pc)]
        if entry.confidence >= self.max_confidence:
            return entry.width_class
        return MAX_WIDTH

    def update(self, pc: int, actual_width: int) -> None:
        """Train with the width observed at execute.

        The observed width is quantised to its class first — predictions
        are at class granularity, so an 11-bit operand trains the 16-bit
        class.
        """
        actual_class = width_bucket(actual_width)
        entry = self._table[self._index(pc)]
        if entry.width_class == actual_class:
            entry.confidence = min(entry.confidence + 1,
                                   self.max_confidence)
        else:
            entry.width_class = actual_class
            entry.confidence = 0

    def record_outcome(self, predicted: int, actual_width: int) -> bool:
        """Account a completed prediction; returns True when aggressive.

        Aggressive = predicted class narrower than the actual operand
        needs → correctness hazard → the caller must replay.
        """
        actual_class = width_bucket(actual_width)
        self.stats.lookups += 1
        if predicted == actual_class:
            self.stats.exact += 1
            return False
        if predicted > actual_class:
            self.stats.conservative += 1
            return False
        self.stats.aggressive += 1
        return True

    def state_bytes(self) -> int:
        """Predictor storage, for the paper's 1.5 KB overhead claim."""
        # 2 bits width class + confidence bits per entry
        bits_per_entry = 2 + self.max_confidence.bit_length()
        return self.entries * bits_per_entry // 8
