"""PVT variation, critical-path monitors and LUT recalibration (Sec. V).

The paper's data-slack estimates are taken at the worst-case design
corner so they hold under any PVT (process/voltage/temperature)
condition; executing at nominal conditions adds extra *PVT slack* on
top.  To harvest it safely, the design places localised critical-path
monitors (CPMs) near the ALUs and bypass network and recalibrates the
slack LUT on the fly — the paper adopts Tribeca's 10 000-cycle tuning
granularity.

This module provides that machinery:

* :class:`PVTCondition` / :func:`delay_scale` — a first-order delay
  model in voltage and temperature,
* :class:`DriftScenario` — deterministic V/T trajectories (thermal
  ramps, voltage droop events) over simulated time,
* :class:`CriticalPathMonitor` — a CPM with quantised, slightly
  conservative sensing,
* :class:`PVTRecalibrator` — the periodic control loop that re-scales a
  :class:`~repro.core.slack_lut.SlackLUT`, and
* :func:`recalibration_report` — a window-by-window safety/efficiency
  analysis used by the PVT bench: *safe* means no LUT bucket ever
  under-estimates the true delay; *efficiency* measures how much of the
  true slack the sensed calibration retains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from .slack_lut import SlackLUT

#: nominal operating point
NOMINAL_VOLTAGE = 1.10
NOMINAL_TEMP_C = 60.0


@dataclass(frozen=True)
class PVTCondition:
    """One operating point."""

    voltage: float = NOMINAL_VOLTAGE
    temp_c: float = NOMINAL_TEMP_C
    #: slow/typical/fast process corner as a delay multiplier
    process: float = 1.0


def delay_scale(condition: PVTCondition) -> float:
    """Combinational-delay multiplier vs the nominal point.

    First-order alpha-power-law behaviour: delay grows as voltage drops
    (~1.4x per 20 % droop at this operating region) and increases
    ~0.1 %/°C with temperature, all on top of the process corner.
    """
    v_term = (NOMINAL_VOLTAGE / condition.voltage) ** 1.6
    t_term = 1.0 + 0.001 * (condition.temp_c - NOMINAL_TEMP_C)
    return condition.process * v_term * t_term


@dataclass
class DriftScenario:
    """A deterministic PVT trajectory over simulated cycles.

    Composes a thermal ramp (power-up heating that saturates), periodic
    voltage droop events (di/dt load steps), and a fixed process corner.
    """

    name: str = "nominal"
    process: float = 1.0
    ramp_temp_c: float = 25.0      # added °C at saturation
    ramp_tau_cycles: float = 2e5   # thermal time constant
    droop_period: int = 65_536     # cycles between droop events
    droop_depth_v: float = 0.05    # voltage dip at a droop
    droop_width: int = 2_048       # cycles a droop lasts

    def condition_at(self, cycle: int) -> PVTCondition:
        temp = (NOMINAL_TEMP_C + self.ramp_temp_c
                * (1.0 - math.exp(-cycle / self.ramp_tau_cycles)))
        voltage = NOMINAL_VOLTAGE
        if self.droop_period and (cycle % self.droop_period
                                  < self.droop_width):
            voltage -= self.droop_depth_v
        return PVTCondition(voltage=voltage, temp_c=temp,
                            process=self.process)

    def scale_at(self, cycle: int) -> float:
        return delay_scale(self.condition_at(cycle))


#: canned scenarios used by the bench and example
SCENARIOS: Dict[str, DriftScenario] = {
    "nominal": DriftScenario(name="nominal", droop_period=0),
    "thermal-ramp": DriftScenario(name="thermal-ramp", ramp_temp_c=40.0,
                                  droop_period=0),
    "droopy": DriftScenario(name="droopy", droop_depth_v=0.08),
    "slow-corner": DriftScenario(name="slow-corner", process=1.08),
    "fast-corner": DriftScenario(name="fast-corner", process=0.92,
                                 droop_period=0),
}


class CriticalPathMonitor:
    """A localised CPM: senses the current delay scale conservatively.

    Real CPMs report in quantised steps and are placed/margined so they
    never under-report the delay of the paths they guard; we model an
    additive guard band plus quantisation (always rounding up).
    """

    def __init__(self, *, quantum: float = 0.01,
                 guard_band: float = 0.01) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.guard_band = guard_band
        self.samples = 0

    def sense(self, true_scale: float) -> float:
        """Sensed (safe-side) delay scale for *true_scale*."""
        self.samples += 1
        padded = true_scale + self.guard_band
        return math.ceil(padded / self.quantum) * self.quantum


@dataclass
class RecalibrationEvent:
    """One control-loop firing."""

    cycle: int
    true_scale: float
    sensed_scale: float
    lut_ex_times: Dict[int, int]


class PVTRecalibrator:
    """Periodic CPM-driven LUT recalibration (Tribeca-style)."""

    def __init__(self, lut: SlackLUT, scenario: DriftScenario, *,
                 interval: int = 10_000,
                 cpm: CriticalPathMonitor = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.lut = lut
        self.scenario = scenario
        self.interval = interval
        self.cpm = cpm or CriticalPathMonitor()
        self.events: List[RecalibrationEvent] = []

    def tick(self, cycle: int) -> bool:
        """Advance to *cycle*; recalibrate when the window elapses."""
        if cycle % self.interval:
            return False
        true_scale = self.scenario.scale_at(cycle)
        sensed = self.cpm.sense(true_scale)
        self.lut.recalibrate_pvt(sensed)
        self.events.append(RecalibrationEvent(
            cycle=cycle, true_scale=true_scale, sensed_scale=sensed,
            lut_ex_times=dict(self.lut.buckets())))
        return True


def recalibration_report(scenario: DriftScenario, *,
                         cycles: int = 300_000,
                         interval: int = 10_000,
                         lut_factory: Callable[[], SlackLUT] = SlackLUT
                         ) -> Dict[str, float]:
    """Window-by-window safety/efficiency analysis of the control loop.

    For every recalibration window, a calibration is *safe* when the
    sensed scale covers the worst true scale seen inside the window
    (the LUT never promises more slack than the silicon has).  The
    *retained slack* fraction compares the sensed LUT's slack to an
    oracle continuously calibrated to the true scale.
    """
    reference = lut_factory()
    tracked = lut_factory()
    recal = PVTRecalibrator(tracked, scenario, interval=interval)
    unsafe_windows = 0
    windows = 0
    retained = 0.0
    full = tracked.tick_base.ticks_per_cycle
    for start in range(0, cycles, interval):
        recal.tick(start)
        windows += 1
        worst = max(scenario.scale_at(c)
                    for c in range(start, start + interval,
                                   max(1, interval // 8)))
        if recal.events[-1].sensed_scale < worst - 1e-9:
            unsafe_windows += 1
        reference.recalibrate_pvt(worst)
        sensed_slack = sum(full - t for t in tracked.buckets().values())
        true_slack = sum(full - t for t in reference.buckets().values())
        if true_slack:
            retained += min(1.0, sensed_slack / true_slack)
        else:
            retained += 1.0
    return {
        "windows": windows,
        "unsafe_windows": unsafe_windows,
        "retained_slack": retained / windows if windows else 1.0,
        "recalibrations": len(recal.events),
    }
