"""Pluggable simulation-backend registry.

The cycle model has one semantics and several implementations:

* ``reference`` — the per-cycle :meth:`CoreSimulator._step` loop, one
  cycle at a time, observability-friendly.  Slowest, simplest, the
  differential oracle every other backend is checked against.
* ``fast`` — the event-driven skip-ahead loop (PR 5); bit-identical to
  ``reference`` by construction and by CI.
* ``compiled`` — lowers the dynamic trace into flat parallel columns
  (:mod:`repro.core.lower`) and runs a config-specialized engine
  (:mod:`repro.core.compiled`).  Falls back to ``reference`` whenever
  an observer is attached (the compiled loop has no probe points).

Backends register a factory ``(trace, config, obs=None) -> runner``
where ``runner.run()`` returns a :class:`~repro.core.cpu.SimResult`.
Every engine must be *cycle-identical*: the backend-equivalence CI
matrix runs ``check_regression.py --exact-cycles`` once per engine and
fails on any diff, and :mod:`repro.verify` fuzzes engines against each
other nightly.  An engine is a performance choice, never a semantics
choice — which is why ``CoreConfig.engine`` is a plain string any
config path (campaign, serve, verify CLI) can thread through.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

#: factory signature: (trace, config, obs) -> object with .run()
EngineFactory = Callable[..., Any]


class EngineRegistry:
    """Name → backend-factory table with helpful failure modes."""

    def __init__(self) -> None:
        self._factories: Dict[str, EngineFactory] = {}

    def register(self, name: str, factory: EngineFactory) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"engine name must be a non-empty string, "
                             f"got {name!r}")
        self._factories[name] = factory

    def names(self) -> Tuple[str, ...]:
        """Registered backend names, registration order."""
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def create(self, name: str, trace, config, *, obs=None):
        """Instantiate the named backend for one simulation run."""
        factory = self._factories.get(name)
        if factory is None:
            raise ValueError(
                f"unknown engine {name!r}; choose from "
                f"{sorted(self._factories)}")
        return factory(trace, config, obs=obs)


#: process-global registry; :mod:`repro.core.cpu` populates it on import
ENGINES = EngineRegistry()

__all__ = ["ENGINES", "EngineFactory", "EngineRegistry"]
