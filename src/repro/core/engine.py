"""Pluggable simulation-backend registry.

The cycle model has one semantics and several implementations:

* ``reference`` — the per-cycle :meth:`CoreSimulator._step` loop, one
  cycle at a time, observability-friendly.  Slowest, simplest, the
  differential oracle every other backend is checked against.
* ``fast`` — the event-driven skip-ahead loop (PR 5); bit-identical to
  ``reference`` by construction and by CI.
* ``compiled`` — lowers the dynamic trace into flat parallel columns
  (:mod:`repro.core.lower`) and runs a config-specialized engine
  (:mod:`repro.core.compiled`).  Falls back to ``reference`` whenever
  an observer is attached (the compiled loop has no probe points).
* ``vector`` — NumPy columnar replay (:mod:`repro.core.vector`):
  decode, width-class and branch-resolution columns precomputed as
  whole-array gathers and memoized per trace, plus batch lanes
  (``simulate_batch``) that decode K independent jobs in one
  concatenated pass.  Same observer fallback as ``compiled``.

Backends register a factory ``(trace, config, obs=None) -> runner``
where ``runner.run()`` returns a :class:`~repro.core.cpu.SimResult`.
A backend may additionally register a *batch* entry point
``batch(items) -> [SimResult]`` taking ``(trace, config)`` pairs;
callers with many independent jobs probe :meth:`EngineRegistry.batch`
to amortize per-job setup (campaign runner, fuzz oracle, serve sweeps).
Every engine must be *cycle-identical*: the backend-equivalence CI
matrix runs ``check_regression.py --exact-cycles`` once per engine and
fails on any diff, and :mod:`repro.verify` fuzzes engines against each
other nightly.  An engine is a performance choice, never a semantics
choice — which is why ``CoreConfig.engine`` is a plain string any
config path (campaign, serve, verify CLI) can thread through.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

#: factory signature: (trace, config, obs) -> object with .run()
EngineFactory = Callable[..., Any]

#: batch signature: (items: [(trace, config)]) -> [SimResult]
BatchFactory = Callable[..., Any]


class EngineRegistry:
    """Name → backend-factory table with helpful failure modes."""

    def __init__(self) -> None:
        self._factories: Dict[str, EngineFactory] = {}
        self._batch: Dict[str, BatchFactory] = {}

    def register(self, name: str, factory: EngineFactory, *,
                 batch: Optional[BatchFactory] = None) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"engine name must be a non-empty string, "
                             f"got {name!r}")
        self._factories[name] = factory
        if batch is not None:
            self._batch[name] = batch
        else:
            self._batch.pop(name, None)

    def names(self) -> Tuple[str, ...]:
        """Registered backend names, registration order."""
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def _unknown(self, name: str) -> ValueError:
        return ValueError(
            f"unknown engine {name!r}; choose from "
            f"{sorted(self._factories)}")

    def create(self, name: str, trace, config, *, obs=None):
        """Instantiate the named backend for one simulation run."""
        factory = self._factories.get(name)
        if factory is None:
            raise self._unknown(name)
        return factory(trace, config, obs=obs)

    def batch(self, name: str) -> Optional[BatchFactory]:
        """The named backend's batch entry point, or ``None``.

        Returns a callable ``batch(items) -> [SimResult]`` over
        ``(trace, config)`` pairs when the backend supports batched
        replay; ``None`` means callers should loop single runs.
        Batch callables accept an optional ``lane_times`` keyword (a
        list receiving one per-lane replay wall-time per item) so
        callers can keep per-job telemetry meaningful.  Unknown names
        raise, same as :meth:`create`.
        """
        if name not in self._factories:
            raise self._unknown(name)
        return self._batch.get(name)


#: process-global registry; :mod:`repro.core.cpu` populates it on import
ENGINES = EngineRegistry()

__all__ = ["ENGINES", "BatchFactory", "EngineFactory", "EngineRegistry"]
