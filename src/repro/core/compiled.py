"""Compiled timing backend: the lowered-trace engine.

:class:`CompiledSimulator` replays a :class:`~repro.core.lower.LoweredTrace`
through the same pipeline semantics as
:class:`~repro.core.cpu.CoreSimulator` — same commit / schedule /
dispatch / fetch order, same wakeup and FU-reservation rules, same
predictors, same adaptive-threshold controller — but with every per-uop
object replaced by flat parallel lists indexed by sequence number and
every helper call inlined into one closure nest whose state lives in
fast locals/cells.  The ROB and fetch queue collapse to three integer
pointers (``commit <= dispatch <= fetch``) over the trace order; rename,
memory disambiguation and static decode were already done once by the
lowering pass.

The engine is **bit-identical** to the reference model by construction
and by CI: the backend-equivalence matrix runs ``--exact-cycles`` per
engine, the lowering unit tests compare full ``SimStats`` records, and
``repro.verify`` cross-fuzzes the engines nightly.  Anything
observability-related is absent on purpose — the engine registry routes
traced runs to the reference backend.

Correctness-critical deviations from a naive transcription (each proven
equivalent in :mod:`repro.core.lower`'s notes and pinned by tests):

* static producer lists are filtered for commit-liveness *at dispatch
  time* (before the watched-tag arity decision, which counts live
  sources only);
* static ``dependents`` lists include not-yet-dispatched consumers, so
  the notify and GP-candidate walks stop at the dispatch pointer;
* a load's static ``order_dep`` may already have committed where the
  dynamic model would have found no in-flight store — every use of a
  committed (hence issued) store is a no-op.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush

from repro.analysis.stats import HIGH_SLACK_FRACTION, SimStats
from repro.isa.opcodes import (
    ARITH_OPS,
    OpClass,
    Opcode,
    SIMD_ACCUMULATE_OPS,
    SIMD_SINGLE_CYCLE_OPS,
)
from repro.isa.semantics import width_bucket
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.trace import Trace
from repro.pipeline.uop import OPCLASS_INDEX

from .config import CoreConfig, RecycleMode, SchedulerDesign
from .lower import LoweredTrace, lower_trace
from .slack_lut import SlackLUT
from .ticks import TickBase

_I_ALU = OPCLASS_INDEX[OpClass.ALU]
_I_SIMD = OPCLASS_INDEX[OpClass.SIMD]
_I_MUL = OPCLASS_INDEX[OpClass.MUL]
_I_DIV = OPCLASS_INDEX[OpClass.DIV]
_I_FP = OPCLASS_INDEX[OpClass.FP]
_I_LOAD = OPCLASS_INDEX[OpClass.LOAD]
_I_STORE = OPCLASS_INDEX[OpClass.STORE]
_I_BRANCH = OPCLASS_INDEX[OpClass.BRANCH]
_I_NOP = OPCLASS_INDEX[OpClass.NOP]
_I_HALT = OPCLASS_INDEX[OpClass.HALT]

#: select-lane order — the ExecutionResources pools insertion order
_LANE_ORDER = (_I_ALU, _I_SIMD, _I_FP, _I_LOAD, _I_STORE, _I_MUL,
               _I_DIV, _I_BRANCH)

_WIDTH_CLASSES = (8, 16, 24, 32)


def _decode_static(instr, config: CoreConfig, lut: SlackLUT,
                   tpc: int) -> tuple:
    """(transparent, latency, static EX-TIME, width-dynamic?) — the
    exact :meth:`CoreSimulator._decode_static` table."""
    op = instr.op
    cls = instr.cls
    transparent = config.mode is not RecycleMode.BASELINE
    if cls is OpClass.ALU:
        if op in ARITH_OPS:
            return (transparent, 1, 0, True)
        return (transparent, 1, lut.ex_time(instr), False)
    if cls is OpClass.SIMD:
        if op in SIMD_SINGLE_CYCLE_OPS:
            return (transparent, 1, lut.ex_time(instr), False)
        if op in SIMD_ACCUMULATE_OPS:
            return (transparent, config.simd_multicycle_latency,
                    lut.ex_time(instr), False)
        return (False, config.simd_multicycle_latency, tpc, False)
    if cls is OpClass.MUL:
        return (False, config.mul_latency, tpc, False)
    if cls is OpClass.DIV:
        return (False, config.div_latency, tpc, False)
    if cls is OpClass.FP:
        return (False, config.fdiv_latency if op is Opcode.FDIV
                else config.fp_latency, tpc, False)
    return (False, 1, tpc, False)


class CompiledSimulator:
    """One compiled-backend run over one trace (single-use object)."""

    def __init__(self, trace: Trace, config: CoreConfig) -> None:
        self.trace = trace
        self.config = config

    # The whole simulation is one function on purpose: every piece of
    # mutable state is a closure cell, every constant a local, and the
    # per-issue critical path runs without a single attribute lookup.
    def run(self):                                      # noqa: C901
        from .cpu import SimResult

        trace = self.trace
        config = self.config
        low: LoweredTrace = lower_trace(trace)
        n = low.n

        base = TickBase(config.ticks_per_cycle, config.tech)
        lut = SlackLUT(base, pvt_scale=config.pvt_scale)
        mem = MemoryHierarchy(config.memory)
        load_latency = mem.load_latency
        store_latency = mem.store_latency

        # -- baked config constants ------------------------------------
        TPC = base.ticks_per_cycle
        FRONT = config.front_width
        QUEUE_CAP = 2 * FRONT
        ROB_SIZE = config.rob_size
        RSE_SIZE = config.rse_size
        LSQ_SIZE = config.lsq_size
        MISPRED_PEN = config.mispredict_penalty
        REPLAY_PEN = config.replay_penalty
        TAKEN_PER_CYCLE = config.taken_branches_per_cycle
        L1_LAT = config.memory.l1_latency
        IS_MOS = config.mode is RecycleMode.MOS
        DO_GP = (config.mode is not RecycleMode.BASELINE
                 and config.eager_issue)
        SKEWED = config.skewed_select
        SPARE = config.eager_spare_units
        ADAPTIVE = (config.adaptive_threshold
                    and config.mode is RecycleMode.REDSOC)
        WINDOW = config.threshold_window
        WATCH_ALL = (config.mode is RecycleMode.BASELINE
                     or config.scheduler is SchedulerDesign.ILLUSTRATIVE)

        # -- static instruction table (decode hoisted out of dispatch) -
        n_static = len(low.instrs)
        s_transp = [False] * n_static
        s_lat = [1] * n_static
        s_ex = [0] * n_static
        s_arith = [False] * n_static
        s_exwc = [None] * n_static      # arith: EX-TIME per width class
        for si, instr in enumerate(low.instrs):
            t, latency, ex, arith = _decode_static(instr, config, lut, TPC)
            s_transp[si] = t
            s_lat[si] = latency
            s_ex[si] = ex
            s_arith[si] = arith
            if arith:
                s_exwc[si] = tuple(lut.ex_time(instr, w)
                                   for w in _WIDTH_CLASSES)

        # -- per-entry columns as plain lists --------------------------
        sidx = low.static_idx.tolist()
        pcs = low.pc.tolist()
        widths = low.op_width.tolist()
        addrs = low.mem_addr.tolist()
        sizes = low.mem_size.tolist()
        clsi = low.cls_idx.tolist()
        takens = list(low.taken)
        stores_f = list(low.is_store)
        condbr = list(low.is_cond_branch)
        odeps = low.order_dep.tolist()
        producers = low.producers
        dependents = low.dependents

        transp = [s_transp[si_] for si_ in sidx]
        lat = [s_lat[si_] for si_ in sidx]
        ex = [s_ex[si_] for si_ in sidx]
        arith = [s_arith[si_] for si_ in sidx]
        wb = [0] * n                  # width bucket (arith entries only)
        actual_ex = ex[:]
        for i in range(n):
            if arith[i]:
                b = width_bucket(widths[i])
                wb[i] = b
                actual_ex[i] = s_exwc[sidx[i]][(b >> 3) - 1]

        # -- per-seq dynamic state -------------------------------------
        state = bytearray(n)          # 0 DISPATCHED / 1 ISSUED / 2 COMMITTED
        in_ready = bytearray(n)
        replayed = bytearray(n)
        la_app = bytearray(n)
        width_app = bytearray(n)
        sec_pred = bytearray(n)
        mem_hl = bytearray(n)
        issue_c = [-1] * n
        done_c = [-1] * n
        eligible = [-1] * n
        start_t = [0] * n
        end_t = [0] * n
        avail_t = [0] * n
        sync_t = [0] * n
        pred_w = [32] * n
        chain = [-1] * n
        srcs = [()] * n               # live producers, set at dispatch
        waiting = [None] * n          # set[int], set at dispatch

        # -- machine state ---------------------------------------------
        C = 0                         # ROB head (next to commit)
        D = 0                         # next to dispatch (ROB tail + 1)
        F = 0                         # next to fetch
        rs_used = 0
        lsq_used = 0
        committed = 0
        fetch_resume = 0
        blocked = -1                  # seq fetch is blocked on (-1 none)
        live_stores = []              # issued, uncommitted store seqs

        # ready queues (seq-sorted per class, lazy tombstones)
        queues = [[] for _ in range(len(OPCLASS_INDEX))]
        dead = [0] * len(OPCLASS_INDEX)
        live_total = 0
        wake_at = {}
        wake_heap = []

        # FU pools: per-class busy dicts with baked unit counts
        counts = [0] * len(OPCLASS_INDEX)
        counts[_I_ALU] = config.alu_units
        counts[_I_SIMD] = config.simd_units
        counts[_I_FP] = config.fp_units
        counts[_I_LOAD] = config.mem_ports
        counts[_I_STORE] = config.mem_ports
        counts[_I_MUL] = config.complex_units
        counts[_I_DIV] = config.complex_units
        counts[_I_BRANCH] = config.branch_units
        busies = [{} for _ in range(len(OPCLASS_INDEX))]
        lanes = tuple((idx, counts[idx], busies[idx], queues[idx])
                      for idx in _LANE_ORDER)

        # predictors, inlined as plain tables
        w_class = [32] * 4096
        w_conf = [0] * 4096
        w_lookups = w_exact = w_cons = w_aggr = 0
        la_tab = [True] * 1024
        la_n = la_wrong = 0
        br_counters = [2] * 4096
        br_hist = 0
        br_n = br_wrong = 0

        # transparent-sequence chains
        chain_len = []

        # adaptive-threshold controller
        threshold = config.slack_threshold
        probe_plan = []
        probe_results = []
        window_start_committed = 0
        exploit_left = 0

        # stats counters
        st_cycles = 0
        st_fu_stall = 0
        st_dispatch_stall = 0
        st_recycled = 0
        st_eager = 0
        st_holds = 0
        st_la_replays = 0
        st_width_replays = 0
        st_gp_mispec = 0
        st_wasted_gp = 0
        d_memhl = d_memll = d_simd = d_multi = d_aluls = d_aluhs = 0

        HSF = HIGH_SLACK_FRACTION

        # ---------------------------------------------------------------
        # wakeup plumbing
        # ---------------------------------------------------------------

        def schedule_wake(s, c):
            b = wake_at.get(c)
            if b is None:
                wake_at[c] = [s]
                heappush(wake_heap, c)
            else:
                b.append(s)

        def advance_to(cycle):
            nonlocal live_total
            while wake_heap and wake_heap[0] <= cycle:
                for s in wake_at.pop(heappop(wake_heap)):
                    if state[s] or in_ready[s]:
                        continue
                    idx = clsi[s]
                    q = queues[idx]
                    pos = bisect_left(q, s)
                    if pos < len(q) and q[pos] == s:
                        dead[idx] -= 1
                    else:
                        q.insert(pos, s)
                    in_ready[s] = 1
                    live_total += 1

        def compact(idx):
            q = queues[idx]
            q[:] = [s for s in q if in_ready[s] and not state[s]]
            dead[idx] = 0

        def remove_ready(s):
            nonlocal live_total
            if in_ready[s]:
                in_ready[s] = 0
                dead[clsi[s]] += 1
                live_total -= 1

        # ---------------------------------------------------------------
        # issue
        # ---------------------------------------------------------------

        def notify_dependents(s, cycle, p_avail, p_sync):
            p_trans = transp[s]
            floor = cycle + 1
            for d in dependents[s]:
                if d >= D:
                    break               # not yet dispatched (lists ascend)
                w = waiting[d]
                if w is None or s not in w:
                    continue
                w.discard(s)
                a = p_avail if p_trans and transp[d] else p_sync
                wk = a // TPC - lat[d]
                if wk < floor:
                    wk = floor
                e = eligible[d]
                if e < 0 or wk > e:
                    eligible[d] = e = wk
                if not w:
                    schedule_wake(d, e if e > floor else floor)

        def finish(s, cycle, start, end, avail, sync, extra, recycled,
                   eager):
            nonlocal rs_used, fetch_resume, blocked, st_holds, st_eager, \
                st_recycled
            state[s] = 1
            issue_c[s] = cycle
            start_t[s] = start
            end_t[s] = end
            avail_t[s] = avail
            sync_t[s] = sync
            done_c[s] = sync // TPC
            if extra:
                st_holds += 1
            if eager:
                st_eager += 1
            if transp[s]:
                if recycled:
                    st_recycled += 1
                    pid = -1
                    for p in srcs[s]:
                        if transp[p] and avail_t[p] == start:
                            pid = chain[p]
                            break
                    if pid >= 0:
                        chain_len[pid] += 1
                        chain[s] = pid
                    else:
                        chain_len.append(1)
                        chain[s] = len(chain_len) - 1
                else:
                    chain_len.append(1)
                    chain[s] = len(chain_len) - 1
            rs_used -= 1
            remove_ready(s)
            if s == blocked:
                fetch_resume = cycle + lat[s] + MISPRED_PEN
                blocked = -1
            notify_dependents(s, cycle, avail, sync)

        def train_predictors(s):
            nonlocal w_lookups, w_exact, w_cons, w_aggr, la_n, la_wrong
            if width_app[s]:
                w_lookups += 1
                actual = wb[s]
                predicted = pred_w[s]
                if predicted == actual:
                    w_exact += 1
                elif predicted > actual:
                    w_cons += 1
                else:
                    w_aggr += 1
                e = pcs[s] % 4096
                if w_class[e] == actual:
                    c = w_conf[e] + 1
                    w_conf[e] = c if c < 3 else 3
                else:
                    w_class[e] = actual
                    w_conf[e] = 0
            if la_app[s]:
                ss = srcs[s]
                if len(ss) >= 2:
                    la_n += 1
                    c1 = issue_c[ss[0]]
                    c2 = issue_c[ss[1]]
                    if c1 != c2:
                        second_last = c2 > c1
                        if bool(sec_pred[s]) != second_last:
                            la_wrong += 1
                        la_tab[pcs[s] % 1024] = second_last

        def try_issue(s, cycle, eager):
            """0 = issued, 1 = stall, 2 = replayed."""
            nonlocal st_la_replays, st_width_replays
            latency = lat[s]
            arrival = cycle + latency
            ci = clsi[s]
            busy = busies[ci]
            cnt = counts[ci]
            ss = srcs[s]

            unissued = [p for p in ss
                        if state[p] != 2 and issue_c[p] < 0]
            if ci == _I_LOAD:
                od = odeps[s]
                if od >= 0 and issue_c[od] < 0:
                    unissued.append(od)
            if unissued:
                # woke off the wrong (predicted-last) tag: reissue later
                replayed[s] = 1
                if la_app[s]:
                    st_la_replays += 1
                waiting[s] = set(unissued)
                eligible[s] = cycle + 1
                remove_ready(s)
                nb = busy.get(arrival, 0)       # the grant burnt a slot
                if nb < cnt:
                    busy[arrival] = nb + 1
                return 2

            if ci == _I_LOAD:
                nb = busy.get(arrival, 0)
                if nb >= cnt:
                    return 1
                busy[arrival] = nb + 1
                addr_avail = 0
                for p in ss:
                    if state[p] != 2:
                        a = sync_t[p]           # a load is synchronous
                        if a > addr_avail:
                            addr_avail = a
                addr_cycle = (addr_avail + TPC - 1) // TPC
                if addr_cycle < arrival:
                    addr_cycle = arrival
                latency_m = load_latency(addrs[s], pcs[s])
                mem_hl[s] = 1 if latency_m > L1_LAT else 0
                lo = addrs[s]
                hi = lo + sizes[s]
                fwd = -1
                for f in reversed(live_stores):
                    if f > s:
                        continue
                    s_lo = addrs[f]
                    if s_lo < hi and lo < s_lo + sizes[f]:
                        fwd = f
                        break
                if fwd >= 0:
                    dc = done_c[fwd]
                    data_cycle = (dc if dc > 0 else 0) + 1
                    if data_cycle < addr_cycle + 1:
                        data_cycle = addr_cycle + 1
                else:
                    data_cycle = addr_cycle + latency_m
                edge = data_cycle * TPC
                finish(s, cycle, addr_cycle * TPC, edge, edge, edge,
                       False, False, False)
                return 0

            if ci == _I_STORE:
                nb = busy.get(arrival, 0)
                if nb >= cnt:
                    return 1
                busy[arrival] = nb + 1
                edge = arrival * TPC
                finish(s, cycle, edge, edge + TPC, edge, edge,
                       False, False, False)
                live_stores.append(s)
                return 0

            # generic FU path (ALU / SIMD / MUL / DIV / FP / BRANCH)
            t = transp[s]
            source_avail = 0
            for p in ss:
                if state[p] != 2:
                    a = avail_t[p] if t and transp[p] else sync_t[p]
                    if a > source_avail:
                        source_avail = a
            cycle_start = arrival * TPC
            if t:
                start = (source_avail if source_avail > cycle_start
                         else cycle_start)
            else:
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cycle_start else cycle_start
            ext = ex[s]
            end = start + ext
            sync = ((end + TPC - 1) // TPC) * TPC
            extra = end > (start // TPC + 1) * TPC
            recycled = start % TPC != 0
            if IS_MOS and recycled and extra:
                # MOS cannot cross a clock edge: normal edge start
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cycle_start else cycle_start
                end = start + ext
                sync = ((end + TPC - 1) // TPC) * TPC
                extra = end > (start // TPC + 1) * TPC
                recycled = start % TPC != 0

            if start >= cycle_start + TPC:
                # an (unwatched but issued) operand lands after our window
                replayed[s] = 1
                if la_app[s]:
                    st_la_replays += 1
                la_avail = 0
                for p in ss:
                    if state[p] != 2:
                        a = avail_t[p] if t and transp[p] else sync_t[p]
                        if a > la_avail:
                            la_avail = a
                remove_ready(s)
                wk = la_avail // TPC - 1
                nxt = cycle + 1
                schedule_wake(s, wk if wk > nxt else nxt)
                nb = busy.get(arrival, 0)
                if nb < cnt:
                    busy[arrival] = nb + 1
                return 2

            if width_app[s] and wb[s] > pred_w[s]:
                # aggressive width mispredict: conservative re-execution
                arr2 = arrival + REPLAY_PEN
                cs2 = arr2 * TPC
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cs2 else cs2
                end = start + actual_ex[s]
                sync = ((end + TPC - 1) // TPC) * TPC
                extra = end > (start // TPC + 1) * TPC
                recycled = start % TPC != 0
                st_width_replays += 1

            occupy = start // TPC
            if extra and (busy.get(occupy, 0) >= cnt
                          or busy.get(occupy + 1, 0) >= cnt):
                # 2-cycle hold unaffordable: opaque edge-aligned start
                cs2 = arrival * TPC
                edge = ((source_avail + TPC - 1) // TPC) * TPC
                start = edge if edge > cs2 else cs2
                end = start + ext
                sync = ((end + TPC - 1) // TPC) * TPC
                extra = end > (start // TPC + 1) * TPC
                recycled = start % TPC != 0
                occupy = start // TPC
            nb = busy.get(occupy, 0)
            if nb >= cnt:
                return 1
            if extra:
                mb = busy.get(occupy + 1, 0)
                if mb >= cnt:
                    return 1
                busy[occupy + 1] = mb + 1
            busy[occupy] = nb + 1

            train_predictors(s)
            finish(s, cycle, start, end, end, sync, extra, recycled,
                   eager)
            return 0

        # ---------------------------------------------------------------
        # schedule (select lanes + eager-grandparent phase)
        # ---------------------------------------------------------------

        def gp_candidates(cycle, issued_now):
            seen = set()
            candidates = []
            for parent in issued_now:
                if not transp[parent] or replayed[parent]:
                    continue
                p_end = end_t[parent]
                arrival_end = (start_t[parent] // TPC + 1) * TPC
                if p_end >= arrival_end:
                    continue
                ci_ticks = p_end % TPC
                p_lat = lat[parent]
                for child in dependents[parent]:
                    if child >= D:
                        break
                    if (child in seen or state[child]
                            or issue_c[child] >= 0 or not transp[child]
                            or lat[child] != p_lat):
                        continue
                    if IS_MOS:
                        if p_end + ex[child] > arrival_end:
                            continue
                    elif ci_ticks > threshold:
                        continue
                    deadline = (cycle + lat[child] + 1) * TPC
                    ok = True
                    for p in srcs[child]:
                        if state[p] == 2:
                            continue
                        if issue_c[p] < 0:
                            ok = False
                            break
                        a = (avail_t[p] if transp[p] and transp[child]
                             else sync_t[p])
                        if a >= deadline:
                            ok = False
                            break
                    if not ok:
                        continue
                    seen.add(child)
                    candidates.append(child)
            candidates.sort()
            return candidates

        def schedule(cycle):
            nonlocal st_fu_stall, st_gp_mispec, st_wasted_gp
            issued_now = []
            stalled = False
            for idx, cnt, busy, q in lanes:
                if dead[idx] > 8:
                    compact(idx)
                if not q:
                    continue
                for s in q:
                    if not in_ready[s]:
                        continue
                    if cnt <= busy.get(cycle + lat[s], 0):
                        stalled = True
                        break
                    r = try_issue(s, cycle, False)
                    if r == 0:
                        issued_now.append(s)
                    elif r == 1:
                        stalled = True
                        break
            if DO_GP and issued_now:
                for child in gp_candidates(cycle, issued_now):
                    idx = clsi[child]
                    busy = busies[idx]
                    cnt = counts[idx]
                    if (cnt - busy.get(cycle + 1, 0) <= SPARE
                            or cnt - busy.get(cycle + 2, 0) <= SPARE):
                        continue
                    if SKEWED:
                        try_issue(child, cycle, True)
                    else:
                        q = queues[idx]
                        for u in q:
                            if not (in_ready[u] and not state[u]):
                                compact(idx)
                                break
                        older_pending = any(u < child for u in q)
                        r = try_issue(child, cycle, True)
                        if r == 0 and older_pending:
                            st_gp_mispec += 1
                            st_wasted_gp += 1
            if stalled:
                st_fu_stall += 1

        # ---------------------------------------------------------------
        # dispatch (rename/allocate — decode was hoisted into lowering)
        # ---------------------------------------------------------------

        def dispatch(cycle):
            nonlocal D, rs_used, lsq_used, st_dispatch_stall
            count = 0
            stalled = False
            nxt = cycle + 1
            while F > D and count < FRONT:
                i = D
                if D - C >= ROB_SIZE:
                    stalled = True
                    break
                ci = clsi[i]
                if ci != _I_NOP and ci != _I_HALT and rs_used >= RSE_SIZE:
                    stalled = True
                    break
                if (ci == _I_LOAD or ci == _I_STORE) \
                        and lsq_used >= LSQ_SIZE:
                    stalled = True
                    break
                D += 1
                count += 1

                if arith[i]:
                    e = pcs[i] % 4096
                    p_w = w_class[e] if w_conf[e] >= 3 else 32
                    width_app[i] = 1
                    pred_w[i] = p_w
                    ex[i] = s_exwc[sidx[i]][(p_w >> 3) - 1]

                live = [p for p in producers[i] if state[p] != 2]
                srcs[i] = live

                if ci == _I_LOAD or ci == _I_STORE:
                    lsq_used += 1

                if WATCH_ALL or not transp[i] or len(live) != 2:
                    watched = live
                else:
                    sp = la_tab[pcs[i] % 1024]
                    la_app[i] = 1
                    sec_pred[i] = 1 if sp else 0
                    watched = [live[1] if sp else live[0]]
                w = {p for p in watched if issue_c[p] < 0}
                waiting[i] = w
                od = odeps[i]
                if od >= 0 and issue_c[od] < 0:
                    w.add(od)

                if ci == _I_NOP or ci == _I_HALT:
                    state[i] = 1
                    issue_c[i] = cycle
                    done_c[i] = cycle
                    continue
                rs_used += 1

                wake = nxt
                li = lat[i]
                t = transp[i]
                for p in watched:
                    pi = issue_c[p]
                    if pi >= 0:
                        a = avail_t[p] if transp[p] and t else sync_t[p]
                        w2 = a // TPC - li
                        if w2 <= pi:
                            w2 = pi + 1
                        if w2 > wake:
                            wake = w2
                if od >= 0:
                    pi = issue_c[od]
                    if pi >= 0:
                        w2 = sync_t[od] // TPC - li
                        if w2 <= pi:
                            w2 = pi + 1
                        if w2 > wake:
                            wake = w2
                eligible[i] = wake
                if not w:
                    schedule_wake(i, wake)
            if stalled:
                st_dispatch_stall += 1

        # ---------------------------------------------------------------
        # fetch
        # ---------------------------------------------------------------

        def fetch(cycle):
            nonlocal F, blocked, br_hist, br_n, br_wrong
            fetched = 0
            taken_seen = 0
            while F < n and fetched < FRONT and F - D < QUEUE_CAP:
                i = F
                F += 1
                fetched += 1
                if clsi[i] == _I_BRANCH:
                    t = takens[i]
                    if condbr[i]:
                        g = (pcs[i] ^ br_hist) % 4096
                        c = br_counters[g]
                        predicted = c >= 2
                        if t:
                            if c < 3:
                                br_counters[g] = c + 1
                        elif c > 0:
                            br_counters[g] = c - 1
                        br_hist = ((br_hist << 1) | t) & 4095
                        br_n += 1
                        if predicted != bool(t):
                            br_wrong += 1
                            blocked = i
                            break
                    if t:
                        taken_seen += 1
                        if taken_seen > TAKEN_PER_CYCLE:
                            break

        # ---------------------------------------------------------------
        # commit
        # ---------------------------------------------------------------

        def commit(cycle):
            nonlocal C, committed, lsq_used, d_memhl, d_memll, d_simd, \
                d_multi, d_aluls, d_aluhs
            width = FRONT
            done = 0
            while C < D and done < width:
                s = C
                if state[s] != 1:
                    break
                dc = done_c[s]
                if dc < 0 or dc > cycle:
                    break
                ci = clsi[s]
                if stores_f[s]:
                    latency = store_latency(addrs[s], pcs[s])
                    mem_hl[s] = 1 if latency > L1_LAT else 0
                    if s in live_stores:
                        live_stores.remove(s)
                if ci == _I_LOAD or ci == _I_STORE:
                    lsq_used -= 1
                    if mem_hl[s]:
                        d_memhl += 1
                    else:
                        d_memll += 1
                elif ci == _I_SIMD:
                    d_simd += 1
                elif ci == _I_MUL or ci == _I_DIV or ci == _I_FP:
                    d_multi += 1
                elif ci == _I_ALU:
                    if 1.0 - actual_ex[s] / TPC > HSF:
                        d_aluhs += 1
                    else:
                        d_aluls += 1
                state[s] = 2
                C += 1
                committed += 1
                done += 1

        # ---------------------------------------------------------------
        # adaptive-threshold controller
        # ---------------------------------------------------------------

        def adapt_threshold():
            nonlocal threshold, window_start_committed, exploit_left, \
                probe_plan, probe_results
            done = committed - window_start_committed
            window_start_committed = committed
            probe_results.append((done, threshold))
            if probe_plan:
                threshold = probe_plan.pop(0)
                return
            if len(probe_results) > 1:
                threshold = max(probe_results)[1]
                probe_results = []
                exploit_left = 20
                return
            probe_results = []
            exploit_left -= 1
            if exploit_left <= 0:
                grid = sorted({0, TPC // 4, TPC // 2, 3 * TPC // 4,
                               TPC - 1})
                probe_plan = [t for t in grid if t != threshold]
                probe_results = [(done, threshold)]
                threshold = probe_plan.pop(0)

        # ---------------------------------------------------------------
        # main event-driven loop (mirrors CoreSimulator._run_fast)
        # ---------------------------------------------------------------

        limit = 200 * n + 100_000
        cycle = 0
        while committed < n:
            if wake_heap and wake_heap[0] <= cycle:
                advance_to(cycle)
            if C < D:
                commit(cycle)
            if live_total:
                schedule(cycle)
            if F > D:
                dispatch(cycle)
            if (blocked < 0 and cycle >= fetch_resume and F < n
                    and F - D < QUEUE_CAP):
                fetch(cycle)
            st_cycles += 1
            if cycle and not cycle & 4095:
                for busy in busies:
                    for c in [c for c in busy if c < cycle]:
                        del busy[c]
            if ADAPTIVE and cycle and not cycle % WINDOW:
                adapt_threshold()
            cycle += 1
            if cycle > limit:
                raise RuntimeError(
                    f"simulation wedged: {committed}/{n} committed "
                    f"after {cycle} cycles (trace {trace.name!r})")
            if committed >= n:
                break

            # -- skip-ahead: is the machine provably idle at `cycle`? --
            if live_total:
                continue
            head_done = None
            if C < D and state[C] == 1:
                hd = done_c[C]
                if hd >= 0:
                    if hd <= cycle:
                        continue
                    head_done = hd
            can_fetch = (blocked < 0 and F < n and F - D < QUEUE_CAP)
            if can_fetch and fetch_resume <= cycle:
                continue
            if F > D:
                ci = clsi[D]
                if not (D - C >= ROB_SIZE
                        or (ci != _I_NOP and ci != _I_HALT
                            and rs_used >= RSE_SIZE)
                        or ((ci == _I_LOAD or ci == _I_STORE)
                            and lsq_used >= LSQ_SIZE)):
                    continue
            target = wake_heap[0] if wake_heap else None
            if head_done is not None and (target is None
                                          or head_done < target):
                target = head_done
            if can_fetch and (target is None or fetch_resume < target):
                target = fetch_resume
            if target is None or target <= cycle:
                continue
            if ADAPTIVE:
                rem = cycle % WINDOW
                boundary = cycle - rem + (WINDOW if rem or not cycle
                                          else 0)
                if boundary < target:
                    target = boundary
            rem = cycle & 4095
            boundary = cycle - rem + (4096 if rem or not cycle else 0)
            if boundary < target:
                target = boundary
            if target > cycle:
                skipped = target - cycle
                st_cycles += skipped
                if F > D:
                    st_dispatch_stall += skipped
                cycle = target

        # ---------------------------------------------------------------
        # finalize (mirrors CoreSimulator._finalize via the registry)
        # ---------------------------------------------------------------

        stats = SimStats()
        stats.cycles = st_cycles
        stats.committed = committed
        stats.recycled_ops = st_recycled
        stats.eager_issues = st_eager
        stats.two_cycle_holds = st_holds
        stats.fu_stall_cycles = st_fu_stall
        stats.dispatch_stall_cycles = st_dispatch_stall
        stats.gp_mispeculations = st_gp_mispec
        stats.wasted_gp_grants = st_wasted_gp
        stats.la_replays = st_la_replays
        stats.width_replays = st_width_replays
        dist = stats.distribution.counts
        dist["MEM-HL"] = d_memhl
        dist["MEM-LL"] = d_memll
        dist["SIMD"] = d_simd
        dist["OtherMulti"] = d_multi
        dist["ALU-LS"] = d_aluls
        dist["ALU-HS"] = d_aluhs

        m = MetricsRegistry()
        m.gauge("predict.width.aggressive_rate").set(
            w_aggr / w_lookups if w_lookups else 0.0)
        m.gauge("predict.width.accuracy").set(
            w_exact / w_lookups if w_lookups else 0.0)
        m.gauge("predict.la.misprediction_rate").set(
            la_wrong / la_n if la_n else 0.0)
        m.gauge("predict.la.predictions").set(la_n)
        m.gauge("predict.la.mispredictions").set(la_wrong)
        total_len = sum(chain_len)
        m.gauge("seq.expected_length").set(
            sum(x * x for x in chain_len) / total_len if total_len
            else 0.0)
        m.gauge("seq.mean_length").set(
            total_len / len(chain_len) if chain_len else 0.0)
        m.gauge("seq.count").set(len(chain_len))
        m.gauge("front.branches").set(br_n)
        m.gauge("front.branch_mispredicts").set(br_wrong)
        stats.populate_from(m)
        stats.export_counters(m)
        m.gauge("core.ipc").set(stats.ipc)
        return SimResult(name=trace.name, config=config, stats=stats)


__all__ = ["CompiledSimulator"]
