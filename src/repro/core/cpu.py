"""Cycle-level out-of-order core with ReDSOC slack recycling.

:class:`CoreSimulator` replays a dynamic :class:`~repro.pipeline.trace.Trace`
through the Table-I pipeline structures at cycle + 1/8-cycle resolution.
Per simulated cycle it performs, in order:

1. **commit** — in-order retirement from the ROB head (stores drain to
   the cache hierarchy here);
2. **schedule** — wakeup/select: a conventional oldest-first pass per FU
   class (phase P), then the Eager-Grandparent pass (phase GP) that
   issues children *in the same cycle as their parents* to recycle slack
   (skewed selection: GP grants only consume units left over by
   conventional requests — Sec. IV-D);
3. **dispatch** — rename (RAT), ROB/RS/LSQ allocation, slack-LUT read and
   width prediction (decode-side work is folded in here);
4. **fetch** — trace-ordered fetch with gshare prediction; mispredicted
   conditional branches block fetch until they resolve plus the redirect
   penalty.

The same engine runs all three modes (BASELINE / REDSOC / MOS) and all
ablations (illustrative vs operational RSE, skewed vs plain selection,
slack threshold, CI precision), so comparisons differ *only* in the
mechanism under test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.stats import HIGH_SLACK_FRACTION, SimStats
from repro.obs.events import Event, EventKind
from repro.obs.metrics import MetricsRegistry
from repro.isa.opcodes import (
    ARITH_OPS,
    Cond,
    OpClass,
    Opcode,
    SIMD_ACCUMULATE_OPS,
    SIMD_SINGLE_CYCLE_OPS,
)
from repro.isa.program import Program
from repro.isa.semantics import width_bucket
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.branch import GsharePredictor
from repro.pipeline.resources import ExecutionResources
from repro.pipeline.trace import Trace, TraceEntry, generate_trace
from repro.pipeline.uop import OPCLASS_INDEX, Uop, UopState

from .config import CoreConfig, RecycleMode, SchedulerDesign
from .engine import ENGINES
from .last_arrival import LastArrivalPredictor
from .scheduler import (
    ReadyQueues,
    constraining_parent,
    consumer_avail_tick,
    eager_issue_allowed,
    last_source_avail,
    other_sources_ready,
    unissued_sources,
    wake_cycle,
)
from .slack_lut import SlackLUT
from .ticks import TickBase
from .transparent import ExecTiming, SequenceTracker, resolve_execution
from .width_predictor import WidthPredictor


@dataclass
class SimResult:
    """Outcome of one timing simulation."""

    name: str
    config: CoreConfig
    stats: SimStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class CoreSimulator:
    """One core simulating one trace (single-use object)."""

    def __init__(self, trace: Trace, config: CoreConfig, *,
                 obs=None, force_step: bool = False) -> None:
        self.trace = trace
        self.config = config
        #: True pins run() to the per-cycle step loop even without an
        #: observer — the ``reference`` backend of the engine registry
        self._force_step = force_step
        #: event sink (None = tracing off; every emission site below is
        #: guarded by a single `is None` check so the untraced hot loop
        #: does the same work as an uninstrumented simulator)
        self.obs = obs
        self.metrics = MetricsRegistry()
        self.base = TickBase(config.ticks_per_cycle, config.tech)
        self.lut = SlackLUT(self.base, pvt_scale=config.pvt_scale)
        self.width_pred = WidthPredictor()
        self.la_pred = LastArrivalPredictor()
        self.branch_pred = GsharePredictor()
        self.mem = MemoryHierarchy(config.memory)
        self.res = ExecutionResources(
            alu=config.alu_units, simd=config.simd_units,
            fp=config.fp_units, mem_ports=config.mem_ports,
            branch_units=config.branch_units,
            complex_units=config.complex_units)
        self.ready = ReadyQueues()
        self.sequences = SequenceTracker()
        self.stats = SimStats()

        self._fetch_idx = 0
        self._fetch_queue: deque = deque()
        self._fetch_resume = 0
        self._blocked_on_seq: Optional[int] = None
        self._rob: deque = deque()
        self._rat: Dict = {}
        #: stores dispatched but not yet committed (LSQ store half)
        self._inflight_stores: List[Uop] = []
        self._live_stores: List[Uop] = []
        self._rs_used = 0
        self._lsq_used = 0
        self._committed = 0
        self.cycle = 0

        # dynamic slack-threshold controller (Sec. IV-C): hill-climbs
        # the threshold by probing neighbouring settings for a window
        # each and keeping whichever committed the most instructions
        self._threshold = config.slack_threshold
        self._probe_plan: List[int] = []
        self._probe_results: List = []
        self._window_start_committed = 0
        self._exploit_left = 0

        # -- hot-path acceleration state (behaviour-neutral) -----------
        # decode memoization: an instruction's static timing never
        # changes after assembly, so decode work runs once per static
        # instruction (keyed by identity — the trace keeps them alive)
        self._static_memo: Dict[int, tuple] = {}
        self._ex_memo: Dict[tuple, int] = {}
        # prebuilt select lanes + class-indexed pool table so the
        # schedule loop never hashes OpClass members per cycle
        self._lanes = tuple(
            (op_class, pool, OPCLASS_INDEX[op_class])
            for op_class, pool in self.res.pools.items())
        self._pool_by_idx: List = [None] * len(OPCLASS_INDEX)
        for op_class, pool in self.res.pools.items():
            self._pool_by_idx[OPCLASS_INDEX[op_class]] = pool
        self._do_gp = (config.mode is not RecycleMode.BASELINE
                       and config.eager_issue)
        self._adaptive = (config.adaptive_threshold
                          and config.mode is RecycleMode.REDSOC)
        #: True when the RSE watches every source tag (Sec. IV-C):
        #: baseline mode or the Illustrative scheduler design
        self._watch_all = (config.mode is RecycleMode.BASELINE
                           or config.scheduler is SchedulerDesign.ILLUSTRATIVE)
        # per-class issue tally as a plain list (folded into the
        # enum-keyed FUStats dict once at the end of run())
        self._issue_counts: List[int] = [0] * len(OPCLASS_INDEX)

        if obs is not None:
            # propagate the sink into the sub-models that publish their
            # own events (wakeup array, cache hierarchy)
            self.ready.obs = obs
            self.mem.obs = obs
            obs.emit(Event(EventKind.META, -1, -1, {
                "trace": trace.name,
                "instructions": len(trace.entries),
                "core": config.name,
                "mode": config.mode.value,
                "scheduler": config.scheduler.value,
                "ticks_per_cycle": config.ticks_per_cycle,
                "pools": {cls.value: pool.count
                          for cls, pool in self.res.pools.items()},
            }))

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        total = len(self.trace.entries)
        limit = 200 * total + 100_000
        if self.obs is None and not self._force_step:
            self._run_fast(total, limit)
        else:
            # traced runs keep the plain per-cycle loop so per-cycle
            # events (DISPATCH_STALL, FU_STALL, WAKEUP, ...) are emitted
            # for every stalled cycle, exactly as an uninstrumented
            # per-cycle simulator would order them
            while self._committed < total:
                self._step()
                if self.cycle > limit:
                    self._wedged(total)
        issues = self.res.stats.issues
        for op_class, idx in OPCLASS_INDEX.items():
            if self._issue_counts[idx]:
                issues[op_class] += self._issue_counts[idx]
        self._issue_counts = [0] * len(OPCLASS_INDEX)
        self._finalize()
        return SimResult(name=self.trace.name, config=self.config,
                         stats=self.stats)

    def _wedged(self, total: int) -> None:
        raise RuntimeError(
            f"simulation wedged: {self._committed}/{total} committed "
            f"after {self.cycle} cycles (trace {self.trace.name!r})")

    def _run_fast(self, total: int, limit: int) -> None:
        """Event-driven main loop (untraced runs).

        Simulates exactly the cycles where architectural state can
        change and *skips* the provably-idle stretches between them,
        accumulating their cycle/stall statistics in bulk.  A cycle is
        idle when nothing is select-eligible, the ROB head cannot
        retire, the front end can neither fetch nor dispatch, and no
        wakeup is due; the next interesting cycle is then the earliest
        of the next scheduled wakeup, the ROB head's completion, and
        the fetch-resume cycle.  Jumps are clamped so that boundary
        cycles of the adaptive-threshold controller and the periodic
        FU-table cleanup are still simulated normally — every side
        effect of the per-cycle loop is reproduced exactly, keeping the
        two loops cycle-for-cycle bit-identical (enforced by
        ``check_regression.py --exact-cycles`` and the ``repro.verify``
        differential oracle).
        """
        ready = self.ready
        rob = self._rob
        fetch_queue = self._fetch_queue
        stats = self.stats
        config = self.config
        res = self.res
        entries_total = len(self.trace.entries)
        queue_cap = 2 * config.front_width
        adaptive = self._adaptive
        window = config.threshold_window
        issued_state = UopState.ISSUED
        wake_heap = ready._wake_heap
        cycle = self.cycle
        while self._committed < total:
            self.cycle = cycle
            if wake_heap and wake_heap[0] <= cycle:
                ready.advance_to(cycle)
            if rob:
                self._commit(cycle)
            if ready.live_total:
                self._schedule(cycle)
            if fetch_queue:
                self._dispatch(cycle)
            if (self._blocked_on_seq is None
                    and cycle >= self._fetch_resume
                    and self._fetch_idx < entries_total
                    and len(fetch_queue) < queue_cap):
                self._fetch(cycle)
            stats.cycles += 1
            if cycle and not cycle & 4095:
                res.release_past(cycle)
            if adaptive and cycle and not cycle % window:
                self._adapt_threshold()
            cycle += 1
            self.cycle = cycle
            if cycle > limit:
                self._wedged(total)
            if self._committed >= total:
                break

            # -- skip-ahead: is the machine provably idle at `cycle`? --
            if ready.live_total:
                continue
            head_done = None
            if rob:
                head = rob[0]
                if head.state is issued_state:
                    head_done = head.done_cycle
                    if head_done is not None and head_done <= cycle:
                        continue
            can_fetch = (self._blocked_on_seq is None
                         and self._fetch_idx < entries_total
                         and len(fetch_queue) < queue_cap)
            if can_fetch and self._fetch_resume <= cycle:
                continue
            if fetch_queue and not self._dispatch_blocked():
                continue
            target = ready.next_wake_cycle()
            if head_done is not None and (target is None
                                          or head_done < target):
                target = head_done
            if can_fetch and (target is None
                              or self._fetch_resume < target):
                target = self._fetch_resume
            if target is None or target <= cycle:
                # nothing schedulable ahead (a wedge): fall back to
                # plain stepping, which preserves the wedge detector
                continue
            if adaptive:
                rem = cycle % window
                boundary = cycle - rem + (window if rem or not cycle
                                          else 0)
                if boundary < target:
                    target = boundary
            rem = cycle & 4095
            boundary = cycle - rem + (4096 if rem or not cycle else 0)
            if boundary < target:
                target = boundary
            if target > cycle:
                skipped = target - cycle
                stats.cycles += skipped
                if fetch_queue:
                    # the fetch-queue head stays dispatch-blocked for
                    # every skipped cycle (per-cycle stall accounting)
                    stats.dispatch_stall_cycles += skipped
                cycle = target

    def _dispatch_blocked(self) -> bool:
        """Would :meth:`_dispatch` stall without dispatching anything?

        Mirrors the head-of-queue allocation checks in
        :meth:`_dispatch` exactly (same order, same structures).
        """
        config = self.config
        if len(self._rob) >= config.rob_size:
            return True
        cls = self._fetch_queue[0][1].cls
        if (cls is not OpClass.NOP and cls is not OpClass.HALT
                and self._rs_used >= config.rse_size):
            return True
        if ((cls is OpClass.LOAD or cls is OpClass.STORE)
                and self._lsq_used >= config.lsq_size):
            return True
        return False

    def _step(self) -> None:
        cycle = self.cycle
        if self.obs is not None:
            self.mem.now = cycle
        self.ready.advance_to(cycle)
        self._commit(cycle)
        self._schedule(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)
        self.stats.cycles += 1
        if cycle and cycle % 4096 == 0:
            self.res.release_past(cycle)
        if (self._adaptive
                and cycle and cycle % self.config.threshold_window == 0):
            self._adapt_threshold()
        self.cycle += 1

    #: how many exploit windows follow one probe sweep
    _EXPLOIT_WINDOWS = 20

    def _adapt_threshold(self) -> None:
        """One step of the dynamic threshold controller.

        Sweeps a coarse grid of thresholds (one window each), adopts the
        setting that retired the most instructions, exploits it for
        several windows, then re-probes — the run-time realisation of
        the paper's per-application-set threshold tuning (Sec. IV-C).
        """
        done = self._committed - self._window_start_committed
        self._window_start_committed = self._committed
        self._probe_results.append((done, self._threshold))
        if self._probe_plan:
            self._threshold = self._probe_plan.pop(0)
            return
        if len(self._probe_results) > 1:
            # a sweep just finished: keep the best-performing setting
            self._threshold = max(self._probe_results)[1]
            self._probe_results = []
            self._exploit_left = self._EXPLOIT_WINDOWS
            return
        self._probe_results = []
        self._exploit_left -= 1
        if self._exploit_left <= 0:
            full = self.base.ticks_per_cycle
            grid = sorted({0, full // 4, full // 2, 3 * full // 4,
                           full - 1})
            self._probe_plan = [t for t in grid if t != self._threshold]
            self._probe_results = [(done, self._threshold)]
            self._threshold = self._probe_plan.pop(0)

    def _finalize(self) -> None:
        """Publish end-of-run results through the metrics registry.

        The registry is the single source of truth: gauges below flow
        into :class:`SimStats` via its declared mapping, the hot-loop
        counters flow back out, and exporters snapshot the registry.
        """
        m = self.metrics
        wstats = self.width_pred.stats
        m.gauge("predict.width.aggressive_rate").set(
            wstats.aggressive_rate)
        m.gauge("predict.width.accuracy").set(wstats.accuracy)
        lstats = self.la_pred.stats
        m.gauge("predict.la.misprediction_rate").set(
            lstats.misprediction_rate)
        m.gauge("predict.la.predictions").set(lstats.predictions)
        m.gauge("predict.la.mispredictions").set(lstats.mispredictions)
        m.gauge("seq.expected_length").set(
            self.sequences.expected_length())
        m.gauge("seq.mean_length").set(self.sequences.mean_length())
        m.gauge("seq.count").set(self.sequences.num_sequences)
        bstats = self.branch_pred.stats
        m.gauge("front.branches").set(bstats.predictions)
        m.gauge("front.branch_mispredicts").set(bstats.mispredictions)
        self.stats.populate_from(m)
        self.stats.export_counters(m)
        m.gauge("core.ipc").set(self.stats.ipc)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        rob = self._rob
        stats = self.stats
        width = self.config.front_width
        issued = UopState.ISSUED
        committed = 0
        while rob and committed < width:
            uop = rob[0]
            if (uop.state is not issued
                    or uop.done_cycle is None or uop.done_cycle > cycle):
                break
            entry = uop.entry
            if entry.is_store:
                latency = self.mem.store_latency(entry.mem_addr, entry.pc)
                uop.mem_hl = latency > self.mem.config.l1_latency
                if uop in self._live_stores:
                    self._live_stores.remove(uop)
                if uop in self._inflight_stores:
                    self._inflight_stores.remove(uop)
            fu = uop.fu_class
            if fu is OpClass.LOAD or fu is OpClass.STORE:
                self._lsq_used -= 1
            self._classify(uop)
            uop.state = UopState.COMMITTED
            rob.popleft()
            self._committed += 1
            stats.committed += 1
            committed += 1
            if self.obs is not None:
                self.obs.emit(Event(EventKind.COMMIT, cycle, uop.seq, {
                    "op": entry.instr.op.name,
                    "issue": uop.issue_cycle,
                    "done": uop.done_cycle,
                }))

    def _classify(self, uop: Uop) -> None:
        cls = uop.fu_class
        dist = self.stats.distribution
        if cls in (OpClass.LOAD, OpClass.STORE):
            dist.add("MEM-HL" if uop.mem_hl else "MEM-LL")
        elif cls is OpClass.SIMD:
            dist.add("SIMD")
        elif cls in (OpClass.MUL, OpClass.DIV, OpClass.FP):
            dist.add("OtherMulti")
        elif cls is OpClass.ALU:
            slack = 1.0 - uop.actual_ex_ticks / self.base.ticks_per_cycle
            dist.add("ALU-HS" if slack > HIGH_SLACK_FRACTION else "ALU-LS")
        # branches / NOPs are control overhead, not a Fig. 10 class

    # ------------------------------------------------------------------
    # schedule (wakeup / select / execute-timing)
    # ------------------------------------------------------------------

    def _schedule(self, cycle: int) -> None:
        issued_now: List[Uop] = []
        stalled = False
        obs = self.obs
        ready = self.ready
        queues = ready._queues
        dead = ready._dead
        # iterate the live lane lists in place: _try_issue only ever
        # tombstones the uop under consideration (wakes are scheduled
        # for future cycles), so no structural mutation happens here
        for op_class, pool, idx in self._lanes:
            if dead[idx] > 8:
                ready._compact(idx)
            queue = queues[idx]
            if not queue:
                continue
            busy = pool._busy
            count = pool.count
            for uop in queue:
                if not uop.in_ready:
                    continue
                if count <= busy.get(cycle + uop.latency_cycles, 0):
                    stalled = True
                    break
                outcome = self._try_issue(uop, cycle)
                if outcome == "issued":
                    issued_now.append(uop)
                    if obs is not None:
                        obs.emit(Event(
                            EventKind.SELECT, cycle, uop.seq,
                            {"phase": "P", "fu": op_class.value}))
                elif outcome == "stall":
                    stalled = True
                    break
                # "replayed" → removed from pending, rescheduled later
        if self._do_gp and issued_now:
            if self.config.skewed_select:
                self._gp_phase(cycle, issued_now)
            else:
                self._gp_phase_unskewed(cycle, issued_now)
        if stalled:
            self.stats.fu_stall_cycles += 1
            if obs is not None:
                obs.emit(Event(
                    EventKind.FU_STALL, cycle, -1,
                    {"tick": self.base.cycle_start(cycle)}))

    def _try_issue(self, uop: Uop, cycle: int, *,
                   eager: bool = False) -> str:
        """Attempt to issue *uop*; returns 'issued' | 'stall' | 'replayed'."""
        base = self.base
        arrival = cycle + uop.latency_cycles
        fu = uop.fu_class
        pool = self._pool_by_idx[uop.cls_idx]
        sources = uop.sources

        unissued = [s for s in sources
                    if s.state is not UopState.COMMITTED
                    and s.issue_cycle is None]
        if fu is OpClass.LOAD:
            older = self._unissued_older_store(uop)
            if older is not None:
                unissued.append(older)
        if unissued:
            # issued off the wrong (predicted-last) tag: selective reissue
            self._replay_on_sources(uop, unissued, cycle)
            pool.try_reserve(arrival)  # the wasted grant still burnt a slot
            return "replayed"

        if fu is OpClass.LOAD:
            return self._issue_load(uop, cycle)
        if fu is OpClass.STORE:
            return self._issue_store(uop, cycle)

        # inlined last_source_avail() + resolve_execution(): this is the
        # per-issue critical path of the whole simulator
        transparent = uop.transparent
        source_avail = 0
        for src in sources:
            if src.state is UopState.COMMITTED:
                continue
            a = (src.avail_tick if transparent and src.transparent
                 else src.sync_avail)
            if a > source_avail:
                source_avail = a
        tpc = base.ticks_per_cycle
        cycle_start = arrival * tpc
        if transparent:
            start = source_avail if source_avail > cycle_start else cycle_start
        else:
            edge = ((source_avail + tpc - 1) // tpc) * tpc
            start = edge if edge > cycle_start else cycle_start
        end = start + uop.ex_ticks
        timing = ExecTiming(
            start_tick=start, end_tick=end, avail_tick=end,
            sync_avail_tick=((end + tpc - 1) // tpc) * tpc,
            extra_cycle_hold=end > (start // tpc + 1) * tpc,
            recycled=start % tpc != 0)
        if (self.config.mode is RecycleMode.MOS and timing.recycled
                and timing.extra_cycle_hold):
            # MOS cannot cross a clock edge: fall back to a normal start
            timing = resolve_execution(
                arrival_cycle=arrival, source_avail=source_avail,
                ex_ticks=uop.ex_ticks, transparent=False, base=base)

        if timing.start_tick >= base.cycle_start(arrival + 1):
            # an (unwatched but issued) operand lands after our window
            self._replay_late(uop, cycle)
            pool.try_reserve(arrival)
            return "replayed"

        aggressive = False
        if uop.width_applied:
            aggressive = (width_bucket(uop.entry.op_width)
                          > uop.predicted_width)
        if aggressive:
            # correctness hazard: conservative re-execution from a later
            # clock edge with the true (wider) EX-TIME
            timing = resolve_execution(
                arrival_cycle=arrival + self.config.replay_penalty,
                source_avail=source_avail,
                ex_ticks=uop.actual_ex_ticks, transparent=False, base=base)
            self.stats.width_replays += 1
            if self.obs is not None:
                self.obs.emit(Event(
                    EventKind.WIDTH_MISPREDICT, cycle, uop.seq, {
                        "predicted": uop.predicted_width,
                        "actual": uop.entry.op_width,
                        "tick": timing.start_tick,
                    }))

        occupy = base.cycle_of(timing.start_tick)
        if (timing.extra_cycle_hold
                and not pool.can_reserve(occupy, extra_cycle=True)):
            # the 2-cycle hold cannot be afforded: fall back to an
            # opaque (edge-aligned) start — the FF simply stays closed,
            # costing only the unrecycled slack (never worse than MOS)
            fallback = resolve_execution(
                arrival_cycle=arrival, source_avail=source_avail,
                ex_ticks=uop.ex_ticks, transparent=False, base=base)
            fb_cycle = base.cycle_of(fallback.start_tick)
            if not pool.try_reserve(fb_cycle,
                                    extra_cycle=fallback.extra_cycle_hold):
                return "stall"
            timing = fallback
            occupy = fb_cycle
        elif not pool.try_reserve(occupy,
                                  extra_cycle=timing.extra_cycle_hold):
            return "stall"

        self._train_predictors(uop)
        self._finalize_issue(uop, cycle, timing, eager=eager)
        return "issued"

    def _train_predictors(self, uop: Uop) -> None:
        if uop.width_applied:
            self.width_pred.record_outcome(uop.predicted_width,
                                           uop.entry.op_width)
            self.width_pred.update(uop.entry.pc, uop.entry.op_width)
        if uop.la_applied and len(uop.sources) >= 2:
            first, second = uop.sources[0], uop.sources[1]
            c1 = first.issue_cycle if first.issue_cycle is not None else -1
            c2 = second.issue_cycle if second.issue_cycle is not None else -1
            if c1 == c2:
                # simultaneous broadcast: either tag wakes correctly, so
                # the prediction is right by construction and the table
                # is left alone (no flip-flop noise)
                self.la_pred.record_outcome(uop.second_predicted_last,
                                            uop.second_predicted_last)
            else:
                second_last = c2 > c1
                self.la_pred.record_outcome(uop.second_predicted_last,
                                            second_last)
                self.la_pred.update(uop.entry.pc, second_last)

    def _finalize_issue(self, uop: Uop, cycle: int, timing, *,
                        eager: bool) -> None:
        base = self.base
        uop.state = UopState.ISSUED
        uop.issue_cycle = cycle
        uop.start_tick = timing.start_tick
        uop.end_tick = timing.end_tick
        uop.avail_tick = timing.avail_tick
        uop.sync_avail = timing.sync_avail_tick
        uop.extra_cycle_hold = timing.extra_cycle_hold
        uop.done_cycle = base.cycle_of(timing.sync_avail_tick)
        self._issue_counts[uop.cls_idx] += 1
        if timing.extra_cycle_hold:
            self.stats.two_cycle_holds += 1
        if eager:
            uop.gp_issued = True
            self.stats.eager_issues += 1
        if uop.transparent:
            if timing.recycled:
                self.stats.recycled_ops += 1
                parent = constraining_parent(uop, timing.start_tick)
                uop.chain_id = self.sequences.extend_chain(
                    parent.chain_id if parent else None)
            else:
                uop.chain_id = self.sequences.start_chain()
        if self.obs is not None:
            self._emit_issue(uop, cycle, timing, eager=eager)
        self._rs_used -= 1
        self.ready.remove(uop)
        if uop.seq == self._blocked_on_seq:
            self._fetch_resume = (cycle + uop.latency_cycles
                                  + self.config.mispredict_penalty)
            self._blocked_on_seq = None
        self._notify_dependents(uop, cycle)

    def _emit_issue(self, uop: Uop, cycle: int, timing, *,
                    eager: bool) -> None:
        """Publish the resolved execution window (traced runs only).

        The EXEC_WINDOW payload is deliberately complete: it carries
        everything :func:`repro.core.audit.audit_from_events` needs to
        re-derive the full timing audit from a recorded stream, and
        everything the Perfetto exporter renders per slice.
        """
        obs = self.obs
        base = self.base
        instr = uop.entry.instr
        is_mem = instr.cls in (OpClass.LOAD, OpClass.STORE)
        srcs = []
        for src in uop.sources:
            if src.issue_cycle is None:
                srcs.append([src.seq, None])
            else:
                srcs.append([src.seq, consumer_avail_tick(src, uop)])
        obs.emit(Event(EventKind.EXEC_WINDOW, cycle, uop.seq, {
            "op": instr.op.name,
            "fu": uop.fu_class.value,
            "issue": cycle,
            "lat": uop.latency_cycles,
            "start": timing.start_tick,
            "end": timing.end_tick,
            "avail": timing.avail_tick,
            "sync": timing.sync_avail_tick,
            "ex": uop.ex_ticks,
            "ex_actual": uop.actual_ex_ticks,
            "transparent": uop.transparent,
            "recycled": timing.recycled,
            "hold": timing.extra_cycle_hold,
            "eager": eager,
            "mem": is_mem,
            "srcs": srcs,
        }))
        if eager:
            obs.emit(Event(EventKind.GP_GRANT, cycle, uop.seq,
                           {"tick": timing.start_tick}))
        if timing.extra_cycle_hold:
            obs.emit(Event(EventKind.HOLD, cycle, uop.seq, {
                "tick": timing.start_tick,
                "fu": uop.fu_class.value,
            }))
        obs.emit(Event(EventKind.WRITEBACK, uop.done_cycle, uop.seq,
                       {"tick": timing.sync_avail_tick}))
        # tick-resolution latency/slack distributions (traced runs)
        m = self.metrics
        m.histogram("lat.issue_to_execute").observe(
            timing.start_tick - base.cycle_start(cycle))
        if not is_mem and uop.latency_cycles == 1:
            m.histogram("slack.per_op").observe(
                max(0, base.ticks_per_cycle - uop.actual_ex_ticks))
        if timing.recycled:
            m.histogram("recycle.start_offset").observe(
                base.tick_in_cycle(timing.start_tick))

    def _issue_load(self, uop: Uop, cycle: int) -> str:
        base = self.base
        arrival = cycle + 1
        pool = self._pool_by_idx[uop.cls_idx]
        if not pool.try_reserve(arrival):
            return "stall"
        addr_avail = last_source_avail(uop, base)
        addr_cycle = max(arrival, base.cycle_of(base.next_edge(addr_avail)))
        entry = uop.entry
        latency = self.mem.load_latency(entry.mem_addr, entry.pc)
        uop.mem_hl = latency > self.mem.config.l1_latency
        fwd = self._forwarding_store(uop)
        if fwd is not None:
            data_cycle = max(addr_cycle + 1, (fwd.done_cycle or 0) + 1)
        else:
            data_cycle = addr_cycle + latency
        timing = _LoadTiming(base, addr_cycle, data_cycle)
        self._finalize_issue(uop, cycle, timing, eager=False)
        return "issued"

    def _issue_store(self, uop: Uop, cycle: int) -> str:
        base = self.base
        arrival = cycle + 1
        pool = self._pool_by_idx[uop.cls_idx]
        if not pool.try_reserve(arrival):
            return "stall"
        timing = _StoreTiming(base, arrival)
        self._finalize_issue(uop, cycle, timing, eager=False)
        self._live_stores.append(uop)
        return "issued"

    def _forwarding_store(self, load: Uop) -> Optional[Uop]:
        lo = load.entry.mem_addr
        hi = lo + load.entry.mem_size
        for store in reversed(self._live_stores):
            if store.seq > load.seq:
                continue
            s_lo = store.entry.mem_addr
            s_hi = s_lo + store.entry.mem_size
            if s_lo < hi and lo < s_hi:
                return store
        return None

    def _unissued_older_store(self, load: Uop) -> Optional[Uop]:
        dep = load.order_dep
        if dep is None or dep.issue_cycle is not None:
            return None
        return dep

    def _replay_on_sources(self, uop: Uop, unissued: List[Uop],
                           cycle: int) -> None:
        uop.replayed = True
        if uop.la_applied:
            self.stats.la_replays += 1
        if self.obs is not None:
            self.obs.emit(Event(EventKind.LA_REPLAY, cycle, uop.seq, {
                "la_applied": uop.la_applied,
                "waiting_on": sorted(u.seq for u in unissued),
            }))
        uop.waiting_on = set(unissued)
        uop.eligible_cycle = cycle + 1
        self.ready.remove(uop)

    def _replay_late(self, uop: Uop, cycle: int) -> None:
        uop.replayed = True
        if uop.la_applied:
            self.stats.la_replays += 1
        if self.obs is not None:
            self.obs.emit(Event(EventKind.LA_REPLAY, cycle, uop.seq, {
                "la_applied": uop.la_applied,
                "late_operand": True,
            }))
        base = self.base
        avail = last_source_avail(uop, base)
        self.ready.remove(uop)
        self.ready.schedule_wake(
            uop, max(cycle + 1, base.cycle_of(avail) - 1))

    def _notify_dependents(self, uop: Uop, cycle: int) -> None:
        # inlined wake_cycle()/consumer_avail_tick(): this runs once per
        # dependent of every issued uop, the hottest edge in the model
        base = self.base
        cycle_of = base.cycle_of
        schedule_wake = self.ready.schedule_wake
        p_trans = uop.transparent
        avail_t = uop.avail_tick
        sync_t = uop.sync_avail
        floor = uop.issue_cycle + 1
        next_cycle = cycle + 1
        for dep in uop.dependents:
            waiting = dep.waiting_on
            if uop not in waiting:
                continue
            waiting.discard(uop)
            avail = avail_t if p_trans and dep.transparent else sync_t
            wake = cycle_of(avail) - dep.latency_cycles
            if wake < floor:
                wake = floor
            if dep.eligible_cycle is None or wake > dep.eligible_cycle:
                dep.eligible_cycle = wake
            if not waiting:
                schedule_wake(dep, max(dep.eligible_cycle, next_cycle))

    # -- eager grandparent phase ---------------------------------------

    def _gp_candidates(self, cycle: int,
                       issued_now: List[Uop]) -> List[Uop]:
        seen: Set[int] = set()
        candidates: List[Uop] = []
        for parent in issued_now:
            if not parent.transparent or parent.replayed:
                continue
            for child in parent.dependents:
                if (child.seq in seen
                        or child.state is not UopState.DISPATCHED
                        or child.issue_cycle is not None
                        or not child.transparent):
                    continue
                # eager co-issue only lines the child's execution stage
                # up with the parent's when their latencies match (ALU
                # with ALU, VMLA accumulate with VMLA accumulate)
                if child.latency_cycles != parent.latency_cycles:
                    continue
                if not eager_issue_allowed(
                        parent, child, mode=self.config.mode,
                        threshold=self._threshold, base=self.base):
                    continue
                if not other_sources_ready(
                        child, arrival_cycle=cycle + child.latency_cycles,
                        base=self.base):
                    continue
                seen.add(child.seq)
                candidates.append(child)
        candidates.sort(key=lambda u: u.seq)
        return candidates

    def _gp_phase(self, cycle: int, issued_now: List[Uop]) -> None:
        """Skewed selection: GP grants use only leftover FU capacity.

        The spare-units guard keeps speculative issues (and their
        possible 2-cycle holds) from starving next cycle's conventional
        requests when the machine is throughput-bound — the simple
        dynamic mechanism Sec. IV-C sketches around the slack threshold.
        """
        spare = self.config.eager_spare_units
        for child in self._gp_candidates(cycle, issued_now):
            pool = self._pool_by_idx[child.cls_idx]
            if (pool.free_at(cycle + 1) <= spare
                    or pool.free_at(cycle + 2) <= spare):
                continue
            result = self._try_issue(child, cycle, eager=True)
            if result == "issued" and self.obs is not None:
                self.obs.emit(Event(
                    EventKind.SELECT, cycle, child.seq,
                    {"phase": "GP", "fu": child.fu_class.value}))

    def _gp_phase_unskewed(self, cycle: int,
                           issued_now: List[Uop]) -> None:
        """Ablation: GP requests compete with conventional ones by age.

        Conventional selection already ran; here GP candidates whose age
        would have beaten a *denied* conventional request model the
        paper's two failure cases: a wasted grant (no slack to recycle)
        and GP-mispeculation (child granted without its parent).  We
        approximate by letting GP candidates take slots but charging a
        mispeculation whenever a still-pending conventional request is
        older than the granted child.
        """
        spare = self.config.eager_spare_units
        for child in self._gp_candidates(cycle, issued_now):
            pool = self._pool_by_idx[child.cls_idx]
            if (pool.free_at(cycle + 1) <= spare
                    or pool.free_at(cycle + 2) <= spare):
                continue
            pending = self.ready.pending(child.fu_class)
            older_pending = any(u.seq < child.seq for u in pending)
            result = self._try_issue(child, cycle, eager=True)
            if result == "issued" and self.obs is not None:
                self.obs.emit(Event(
                    EventKind.SELECT, cycle, child.seq,
                    {"phase": "GP", "fu": child.fu_class.value}))
            if result == "issued" and older_pending:
                self.stats.gp_mispeculations += 1
                self.stats.wasted_gp_grants += 1

    # ------------------------------------------------------------------
    # dispatch (decode + rename + allocate)
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        config = self.config
        fetch_queue = self._fetch_queue
        rob = self._rob
        rob_size = config.rob_size
        rse_size = config.rse_size
        lsq_size = config.lsq_size
        count = 0
        stalled = False
        while fetch_queue and count < config.front_width:
            seq, entry = fetch_queue[0]
            if len(rob) >= rob_size:
                stalled = True
                break
            cls = entry.cls
            if (cls is not OpClass.NOP and cls is not OpClass.HALT
                    and self._rs_used >= rse_size):
                stalled = True
                break
            if ((cls is OpClass.LOAD or cls is OpClass.STORE)
                    and self._lsq_used >= lsq_size):
                stalled = True
                break
            fetch_queue.popleft()
            self._dispatch_one(seq, entry, cycle)
            count += 1
        if stalled:
            self.stats.dispatch_stall_cycles += 1
            if self.obs is not None:
                self.obs.emit(Event(EventKind.DISPATCH_STALL, cycle, -1,
                                    {"tick":
                                     self.base.cycle_start(cycle)}))

    def _dispatch_one(self, seq: int, entry: TraceEntry,
                      cycle: int) -> None:
        uop = Uop(seq, entry)
        instr = entry.instr

        # decode + rename tables: an instruction's static timing and
        # architectural source/dest register sets never change after
        # assembly, so both are derived once per static instruction
        memo = self._static_memo.get(id(instr))
        if memo is None:
            memo = self._static_memo[id(instr)] = (
                self._decode_static(instr)
                + (tuple(instr.sources()), tuple(instr.dests())))
        transparent, latency, ex_static, arith, src_regs, dst_regs = memo
        uop.transparent = transparent
        uop.latency_cycles = latency
        if arith:
            # arithmetic ALU ops resolve EX-TIME from dynamic per-PC
            # width-predictor state
            predicted = self.width_pred.predict(entry.pc)
            uop.width_applied = True
            uop.predicted_width = predicted
            uop.ex_ticks = self._ex_time(instr, predicted)
            uop.actual_ex_ticks = self._ex_time(instr, entry.op_width)
        else:
            uop.ex_ticks = uop.actual_ex_ticks = ex_static

        # rename: resolve register sources through the RAT
        rat = self._rat
        sources: List[Uop] = []
        for reg in src_regs:
            producer = rat.get(reg)
            if (producer is not None
                    and producer.state is not UopState.COMMITTED
                    and producer not in sources):
                sources.append(producer)
        uop.sources = sources

        # memory disambiguation: a load waits (for issue) only on the
        # youngest older store whose address range overlaps — oracle
        # disambiguation, the limit behaviour of a store-set predictor
        fu = uop.fu_class
        order_dep: Optional[Uop] = None
        if fu is OpClass.LOAD or fu is OpClass.STORE:
            self._lsq_used += 1
            if fu is OpClass.STORE:
                self._inflight_stores.append(uop)
            else:
                lo = entry.mem_addr
                hi = lo + entry.mem_size
                for store in reversed(self._inflight_stores):
                    s_lo = store.entry.mem_addr
                    if s_lo < hi and lo < s_lo + store.entry.mem_size:
                        order_dep = store
                        break
        uop.order_dep = order_dep

        # watched tags (Sec. IV-C): baseline / Illustrative watch every
        # source; the Operational design watches only the predicted
        # last-arriving parent of two-source transparent ops
        if self._watch_all or not transparent or len(sources) != 2:
            watched = sources
        else:
            second = self.la_pred.predict_second_last(entry.pc)
            uop.la_applied = True
            uop.second_predicted_last = second
            watched = [sources[1] if second else sources[0]]
        waiting = {s for s in watched if s.issue_cycle is None}
        uop.waiting_on = waiting
        if order_dep is not None and order_dep.issue_cycle is None:
            waiting.add(order_dep)

        for producer in sources:
            producer.dependents.append(uop)
        if order_dep is not None and order_dep not in sources:
            order_dep.dependents.append(uop)

        for reg in dst_regs:
            rat[reg] = uop

        if self.obs is not None:
            self.obs.emit(Event(EventKind.DISPATCH, cycle, seq, {
                "op": instr.op.name,
                "fu": uop.fu_class.value,
                "srcs": [s.seq for s in sources],
                "order_dep": (order_dep.seq
                              if order_dep is not None else None),
            }))
        self._rob.append(uop)
        if fu is OpClass.NOP or fu is OpClass.HALT:
            uop.state = UopState.ISSUED
            uop.issue_cycle = cycle
            uop.done_cycle = cycle
            return
        self._rs_used += 1

        wake = cycle + 1
        for src in watched:
            if src.issue_cycle is not None:
                wake = max(wake, wake_cycle(src, uop, self.base))
        if order_dep is not None and order_dep.issue_cycle is not None:
            wake = max(wake, wake_cycle(order_dep, uop, self.base))
        uop.eligible_cycle = wake
        if not uop.waiting_on:
            self.ready.schedule_wake(uop, wake)

    def _ex_time(self, instr, width: int) -> int:
        """Memoized slack-LUT read for (static instruction, width)."""
        key = (id(instr), width)
        ticks = self._ex_memo.get(key)
        if ticks is None:
            ticks = self._ex_memo[key] = self.lut.ex_time(instr, width)
        return ticks

    def _decode_static(self, instr) -> tuple:
        """(transparent, latency, static EX-TIME, width-dynamic?) of a
        static instruction.

        The EX-TIME slot is authoritative for every class whose LUT
        bucket ignores data width (logic/shift ALU ops, SIMD by lane
        type, full-cycle multi-cycle classes); arithmetic ALU ops
        return a ``True`` last field and resolve EX-TIME per dynamic
        instance from the predicted/observed widths instead.
        """
        op = instr.op
        cls = instr.cls
        config = self.config
        transparent = config.mode is not RecycleMode.BASELINE
        full = self.base.ticks_per_cycle
        if cls is OpClass.ALU:
            if op in ARITH_OPS:
                return (transparent, 1, 0, True)
            return (transparent, 1, self.lut.ex_time(instr), False)
        if cls is OpClass.SIMD:
            if op in SIMD_SINGLE_CYCLE_OPS:
                return (transparent, 1, self.lut.ex_time(instr), False)
            if op in SIMD_ACCUMULATE_OPS:
                return (transparent, config.simd_multicycle_latency,
                        self.lut.ex_time(instr), False)
            return (False, config.simd_multicycle_latency, full, False)
        if cls is OpClass.MUL:
            return (False, config.mul_latency, full, False)
        if cls is OpClass.DIV:
            return (False, config.div_latency, full, False)
        if cls is OpClass.FP:
            return (False, config.fdiv_latency if op is Opcode.FDIV
                    else config.fp_latency, full, False)
        # BRANCH / LOAD / STORE / NOP / HALT
        return (False, 1, full, False)

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch(self, cycle: int) -> None:
        if cycle < self._fetch_resume or self._blocked_on_seq is not None:
            return
        config = self.config
        entries = self.trace.entries
        entries_total = len(entries)
        fetch_queue = self._fetch_queue
        front_width = config.front_width
        queue_cap = 2 * front_width
        fetched = 0
        taken_seen = 0
        while (self._fetch_idx < entries_total
               and fetched < front_width
               and len(fetch_queue) < queue_cap):
            idx = self._fetch_idx
            entry = entries[idx]
            fetch_queue.append((idx, entry))
            self._fetch_idx += 1
            fetched += 1
            instr = entry.instr
            if self.obs is not None:
                self.obs.emit(Event(EventKind.FETCH, cycle, idx, {
                    "pc": entry.pc, "op": instr.op.name,
                }))
            if entry.cls is OpClass.BRANCH:
                if instr.op is Opcode.B and instr.cond is not Cond.AL:
                    mispredicted = self.branch_pred.update(
                        entry.pc, entry.taken)
                    if mispredicted:
                        if self.obs is not None:
                            self.obs.emit(Event(
                                EventKind.BRANCH_MISPREDICT, cycle, idx,
                                {"pc": entry.pc, "taken": entry.taken}))
                        self._blocked_on_seq = idx
                        break
                if entry.taken:
                    # the front end follows one predicted-taken branch
                    # per cycle (BTB redirect); a second ends the group
                    taken_seen += 1
                    if taken_seen > config.taken_branches_per_cycle:
                        break


class _LoadTiming:
    """Execution-window shim for loads (duck-typed like ExecTiming)."""

    def __init__(self, base: TickBase, addr_cycle: int,
                 data_cycle: int) -> None:
        self.start_tick = base.cycle_start(addr_cycle)
        self.end_tick = base.cycle_start(data_cycle)
        self.avail_tick = self.end_tick
        self.sync_avail_tick = self.end_tick
        self.extra_cycle_hold = False
        self.recycled = False


class _StoreTiming:
    """Execution-window shim for stores."""

    def __init__(self, base: TickBase, arrival_cycle: int) -> None:
        edge = base.cycle_start(arrival_cycle)
        self.start_tick = edge
        self.end_tick = base.cycle_start(arrival_cycle + 1)
        self.avail_tick = edge
        self.sync_avail_tick = edge
        self.extra_cycle_hold = False
        self.recycled = False


def simulate(workload, config: CoreConfig, *,
             max_instructions: int = 5_000_000, obs=None) -> SimResult:
    """Simulate *workload* (a Program or a pre-generated Trace).

    Pass an event sink (e.g. :class:`repro.obs.Recorder`) as *obs* to
    trace the run; the default ``None`` keeps tracing compiled out.
    The backend is picked by ``config.engine`` through the
    :data:`~repro.core.engine.ENGINES` registry; every backend returns
    bit-identical cycle counts (CI backend-equivalence matrix).
    """
    if isinstance(workload, Program):
        trace = generate_trace(workload, max_instructions=max_instructions)
    elif isinstance(workload, Trace):
        trace = workload
    else:
        raise TypeError(f"expected Program or Trace, got {type(workload)}")
    return ENGINES.create(config.engine, trace, config, obs=obs).run()


# -- engine registration -----------------------------------------------
# "reference" pins the per-cycle loop, "fast" is this module's
# event-driven loop, "compiled" lowers the trace and runs specialized
# code (falling back to the reference path whenever an observer is
# attached — the compiled loop carries no probe points).

def _reference_engine(trace: Trace, config: CoreConfig, *, obs=None):
    return CoreSimulator(trace, config, obs=obs, force_step=True)


def _fast_engine(trace: Trace, config: CoreConfig, *, obs=None):
    return CoreSimulator(trace, config, obs=obs)


def _compiled_engine(trace: Trace, config: CoreConfig, *, obs=None):
    if obs is not None:
        # observability requires the per-cycle probe points; identical
        # results either way, the compiled path is purely a speedup
        return CoreSimulator(trace, config, obs=obs)
    from .compiled import CompiledSimulator   # lazy: breaks the cycle
    return CompiledSimulator(trace, config)


def _vector_engine(trace: Trace, config: CoreConfig, *, obs=None):
    if obs is not None:
        # same fallback as "compiled": probe points live in the
        # reference loop only
        return CoreSimulator(trace, config, obs=obs)
    from .vector import VectorSimulator       # lazy: breaks the cycle
    return VectorSimulator(trace, config)


def _vector_batch(items, *, lane_times=None):
    from .vector import simulate_batch       # lazy: breaks the cycle
    return simulate_batch(items, lane_times=lane_times)


ENGINES.register("reference", _reference_engine)
ENGINES.register("fast", _fast_engine)
ENGINES.register("compiled", _compiled_engine)
ENGINES.register("vector", _vector_engine, batch=_vector_batch)
