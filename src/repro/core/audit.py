"""Post-run invariant auditing of the timing engine.

The simulator's correctness rests on a handful of timing invariants
that must hold for *every* issued operation, whatever the mode:

1. **arrival** — computation never starts before the op's FU-arrival
   edge (``issue + latency`` cycles);
2. **dataflow** — computation never starts before every source value is
   usable (transparent CI for transparent hand-offs, the latching edge
   otherwise): recycling must stay timing non-speculative;
3. **window** — ``end == start + EX-TIME``, with EX-TIME at least the
   conservatively-quantised bucket time;
4. **discipline** — non-transparent ops start exactly on clock edges;
   baseline mode never starts anything mid-cycle;
5. **capacity** — per cycle, each FU class never holds more operations
   (including 2-cycle holds) than it has units;
6. **completeness** — every trace entry commits exactly once.

:func:`audit_run` executes a trace under an instrumented simulator,
re-derives all of the above from the recorded per-uop timing, and
returns the violations (an empty list is the pass condition).  The
integration tests sweep it across workloads, modes and cores — any
scheduler regression that breaks a timing rule surfaces here even when
cycle counts still look plausible.

The same checks can be **replayed from a recorded event stream**:
:func:`audit_from_events` consumes the EXEC_WINDOW / COMMIT / META
events a traced run published (e.g. loaded back from a JSONL dump via
:func:`repro.obs.export.read_events_jsonl`) and re-derives every rule
without running a second simulation — the event payloads carry the
complete per-uop timing.  ``audit_run`` additionally publishes each
violation as a VIOLATION event when a sink is attached, so audit
outcomes travel on the same bus as the pipeline trace.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.config import CoreConfig, RecycleMode
from repro.core.cpu import CoreSimulator, SimResult
from repro.core.scheduler import consumer_avail_tick
from repro.core.ticks import TickBase
from repro.isa.opcodes import OpClass
from repro.obs.events import Event, EventKind
from repro.pipeline.trace import Trace
from repro.pipeline.uop import Uop


@dataclass
class AuditViolation:
    rule: str
    seq: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] uop#{self.seq}: {self.detail}"


@dataclass
class AuditResult:
    result: SimResult
    violations: List[AuditViolation] = field(default_factory=list)
    audited_uops: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class _RecordingSimulator(CoreSimulator):
    """CoreSimulator that keeps every issued uop for post-run checks."""

    def __init__(self, trace: Trace, config: CoreConfig, *,
                 obs=None) -> None:
        super().__init__(trace, config, obs=obs)
        self.issued_log: List[Uop] = []

    def _finalize_issue(self, uop, cycle, timing, *, eager=False):
        super()._finalize_issue(uop, cycle, timing, eager=eager)
        self.issued_log.append(uop)


def audit_run(trace: Trace, config: CoreConfig, *,
              obs=None) -> AuditResult:
    """Simulate *trace* under *config* and audit every invariant.

    With an event sink attached, the run is traced as usual and every
    audit violation is additionally published as a VIOLATION event, so
    a recorded stream carries both the timeline and its verdict.
    """
    sim = _RecordingSimulator(trace, config, obs=obs)
    result = sim.run()
    base = sim.base
    violations: List[AuditViolation] = []

    def flag(rule: str, uop: Uop, detail: str) -> None:
        violations.append(AuditViolation(rule, uop.seq, detail))

    occupancy: Dict[OpClass, Dict[int, int]] = defaultdict(
        lambda: defaultdict(int))

    for uop in sim.issued_log:
        cls = uop.entry.instr.cls
        is_mem = cls in (OpClass.LOAD, OpClass.STORE)

        # 1. arrival: no computation before the FU-arrival edge (replays
        # restart from later edges, which is also legal)
        arrival_edge = base.cycle_start(uop.issue_cycle
                                        + uop.latency_cycles)
        if uop.start_tick < arrival_edge:
            flag("arrival", uop,
                 f"start {uop.start_tick} before arrival edge "
                 f"{arrival_edge}")

        # 2. dataflow: operands must be usable at the start instant
        if not is_mem:
            for src in uop.sources:
                if src.issue_cycle is None:
                    flag("dataflow", uop,
                         f"source #{src.seq} never issued")
                    continue
                avail = consumer_avail_tick(src, uop)
                if uop.start_tick < avail:
                    flag("dataflow", uop,
                         f"start {uop.start_tick} before source "
                         f"#{src.seq} avail {avail}")

        # 3. window: end = start + EX-TIME (scheduled, or the true
        # width's EX-TIME after an aggressive-misprediction replay)
        if not is_mem and uop.end_tick not in (
                uop.start_tick + uop.ex_ticks,
                uop.start_tick + uop.actual_ex_ticks):
            flag("window", uop,
                 f"end {uop.end_tick} inconsistent with start "
                 f"{uop.start_tick} + ex {uop.ex_ticks}")

        # 4. discipline
        mid_cycle = uop.start_tick % base.ticks_per_cycle != 0
        if mid_cycle and not uop.transparent:
            flag("discipline", uop,
                 "non-transparent op started mid-cycle")
        if (mid_cycle
                and config.mode is RecycleMode.BASELINE):
            flag("discipline", uop, "baseline op started mid-cycle")
        if (mid_cycle and config.mode is RecycleMode.MOS
                and uop.extra_cycle_hold):
            flag("discipline", uop, "MOS op crossed a clock edge")

        # 5. capacity bookkeeping
        start_cycle = base.cycle_of(uop.start_tick)
        occupancy[uop.fu_class][start_cycle] += 1
        if uop.extra_cycle_hold:
            occupancy[uop.fu_class][start_cycle + 1] += 1

    pools = {cls: pool.count for cls, pool in sim.res.pools.items()}
    for cls, cycles in occupancy.items():
        limit = pools.get(cls)
        if limit is None:
            continue
        for cycle, used in cycles.items():
            if used > limit:
                violations.append(AuditViolation(
                    "capacity", -1,
                    f"{cls.value} used {used}/{limit} units in cycle "
                    f"{cycle}"))

    # 6. completeness
    if result.stats.committed != len(trace.entries):
        violations.append(AuditViolation(
            "completeness", -1,
            f"committed {result.stats.committed} of "
            f"{len(trace.entries)}"))

    if obs is not None:
        for violation in violations:
            obs.emit(Event(EventKind.VIOLATION, -1, violation.seq, {
                "rule": violation.rule, "detail": violation.detail,
            }))

    return AuditResult(result=result, violations=violations,
                       audited_uops=len(sim.issued_log))


@dataclass
class ReplayAuditResult:
    """Outcome of auditing a recorded event stream (no simulation)."""

    violations: List[AuditViolation] = field(default_factory=list)
    audited_uops: int = 0
    committed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def audit_from_events(events: Iterable[Event]) -> ReplayAuditResult:
    """Re-derive the full timing audit from a recorded event stream.

    Consumes the stream a traced run published (META + EXEC_WINDOW +
    COMMIT carry everything the live auditor reads off its uop log) and
    checks the same six invariants, rule for rule.  The integration
    tests assert this agrees exactly with :func:`audit_run` on live
    simulations, which is what makes a JSONL dump a *sufficient*
    artefact for post-hoc debugging: no re-simulation needed.
    """
    violations: List[AuditViolation] = []
    meta: Optional[Dict] = None
    occupancy: Dict[str, Dict[int, int]] = defaultdict(
        lambda: defaultdict(int))
    audited = 0
    committed = 0

    def flag(rule: str, seq: int, detail: str) -> None:
        violations.append(AuditViolation(rule, seq, detail))

    exec_events: List[Event] = []
    for event in events:
        if event.kind is EventKind.META:
            meta = event.data
        elif event.kind is EventKind.EXEC_WINDOW:
            exec_events.append(event)
        elif event.kind is EventKind.COMMIT:
            committed += 1

    if meta is None:
        raise ValueError("event stream has no META event "
                         "(not a recorded simulation trace?)")
    base = TickBase(ticks_per_cycle=meta["ticks_per_cycle"])
    mode = RecycleMode(meta["mode"])

    for event in exec_events:
        audited += 1
        d = event.data
        seq = event.seq
        is_mem = d["mem"]

        # 1. arrival
        arrival_edge = base.cycle_start(d["issue"] + d["lat"])
        if d["start"] < arrival_edge:
            flag("arrival", seq,
                 f"start {d['start']} before arrival edge "
                 f"{arrival_edge}")

        # 2. dataflow
        if not is_mem:
            for src_seq, avail in d["srcs"]:
                if avail is None:
                    flag("dataflow", seq,
                         f"source #{src_seq} never issued")
                elif d["start"] < avail:
                    flag("dataflow", seq,
                         f"start {d['start']} before source "
                         f"#{src_seq} avail {avail}")

        # 3. window
        if not is_mem and d["end"] not in (d["start"] + d["ex"],
                                           d["start"] + d["ex_actual"]):
            flag("window", seq,
                 f"end {d['end']} inconsistent with start "
                 f"{d['start']} + ex {d['ex']}")

        # 4. discipline
        mid_cycle = d["start"] % base.ticks_per_cycle != 0
        if mid_cycle and not d["transparent"]:
            flag("discipline", seq,
                 "non-transparent op started mid-cycle")
        if mid_cycle and mode is RecycleMode.BASELINE:
            flag("discipline", seq, "baseline op started mid-cycle")
        if mid_cycle and mode is RecycleMode.MOS and d["hold"]:
            flag("discipline", seq, "MOS op crossed a clock edge")

        # 5. capacity bookkeeping
        start_cycle = base.cycle_of(d["start"])
        occupancy[d["fu"]][start_cycle] += 1
        if d["hold"]:
            occupancy[d["fu"]][start_cycle + 1] += 1

    pools = meta.get("pools", {})
    for fu, cycles in occupancy.items():
        limit = pools.get(fu)
        if limit is None:
            continue
        for cycle, used in cycles.items():
            if used > limit:
                violations.append(AuditViolation(
                    "capacity", -1,
                    f"{fu} used {used}/{limit} units in cycle "
                    f"{cycle}"))

    # 6. completeness
    total = meta["instructions"]
    if committed != total:
        violations.append(AuditViolation(
            "completeness", -1, f"committed {committed} of {total}"))

    return ReplayAuditResult(violations=violations, audited_uops=audited,
                             committed=committed)
