"""Trace lowering: flatten a dynamic trace into parallel columns.

The dynamic instruction stream is fully known before timing starts
(the functional interpreter already ran), so — in the spirit of
ahead-of-time analyzers like OSACA — everything the timing model would
re-derive per uop can be computed **once per trace**:

* **columns** — per-entry scalars (`pc`, `op_width`, `mem_addr`, FU
  class index, slack-LUT/static-instruction index, ...) land in flat
  ``array('q')`` / ``bytearray`` columns instead of per-uop objects;
* **static dataflow** — an architectural-register RAT walk over the
  trace yields, for every entry, the exact producer seqs its dispatch
  rename would resolve (the RAT never rewinds: dispatch is
  trace-ordered), the youngest older overlapping store
  (``order_dep``), and the forward dependents list;
* **basic blocks** — maximal straight-line runs (ended by branches or
  any non-sequential ``next_pc``), length-capped and deduplicated by
  their static-pc tuple, so backends can specialize per-block
  straight-line step functions and reuse them across loop iterations.

The lowering is *config-independent* (no mode/threshold/width-predictor
state leaks in) and memoized on the trace object, so one trace swept
over a cores × modes grid lowers exactly once.

Correctness notes (the equivalences the compiled backend relies on):

* producer filtering by "committed at dispatch time" stays dynamic —
  the static lists hold every producer, supersets are safe because all
  consumers gate on liveness at dispatch;
* a load's ``order_dep`` is the globally youngest older overlapping
  store; whenever the dynamic model would have found *no* in-flight
  store, this one is already committed and every use of it is a no-op
  (stores commit in order);
* ``dependents`` lists include not-yet-dispatched consumers; backends
  must gate notification/GP-candidacy on "already dispatched".
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.isa.opcodes import Cond, OpClass, Opcode
from repro.pipeline.trace import Trace
from repro.pipeline.uop import OPCLASS_INDEX

#: straight-line specialization cap: longer runs are split so generated
#: step functions stay small enough for CPython's compiler to digest
MAX_BLOCK_LEN = 64


@dataclass
class LoweredTrace:
    """Flat-column view of one dynamic trace (see module docstring)."""

    trace: Trace
    n: int
    # -- per-dynamic-entry columns -------------------------------------
    pc: array
    next_pc: array
    op_width: array
    mem_addr: array          # -1 when the entry touches no memory
    mem_size: array
    cls_idx: array           # OPCLASS_INDEX of the FU class
    static_idx: array        # index into `instrs` (the slack-LUT index)
    taken: bytearray
    is_store: bytearray
    is_cond_branch: bytearray   # conditional B: the gshare-visible ops
    # -- static dataflow ------------------------------------------------
    producers: Tuple[Tuple[int, ...], ...]
    order_dep: array         # seq of the youngest older overlapping store
    dependents: Tuple[Tuple[int, ...], ...]
    # -- static instruction table --------------------------------------
    instrs: Tuple            # unique static instructions
    static_pcs: array        # pc of each static instruction
    # -- basic blocks ---------------------------------------------------
    blocks: Tuple[Tuple[int, ...], ...]   # each: tuple of static_idx
    block_id: array          # per entry: which block
    block_offset: array      # per entry: position inside its block
    #: per-block dynamic start seqs (first execution is enough to
    #: specialize; later executions reuse the same block function)
    block_starts: Dict[int, List[int]] = field(default_factory=dict)

    def entry_tuple(self, i: int) -> tuple:
        """Round-trip view of entry *i* (tested against the Trace)."""
        return (self.instrs[self.static_idx[i]], self.pc[i],
                self.next_pc[i], bool(self.taken[i]), self.op_width[i],
                None if self.mem_addr[i] < 0 else self.mem_addr[i],
                self.mem_size[i], bool(self.is_store[i]),
                tuple(OPCLASS_INDEX)[self.cls_idx[i]])


def _static_io(instr, memo: Dict[int, tuple]) -> tuple:
    """(source regs, dest regs) of a static instruction, memoized."""
    io = memo.get(id(instr))
    if io is None:
        io = memo[id(instr)] = (tuple(instr.sources()),
                                tuple(instr.dests()))
    return io


def lower_trace(trace: Trace) -> LoweredTrace:
    """Lower *trace*; memoized on the trace object."""
    cached = getattr(trace, "_lowered", None)
    if cached is not None:
        return cached

    entries = trace.entries
    n = len(entries)
    col_pc = array("q", bytes(8 * n))
    col_next_pc = array("q", bytes(8 * n))
    col_width = array("q", bytes(8 * n))
    col_addr = array("q", bytes(8 * n))
    col_size = array("q", bytes(8 * n))
    col_cls = array("q", bytes(8 * n))
    col_static = array("q", bytes(8 * n))
    col_taken = bytearray(n)
    col_store = bytearray(n)
    col_condbr = bytearray(n)
    col_order = array("q", bytes(8 * n))

    instrs: List = []
    static_pcs = array("q")
    static_of_pc: Dict[int, int] = {}
    io_memo: Dict[int, tuple] = {}

    producers: List[Tuple[int, ...]] = []
    dependents: List[List[int]] = [[] for _ in range(n)]
    rat: Dict = {}
    last_store_at: Dict[int, int] = {}

    for i, entry in enumerate(entries):
        instr = entry.instr
        pc = entry.pc
        sidx = static_of_pc.get(pc)
        if sidx is None:
            sidx = static_of_pc[pc] = len(instrs)
            instrs.append(instr)
            static_pcs.append(pc)
        col_pc[i] = pc
        col_next_pc[i] = entry.next_pc
        col_width[i] = entry.op_width
        col_addr[i] = -1 if entry.mem_addr is None else entry.mem_addr
        col_size[i] = entry.mem_size or 0
        col_cls[i] = OPCLASS_INDEX[entry.cls]
        col_static[i] = sidx
        col_taken[i] = 1 if entry.taken else 0
        col_store[i] = 1 if entry.is_store else 0
        col_condbr[i] = 1 if (entry.cls is OpClass.BRANCH
                              and instr.op is Opcode.B
                              and instr.cond is not Cond.AL) else 0

        # rename: the last trace-order writer of each source register
        src_regs, dst_regs = _static_io(instr, io_memo)
        srcs: List[int] = []
        for reg in src_regs:
            p = rat.get(reg)
            if p is not None and p not in srcs:
                srcs.append(p)
        producers.append(tuple(srcs))
        for p in srcs:
            dependents[p].append(i)

        # memory disambiguation: youngest older overlapping store
        order = -1
        cls = entry.cls
        if cls is OpClass.LOAD and entry.mem_addr is not None:
            lo = entry.mem_addr
            for b in range(lo, lo + (entry.mem_size or 0)):
                s = last_store_at.get(b, -1)
                if s > order:
                    order = s
        col_order[i] = order
        if order >= 0 and order not in srcs:
            dependents[order].append(i)
        if entry.is_store and entry.mem_addr is not None:
            lo = entry.mem_addr
            for b in range(lo, lo + (entry.mem_size or 0)):
                last_store_at[b] = i
        for reg in dst_regs:
            rat[reg] = i

    # -- basic blocks: maximal straight-line runs ----------------------
    blocks: List[Tuple[int, ...]] = []
    block_of: Dict[Tuple[int, ...], int] = {}
    col_block = array("q", bytes(8 * n))
    col_offset = array("q", bytes(8 * n))
    block_starts: Dict[int, List[int]] = {}
    i = 0
    while i < n:
        j = i
        while True:
            ends = (entries[j].cls is OpClass.BRANCH
                    or entries[j].next_pc != entries[j].pc + 1
                    or j - i + 1 >= MAX_BLOCK_LEN
                    or j + 1 >= n)
            if ends:
                break
            j += 1
        key = tuple(col_static[i:j + 1])
        bid = block_of.get(key)
        if bid is None:
            bid = block_of[key] = len(blocks)
            blocks.append(key)
        block_starts.setdefault(bid, []).append(i)
        for k in range(i, j + 1):
            col_block[k] = bid
            col_offset[k] = k - i
        i = j + 1

    lowered = LoweredTrace(
        trace=trace, n=n,
        pc=col_pc, next_pc=col_next_pc, op_width=col_width,
        mem_addr=col_addr, mem_size=col_size, cls_idx=col_cls,
        static_idx=col_static, taken=col_taken, is_store=col_store,
        is_cond_branch=col_condbr,
        producers=tuple(producers), order_dep=col_order,
        dependents=tuple(tuple(d) for d in dependents),
        instrs=tuple(instrs), static_pcs=static_pcs,
        blocks=tuple(blocks), block_id=col_block,
        block_offset=col_offset, block_starts=block_starts)
    try:
        trace._lowered = lowered
    except AttributeError:
        pass          # Trace without __dict__: lowering stays uncached
    return lowered


#: modules whose source participates in compiled-result cache keys
_LOWERING_SOURCES = ("lower.py", "compiled.py", "vector.py",
                     "../pipeline/codegen.py")
_digest_memo: Optional[str] = None


def lowering_digest() -> str:
    """Digest of the lowering + compiled-backend source.

    Folded into campaign cache keys so that editing the compiled
    backend can never serve a stale cached result (the engine name
    alone would not catch a bug fix inside the same engine).
    """
    global _digest_memo
    if _digest_memo is None:
        h = hashlib.sha256()
        here = Path(__file__).parent
        for name in _LOWERING_SOURCES:
            path = here / name
            if path.is_file():
                h.update(name.encode())
                h.update(path.read_bytes())
        _digest_memo = h.hexdigest()[:16]
    return _digest_memo


__all__ = ["LoweredTrace", "MAX_BLOCK_LEN", "lower_trace",
           "lowering_digest"]
