"""Two-level cache hierarchy + DRAM latency model (Table I).

``L1 (64 kB) → L2 (2 MB, with prefetch) → DRAM``.  The hierarchy is a
timing model: :meth:`MemoryHierarchy.load_latency` returns the cycles a
load spends in the memory system, while stores are charged at commit
(write-back, write-allocate).

The Fig. 10 operation classes use this model's outcome: a load that hits
L1 is MEM-LL (low latency), anything that misses L1 is MEM-HL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import Event, EventKind

from .cache import Cache, CacheStats
from .prefetch import NextLinePrefetcher, StridePrefetcher


@dataclass(frozen=True)
class MemoryConfig:
    """Latency/geometry parameters of the hierarchy."""

    l1_size: int = 64 * 1024
    l1_assoc: int = 4
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    line_bytes: int = 64
    l1_latency: int = 2       # cycles, load-to-use on an L1 hit
    l2_latency: int = 12
    dram_latency: int = 80
    prefetch: bool = True


class MemoryHierarchy:
    """L1 + L2 + DRAM with stride/next-line prefetch into L2→L1."""

    def __init__(self, config: MemoryConfig = MemoryConfig()) -> None:
        self.config = config
        self.l1 = Cache("L1", size_bytes=config.l1_size,
                        assoc=config.l1_assoc, line_bytes=config.line_bytes)
        self.l2 = Cache("L2", size_bytes=config.l2_size,
                        assoc=config.l2_assoc, line_bytes=config.line_bytes)
        self._stride = StridePrefetcher()
        self._next_line = NextLinePrefetcher(line_bytes=config.line_bytes)
        self.loads = 0
        self.stores = 0
        self.l1_load_misses = 0
        #: event sink + current cycle (attached by the simulator on
        #: traced runs; untraced accesses skip one None check)
        self.obs = None
        self.now = -1

    def _level_of(self, latency: int) -> str:
        config = self.config
        if latency <= config.l1_latency:
            return "l1"
        if latency <= config.l1_latency + config.l2_latency:
            return "l2"
        return "dram"

    def load_latency(self, addr: int, pc: int = 0) -> int:
        """Cycles for a load at *addr*; trains the prefetchers."""
        self.loads += 1
        latency = self._access(addr, is_write=False)
        if latency > self.config.l1_latency:
            self.l1_load_misses += 1
        if self.config.prefetch:
            for pf_addr in self._stride.observe(pc, addr):
                self._prefetch(pf_addr)
        if self.obs is not None:
            self.obs.emit(Event(EventKind.MEM_ACCESS, self.now, -1, {
                "access": "load", "addr": addr, "pc": pc,
                "level": self._level_of(latency), "latency": latency,
            }))
        return latency

    def store_latency(self, addr: int, pc: int = 0) -> int:
        """Cycles to retire a store (charged at commit)."""
        self.stores += 1
        latency = self._access(addr, is_write=True)
        if self.obs is not None:
            self.obs.emit(Event(EventKind.MEM_ACCESS, self.now, -1, {
                "access": "store", "addr": addr, "pc": pc,
                "level": self._level_of(latency), "latency": latency,
            }))
        return latency

    def _access(self, addr: int, *, is_write: bool) -> int:
        hit_l1, wb = self.l1.access(addr, is_write=is_write)
        if wb is not None:
            self.l2.access(wb, is_write=True)
        if hit_l1:
            return self.config.l1_latency
        hit_l2, _ = self.l2.access(addr, is_write=False)
        if self.config.prefetch and not hit_l2:
            nxt = self._next_line.observe_miss(addr)
            if nxt is not None:
                self.l2.fill_prefetch(nxt)
        if hit_l2:
            return self.config.l1_latency + self.config.l2_latency
        return (self.config.l1_latency + self.config.l2_latency
                + self.config.dram_latency)

    def _prefetch(self, addr: int) -> None:
        """Prefetch into both levels (timing-only model)."""
        self.l2.fill_prefetch(addr)
        self.l1.fill_prefetch(addr)

    def is_l1_hit(self, addr: int) -> bool:
        """Non-destructive L1 residence probe (for MEM-HL/LL stats)."""
        return self.l1.probe(addr)

    @property
    def l1_stats(self) -> CacheStats:
        return self.l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        return self.l2.stats
