"""Set-associative cache model with LRU replacement.

A timing-only model: it tracks which lines are resident (tags), not their
data — the functional memory image lives in
:class:`repro.isa.semantics.Memory`.  Write-back, write-allocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "prefetched")

    def __init__(self, tag: int, dirty: bool = False,
                 prefetched: bool = False) -> None:
        self.tag = tag
        self.dirty = dirty
        self.prefetched = prefetched


class Cache:
    """One level of set-associative cache.

    ``access`` returns whether the reference hit; fills and evictions are
    handled internally and reported through the return value so the
    hierarchy can charge lower levels for the miss and the writeback.
    """

    def __init__(self, name: str, *, size_bytes: int, assoc: int,
                 line_bytes: int = 64) -> None:
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(f"{name}: size not divisible by assoc*line")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count must be a power of 2")
        #: per-set list of lines, most-recently-used last
        self._sets: List[List[_Line]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line_addr = addr // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def probe(self, addr: int) -> bool:
        """Non-destructive lookup (no LRU update, no stats)."""
        set_idx, tag = self._locate(addr)
        return any(line.tag == tag for line in self._sets[set_idx])

    def access(self, addr: int, *, is_write: bool = False
               ) -> Tuple[bool, Optional[int]]:
        """Reference *addr*; returns ``(hit, writeback_line_addr)``.

        On a miss the line is filled (write-allocate) and the victim's
        line address is returned when it was dirty.
        """
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        for i, line in enumerate(ways):
            if line.tag == tag:
                self.stats.hits += 1
                if line.prefetched:
                    self.stats.prefetch_hits += 1
                    line.prefetched = False
                if is_write:
                    line.dirty = True
                ways.append(ways.pop(i))  # move to MRU
                return True, None
        self.stats.misses += 1
        writeback = self._fill(set_idx, tag, dirty=is_write)
        return False, writeback

    def fill_prefetch(self, addr: int) -> None:
        """Install a line speculatively (prefetch); no demand stats."""
        set_idx, tag = self._locate(addr)
        if any(line.tag == tag for line in self._sets[set_idx]):
            return
        self.stats.prefetch_fills += 1
        self._fill(set_idx, tag, dirty=False, prefetched=True)

    def _fill(self, set_idx: int, tag: int, *, dirty: bool,
              prefetched: bool = False) -> Optional[int]:
        ways = self._sets[set_idx]
        writeback = None
        if len(ways) >= self.assoc:
            victim = ways.pop(0)  # LRU
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                writeback = ((victim.tag * self.num_sets + set_idx)
                             * self.line_bytes)
        ways.append(_Line(tag=tag, dirty=dirty, prefetched=prefetched))
        return writeback

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def invariant_check(self) -> None:
        """Structural invariants (used by property tests)."""
        for set_idx, ways in enumerate(self._sets):
            assert len(ways) <= self.assoc, "set over-full"
            tags = [line.tag for line in ways]
            assert len(tags) == len(set(tags)), "duplicate tag in set"
