"""Cache-hierarchy substrate: L1/L2 with prefetch + DRAM (Table I)."""

from .cache import Cache, CacheStats
from .hierarchy import MemoryConfig, MemoryHierarchy
from .prefetch import NextLinePrefetcher, StridePrefetcher

__all__ = [
    "Cache", "CacheStats", "MemoryConfig", "MemoryHierarchy",
    "NextLinePrefetcher", "StridePrefetcher",
]
