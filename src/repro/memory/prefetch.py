"""Hardware prefetchers: next-line and per-PC stride.

Table I's cores attach a prefetcher to the L1/L2 pair.  We implement the
standard combination: a next-line prefetcher for streaming code and a
PC-indexed stride detector (two confirmations before issuing) for
strided array walks — the access pattern the ML kernels and MiBench
loops generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class _StrideEntry:
    last_addr: int = -1
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """PC-indexed stride prefetcher with confidence threshold.

    Prefetch distance is at least one cache line per step: small-stride
    streams (e.g. 16-byte SIMD loads walking a row) would otherwise
    prefetch within the line already being fetched and hide nothing.
    """

    def __init__(self, *, entries: int = 256, degree: int = 4,
                 threshold: int = 2, line_bytes: int = 64) -> None:
        self.entries = entries
        self.degree = degree
        self.threshold = threshold
        self.line_bytes = line_bytes
        self._table = [_StrideEntry() for _ in range(entries)]
        self.issued = 0

    def observe(self, pc: int, addr: int) -> List[int]:
        """Train on a demand access; returns addresses to prefetch."""
        entry = self._table[pc % self.entries]
        prefetches: List[int] = []
        if entry.last_addr >= 0:
            stride = addr - entry.last_addr
            if stride != 0 and stride == entry.stride:
                entry.confidence = min(entry.confidence + 1, 3)
            else:
                entry.stride = stride
                entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride != 0:
            step = entry.stride
            if abs(step) < self.line_bytes:
                step = self.line_bytes if step > 0 else -self.line_bytes
            for k in range(1, self.degree + 1):
                prefetches.append(addr + k * step)
            self.issued += len(prefetches)
        return prefetches


class NextLinePrefetcher:
    """Prefetch line N+1 on every demand miss to line N."""

    def __init__(self, *, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self.issued = 0

    def observe_miss(self, addr: int) -> Optional[int]:
        self.issued += 1
        return (addr // self.line_bytes + 1) * self.line_bytes
