"""Dataflow critical-path analysis of dynamic traces.

ReDSOC's benefit is bounded by how much of a program's *dataflow
critical path* runs through recyclable single-cycle operations: on an
infinitely wide machine with perfect memory, execution time equals the
longest register-dependence chain.  This module computes that bound
under both timing disciplines:

* **synchronous** — every producer-consumer hand-off waits for a clock
  edge (each single-cycle op costs a full cycle on the chain),
* **transparent** — recyclable ops cost only their EX-TIME ticks, with
  hand-offs at completion instants (an idealised ReDSOC: no FU limits,
  no scheduling constraints).

The ratio of the two is the *dataflow-bound speedup*: an upper bound on
what any implementation of slack recycling can achieve for that trace.
The bench compares measured speedups against it (measured must never
exceed the bound) and uses it to separate "the workload has no slack on
its critical path" from "the microarchitecture failed to harvest it".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.slack_lut import SlackLUT
from repro.core.ticks import DEFAULT_TICK_BASE, TickBase
from repro.isa.opcodes import OpClass, Opcode
from repro.pipeline.trace import Trace


@dataclass(frozen=True)
class CriticalPathResult:
    """Dataflow bounds for one trace."""

    synchronous_ticks: int
    transparent_ticks: int
    instructions: int

    @property
    def bound_speedup(self) -> float:
        """Upper bound on slack-recycling speedup for this trace."""
        if self.transparent_ticks == 0:
            return 0.0
        return self.synchronous_ticks / self.transparent_ticks - 1.0

    def synchronous_cycles(self, base: TickBase = DEFAULT_TICK_BASE
                           ) -> float:
        return self.synchronous_ticks / base.ticks_per_cycle


#: fixed chain costs (cycles) for non-recyclable classes on the ideal
#: machine; memory is charged an L1 hit (the bound intentionally ignores
#: misses — it isolates the *compute* chain)
_LATENCY_CYCLES = {
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    OpClass.MUL: 3,
    OpClass.DIV: 12,
    OpClass.FP: 4,
    OpClass.BRANCH: 1,
    OpClass.SIMD: 3,
}


def analyze_critical_path(trace: Trace, *,
                          base: TickBase = DEFAULT_TICK_BASE,
                          lut: SlackLUT = None) -> CriticalPathResult:
    """Longest register-dependence chain under both disciplines."""
    lut = lut or SlackLUT(base)
    ticks_per_cycle = base.ticks_per_cycle
    ready_sync: Dict = {}
    ready_trans: Dict = {}
    longest_sync = 0
    longest_trans = 0

    def edge(tick: int) -> int:
        return ((tick + ticks_per_cycle - 1)
                // ticks_per_cycle) * ticks_per_cycle

    for entry in trace.entries:
        instr = entry.instr
        cls = instr.cls
        if cls in (OpClass.NOP, OpClass.HALT):
            continue
        sources = instr.sources()
        start_sync = max((ready_sync.get(reg, 0) for reg in sources),
                         default=0)
        start_trans = max((ready_trans.get(reg, 0) for reg in sources),
                          default=0)

        recyclable = (cls is OpClass.ALU
                      or (cls is OpClass.SIMD
                          and instr.op not in (Opcode.VMUL,)))
        if recyclable:
            try:
                ex = lut.ex_time(instr, entry.op_width)
            except ValueError:
                ex = ticks_per_cycle
            done_sync = edge(start_sync) + ticks_per_cycle
            done_trans = start_trans + ex
        else:
            latency = _LATENCY_CYCLES.get(cls, 1) * ticks_per_cycle
            done_sync = edge(start_sync) + latency
            done_trans = edge(start_trans) + latency

        for reg in instr.dests():
            ready_sync[reg] = done_sync
            ready_trans[reg] = done_trans
        longest_sync = max(longest_sync, done_sync)
        longest_trans = max(longest_trans, done_trans)

    return CriticalPathResult(synchronous_ticks=longest_sync,
                              transparent_ticks=longest_trans,
                              instructions=len(trace.entries))
