"""ASCII timeline rendering of transparent execution (Fig. 4 / Fig. 5).

Turns a list of execution windows into the kind of tick-level diagram
the paper uses to explain slack recycling::

    cycle        |0.......|1.......|2.......|
    x1  eor      |        |###     |        |
    x2  add      |        |   #####|##      | (holds FU 2 cycles)
    x3  ror      |        |        |  ####  |

Each ``#`` is one tick of real computation; the vertical bars are clock
edges.  Used by the examples and handy when debugging scheduler changes:
``render_uops`` works directly off the auditor's recorded uop log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.ticks import DEFAULT_TICK_BASE, TickBase


@dataclass(frozen=True)
class Window:
    """One operation's execution window, in absolute ticks."""

    label: str
    start_tick: int
    end_tick: int
    note: str = ""


def render_windows(windows: Sequence[Window], *,
                   base: TickBase = DEFAULT_TICK_BASE,
                   from_cycle: Optional[int] = None,
                   to_cycle: Optional[int] = None) -> str:
    """Render *windows* as an aligned tick diagram.

    An explicit ``from_cycle``/``to_cycle`` range always renders the
    ruler for that range, even when it excludes every window (or there
    are none): zoomed views compose cleanly instead of collapsing to a
    sentinel string.  Only a call with no windows *and* no range falls
    back to ``"(no windows)"``.
    """
    if not windows and from_cycle is None and to_cycle is None:
        return "(no windows)"
    tpc = base.ticks_per_cycle
    lo = (from_cycle if from_cycle is not None
          else min((w.start_tick for w in windows), default=0) // tpc)
    hi = (to_cycle if to_cycle is not None
          else (max((w.end_tick for w in windows), default=0)
                + tpc - 1) // tpc)
    span = range(lo, max(lo, hi))
    label_width = max((len(w.label) for w in windows), default=0) + 2

    def ruler() -> str:
        cells = []
        for cycle in span:
            digits = str(cycle)[:tpc]
            cells.append("|" + digits + "." * (tpc - len(digits)))
        return " " * label_width + "".join(cells) + "|"

    lines = [ruler()]
    for window in windows:
        row = []
        for cycle in span:
            row.append("|")
            for tick in range(cycle * tpc, (cycle + 1) * tpc):
                row.append("#" if window.start_tick <= tick < window.end_tick
                           else " ")
        line = window.label.ljust(label_width) + "".join(row) + "|"
        if window.note:
            line += f" ({window.note})"
        lines.append(line)
    return "\n".join(lines)


def render_uops(uops: Iterable, *, base: TickBase = DEFAULT_TICK_BASE,
                limit: int = 24, from_cycle: Optional[int] = None,
                to_cycle: Optional[int] = None) -> str:
    """Render recorded simulator uops (e.g. the audit log) directly."""
    windows: List[Window] = []
    for uop in uops:
        if len(windows) >= limit:
            break
        note = []
        if uop.extra_cycle_hold:
            note.append("holds FU 2 cycles")
        if uop.gp_issued:
            note.append("eager issue")
        windows.append(Window(
            label=f"#{uop.seq} {uop.instr.op.name.lower()}",
            start_tick=uop.start_tick, end_tick=uop.end_tick,
            note=", ".join(note)))
    return render_windows(windows, base=base, from_cycle=from_cycle,
                          to_cycle=to_cycle)
