"""Analysis layer: statistics, sequences, power conversion, reports."""

from .critical_path import CriticalPathResult, analyze_critical_path
from .power import DVFSModel, power_savings_from_speedup
from .timeline import Window, render_uops, render_windows
from .stats import (
    HIGH_SLACK_FRACTION,
    OP_CLASSES,
    OpDistribution,
    SimStats,
    speedup,
)

__all__ = [
    "CriticalPathResult", "DVFSModel", "HIGH_SLACK_FRACTION",
    "OP_CLASSES", "OpDistribution", "analyze_critical_path",
    "SimStats", "Window", "power_savings_from_speedup",
    "render_uops", "render_windows", "speedup",
]
