"""Plain-text rendering of evaluation tables and figure series.

The benchmark harness regenerates every table/figure of the paper as
text; these helpers keep the output format consistent so
``EXPERIMENTS.md`` can quote it directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Render an aligned text table with a title rule."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    print("\n" + format_table(title, headers, rows) + "\n")


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"
