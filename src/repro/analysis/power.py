"""Power-savings conversion via V/F scaling (Sec. VI-C).

The paper converts ReDSOC's speedup into power savings at *baseline*
performance: if the mechanism makes the core X% faster at the same
frequency, the frequency (and with it the voltage) can instead be
lowered until performance matches the baseline, and the saved power is
reported.  Scaling is modelled on an ARM Cortex-A57-style DVFS curve
(the AnandTech A57 characterisation the paper cites): voltage scales
roughly linearly with frequency across the operating range, and dynamic
power follows ``P = C·V²·f``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DVFSModel:
    """A57-like operating range at 28/20 nm-class technology."""

    f_nominal_ghz: float = 2.0
    f_min_ghz: float = 0.8
    v_nominal: float = 1.10
    v_min: float = 0.80
    #: fraction of total core power that is leakage (scales ~V, not V²f)
    leakage_fraction: float = 0.25

    def voltage_at(self, f_ghz: float) -> float:
        """Linear V/f interpolation over the DVFS range (clamped)."""
        f = min(max(f_ghz, self.f_min_ghz), self.f_nominal_ghz)
        span = (f - self.f_min_ghz) / (self.f_nominal_ghz - self.f_min_ghz)
        return self.v_min + span * (self.v_nominal - self.v_min)

    def relative_power(self, f_ghz: float) -> float:
        """Total power at *f_ghz* relative to the nominal point."""
        f = min(max(f_ghz, self.f_min_ghz), self.f_nominal_ghz)
        v = self.voltage_at(f)
        dyn = (v / self.v_nominal) ** 2 * (f / self.f_nominal_ghz)
        leak = v / self.v_nominal
        return ((1.0 - self.leakage_fraction) * dyn
                + self.leakage_fraction * leak)


def power_savings_from_speedup(speedup: float, *,
                               model: DVFSModel = DVFSModel()) -> float:
    """Fractional power saved running ReDSOC at iso-performance.

    ``speedup`` is fractional (0.10 = 10 % faster).  The frequency is
    scaled down by 1/(1+speedup) so wall-clock performance matches the
    baseline, and the resulting relative power is compared against
    nominal.
    """
    if speedup < 0:
        return 0.0
    f_new = model.f_nominal_ghz / (1.0 + speedup)
    return 1.0 - model.relative_power(f_new)
