"""Simulation statistics: counters, operation distribution, speedup.

Everything the evaluation section reports is derived from this module:
IPC/cycles (Fig. 13, 15), the Fig. 10 operation-class distribution,
FU-stall rates (Fig. 14), predictor accuracies (Fig. 12, Sec. II-B) and
transparent-sequence statistics (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Fig. 10 operation classes.
OP_CLASSES = ("MEM-HL", "MEM-LL", "SIMD", "OtherMulti", "ALU-LS", "ALU-HS")

#: Fig. 10's high-slack boundary: data slack > 20 % of the clock cycle.
HIGH_SLACK_FRACTION = 0.20


@dataclass
class OpDistribution:
    """Committed-operation class counts (Fig. 10)."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {cls: 0 for cls in OP_CLASSES})

    def add(self, op_class: str) -> None:
        self.counts[op_class] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total or 1
        return {cls: n / total for cls, n in self.counts.items()}

    def fraction(self, op_class: str) -> float:
        return self.fractions()[op_class]


@dataclass
class SimStats:
    """Full counter set of one simulation run."""

    cycles: int = 0
    committed: int = 0

    # scheduling / recycling
    recycled_ops: int = 0          # ops that started mid-cycle
    eager_issues: int = 0          # GP-phase (same-cycle-as-parent) issues
    two_cycle_holds: int = 0
    fu_stall_cycles: int = 0
    dispatch_stall_cycles: int = 0
    gp_mispeculations: int = 0     # only possible with unskewed selection
    wasted_gp_grants: int = 0

    # replays
    la_replays: int = 0            # last-arrival mispredict reissues
    width_replays: int = 0         # aggressive width mispredict reissues

    # front end
    branch_mispredicts: int = 0
    branches: int = 0

    distribution: OpDistribution = field(default_factory=OpDistribution)

    # predictor rates (copied from predictor stats at end of run)
    width_aggressive_rate: float = 0.0
    width_accuracy: float = 0.0
    la_misprediction_rate: float = 0.0
    la_predictions: int = 0
    la_mispredictions: int = 0

    # transparent sequences (Fig. 11)
    seq_expected_length: float = 0.0
    seq_mean_length: float = 0.0
    num_sequences: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def fu_stall_rate(self) -> float:
        return self.fu_stall_cycles / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches


def speedup(baseline_cycles: int, improved_cycles: int) -> float:
    """Relative speedup of *improved* over *baseline* (same work)."""
    if improved_cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / improved_cycles - 1.0
