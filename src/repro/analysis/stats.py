"""Simulation statistics: counters, operation distribution, speedup.

Everything the evaluation section reports is derived from this module:
IPC/cycles (Fig. 13, 15), the Fig. 10 operation-class distribution,
FU-stall rates (Fig. 14), predictor accuracies (Fig. 12, Sec. II-B) and
transparent-sequence statistics (Fig. 11).

:class:`SimStats` stays the flat, JSON-friendly record the benches and
the campaign cache consume, but it is populated *through* the
simulator's :class:`~repro.obs.metrics.MetricsRegistry` at the end of a
run: end-of-run gauges (predictor rates, sequence statistics) flow from
the registry into the dataclass (:meth:`SimStats.populate_from`), and
the live counters flow back out (:meth:`SimStats.export_counters`) so a
metrics snapshot is always a superset of the stats record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.metrics import MetricsRegistry

#: Fig. 10 operation classes.
OP_CLASSES = ("MEM-HL", "MEM-LL", "SIMD", "OtherMulti", "ALU-LS", "ALU-HS")

#: Fig. 10's high-slack boundary: data slack > 20 % of the clock cycle.
HIGH_SLACK_FRACTION = 0.20

#: registry gauge name → SimStats field: values the simulator computes
#: once at the end of a run and publishes through the metrics registry
GAUGE_FIELDS: Dict[str, str] = {
    "predict.width.aggressive_rate": "width_aggressive_rate",
    "predict.width.accuracy": "width_accuracy",
    "predict.la.misprediction_rate": "la_misprediction_rate",
    "predict.la.predictions": "la_predictions",
    "predict.la.mispredictions": "la_mispredictions",
    "seq.expected_length": "seq_expected_length",
    "seq.mean_length": "seq_mean_length",
    "seq.count": "num_sequences",
    "front.branches": "branches",
    "front.branch_mispredicts": "branch_mispredicts",
}

#: registry counter name → SimStats field: counts the simulator keeps
#: inline in the hot loop and mirrors into the registry at finalize
COUNTER_FIELDS: Dict[str, str] = {
    "core.cycles": "cycles",
    "core.committed": "committed",
    "sched.recycled_ops": "recycled_ops",
    "sched.eager_issues": "eager_issues",
    "sched.two_cycle_holds": "two_cycle_holds",
    "sched.fu_stall_cycles": "fu_stall_cycles",
    "sched.dispatch_stall_cycles": "dispatch_stall_cycles",
    "sched.gp_mispeculations": "gp_mispeculations",
    "sched.wasted_gp_grants": "wasted_gp_grants",
    "replay.la": "la_replays",
    "replay.width": "width_replays",
}


@dataclass
class OpDistribution:
    """Committed-operation class counts (Fig. 10)."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {cls: 0 for cls in OP_CLASSES})

    def add(self, op_class: str) -> None:
        self.counts[op_class] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total or 1
        return {cls: n / total for cls, n in self.counts.items()}

    def fraction(self, op_class: str) -> float:
        return self.fractions()[op_class]


@dataclass
class SimStats:
    """Full counter set of one simulation run."""

    cycles: int = 0
    committed: int = 0

    # scheduling / recycling
    recycled_ops: int = 0          # ops that started mid-cycle
    eager_issues: int = 0          # GP-phase (same-cycle-as-parent) issues
    two_cycle_holds: int = 0
    fu_stall_cycles: int = 0
    dispatch_stall_cycles: int = 0
    gp_mispeculations: int = 0     # only possible with unskewed selection
    wasted_gp_grants: int = 0

    # replays
    la_replays: int = 0            # last-arrival mispredict reissues
    width_replays: int = 0         # aggressive width mispredict reissues

    # front end
    branch_mispredicts: int = 0
    branches: int = 0

    distribution: OpDistribution = field(default_factory=OpDistribution)

    # predictor rates (copied from predictor stats at end of run)
    width_aggressive_rate: float = 0.0
    width_accuracy: float = 0.0
    la_misprediction_rate: float = 0.0
    la_predictions: int = 0
    la_mispredictions: int = 0

    # transparent sequences (Fig. 11)
    seq_expected_length: float = 0.0
    seq_mean_length: float = 0.0
    num_sequences: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def fu_stall_rate(self) -> float:
        return self.fu_stall_cycles / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    # -- metrics-registry plumbing ------------------------------------

    def populate_from(self, metrics: MetricsRegistry) -> None:
        """Fill the end-of-run fields from registry gauges.

        This replaces the old ad-hoc field-copying block in the
        simulator's ``_finalize``: the simulator publishes predictor /
        sequence / front-end results as gauges, and this single mapping
        is the only place that knows which gauge lands in which field.
        Gauges absent from the registry leave their field untouched.
        """
        for gauge_name, field_name in GAUGE_FIELDS.items():
            gauge = metrics.gauges.get(gauge_name)
            if gauge is not None:
                setattr(self, field_name, gauge.value)

    def export_counters(self, metrics: MetricsRegistry) -> None:
        """Mirror the hot-loop counters (and the Fig. 10 distribution)
        into the registry so a metrics snapshot is self-contained."""
        for counter_name, field_name in COUNTER_FIELDS.items():
            metrics.counter(counter_name).set(getattr(self, field_name))
        for op_class, count in self.distribution.counts.items():
            metrics.counter(f"dist.{op_class}").set(count)


def speedup(baseline_cycles: int, improved_cycles: int) -> float:
    """Relative speedup of *improved* over *baseline* (same work)."""
    if improved_cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / improved_cycles - 1.0
