"""ReDSOC reproduction: Recycling Data Slack in Out-of-Order Cores.

A full-system reproduction of Ravi & Lipasti's HPCA 2019 paper: an
ARM-flavoured micro-op ISA, a structural circuit-timing model, a
cycle-level out-of-order core with transparent slack recycling
(slack LUT, width/last-arrival predictors, eager grandparent wakeup,
skewed selection), cache hierarchy, comparator baselines (timing
speculation, operation fusion), the paper's three workload suites, and
benches regenerating every evaluation table and figure.

Quickstart::

    from repro import simulate, BIG, RecycleMode
    from repro.workloads import bitcount

    program = bitcount(100)
    base = simulate(program, BIG.with_mode(RecycleMode.BASELINE))
    red = simulate(program, BIG.with_mode(RecycleMode.REDSOC))
    print(f"speedup: {base.cycles / red.cycles - 1:.1%}")
"""

from .core import (
    BIG,
    CORES,
    CoreConfig,
    CoreSimulator,
    MEDIUM,
    RecycleMode,
    SMALL,
    SchedulerDesign,
    SimResult,
    SlackLUT,
    simulate,
)
from .pipeline.trace import Trace, generate_trace

__version__ = "1.0.0"

__all__ = [
    "BIG", "CORES", "CoreConfig", "CoreSimulator", "MEDIUM",
    "RecycleMode", "SMALL", "SchedulerDesign", "SimResult", "SlackLUT",
    "Trace", "generate_trace", "simulate",
]
