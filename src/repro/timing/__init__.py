"""Circuit-timing substrate: structural delay models for the ALU datapath.

Substitutes the paper's RTL-synthesis timing analysis (TSMC 45 nm,
Synopsys DC, 2 GHz target) with calibrated structural models:

* :func:`~repro.timing.kogge_stone.ks_adder_delay_ps` — prefix-adder
  carry path vs effective width (Fig. 2),
* :func:`~repro.timing.alu_timing.scalar_op_delay_ps` /
  :func:`~repro.timing.alu_timing.fig1_table` — per-opcode computation
  times (Fig. 1),
* :func:`~repro.timing.simd_timing.simd_op_delay_ps` — sub-word SIMD
  lane timing (Type-Slack).
"""

from .alu_timing import (
    FIG1_ORDER,
    fig1_table,
    scalar_op_delay_ps,
    worst_case_alu_delay_ps,
)
from .gates import DEFAULT_TECH, TechParams, validate_tech
from .kogge_stone import KoggeStoneAdder, fig2_series, ks_adder_delay_ps
from .logic_unit import logic_unit_delay_ps
from .shifter import barrel_shifter_delay_ps, shifter_series, shifter_stages
from .simd_timing import (
    simd_op_delay_ps,
    type_slack_table,
    vmla_accumulate_delay_ps,
)

__all__ = [
    "DEFAULT_TECH", "FIG1_ORDER", "KoggeStoneAdder", "TechParams",
    "barrel_shifter_delay_ps", "fig1_table", "fig2_series",
    "ks_adder_delay_ps", "logic_unit_delay_ps", "scalar_op_delay_ps",
    "shifter_series", "shifter_stages", "simd_op_delay_ps",
    "type_slack_table", "validate_tech", "vmla_accumulate_delay_ps",
    "worst_case_alu_delay_ps",
]
