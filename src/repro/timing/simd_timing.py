"""Sub-word SIMD lane timing (the Type-Slack source, Sec. II-A).

A 128-bit SIMD unit computes all lanes in parallel, so its critical path
is one lane's path — and a lane is exactly `dtype` bits wide.  Narrow
data types (I8/I16) therefore finish well before the I64 worst case that
times the unit: the same varying-carry-chain effect as Fig. 2, but with
the width *declared in the ISA* (no prediction needed).

Multi-cycle SIMD multiplies are true synchronous; VMLA's final
*accumulate* stage, however, late-forwards between like ops (Cortex-A57
behaviour the paper cites), so that stage has a recyclable delay,
returned by :func:`vmla_accumulate_delay_ps`.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.opcodes import Opcode, SimdType

from .gates import DEFAULT_TECH, TechParams
from .kogge_stone import ks_adder_delay_ps
from .logic_unit import logic_unit_delay_ps
from .shifter import barrel_shifter_delay_ps

#: SIMD ops whose lane path is an adder (carry chain of lane width).
_ADDER_LANE_OPS = frozenset({Opcode.VADD, Opcode.VSUB})
#: Compare-select ops: subtract then mux.
_CMP_LANE_OPS = frozenset({Opcode.VMAX, Opcode.VMIN})
#: Bitwise lanes: width-independent logic.
_LOGIC_LANE_OPS = frozenset({Opcode.VAND, Opcode.VORR, Opcode.VEOR})
#: Per-lane shifter ops.
_SHIFT_LANE_OPS = frozenset({Opcode.VSHL, Opcode.VSHR})
#: Broadcast/move: operand mux only.
_MOVE_LANE_OPS = frozenset({Opcode.VDUP, Opcode.VMOV})


def simd_op_delay_ps(opcode: Opcode, dtype: SimdType, *,
                     tech: TechParams = DEFAULT_TECH) -> float:
    """Raw lane-critical-path delay of a single-cycle SIMD op."""
    lane = dtype.value
    delay = tech.base_ps
    if opcode in _ADDER_LANE_OPS:
        delay += ks_adder_delay_ps(lane, width=64, tech=tech)
    elif opcode in _CMP_LANE_OPS:
        delay += ks_adder_delay_ps(lane, width=64, tech=tech) + tech.cmp_mux_ps
    elif opcode in _LOGIC_LANE_OPS:
        delay += logic_unit_delay_ps(tech=tech)
    elif opcode in _SHIFT_LANE_OPS:
        delay += barrel_shifter_delay_ps(lane, word_width=64, tech=tech)
    elif opcode in _MOVE_LANE_OPS:
        delay += logic_unit_delay_ps(tech=tech) - 20.0  # bare mux/broadcast
    else:
        raise ValueError(f"{opcode} is not a single-cycle SIMD op")
    return delay


def vmla_accumulate_delay_ps(dtype: SimdType, *,
                             tech: TechParams = DEFAULT_TECH) -> float:
    """Delay of VMLA's final accumulate-add stage (late-forwardable)."""
    return tech.base_ps + ks_adder_delay_ps(dtype.value, width=64, tech=tech)


def type_slack_table(*, tech: TechParams = DEFAULT_TECH
                     ) -> Dict[SimdType, float]:
    """Worst single-cycle SIMD delay per data type (the 4 type buckets)."""
    table: Dict[SimdType, float] = {}
    for dtype in SimdType:
        worst = max(
            simd_op_delay_ps(op, dtype, tech=tech)
            for op in (_ADDER_LANE_OPS | _CMP_LANE_OPS | _LOGIC_LANE_OPS
                       | _SHIFT_LANE_OPS))
        table[dtype] = max(worst, vmla_accumulate_delay_ps(dtype, tech=tech))
    return table
