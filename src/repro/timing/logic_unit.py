"""Bitwise-logic unit delay model.

The logic unit (AND/OR/XOR/BIC/MVN/MOV and the flag-only TST/TEQ) is two
gate levels plus the result mux — one fixed delay, *independent of
operand width*: there is no carry chain, every bit is computed locally.

This width-independence is why the paper's 14-bucket classification
collapses all logic widths into a single bucket per shift mode
(2 logic buckets + 8 arithmetic buckets + 4 SIMD-type buckets = 14).
"""

from __future__ import annotations

from .gates import DEFAULT_TECH, TechParams


def logic_unit_delay_ps(*, tech: TechParams = DEFAULT_TECH) -> float:
    """Critical-path delay of the two-level logic unit."""
    return tech.logic_unit_ps
