"""Structural barrel-shifter delay model.

A logarithmic barrel shifter for an *n*-bit word is ``log2(n)`` cascaded
2:1 mux stages (shift by 1, 2, 4, ...).  Its delay therefore depends on
the *word* width being shifted, not on the shift amount — but a narrow
effective operand still shortens the path, because the upper stages only
route constant sign/zero bits whose values are known without waiting.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from .gates import DEFAULT_TECH, TechParams


def shifter_stages(effective_width: int, word_width: int = 32) -> int:
    """Mux stages on the critical path for a given effective width."""
    w = max(2, min(effective_width, word_width))
    return max(1, math.ceil(math.log2(w)))


def barrel_shifter_delay_ps(effective_width: int = 32, *,
                            word_width: int = 32,
                            tech: TechParams = DEFAULT_TECH) -> float:
    """Critical-path delay of the barrel shifter."""
    return shifter_stages(effective_width, word_width) * tech.shifter_stage_ps


def shifter_series(word_width: int = 32, *,
                   tech: TechParams = DEFAULT_TECH) -> List[Tuple[int, float]]:
    """Delay vs effective width, 1..word_width (for analysis/benches)."""
    return [(w, barrel_shifter_delay_ps(w, word_width=word_width, tech=tech))
            for w in range(1, word_width + 1)]
