"""Structural Kogge–Stone prefix-adder delay model (paper Fig. 2).

Fig. 2 of the paper shows the critical carry-propagation path of a 16-bit
Kogge–Stone adder shrinking as the effective operand width shrinks: when
only the low *w* bits carry information, the carry chain traverses
``ceil(log2(w))`` prefix levels instead of the full ``log2(n)``.

We build the actual prefix network as a DAG — node ``(level, bit)`` with
edges from the two dot-operator inputs — and compute delays by longest
path over the sub-network that an effective width *w* activates.  This is
a faithful structural substitute for the paper's post-synthesis timing
analysis: delay grows ~logarithmically with effective width, which is
exactly the Width-Slack source (Sec. II-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from .gates import DEFAULT_TECH, TechParams

Node = Tuple[int, int]  # (level, bit); level 0 = p/g preprocessing


@dataclass(frozen=True)
class KoggeStoneAdder:
    """A *width*-bit Kogge–Stone adder as an explicit prefix network."""

    width: int

    @property
    def levels(self) -> int:
        """Number of prefix levels (``ceil(log2(width))``)."""
        return max(1, math.ceil(math.log2(self.width)))

    def prefix_network(self) -> Dict[Node, List[Node]]:
        """Build the dot-operator DAG.

        Returns a mapping from each node to its fan-in nodes.  Level 0
        nodes (p/g generation) have no fan-in.  At level ``k`` (1-based),
        bit ``i`` combines ``(k-1, i)`` with ``(k-1, i - 2**(k-1))`` when
        the span reaches back that far, otherwise it passes through.
        """
        network: Dict[Node, List[Node]] = {}
        for bit in range(self.width):
            network[(0, bit)] = []
        for level in range(1, self.levels + 1):
            span = 1 << (level - 1)
            for bit in range(self.width):
                prev = (level - 1, bit)
                if bit >= span:
                    network[(level, bit)] = [prev, (level - 1, bit - span)]
                else:
                    network[(level, bit)] = [prev]
        return network

    def critical_path_levels(self, effective_width: int) -> int:
        """Prefix levels on the longest *active* carry path.

        With an effective operand width of *w*, carries can only be
        generated in bits ``< w``; the longest chain ends at bit ``w-1``
        and needs ``ceil(log2(w))`` combining levels.  Computed by
        longest-path search over the structural network restricted to
        nodes that can propagate a live carry.
        """
        w = max(1, min(effective_width, self.width))
        if w == 1:
            return 1  # single p/g + one combine for carry-out
        network = self.prefix_network()
        depth: Dict[Node, int] = {}

        def node_depth(node: Node) -> int:
            if node in depth:
                return depth[node]
            level, bit = node
            fan_in = [p for p in network[node] if p[1] < w]
            if not fan_in or level == 0:
                d = 0
            # a pass-through node adds wire, not a dot-operator level
            elif len(fan_in) == 1:
                d = node_depth(fan_in[0])
            else:
                d = max(node_depth(p) for p in fan_in) + 1
            depth[node] = d
            return d

        return max(node_depth((self.levels, bit)) for bit in range(w))


@lru_cache(maxsize=None)
def _critical_levels(width: int, effective_width: int) -> int:
    return KoggeStoneAdder(width).critical_path_levels(effective_width)


def ks_adder_delay_ps(effective_width: int, *, width: int = 32,
                      tech: TechParams = DEFAULT_TECH) -> float:
    """Delay of a *width*-bit KS adder for a given effective input width.

    Composes p/g preprocessing, the structurally-derived number of prefix
    levels, the sum XOR, and a per-bit wire penalty (deeper networks fan
    out further).  Monotonically non-decreasing in *effective_width*.
    """
    levels = _critical_levels(width, max(1, min(effective_width, width)))
    wire = tech.adder_wire_ps_per_bit * max(1, min(effective_width, width))
    return (tech.adder_pg_ps + levels * tech.adder_prefix_ps
            + tech.adder_sum_ps + wire)


def fig2_series(width: int = 16, *,
                tech: TechParams = DEFAULT_TECH) -> List[Tuple[int, float]]:
    """Reproduce Fig. 2: critical delay vs effective width on a KS adder.

    Returns ``[(effective_width, delay_ps), ...]`` for widths 1..width.
    """
    return [(w, ks_adder_delay_ps(w, width=width, tech=tech))
            for w in range(1, width + 1)]
