"""Technology parameters for the structural delay models.

The paper derives per-opcode computation times from RTL synthesised for a
TSMC 45 nm standard-cell library at a 2 GHz (500 ps) target (Fig. 1).  We
cannot synthesise RTL here, so :mod:`repro.timing` substitutes *structural*
delay models — Kogge–Stone prefix adder, logarithmic barrel shifter,
two-level logic unit — whose per-stage delays are the constants below.

The constants are calibrated so the composed opcode delays land on the
same fractions of the 500 ps clock that Fig. 1 shows:

* bitwise logical ops        ≈ 130–150 ps  (~30 % of the cycle)
* standalone shifts/rotates  ≈ 190 ps      (~40 %)
* full-width add/sub family  ≈ 360–380 ps  (~75 %)
* shift-modified arithmetic  ≈ 470–495 ps  (~95–100 %, the critical path)

and so the worst-case path (flexible-shift + 32-bit carry chain + bypass)
still fits inside the clock period — that path is what *sets* the
conservative clock in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechParams:
    """Per-stage delays (picoseconds) of the synthetic 45 nm-like library."""

    #: clock period at the 2 GHz synthesis target
    clock_ps: float = 500.0
    #: input operand routing + source mux + FF clk-to-q, charged once per op
    base_ps: float = 70.0
    #: one 2:1 mux stage of the barrel shifter
    shifter_stage_ps: float = 20.0
    #: propagate/generate preprocessing of the prefix adder
    adder_pg_ps: float = 20.0
    #: one prefix (dot-operator) level of the Kogge-Stone tree
    adder_prefix_ps: float = 42.0
    #: final sum XOR stage
    adder_sum_ps: float = 20.0
    #: wire/fan-out penalty per result bit of the adder (ps per bit)
    adder_wire_ps_per_bit: float = 1.0
    #: two-level AOI logic unit (AND/OR/XOR/BIC/MVN/MOV)
    logic_unit_ps: float = 60.0
    #: mux folding the flexible-shift result into the ALU operand path
    flex_mux_ps: float = 16.0
    #: comparator select mux (VMAX/VMIN)
    cmp_mux_ps: float = 16.0
    #: transparent-bypass wire + FF-bypass mux between execution units;
    #: charged into every EX-TIME because a recycled consumer picks its
    #: operand off this path (Sec. III)
    bypass_ps: float = 20.0
    #: FF setup margin that the conventional clock absorbs
    setup_ps: float = 15.0


#: Default technology instance used throughout the reproduction.
DEFAULT_TECH = TechParams()


def validate_tech(tech: TechParams) -> None:
    """Check that the worst-case ALU path fits in the clock period.

    The conservative clock must accommodate the shift-modified full-width
    arithmetic path (``ADD rd, rn, rm, LSR #k`` at 32-bit effective
    width) plus FF setup.  Raises ``ValueError`` when the technology is
    mis-calibrated — the simulator refuses to run with a clock that would
    produce timing violations in the *baseline*.
    """
    from .alu_timing import worst_case_alu_delay_ps  # local: avoid cycle

    worst = worst_case_alu_delay_ps(tech)
    if worst + tech.setup_ps > tech.clock_ps:
        raise ValueError(
            f"worst-case ALU path {worst:.1f} ps + setup {tech.setup_ps} ps "
            f"exceeds the {tech.clock_ps} ps clock")
