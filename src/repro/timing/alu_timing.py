"""Per-opcode ALU computation times (reproduces Fig. 1).

Composes the structural sub-unit models into a single-cycle ALU delay for
every scalar opcode, as a function of the *effective operand width*
(Width-Slack) and of an optional flexible-operand shift (the ``ADD-LSR``
/ ``SUB-ROR`` composite paths at the right edge of Fig. 1).

The delays returned here are *raw* combinational delays, directly
comparable to the paper's post-synthesis numbers.  The scheduling
EX-TIME adds the transparent-bypass overhead and quantises to ticks —
that happens in :mod:`repro.core.slack_lut`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.opcodes import (
    ARITH_OPS,
    LOGICAL_OPS,
    Opcode,
    SHIFT_OPS,
)

from .gates import DEFAULT_TECH, TechParams
from .kogge_stone import ks_adder_delay_ps
from .logic_unit import logic_unit_delay_ps
from .shifter import barrel_shifter_delay_ps

#: Small per-opcode structural offsets (ps) within the logic family:
#: MOV is a bare operand mux, MVN adds an inverter, XOR-based ops are a
#: level slower than NAND-based ones.  These produce Fig. 1's intra-group
#: spread without affecting bucket classification (buckets take the
#: worst delay in the group).
_LOGIC_OFFSETS_PS: Dict[Opcode, float] = {
    Opcode.MOV: -20.0,
    Opcode.MVN: -10.0,
    Opcode.BIC: -5.0,
    Opcode.AND: 0.0,
    Opcode.ORR: 0.0,
    Opcode.TST: 0.0,
    Opcode.EOR: 10.0,
    Opcode.TEQ: 10.0,
}

#: Carry-in ops pay one extra mux on the carry path.
_CARRY_IN_EXTRA_PS = 10.0


def scalar_op_delay_ps(opcode: Opcode, *, effective_width: int = 32,
                       flex_shift: bool = False,
                       tech: TechParams = DEFAULT_TECH) -> float:
    """Raw combinational delay of one scalar single-cycle ALU op.

    ``flex_shift`` marks a flexible second operand (inline shift), which
    puts the barrel shifter *in series* with the main unit.
    """
    delay = tech.base_ps
    if flex_shift:
        delay += (barrel_shifter_delay_ps(32, tech=tech) + tech.flex_mux_ps)

    if opcode in LOGICAL_OPS:
        delay += logic_unit_delay_ps(tech=tech)
        delay += _LOGIC_OFFSETS_PS.get(opcode, 0.0)
    elif opcode in SHIFT_OPS:
        delay += barrel_shifter_delay_ps(effective_width, tech=tech)
    elif opcode in ARITH_OPS:
        delay += ks_adder_delay_ps(effective_width, tech=tech)
        if opcode in (Opcode.ADC, Opcode.SBC, Opcode.RSC):
            delay += _CARRY_IN_EXTRA_PS
    else:
        raise ValueError(f"{opcode} is not a single-cycle scalar ALU op")
    return delay


def worst_case_alu_delay_ps(tech: TechParams = DEFAULT_TECH) -> float:
    """The path that sets the conservative clock: flex-shift + full add."""
    return scalar_op_delay_ps(Opcode.ADC, effective_width=32,
                              flex_shift=True, tech=tech)


#: Display order of Fig. 1's x-axis (logic → shifts → arithmetic →
#: carry arithmetic → shift-modified arithmetic composites).
FIG1_ORDER: List[Tuple[str, Opcode, bool]] = [
    ("BIC", Opcode.BIC, False), ("MVN", Opcode.MVN, False),
    ("AND", Opcode.AND, False), ("EOR", Opcode.EOR, False),
    ("TST", Opcode.TST, False), ("TEQ", Opcode.TEQ, False),
    ("ORR", Opcode.ORR, False), ("MOV", Opcode.MOV, False),
    ("LSR", Opcode.LSR, False), ("ASR", Opcode.ASR, False),
    ("LSL", Opcode.LSL, False), ("ROR", Opcode.ROR, False),
    ("RRX", Opcode.RRX, False),
    ("RSB", Opcode.RSB, False), ("RSC", Opcode.RSC, False),
    ("SUB", Opcode.SUB, False), ("CMP", Opcode.CMP, False),
    ("ADD", Opcode.ADD, False), ("CMN", Opcode.CMN, False),
    ("ADDC", Opcode.ADC, False), ("SUBC", Opcode.SBC, False),
    ("ADD-LSR", Opcode.ADD, True), ("SUB-ROR", Opcode.SUB, True),
]


def fig1_table(*, effective_width: int = 32,
               tech: TechParams = DEFAULT_TECH) -> List[Tuple[str, float]]:
    """Computation time for every Fig. 1 ALU operation, in display order."""
    return [
        (name, scalar_op_delay_ps(op, effective_width=effective_width,
                                  flex_shift=flex, tech=tech))
        for name, op, flex in FIG1_ORDER
    ]
