"""The analytic throughput model: features → predicted cycles.

``feature_vector`` reduces :class:`~repro.predict.chains.TraceFeatures`
plus a :class:`~repro.core.config.CoreConfig` to a small named vector —
the classic bound-and-penalty decomposition:

* ``crit``  — the per-mode critical-path length through the dependence
  graph (the latency bound);
* ``fu`` / ``front`` / ``taken`` — throughput bounds: the most
  contended functional-unit pool, the front-end/commit width, and the
  one-taken-branch-per-cycle fetch limit;
* ``base``  — the max of all bounds (the roofline the machine cannot
  beat);
* ``bmiss`` / ``mem`` — additive penalties for branch mispredictions
  and loads that miss the L1.

``predict`` dots that vector with a fitted non-negative calibration and
floors the result at the commit-width bound.  Non-negative coefficients
make the metamorphic guarantees structural: every feature is monotone
non-decreasing under a coarser tick base and non-increasing under a
wider machine, so predictions inherit both monotonicities; redsoc/mos
predictions are additionally clamped to the baseline prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.core.config import CoreConfig, RecycleMode
from repro.pipeline.trace import Trace

from .chains import TraceFeatures, extract_features

#: the model's feature basis, in canonical order
FEATURE_NAMES = ("base", "crit", "fu", "front", "taken", "bmiss", "mem",
                 "memc")

#: functional-unit pool sizing per operation class (mirrors
#: repro.pipeline.resources.FUPools)
_POOL_ATTR = {
    "alu": "alu_units",
    "simd": "simd_units",
    "fp": "fp_units",
    "load": "mem_ports",
    "store": "mem_ports",
    "mul": "complex_units",
    "div": "complex_units",
    "branch": "branch_units",
}


def _mode_name(mode: Union[RecycleMode, str, None],
               config: CoreConfig) -> str:
    if mode is None:
        mode = config.mode
    if isinstance(mode, RecycleMode):
        return mode.value
    name = str(mode)
    RecycleMode(name)  # raises ValueError on unknown mode
    return name


def feature_vector(features: TraceFeatures, config: CoreConfig,
                   mode: Union[RecycleMode, str, None] = None,
                   ) -> Dict[str, float]:
    """The named feature vector for one (trace, core, mode) triple."""
    name = _mode_name(mode, config)
    crit = features.crit_cycles.get(name, 0.0)

    fu = 0.0
    pressure: Dict[str, float] = {}
    for cls_name, count in features.op_counts.items():
        attr = _POOL_ATTR.get(cls_name)
        if attr is None:
            continue
        pressure[attr] = pressure.get(attr, 0.0) + count
    for attr, count in pressure.items():
        units = max(1, getattr(config, attr))
        demand = count / units
        if demand > fu:
            fu = demand

    front = features.n / max(1, config.front_width)
    # a fetch group ends at the (limit+1)-th taken branch, so up to
    # limit+1 taken branches share a cycle
    taken = features.taken_branches / (config.taken_branches_per_cycle + 1)
    # +2 covers resolve latency the redirect penalty does not include
    bmiss = features.mispredicts * (config.mispredict_penalty + 2)
    # independent (streaming) miss latency stalls the window; chained
    # (pointer-chase) miss latency is already serialised inside crit
    indep = features.load_extra_cycles - features.mem_chain_cycles
    mem = indep / max(1, config.mem_ports)
    memc = features.mem_chain_cycles / max(1, config.mem_ports)
    base = max(crit, fu, front, taken)
    return {
        "base": base,
        "crit": crit,
        "fu": fu,
        "front": front,
        "taken": taken,
        "bmiss": bmiss,
        "mem": mem,
        "memc": memc,
    }


@dataclass
class Prediction:
    """A zero-simulation throughput estimate with its error bound."""

    mode: str
    cycles: float
    ipc: float
    #: predicted gain over the predicted baseline (0.0 for baseline)
    speedup: float
    interval_lo: float
    interval_hi: float
    confidence: float
    calibration_key: str
    n: int
    features: Dict[str, float]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "predicted": True,
            "mode": self.mode,
            "cycles": round(self.cycles, 3),
            "ipc": round(self.ipc, 6),
            "speedup": round(self.speedup, 6),
            "interval": {
                "lo": round(self.interval_lo, 3),
                "hi": round(self.interval_hi, 3),
                "confidence": self.confidence,
            },
            "calibration": self.calibration_key,
            "instructions": self.n,
            "features": {k: round(v, 4) for k, v in self.features.items()},
        }


def _raw_cycles(vec: Dict[str, float], fit, floor: float) -> float:
    cycles = fit.intercept
    for name in FEATURE_NAMES:
        cycles += fit.coef.get(name, 0.0) * vec[name]
    return max(floor, cycles)


def predict(trace: Union[Trace, TraceFeatures], config: CoreConfig,
            mode: Union[RecycleMode, str, None] = None, *,
            calibration=None, confidence: float = 0.9) -> Prediction:
    """Predict cycles / IPC / speedup for *trace* on *config*.

    *trace* may be a :class:`~repro.pipeline.trace.Trace` (features are
    extracted on the fly) or a pre-extracted
    :class:`~repro.predict.chains.TraceFeatures` (the cached fast
    path).  The interval is the fitted error-quantile band at
    *confidence* around the point estimate.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    name = _mode_name(mode, config)
    if isinstance(trace, Trace):
        features = extract_features(trace, config)
    else:
        features = trace

    if calibration is None:
        from .calibrate import default_calibration
        calibration = default_calibration()

    floor = max(1.0, features.n / max(1, config.front_width))
    base_fit, base_key = calibration.fit_for(config.name, "baseline")
    base_vec = feature_vector(features, config, "baseline")
    base_cycles = _raw_cycles(base_vec, base_fit, floor)

    if name == "baseline":
        fit, key = base_fit, base_key
        vec = base_vec
        cycles = base_cycles
    else:
        fit, key = calibration.fit_for(config.name, name)
        vec = feature_vector(features, config, name)
        # recycling never slows the machine down: the simulator's
        # transparent start rule degenerates to the synchronous one, so
        # the prediction must not cross the baseline prediction either
        cycles = min(base_cycles, _raw_cycles(vec, fit, floor))

    n = max(1, features.n)
    quantile = fit.error_at(confidence)
    lo = max(1.0, cycles / (1.0 + quantile))
    hi = cycles * (1.0 + quantile)
    return Prediction(
        mode=name,
        cycles=cycles,
        ipc=n / cycles,
        speedup=(base_cycles / cycles) - 1.0,
        interval_lo=lo,
        interval_hi=hi,
        confidence=confidence,
        calibration_key=key,
        n=features.n,
        features=vec,
    )
