"""Cached prediction service — the piece serve and campaign share.

Feature extraction is the only non-trivial cost in a prediction
(~10 ms/100k dynamic instructions), and features depend on the trace
content plus the config fields the chain walk reads — tick base, PVT,
multi-cycle latencies, memory hierarchy, reorder-window size, front
width, taken-branch limit, and the mispredict penalty — but *not* on
the recycle mode or unit counts.  So features are cached in the same
content-addressed :class:`~repro.campaign.cache.ResultCache` directory
the simulator results live in, keyed by (predict+model source digest,
trace fingerprint, timing fingerprint): one cached extraction answers
every mode variant of a workload on that core, and a warm ``estimate``
is two small file reads plus a dot product — microseconds.

``estimate_payload`` is the worker-side entry point (mirrors the shape
of :func:`repro.serve.workers._execute_inline`); with
``allow_generate=False`` it is safe to call inline on the daemon's
event loop — it returns ``None`` instead of generating a trace on a
cold cache, and the request falls through to the worker pool.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.campaign.cache import (
    ResultCache,
    PAYLOAD_SCHEMA,
    _canonical,
    _source_digest,
    model_version,
    trace_fingerprint,
    trace_index_key,
)
from repro.core import CORES, RecycleMode
from repro.core.config import CoreConfig

from .calibrate import Calibration, default_calibration
from .chains import FEATURE_SCHEMA, TraceFeatures, extract_features
from .model import predict


def predict_version() -> str:
    """Cache namespace: the model sources plus this package."""
    return f"{model_version()}|predict:{_source_digest(('predict',))}"


def timing_fingerprint(config: CoreConfig) -> str:
    """Digest of the config fields feature extraction depends on."""
    blob = json.dumps(_canonical({
        "ticks_per_cycle": config.ticks_per_cycle,
        "tech": config.tech,
        "pvt_scale": config.pvt_scale,
        "memory": config.memory,
        "mul_latency": config.mul_latency,
        "div_latency": config.div_latency,
        "fp_latency": config.fp_latency,
        "fdiv_latency": config.fdiv_latency,
        "simd_multicycle_latency": config.simd_multicycle_latency,
        "rob_size": config.rob_size,
        "front_width": config.front_width,
        "taken_branches_per_cycle": config.taken_branches_per_cycle,
        "mispredict_penalty": config.mispredict_penalty,
    }), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def feature_key(fingerprint: str, config: CoreConfig) -> str:
    """Cache key of one trace's extracted features under *config*."""
    sha = hashlib.sha256()
    sha.update(predict_version().encode())
    sha.update(b"|features|")
    sha.update(fingerprint.encode())
    sha.update(timing_fingerprint(config).encode())
    return sha.hexdigest()[:32]


def _load_features(cache: ResultCache, fingerprint: str,
                   config: CoreConfig) -> Optional[TraceFeatures]:
    entry = cache.get(feature_key(fingerprint, config))
    if entry is None:
        return None
    try:
        return TraceFeatures.from_payload(entry["features"])
    except (KeyError, TypeError, ValueError):
        return None


def _store_features(cache: ResultCache, fingerprint: str,
                    config: CoreConfig, features: TraceFeatures) -> None:
    cache.put(feature_key(fingerprint, config), {
        "schema": PAYLOAD_SCHEMA,
        "kind": "predict-features",
        "features": features.to_payload(),
    })


def cached_features(workload: Dict[str, Any], config: CoreConfig,
                    cache: ResultCache, *,
                    allow_generate: bool = True
                    ) -> Optional[Dict[str, Any]]:
    """Features for a normalised workload dict, through the cache.

    *workload* is either ``{"suite", "bench", "scale"}`` (named) or
    ``{"program": <serialised>}`` (inline).  Returns ``{"features",
    "cache_hit", "fingerprint"}``, or ``None`` when the cache is cold
    and *allow_generate* is False.
    """
    if "suite" in workload:
        tkey = trace_index_key(workload["suite"], workload["bench"],
                               workload.get("scale"))
    else:
        digest = hashlib.sha256(json.dumps(
            workload["program"], sort_keys=True).encode()).hexdigest()
        tkey = trace_index_key("serve-inline", digest)

    fingerprint = cache.get_trace_fingerprint(tkey)
    if fingerprint is not None:
        features = _load_features(cache, fingerprint, config)
        if features is not None:
            return {"features": features, "cache_hit": True,
                    "fingerprint": fingerprint}
    if not allow_generate:
        return None

    trace = _materialise_trace(workload)
    fingerprint = trace_fingerprint(trace)
    cache.put_trace_fingerprint(tkey, fingerprint)
    features = _load_features(cache, fingerprint, config)
    if features is None:
        features = extract_features(trace, config)
        _store_features(cache, fingerprint, config, features)
    return {"features": features, "cache_hit": False,
            "fingerprint": fingerprint}


def _materialise_trace(workload: Dict[str, Any]):
    if "suite" in workload:
        from repro.campaign.jobs import CampaignJob, job_trace
        return job_trace(CampaignJob(
            suite=workload["suite"], bench=workload["bench"],
            core="small", mode="baseline",
            scale=workload.get("scale")))
    from repro.isa.serialize import program_from_dict
    from repro.pipeline.trace import generate_trace
    return generate_trace(program_from_dict(workload["program"]))


def estimate_payload(payload: Dict[str, Any], cache_dir: str, *,
                     allow_generate: bool = True,
                     calibration: Optional[Calibration] = None
                     ) -> Optional[Dict[str, Any]]:
    """Execute one ``estimate`` work unit; JSON-safe result dict.

    Payload shape matches a normalised simulate payload (named or
    inline workload plus ``core`` / ``mode``) with an optional
    ``confidence``.  With ``allow_generate=False`` this never touches
    the interpreter: a cold feature cache yields ``None`` and the
    caller (the daemon's fast path) defers to the worker pool.
    """
    start = time.perf_counter()
    core = payload["core"]
    mode = payload["mode"]
    confidence = float(payload.get("confidence", 0.9))
    config = CORES[core].with_mode(RecycleMode(mode))
    cache = ResultCache(Path(cache_dir))

    if "suite" in payload:
        suite, bench = payload["suite"], payload["bench"]
        name = f"{suite}/{bench}"
        workload: Dict[str, Any] = {
            "suite": suite, "bench": bench,
            "scale": payload.get("scale")}
    else:
        suite = "inline"
        bench = payload["program"].get("name", "inline")
        name = bench
        workload = {"program": payload["program"]}

    hit = cached_features(workload, config, cache,
                          allow_generate=allow_generate)
    if hit is None:
        return None

    calibration = calibration or default_calibration()
    prediction = predict(hit["features"], config, mode,
                         calibration=calibration, confidence=confidence)
    fit, _ = calibration.fit_for(core, mode)
    quantiles = fit.error_quantiles
    result = prediction.to_payload()
    result.update({
        "workload": name,
        "suite": suite, "bench": bench,
        "core": core, "mode": mode,
        "cache_hit": hit["cache_hit"],
        "error_bound": {
            "p50_pct": round(quantiles.get("p50", 0.0) * 100, 3),
            "p95_pct": round(quantiles.get("p95", 0.0) * 100, 3),
            "max_pct": round(quantiles.get("max", 0.0) * 100, 3),
            "samples": fit.samples,
        },
        "predict_latency_us": int((time.perf_counter() - start) * 1e6),
        "worker": f"pid-{os.getpid()}",
    })
    return result
