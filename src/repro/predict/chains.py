"""Single-pass dependence-chain feature extraction.

One O(N) walk over a dynamic trace produces everything the analytic
model needs: per-mode critical-path lengths (in ticks, using the same
slack-LUT EX-TIMEs and start rules as the simulator), the operation
mix, dependence-chain shape statistics, an exact gshare replay of the
conditional-branch stream, and a program-order replay of the cache
hierarchy for load latencies.

Four pieces of scheduler behaviour dominate accuracy and are modelled
explicitly:

* **Bypass-scheduled wakeup.**  A dependent wakes ``latency_cycles``
  before its last source syncs (``wake = cycle_of(avail) - latency``,
  floored at the producer's issue + 1), so a dependent multi-cycle op
  costs *one* cycle per link — the full latency is paid only at chain
  heads, where the op waits in the scheduler with ready sources.
* **Front-end bandwidth.**  Each instruction is assigned a fetch cycle
  by a per-mode front-end replay — ``front_width`` slots per cycle, a
  fetch group ending at the (limit+1)-th taken branch — and nothing
  issues before it is fetched.  This is what makes epoch *fill time*
  visible on narrow cores.
* **Redirect serialisation.**  A mispredicted conditional branch blocks
  fetch until the branch *issues*, which waits on the branch's own
  dependence chain.  The walk raises the per-mode fetch cycle past
  each mispredict's resolution plus the redirect penalty; epochs
  between mispredicts add instead of overlap.
* **Reorder-window occupancy.**  Instruction *i* cannot be fetched
  into the window before instruction ``i - rob_size`` commits, which
  is what serialises independent long-latency misses a small window
  cannot keep in flight (the memory-level-parallelism limit).

The walk still ignores *per-cycle* resource contention (FU counts,
issue-port conflicts, RS/LSQ occupancy): chains answer "how fast could
the data flow through this window", while the throughput bounds in
:mod:`repro.predict.model` answer "how fast can the machine move it".
The calibration layer blends the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.slack_lut import SlackLUT
from repro.core.ticks import TickBase
from repro.isa.opcodes import (
    ARITH_OPS,
    Cond,
    OpClass,
    Opcode,
    SIMD_ACCUMULATE_OPS,
    SIMD_SINGLE_CYCLE_OPS,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.branch import GsharePredictor
from repro.pipeline.trace import Trace

#: bump when the feature definition changes (invalidates feature caches)
FEATURE_SCHEMA = 1

#: RecycleMode values the per-mode critical paths are computed for
_MODES = ("baseline", "redsoc", "mos")


@dataclass
class TraceFeatures:
    """Mode-independent summary of one (trace, core-config) pair.

    ``crit_cycles`` carries one critical-path length per recycle mode;
    everything else (operation mix, branch stream, memory behaviour,
    chain shape) is identical across modes by construction, so one
    extraction serves baseline, redsoc and mos predictions — and the
    baseline prediction every speedup needs comes for free.
    """

    n: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    crit_cycles: Dict[str, float] = field(default_factory=dict)
    chain_count: int = 0
    max_chain_len: int = 0
    mean_chain_len: float = 0.0
    taken_branches: int = 0
    cond_branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    hl_loads: int = 0
    #: total load cycles beyond the L1 hit latency (program-order replay)
    load_extra_cycles: int = 0
    #: the slice of ``load_extra_cycles`` on *chained* loads — loads
    #: whose address derives (transitively) from another load's data,
    #: i.e. pointer chasing.  Their latency already serialises inside
    #: ``crit_cycles``; the remainder (independent, streaming loads)
    #: overlaps freely and costs window-limited stall instead
    mem_chain_cycles: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "feature_schema": FEATURE_SCHEMA,
            "n": self.n,
            "op_counts": dict(self.op_counts),
            "crit_cycles": {k: round(v, 6)
                            for k, v in self.crit_cycles.items()},
            "chain_count": self.chain_count,
            "max_chain_len": self.max_chain_len,
            "mean_chain_len": round(self.mean_chain_len, 6),
            "taken_branches": self.taken_branches,
            "cond_branches": self.cond_branches,
            "mispredicts": self.mispredicts,
            "loads": self.loads,
            "stores": self.stores,
            "hl_loads": self.hl_loads,
            "load_extra_cycles": self.load_extra_cycles,
            "mem_chain_cycles": self.mem_chain_cycles,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TraceFeatures":
        if payload.get("feature_schema") != FEATURE_SCHEMA:
            raise ValueError(
                f"feature payload schema "
                f"{payload.get('feature_schema')!r} != {FEATURE_SCHEMA}")
        return cls(
            n=int(payload["n"]),
            op_counts={str(k): int(v)
                       for k, v in payload["op_counts"].items()},
            crit_cycles={str(k): float(v)
                         for k, v in payload["crit_cycles"].items()},
            chain_count=int(payload["chain_count"]),
            max_chain_len=int(payload["max_chain_len"]),
            mean_chain_len=float(payload["mean_chain_len"]),
            taken_branches=int(payload["taken_branches"]),
            cond_branches=int(payload["cond_branches"]),
            mispredicts=int(payload["mispredicts"]),
            loads=int(payload["loads"]),
            stores=int(payload["stores"]),
            hl_loads=int(payload["hl_loads"]),
            load_extra_cycles=int(payload["load_extra_cycles"]),
            mem_chain_cycles=int(payload["mem_chain_cycles"]),
        )


def _static_timing(instr, config: CoreConfig, lut: SlackLUT,
                   tpc: int, op_width: int) -> Tuple[bool, int, int]:
    """(transparent-capable, latency_cycles, ex_ticks) of one dynamic
    instruction — :meth:`CoreSimulator._decode_static` semantics, with
    the observed width standing in for the width predictor (its
    mispredict replays are noise the calibration absorbs)."""
    op = instr.op
    cls = instr.cls
    if cls is OpClass.ALU:
        if op in ARITH_OPS:
            return True, 1, lut.ex_time(instr, op_width)
        return True, 1, lut.ex_time(instr)
    if cls is OpClass.SIMD:
        if op in SIMD_SINGLE_CYCLE_OPS:
            return True, 1, lut.ex_time(instr)
        if op in SIMD_ACCUMULATE_OPS:
            return True, config.simd_multicycle_latency, lut.ex_time(instr)
        return False, config.simd_multicycle_latency, tpc
    if cls is OpClass.MUL:
        return False, config.mul_latency, tpc
    if cls is OpClass.DIV:
        return False, config.div_latency, tpc
    if cls is OpClass.FP:
        return False, (config.fdiv_latency if op is Opcode.FDIV
                       else config.fp_latency), tpc
    # BRANCH / LOAD / STORE / NOP / HALT
    return False, 1, tpc


def extract_features(trace: Trace, config: CoreConfig, *,
                     window: Optional[int] = None) -> TraceFeatures:
    """Walk *trace* once under *config*'s timing parameters.

    The inputs that matter are the timing base (``ticks_per_cycle``,
    ``tech``, ``pvt_scale``), the multi-cycle latencies, the memory
    hierarchy, the redirect penalty and the reorder window — the
    recycle mode is *not* an input: all three per-mode critical paths
    come out of the same walk.

    *window* (defaults to ``config.rob_size``) sets the reorder-buffer
    constraint; pass ``window=0`` to disable it and measure the pure
    dataflow limit.
    """
    if window is None:
        window = config.rob_size
    tpc = config.ticks_per_cycle
    base = TickBase(tpc, config.tech)
    lut = SlackLUT(base, pvt_scale=config.pvt_scale)
    mem = MemoryHierarchy(config.memory)
    branch_pred = GsharePredictor()
    l1_latency = config.memory.l1_latency
    penalty = config.mispredict_penalty

    features = TraceFeatures()
    op_counts: Dict[str, int] = {}
    entries = trace.entries
    features.n = len(entries)
    if not entries:
        features.crit_cycles = {mode: 0.0 for mode in _MODES}
        return features

    # per-register producer state, for each of baseline / redsoc / mos:
    # completion tick, transparent flag (redsoc/mos only), issue cycle —
    # plus the producing chain depth and a derives-from-load-data taint
    # bit: (b, ib, r, r_tr, ir, m, m_tr, im, depth, taint)
    reg_state: Dict[Any, tuple] = {}
    # store→load forwarding: 4-byte word → per-mode store completion
    # (the simulator disambiguates by byte overlap; word granularity
    # matches every aligned access and only false-shares sub-word
    # neighbours)
    store_words: Dict[int, Tuple[int, int, int]] = {}
    static_memo: Dict[Any, Tuple[bool, int, int]] = {}

    crit_b = crit_r = crit_m = 0
    depth_sum = 0
    max_depth = 0
    roots = 0
    # per-mode front-end state: current fetch cycle, slots used in it,
    # taken branches seen in the current fetch group, and the pending
    # post-mispredict resume cycle.  The fetch cycle advances when the
    # group fills (front_width), when one-too-many taken branches land
    # in it, past each mispredicted branch's resolution + penalty, and
    # on a full reorder window — so epoch *fill time* serialises with
    # the branch chains separating epochs, which matters most on
    # narrow cores
    front_width = max(1, config.front_width)
    taken_limit = config.taken_branches_per_cycle + 1
    fc_b = fc_r = fc_m = 0
    slots_b = slots_r = slots_m = 0
    tk_b = tk_r = tk_m = 0
    pend_b = pend_r = pend_m = 0
    # per-mode in-order commit ticks, indexed for the ROB window
    commits_b: list = []
    commits_r: list = []
    commits_m: list = []
    last_cb = last_cr = last_cm = 0

    for idx, entry in enumerate(entries):
        instr = entry.instr
        cls = entry.cls
        cls_name = cls.value
        op_counts[cls_name] = op_counts.get(cls_name, 0) + 1

        mispredicted = False
        taken = False
        if cls is OpClass.BRANCH:
            if entry.taken:
                features.taken_branches += 1
                taken = True
            if instr.op is Opcode.B and instr.cond is not Cond.AL:
                features.cond_branches += 1
                if branch_pred.update(entry.pc, entry.taken):
                    features.mispredicts += 1
                    mispredicted = True

        # front-end accounting: assign this instruction a fetch cycle
        if pend_b > fc_b:
            fc_b = pend_b
            slots_b = 0
            tk_b = 0
        if window and idx >= window:
            wc = commits_b[idx - window] // tpc
            if wc > fc_b:
                fc_b = wc
                slots_b = 0
                tk_b = 0
        if slots_b >= front_width:
            fc_b += 1
            slots_b = 0
            tk_b = 0
        slots_b += 1
        if pend_r > fc_r:
            fc_r = pend_r
            slots_r = 0
            tk_r = 0
        if window and idx >= window:
            wc = commits_r[idx - window] // tpc
            if wc > fc_r:
                fc_r = wc
                slots_r = 0
                tk_r = 0
        if slots_r >= front_width:
            fc_r += 1
            slots_r = 0
            tk_r = 0
        slots_r += 1
        if pend_m > fc_m:
            fc_m = pend_m
            slots_m = 0
            tk_m = 0
        if window and idx >= window:
            wc = commits_m[idx - window] // tpc
            if wc > fc_m:
                fc_m = wc
                slots_m = 0
                tk_m = 0
        if slots_m >= front_width:
            fc_m += 1
            slots_m = 0
            tk_m = 0
        slots_m += 1
        if taken:
            # a fetch group ends at the (limit+1)-th taken branch
            tk_b += 1
            if tk_b >= taken_limit:
                fc_b += 1
                slots_b = 0
                tk_b = 0
            tk_r += 1
            if tk_r >= taken_limit:
                fc_r += 1
                slots_r = 0
                tk_r = 0
            tk_m += 1
            if tk_m >= taken_limit:
                fc_m += 1
                slots_m = 0
                tk_m = 0

        if cls is OpClass.NOP or cls is OpClass.HALT:
            depth_sum += 1
            roots += 1
            if max_depth < 1:
                max_depth = 1
            # still occupies a ROB slot until (instantly) committed
            commits_b.append(last_cb)
            commits_r.append(last_cr)
            commits_m.append(last_cm)
            continue

        if cls is OpClass.ALU and instr.op in ARITH_OPS:
            key = (id(instr), entry.op_width)
            memo = static_memo.get(key)
            if memo is None:
                memo = static_memo[key] = _static_timing(
                    instr, config, lut, tpc, entry.op_width)
        else:
            memo = static_memo.get(id(instr))
            if memo is None:
                memo = static_memo[id(instr)] = _static_timing(
                    instr, config, lut, tpc, entry.op_width)
        transparent, latency, ex = memo

        # source availability per mode: transparent producers hand a
        # transparent consumer their raw completion tick; an opaque
        # consumer (or mode-fallback) reads the edge-aligned sync tick
        src_b = src_r = src_m = 0
        ro_r = ro_m = 0     # opaque (edge-aligned) views for fallbacks
        isrc_b = isrc_r = isrc_m = -1   # max producer issue cycle
        depth = 0
        has_src = False
        src_taint = False   # does any source derive from load data?
        for reg in instr.sources():
            rec = reg_state.get(reg)
            if rec is None:
                continue
            has_src = True
            b, ib, r, r_tr, ir, m, m_tr, im, d, taint = rec
            src_taint = src_taint or taint
            if b > src_b:
                src_b = b
            if ib > isrc_b:
                isrc_b = ib
            if ir > isrc_r:
                isrc_r = ir
            if im > isrc_m:
                isrc_m = im
            if r_tr:
                edge = ((r + tpc - 1) // tpc) * tpc
                if transparent:
                    if r > src_r:
                        src_r = r
                else:
                    if edge > src_r:
                        src_r = edge
                if edge > ro_r:
                    ro_r = edge
            else:
                if r > src_r:
                    src_r = r
                if r > ro_r:
                    ro_r = r
            if m_tr:
                edge = ((m + tpc - 1) // tpc) * tpc
                if transparent:
                    if m > src_m:
                        src_m = m
                else:
                    if edge > src_m:
                        src_m = edge
                if edge > ro_m:
                    ro_m = edge
            else:
                if m > src_m:
                    src_m = m
                if m > ro_m:
                    ro_m = m
            if d > depth:
                depth = d
        # scheduler-entry floors: nothing issues before its fetch cycle
        flb, flr, flm = fc_b, fc_r, fc_m
        fb = fc_b * tpc
        fr = fc_r * tpc
        fm = fc_m * tpc
        if fb > src_b:
            src_b = fb
        if fr > src_r:
            src_r = fr
        if fr > ro_r:
            ro_r = fr
        if fm > src_m:
            src_m = fm
        if fm > ro_m:
            ro_m = fm
        depth += 1
        depth_sum += depth
        if depth > max_depth:
            max_depth = depth
        if not has_src:
            roots += 1

        if cls is OpClass.LOAD or cls is OpClass.STORE:
            addr = entry.mem_addr
            size = entry.mem_size or 1
            first_w = addr >> 2
            last_w = (addr + size - 1) >> 2
            if cls is OpClass.LOAD:
                features.loads += 1
                # the hierarchy replay always sees the access (it warms
                # and evicts state) even when forwarding supplies the
                # data without paying the latency
                latency_mem = mem.load_latency(addr, entry.pc)
                fwd_b = fwd_r = fwd_m = -1
                for w in range(first_w, last_w + 1):
                    sdep = store_words.get(w)
                    if sdep is not None:
                        if sdep[0] > fwd_b:
                            fwd_b = sdep[0]
                        if sdep[1] > fwd_r:
                            fwd_r = sdep[1]
                        if sdep[2] > fwd_m:
                            fwd_m = sdep[2]
                if fwd_b >= 0:
                    # store-to-load forwarding: data one cycle after
                    # the overlapping store (or the address) resolves
                    eb = ((src_b + tpc - 1) // tpc) * tpc
                    er = ((ro_r + tpc - 1) // tpc) * tpc
                    em = ((ro_m + tpc - 1) // tpc) * tpc
                    end_b = (eb if eb > fwd_b else fwd_b) + tpc
                    end_r = (er if er > fwd_r else fwd_r) + tpc
                    end_m = (em if em > fwd_m else fwd_m) + tpc
                    ib_out = end_b // tpc - 1
                    ir_out = end_r // tpc - 1
                    im_out = end_m // tpc - 1
                else:
                    if latency_mem > l1_latency:
                        features.hl_loads += 1
                        extra = latency_mem - l1_latency
                        features.load_extra_cycles += extra
                        if src_taint:
                            # address fed by load data: pointer
                            # chasing, already serialised inside crit
                            features.mem_chain_cycles += extra
                    lat_ticks = latency_mem * tpc
                    end_b = src_b + lat_ticks
                    end_r = ((ro_r + tpc - 1) // tpc) * tpc + lat_ticks
                    end_m = ((ro_m + tpc - 1) // tpc) * tpc + lat_ticks
                    ib_out = (end_b - lat_ticks) // tpc
                    ir_out = (end_r - lat_ticks) // tpc
                    im_out = (end_m - lat_ticks) // tpc
                tr_r = tr_m = False
            else:
                features.stores += 1
                mem.store_latency(addr, entry.pc)
                end_b = src_b + tpc
                end_r = ((ro_r + tpc - 1) // tpc) * tpc + tpc
                end_m = ((ro_m + tpc - 1) // tpc) * tpc + tpc
                ib_out = end_b // tpc - 1
                ir_out = end_r // tpc - 1
                im_out = end_m // tpc - 1
                for w in range(first_w, last_w + 1):
                    store_words[w] = (end_b, end_r, end_m)
                tr_r = tr_m = False
        else:
            # baseline: every op is opaque.  Bypass-scheduled wakeup
            # (wake = cycle_of(sync) - latency, floored at producer
            # issue + 1 and at the fetch/window floor) means the full
            # latency is charged from the *scheduler-entry* point, not
            # per dependence link: dependent multi-cycle ops cost one
            # cycle each once a chain is rolling
            eb = ((src_b + tpc - 1) // tpc) * tpc
            wake_b = eb // tpc - latency
            if wake_b < isrc_b + 1:
                wake_b = isrc_b + 1
            if wake_b < flb:
                wake_b = flb
            cs = (wake_b + latency) * tpc
            end_b = (eb if eb > cs else cs) + tpc
            ib_out = wake_b
            if transparent:
                # redsoc: transparent start at the raw source tick
                end_r = src_r + ex
                tr_r = True
                ir_out = src_r // tpc
                # MOS recycles only when execution stays inside the
                # producer's cycle: crossing the edge falls back to an
                # edge-aligned (opaque) start
                off = src_m % tpc
                if off and off + ex > tpc:
                    em = ((ro_m + tpc - 1) // tpc) * tpc
                    wake_m = em // tpc - latency
                    if wake_m < isrc_m + 1:
                        wake_m = isrc_m + 1
                    if wake_m < flm:
                        wake_m = flm
                    cs = (wake_m + latency) * tpc
                    end_m = (em if em > cs else cs) + tpc
                    tr_m = False
                    im_out = wake_m
                else:
                    end_m = src_m + ex
                    tr_m = True
                    im_out = src_m // tpc
            else:
                er = ((ro_r + tpc - 1) // tpc) * tpc
                wake_r = er // tpc - latency
                if wake_r < isrc_r + 1:
                    wake_r = isrc_r + 1
                if wake_r < flr:
                    wake_r = flr
                cs = (wake_r + latency) * tpc
                end_r = (er if er > cs else cs) + tpc
                ir_out = wake_r
                em = ((ro_m + tpc - 1) // tpc) * tpc
                wake_m = em // tpc - latency
                if wake_m < isrc_m + 1:
                    wake_m = isrc_m + 1
                if wake_m < flm:
                    wake_m = flm
                cs = (wake_m + latency) * tpc
                end_m = (em if em > cs else cs) + tpc
                im_out = wake_m
                tr_r = tr_m = False

        taint_out = True if cls is OpClass.LOAD else src_taint
        for reg in instr.dests():
            reg_state[reg] = (end_b, ib_out, end_r, tr_r, ir_out,
                              end_m, tr_m, im_out, depth, taint_out)

        if mispredicted:
            # fetch blocks until the branch issues, then pays the
            # redirect penalty before the next epoch can even start
            # (the simulator's _fetch_resume = issue + latency + penalty)
            pend_b = ib_out + 1 + penalty
            pend_r = ir_out + 1 + penalty
            pend_m = im_out + 1 + penalty

        # in-order commit: monotone per-mode commit ticks feed the
        # ROB-window floor `window` instructions downstream
        cb = ((end_b + tpc - 1) // tpc) * tpc
        cr = ((end_r + tpc - 1) // tpc) * tpc
        cm = ((end_m + tpc - 1) // tpc) * tpc
        last_cb = cb if cb > last_cb else last_cb
        last_cr = cr if cr > last_cr else last_cr
        last_cm = cm if cm > last_cm else last_cm
        commits_b.append(last_cb)
        commits_r.append(last_cr)
        commits_m.append(last_cm)

        if end_b > crit_b:
            crit_b = end_b
        if end_r > crit_r:
            crit_r = end_r
        if end_m > crit_m:
            crit_m = end_m

    features.op_counts = op_counts
    # recycling degenerates to the synchronous start rule at worst, so
    # neither recycled path can exceed the baseline critical path; the
    # walk can overshoot there because it assumes every transparent
    # start materialises (the simulator only recycles on eager co-issue)
    if crit_r > crit_b:
        crit_r = crit_b
    if crit_m > crit_b:
        crit_m = crit_b
    features.crit_cycles = {
        "baseline": crit_b / tpc,
        "redsoc": crit_r / tpc,
        "mos": crit_m / tpc,
    }
    features.chain_count = roots
    features.max_chain_len = max_depth
    features.mean_chain_len = depth_sum / features.n
    return features
