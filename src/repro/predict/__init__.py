"""Analytic throughput prediction — the zero-simulation fast path.

``repro.predict`` walks a dynamic trace's dependence graph once and
returns predicted cycles / IPC / ReDSOC speedup with a confidence
interval, in microseconds instead of the seconds a cycle-level
simulation costs.  The model follows the OSACA-style decomposition:

* **critical path** — the longest producer→consumer chain through the
  trace, accumulated in ticks with the same per-mode start rules the
  simulator uses (edge-aligned for BASELINE, transparent for REDSOC,
  transparent-unless-edge-crossing for MOS), so the slack-recycling
  credit comes from the same :class:`~repro.core.slack_lut.SlackLUT`
  the core reads at decode;
* **throughput bounds** — FU-port pressure per operation class,
  front-end width, and the taken-branch fetch limit;
* **penalty terms** — branch mispredictions (an exact gshare replay of
  the fetch stream) and memory latency beyond the L1.

A per-``(core, mode)`` calibration (:mod:`repro.predict.calibrate`)
blends those ingredients with non-negative least-squares constants
fitted against exact runs; non-negativity is what makes the metamorphic
guarantees (coarser ticks never predict faster, wider issue never
predicts slower) structural rather than statistical.
"""

from .calibrate import (
    Calibration,
    ModeFit,
    default_calibration,
    fit_calibration,
)
from .chains import TraceFeatures, extract_features
from .model import FEATURE_NAMES, Prediction, feature_vector, predict

__all__ = [
    "Calibration",
    "FEATURE_NAMES",
    "ModeFit",
    "Prediction",
    "TraceFeatures",
    "default_calibration",
    "extract_features",
    "feature_vector",
    "fit_calibration",
    "predict",
]
