"""Calibration: fitting the analytic model against exact runs.

A :class:`Calibration` maps ``"core:mode"`` keys to :class:`ModeFit`
records — non-negative least-squares coefficients over the model's
feature basis plus the fit's observed relative-error quantiles (which
become the prediction intervals and the served error-bound metadata).

``fit_calibration`` consumes ``(features, actual-cycles)`` samples from
exact simulations, splits benchmarks into train/holdout by a stable
hash of the benchmark name (so refits are reproducible and the holdout
never leaks into the coefficients), and solves *relative-space*
weighted least squares (weights ``1/actual`` — the MAPE objective) on
the train split with a tiny relative ridge via Gaussian elimination —
no numpy.  The feature subset is chosen per group by worst-case error
on data the coefficients never saw (leave-one-out refits plus the
holdout as a validation set).  Negative coefficients are eliminated by
iterative deletion (NNLS-by-deletion), and a negative intercept drops
to zero; both keep every term non-negative, which the metamorphic
monotonicity guarantees in :mod:`repro.predict.model` rely on.  Error
quantiles are then measured over *all* samples of the key, holdout
included.

The committed ``calibration.json`` next to this module is the default
calibration shipped with the repo; ``campaign predict
--fit-calibration`` regenerates it from a fresh exact matrix.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: bump when the fit file layout changes
CALIBRATION_SCHEMA = 1

_QUANTILE_KNOTS = ((0.5, "p50"), (0.9, "p90"), (0.95, "p95"), (0.995, "max"))


@dataclass
class ModeFit:
    """One fitted ``core:mode`` model with its error distribution."""

    coef: Dict[str, float]
    intercept: float = 0.0
    error_quantiles: Dict[str, float] = field(default_factory=dict)
    samples: int = 0

    def error_at(self, confidence: float) -> float:
        """Relative-error bound at *confidence*, interpolated between
        the fitted quantile knots (beyond the observed max the bound
        widens rather than pretending to more precision)."""
        q = self.error_quantiles
        pts = [(c, q.get(name, 0.0)) for c, name in _QUANTILE_KNOTS]
        if confidence <= pts[0][0]:
            return pts[0][1]
        if confidence > pts[-1][0]:
            return pts[-1][1] * 1.5 + 0.05
        for (c0, e0), (c1, e1) in zip(pts, pts[1:]):
            if confidence <= c1:
                if c1 == c0:
                    return max(e0, e1)
                frac = (confidence - c0) / (c1 - c0)
                return e0 + frac * (e1 - e0)
        return pts[-1][1]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "coef": {k: round(v, 8) for k, v in self.coef.items()},
            "intercept": round(self.intercept, 8),
            "error_quantiles": {k: round(v, 8)
                                for k, v in self.error_quantiles.items()},
            "samples": self.samples,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ModeFit":
        return cls(
            coef={str(k): float(v) for k, v in payload["coef"].items()},
            intercept=float(payload.get("intercept", 0.0)),
            error_quantiles={str(k): float(v) for k, v in
                             payload.get("error_quantiles", {}).items()},
            samples=int(payload.get("samples", 0)),
        )


#: last-resort fit when no calibration file is available: pure roofline
#: with the penalty terms at unit weight and a wide error band
_FALLBACK_FIT = ModeFit(
    coef={"base": 1.0, "bmiss": 1.0, "mem": 0.5},
    intercept=0.0,
    error_quantiles={"p50": 0.15, "p90": 0.35, "p95": 0.5, "max": 1.0},
    samples=0,
)


@dataclass
class Calibration:
    """A set of fitted models, looked up most-specific-first."""

    fits: Dict[str, ModeFit] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def fit_for(self, core: str, mode: str) -> Tuple[ModeFit, str]:
        """Resolve ``core:mode`` → (fit, key actually used)."""
        for key in (f"{core}:{mode}", f"*:{mode}", "*"):
            fit = self.fits.get(key)
            if fit is not None:
                return fit, key
        return _FALLBACK_FIT, "fallback"

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": CALIBRATION_SCHEMA,
            "meta": self.meta,
            "fits": {key: fit.to_payload()
                     for key, fit in sorted(self.fits.items())},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Calibration":
        if payload.get("schema") != CALIBRATION_SCHEMA:
            raise ValueError(
                f"calibration schema {payload.get('schema')!r} "
                f"!= {CALIBRATION_SCHEMA}")
        return cls(
            fits={str(k): ModeFit.from_payload(v)
                  for k, v in payload.get("fits", {}).items()},
            meta=dict(payload.get("meta", {})),
        )

    def save(self, path) -> None:
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "Calibration":
        return cls.from_json(json.loads(Path(path).read_text()))


_DEFAULT_PATH = Path(__file__).resolve().parent / "calibration.json"
_default_cache: Optional[Calibration] = None


def default_calibration() -> Calibration:
    """The committed calibration shipped with the package (memoized);
    an empty-but-usable fallback when the file is absent."""
    global _default_cache
    if _default_cache is None:
        if _DEFAULT_PATH.exists():
            _default_cache = Calibration.load(_DEFAULT_PATH)
        else:
            _default_cache = Calibration(meta={"source": "fallback"})
    return _default_cache


def _reset_default_calibration() -> None:
    """Test hook: drop the memoized default."""
    global _default_cache
    _default_cache = None


# --------------------------------------------------------------------
# fitting


def _solve(matrix: List[List[float]], rhs: List[float]
           ) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting; None if singular."""
    k = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(k):
        pivot = max(range(col, k), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            return None
        aug[col], aug[pivot] = aug[pivot], aug[col]
        pv = aug[col][col]
        for r in range(k):
            if r == col:
                continue
            factor = aug[r][col] / pv
            if factor == 0.0:
                continue
            for c in range(col, k + 1):
                aug[r][c] -= factor * aug[col][c]
    return [aug[i][k] / aug[i][i] for i in range(k)]


def _fit_nnls(rows: Sequence[Dict[str, float]], targets: Sequence[float],
              names: Sequence[str],
              weights: Optional[Sequence[float]] = None,
              ) -> Tuple[Dict[str, float], float]:
    """Weighted OLS with relative ridge, negatives removed by deletion.

    With ``weights = 1 / actual`` this is a relative-space fit: every
    sample contributes its *percentage* error to the loss, so small
    benchmarks are not drowned out by large ones — the right objective
    when the acceptance gate is MAPE.
    """
    if weights is None:
        weights = [1.0] * len(rows)
    active = [n for n in names
              if any(row.get(n, 0.0) != 0.0 for row in rows)]
    use_intercept = True
    while True:
        cols = list(active) + (["\0intercept"] if use_intercept else [])
        if not cols:
            break
        k = len(cols)
        xtx = [[0.0] * k for _ in range(k)]
        xty = [0.0] * k
        for row, y, w in zip(rows, targets, weights):
            vals = [w if c == "\0intercept" else w * row.get(c, 0.0)
                    for c in cols]
            wy = w * y
            for i in range(k):
                vi = vals[i]
                if vi == 0.0:
                    continue
                xty[i] += vi * wy
                for j in range(i, k):
                    xtx[i][j] += vi * vals[j]
        for i in range(k):
            for j in range(i):
                xtx[i][j] = xtx[j][i]
            xtx[i][i] *= 1.0 + 1e-8
            xtx[i][i] += 1e-9
        beta = _solve(xtx, xty)
        if beta is None:
            # degenerate design: drop the last active feature and retry
            if active:
                active.pop()
                continue
            break
        coef = dict(zip(cols, beta))
        intercept = coef.pop("\0intercept", 0.0)
        worst = min(active, key=lambda n: coef[n], default=None)
        if worst is not None and coef[worst] < -1e-9:
            active.remove(worst)
            continue
        if use_intercept and intercept < -1e-9:
            use_intercept = False
            continue
        return ({n: max(0.0, coef[n]) for n in active},
                max(0.0, intercept))
    # nothing fit: scale the roofline term to the mean observed ratio
    ratios = [y / row["base"] for row, y in zip(rows, targets)
              if row.get("base", 0.0) > 0]
    scale = sum(ratios) / len(ratios) if ratios else 1.0
    return {"base": scale}, 0.0


def _loo_error(rows: Sequence[Dict[str, float]],
               targets: Sequence[float],
               weights: Sequence[float],
               names: Sequence[str]) -> Tuple[float, float]:
    """Leave-one-out relative error of a feature subset.

    Returns ``(max, mean)`` over the held-out points — the max comes
    first because the acceptance gate is per-benchmark, so a subset
    that nails nine benchmarks and tanks the tenth must lose to one
    that is merely decent everywhere.
    """
    total = 0.0
    worst = 0.0
    n = len(rows)
    for i in range(n):
        r = rows[:i] + rows[i + 1:]
        t = targets[:i] + targets[i + 1:]
        w = weights[:i] + weights[i + 1:]
        coef, intercept = _fit_nnls(r, t, names, w)
        pred = intercept + sum(c * rows[i].get(k, 0.0)
                               for k, c in coef.items())
        err = abs(pred - targets[i]) / max(1.0, targets[i])
        total += err
        if err > worst:
            worst = err
    return worst, total / n


def _select_features(rows: Sequence[Dict[str, float]],
                     targets: Sequence[float],
                     weights: Sequence[float],
                     names: Sequence[str],
                     val_rows: Sequence[Dict[str, float]] = (),
                     val_targets: Sequence[float] = (),
                     ) -> Tuple[Dict[str, float], float]:
    """Pick the feature subset that generalises, then fit it.

    Rich bases overfit small train splits (one group has ~10 training
    benchmarks), so subsets are scored on data the coefficients never
    saw: the worst relative error across (a) leave-one-out refits of
    the train split and (b) the holdout validation samples, with the
    mean as tie-break.  Worst-case-first matches the acceptance gate
    (max error per benchmark): a subset that nails nine benchmarks and
    tanks the tenth must lose to one that is merely decent everywhere.
    ``base`` (the roofline) is always included; extras are capped at
    three; ties break toward fewer features.
    """
    extras = [n for n in names if n != "base"
              and any(row.get(n, 0.0) != 0.0 for row in rows)]
    best: Optional[Tuple[float, float, int, Tuple[str, ...]]] = None
    from itertools import combinations
    for size in range(0, min(4, len(extras)) + 1):
        for combo in combinations(extras, size):
            subset = ("base",) + combo
            worst, mean = _loo_error(rows, targets, weights, subset)
            if val_rows:
                coef, intercept = _fit_nnls(rows, targets, subset,
                                            weights)
                errs = []
                for vr, vt in zip(val_rows, val_targets):
                    pred = intercept + sum(
                        c * vr.get(k, 0.0) for k, c in coef.items())
                    errs.append(abs(pred - vt) / max(1.0, vt))
                worst = max([worst] + errs)
                mean = (mean * len(rows) + sum(errs)) \
                    / (len(rows) + len(errs))
            cand = (worst, mean, size, subset)
            if best is None or cand < best:
                best = cand
    subset = best[3] if best is not None else ("base",)
    return _fit_nnls(rows, targets, subset, weights)


def _quantile(sorted_errs: Sequence[float], q: float) -> float:
    if not sorted_errs:
        return 0.0
    idx = min(len(sorted_errs) - 1,
              max(0, int(q * len(sorted_errs) + 0.999999) - 1))
    return sorted_errs[idx]


def _in_holdout(bench: str, holdout_fraction: float) -> bool:
    digest = hashlib.sha256(bench.encode("utf-8")).hexdigest()
    return (int(digest, 16) % 1000) < int(holdout_fraction * 1000)


def fit_calibration(samples: Sequence[Dict[str, Any]], *,
                    holdout_fraction: float = 0.3,
                    min_train: int = 4) -> Calibration:
    """Fit a :class:`Calibration` from exact-run samples.

    Each sample is a dict with ``bench`` (grouping key for the holdout
    split), ``core``, ``mode``, ``features`` (the named feature vector
    from :func:`repro.predict.model.feature_vector`) and ``actual``
    (exact simulated cycles).  Per-``core:mode`` fits are produced when
    the train split has at least *min_train* samples; pooled
    ``*:mode`` and global ``*`` fits always exist as fallbacks.
    """
    from .model import FEATURE_NAMES

    groups: Dict[str, List[Dict[str, Any]]] = {}
    for sample in samples:
        key = f"{sample['core']}:{sample['mode']}"
        groups.setdefault(key, []).append(sample)
        groups.setdefault(f"*:{sample['mode']}", []).append(sample)
        groups.setdefault("*", []).append(sample)

    fits: Dict[str, ModeFit] = {}
    for key, group in groups.items():
        train = [s for s in group
                 if not _in_holdout(str(s["bench"]), holdout_fraction)]
        holdout = [s for s in group
                   if _in_holdout(str(s["bench"]), holdout_fraction)]
        if len(train) < min_train:
            train = list(group)
            holdout = []
        if len(train) < min_train and not key.startswith("*"):
            continue
        if not train:
            continue
        rows = [s["features"] for s in train]
        targets = [float(s["actual"]) for s in train]
        weights = [1.0 / max(1.0, y) for y in targets]
        coef, intercept = _select_features(
            rows, targets, weights, FEATURE_NAMES,
            val_rows=[s["features"] for s in holdout],
            val_targets=[float(s["actual"]) for s in holdout])
        fit = ModeFit(coef=coef, intercept=intercept, samples=len(group))
        errs = sorted(
            abs(_predict_raw(s["features"], fit) - float(s["actual"]))
            / max(1.0, float(s["actual"]))
            for s in group)
        fit.error_quantiles = {
            "p50": _quantile(errs, 0.5),
            "p90": _quantile(errs, 0.9),
            "p95": _quantile(errs, 0.95),
            "max": errs[-1] if errs else 0.0,
        }
        fits[key] = fit

    return Calibration(fits=fits, meta={
        "samples": len(list(samples)),
        "holdout_fraction": holdout_fraction,
        "keys": sorted(fits),
    })


def _predict_raw(features: Dict[str, float], fit: ModeFit) -> float:
    cycles = fit.intercept
    for name, weight in fit.coef.items():
        cycles += weight * features.get(name, 0.0)
    return max(1.0, cycles)
