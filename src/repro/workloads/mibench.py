"""MiBench-like kernels written natively in the micro-ISA.

The paper's embedded suite (Fig. 10/13): ``bitcnt``, ``crc``,
``strsearch``, ``gsm`` and ``corners``.  These are real implementations
of the same algorithms — their dataflow (logic/shift-heavy, narrow
operands, few memory operations) is what produces MiBench's ~60 %
high-slack ALU mix and the paper's largest speedups (bitcount > 40 % on
the BIG core).

Every builder takes a ``scale`` knob controlling the dynamic instruction
count and returns a validated :class:`~repro.isa.program.Program`.
"""

from __future__ import annotations

import random

from repro.isa import Asm, Cond, Program, ShiftOp, r


def bitcount(scale: int = 60) -> Program:
    """Count set bits of `scale` pseudo-random words (MiBench bitcnt).

    The classic shift-and-mask loop: almost pure single-cycle ALU work
    on narrowing operands — the paper's best case (< 5 % memory ops,
    ~60 % high-slack ALU).
    """
    rng = random.Random(0xB17C0)
    values = [rng.getrandbits(32) for _ in range(scale)]
    a = Asm("bitcount")
    a.data_words(0x1000, values)
    a.mov(r(1), 0x1000)        # cursor
    a.mov(r(2), scale)         # remaining words
    a.mov(r(3), 0)             # total population count
    a.label("word")
    a.ldr(r(4), r(1))
    a.mov(r(6), 16)            # fixed-count inner loop (2 bits/round):
    a.label("bits")            # counted exit -> perfectly predictable
    # the classic ARM popcount idiom: the shifted-out bit lands in the
    # carry flag and an ADC folds it into the count — 2 ops per bit
    a.lsr(r(4), r(4), 1, s=True)
    a.adc(r(3), r(3), 0)
    a.lsr(r(4), r(4), 1, s=True)
    a.adc(r(3), r(3), 0)
    a.subs(r(6), r(6), 1)
    a.b("bits", cond=Cond.NE)
    a.add(r(1), r(1), 4)
    a.subs(r(2), r(2), 1)
    a.b("word", cond=Cond.NE)
    a.halt()
    return a.finish()


def _crc_table() -> list:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
        table.append(crc)
    return table


def crc32(scale: int = 220) -> Program:
    """Table-driven CRC-32 over `scale` bytes (the MiBench algorithm).

    Per byte: ``crc = table[(crc ^ data) & 0xFF] ^ (crc >> 8)`` — a
    loop-carried chain of xor/and/shift plus one table load, the
    logic-dominated dataflow that makes crc a strong recycling case
    without being pure ALU.
    """
    rng = random.Random(0xC3C32)
    data = bytes(rng.getrandbits(8) for _ in range(scale))
    a = Asm("crc32")
    a.data(0x1000, data)
    a.data_words(0x2000, _crc_table())
    a.mov(r(1), 0x1000)
    a.mov(r(2), scale)
    a.mvn(r(3), 0)             # crc = 0xFFFFFFFF
    a.mov(r(7), 0x2000)        # table base
    a.label("byte")
    a.ldrb(r(4), r(1))
    a.eor(r(5), r(3), r(4))
    a.and_(r(5), r(5), 0xFF)
    a.ldr(r(6), r(7), index=r(5), scale=4)
    a.lsr(r(3), r(3), 8)
    a.eor(r(3), r(3), r(6))
    a.add(r(1), r(1), 1)
    a.subs(r(2), r(2), 1)
    a.b("byte", cond=Cond.NE)
    a.halt()
    return a.finish()


def stringsearch(scale: int = 18) -> Program:
    """Naive substring search (MiBench stringsearch).

    Byte loads + compares + short-circuit branches over a synthetic
    haystack; moderate memory traffic with narrow ALU work.
    """
    rng = random.Random(0x57065)
    needle = b"redsoc"
    haystack = bytearray(
        rng.choice(b"abcdefgh") for _ in range(64 * scale))
    for k in range(scale // 3 + 1):  # plant a few real matches
        pos = rng.randrange(0, len(haystack) - len(needle))
        haystack[pos:pos + len(needle)] = needle
    # rolling-hash prefilter (Rabin-Karp style): the window hash
    # h_i = XOR_k needle_window[i+k] << (n-1-k) is updated per position
    # with two flexible-shift XORs — an exact, loop-carried chain — and
    # only hash hits fall back to the byte-by-byte check
    n = len(needle)
    target = 0
    for k, byte in enumerate(needle):
        target ^= byte << (n - 1 - k)

    a = Asm("stringsearch")
    a.data(0x1000, bytes(haystack))
    a.data(0x800, needle)
    a.mov(r(1), 0x1000)                    # window cursor
    a.mov(r(2), len(haystack) - n)
    a.mov(r(3), 0)                         # match count
    a.mov(r(9), target)
    a.mov(r(5), 0)                         # rolling hash state
    for k in range(n):                     # prime the first full window
        a.ldrb(r(6), r(1), k)
        a.lsl(r(5), r(5), 1)
        a.eor(r(5), r(5), r(6))
    a.label("outer")
    a.cmp(r(5), r(9))
    a.b("advance", cond=Cond.NE)           # almost always taken
    a.mov(r(4), 0)                         # hash hit: verify bytes
    a.mov(r(8), 0x800)
    a.label("verify")
    a.ldrb(r(10), r(1), index=r(4))
    a.ldrb(r(11), r(8), index=r(4))
    a.cmp(r(10), r(11))
    a.b("advance", cond=Cond.NE)
    a.add(r(4), r(4), 1)
    a.cmp(r(4), len(needle))
    a.b("verify", cond=Cond.NE)
    a.add(r(3), r(3), 1)                   # full match
    a.label("advance")
    # roll the window: h = ((h ^ out << (n-1)) << 1) ^ in, both steps
    # as flexible-operand (shift-modified) XORs — an exact, serial,
    # loop-carried hash-update chain
    a.ldrb(r(6), r(1), 0)                  # outgoing byte
    a.ldrb(r(7), r(1), n)                  # incoming byte
    a.eor(r(5), r(5), r(6), shift=ShiftOp.LSL, shift_amt=n - 1)
    a.eor(r(5), r(7), r(5), shift=ShiftOp.LSL, shift_amt=1)
    a.add(r(1), r(1), 1)
    a.subs(r(2), r(2), 1)
    a.b("outer", cond=Cond.NE)
    a.halt()
    return a.finish()


def gsm(scale: int = 40) -> Program:
    """GSM short-term analysis lattice filter (MiBench gsm).

    The lattice is genuinely serial: each stage's output feeds the next
    stage's multiply *and* the running term, so per sample the critical
    path alternates multiply → renormalising shift → accumulate.  The
    shift/add links between multiplies are where ReDSOC recycles.
    """
    rng = random.Random(0x65E1)
    samples = [rng.randrange(-(1 << 14), 1 << 14) & 0xFFFFFFFF
               for _ in range(scale * 8)]
    coeffs = [rng.randrange(-(1 << 13), 1 << 13) & 0xFFFFFFFF
              for _ in range(8)]
    a = Asm("gsm")
    a.data_words(0x1000, samples)
    a.data_words(0x800, coeffs)
    a.mov(r(1), 0x1000)
    a.mov(r(2), scale * 8 - 8)
    a.mov(r(3), 0)                         # accumulator
    a.label("sample")
    a.mov(r(4), 0x800)
    a.mov(r(5), 8)                         # lattice stage counter
    a.ldr(r(6), r(1))                      # stage input (the sample)
    a.label("tap")
    a.ldr(r(8), r(4))                      # reflection coefficient
    a.mul(r(9), r(6), r(8))                # serial: uses stage output
    a.asr(r(9), r(9), 15)                  # Q15 renormalise
    a.add(r(6), r(6), r(9))                # stage output feeds stage k+1
    a.and_(r(6), r(6), 0xFFFF)             # keep the value 16-bit
    a.add(r(4), r(4), 4)
    a.subs(r(5), r(5), 1)
    a.b("tap", cond=Cond.NE)
    # saturate once per sample; with Q13 coefficients the clamp is a
    # rarely-taken branch (predictable), as in the compiled codec
    a.mov(r(10), 1)
    a.lsl(r(10), r(10), 15)
    a.cmp(r(6), r(10))
    a.b("nosat", cond=Cond.LT)
    a.sub(r(6), r(10), 1)
    a.label("nosat")
    a.add(r(3), r(3), r(6))
    a.add(r(1), r(1), 4)
    a.subs(r(2), r(2), 1)
    a.b("sample", cond=Cond.NE)
    a.halt()
    return a.finish()


def corners(scale: int = 12) -> Program:
    """SUSAN-style corner detector (MiBench corners).

    SUSAN's real inner loop maps each |brightness difference| through a
    precomputed similarity lookup table and accumulates the responses:
    a serial add chain fed by dependent table loads, with the
    |difference| computed via the branchless sign-mask idiom.
    """
    rng = random.Random(0xC04E5)
    width = 32
    rows = 4 * scale
    image = bytes(rng.getrandbits(8) for _ in range(width * rows))
    # similarity LUT: 100 for close brightness, decaying to 0
    lut = bytes(max(0, 100 - 3 * d) for d in range(256))
    a = Asm("corners")
    a.data(0x1000, image)
    a.data(0x3000, lut)
    a.mov(r(1), 0x1000 + width)            # cursor (skip first row)
    a.mov(r(2), width * (rows - 2) - 2)    # pixels to scan
    a.mov(r(3), 0)                         # corner count
    a.mov(r(12), 0x3000)                   # LUT base
    a.mov(r(11), 150)                      # geometric threshold
    a.label("pixel")
    a.ldrb(r(4), r(1))                     # centre
    a.mov(r(6), 0)                         # usan response
    neighbourhood = (-width - 1, -width, -width + 1, -1, 1,
                     width - 1, width, width + 1)
    for offset in neighbourhood:           # 8-neighbourhood
        a.ldrb(r(5), r(1), offset)
        a.sub(r(7), r(5), r(4))
        a.asr(r(9), r(7), 31)              # sign mask
        a.eor(r(7), r(7), r(9))
        a.sub(r(7), r(7), r(9))            # abs diff
        a.ldrb(r(8), r(12), index=r(7))    # similarity response
        a.add(r(6), r(6), r(8))            # usan accumulation chain
    a.cmp(r(6), r(11))                     # C set when usan >= thresh
    a.sbc(r(9), r(9), r(9))                # 0 if usan>=t else -1
    a.sub(r(3), r(3), r(9))                # corners += (usan < t)
    a.add(r(1), r(1), 1)
    a.subs(r(2), r(2), 1)
    a.b("pixel", cond=Cond.NE)
    a.halt()
    return a.finish()


#: Builder registry in the paper's Fig. 10/13 order.
MIBENCH = {
    "corners": corners,
    "strsearch": stringsearch,
    "gsm": gsm,
    "crc": crc32,
    "bitcnt": bitcount,
}
