"""Benchmark-suite registry: the paper's three workload classes.

``SUITES`` maps a suite name to an ordered ``{benchmark: builder}``
mapping; each builder takes a ``scale`` keyword and returns a
:class:`~repro.isa.program.Program`.  :func:`build_suite` /
:func:`build_all` instantiate programs at a chosen scale, and
:func:`default_scale` provides per-suite sizes that keep full-evaluation
runs tractable in the Python timing model while staying long enough for
steady-state behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa import Program

from .mibench import MIBENCH
from .mlkernels import ML_KERNELS
from .speclike import SPECLIKE

Builder = Callable[..., Program]

SUITES: Dict[str, Dict[str, Builder]] = {
    "spec": dict(SPECLIKE),
    "mibench": dict(MIBENCH),
    "ml": dict(ML_KERNELS),
}

#: Pretty labels used by the benchmark reports (Fig. 10/13 x-axis).
SUITE_LABELS = {"spec": "SPEC", "mibench": "MiB", "ml": "ML"}

#: Default per-benchmark scales for the benchmark harness.  Chosen so
#: each benchmark runs ~8k-40k dynamic instructions: long enough for
#: predictor warm-up and steady-state recycling, short enough that the
#: full 3-core × 4-mode evaluation stays tractable in pure Python.
DEFAULT_SCALES: Dict[str, Dict[str, int]] = {
    "spec": {name: 100 for name in SPECLIKE},
    "mibench": {"corners": 6, "strsearch": 25, "gsm": 30, "crc": 1600,
                "bitcnt": 110},
    "ml": {"act": 250, "pool0": 45, "conv": 36, "pool1": 45,
           "softmax": 60},
}


def default_scale(suite: str, benchmark: str) -> Dict[str, int]:
    """kwargs to pass a builder for full-evaluation runs."""
    scale = DEFAULT_SCALES.get(suite, {}).get(benchmark)
    return {} if scale is None else {"scale": scale}


def build_suite(suite: str, *, scale_override: Dict[str, int] = None
                ) -> Dict[str, Program]:
    """Instantiate every benchmark of *suite*."""
    programs = {}
    for name, builder in SUITES[suite].items():
        kwargs = dict(default_scale(suite, name))
        if scale_override and name in scale_override:
            kwargs = {"scale": scale_override[name]}
        programs[name] = builder(**kwargs)
    return programs


def build_all() -> Dict[str, Dict[str, Program]]:
    """Instantiate the full evaluation set, suite by suite."""
    return {suite: build_suite(suite) for suite in SUITES}


def all_benchmarks():
    """Iterate ``(suite, benchmark, builder)`` in evaluation order."""
    for suite, table in SUITES.items():
        for name, builder in table.items():
            yield suite, name, builder
