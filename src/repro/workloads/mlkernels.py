"""Machine-learning kernels with NEON-like SIMD (Table II).

The paper evaluates ARM Compute Library kernels compiled with NEON
vectorisation: CONV (3×3 Gaussian), ACT (ReLU), POOL0/1 (2×2 max /
average) and SOFTMAX.  These builders implement the same arithmetic on
our micro-ISA's 128-bit SIMD unit with the data types the kernels use in
practice (I8 activations, I16 accumulation) — the *Type-Slack* source:
lane width is declared in the instruction, so slack is known at decode
with certainty.

Addressing note: pooling is computed as a sliding window (the strided
subsample would need element-extract ops the micro-ISA omits); the
operation mix and dataflow — which is what the timing model consumes —
match the strided kernel.
"""

from __future__ import annotations

import random

from repro.isa import Asm, Cond, Program, SimdType, r, v

_IMG_BASE = 0x4000
_OUT_BASE = 0x20000
_COEF_BASE = 0x800


def _image_bytes(count: int, seed: int, *, lo: int = 0,
                 hi: int = 255) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(lo, hi + 1) for _ in range(count))


def _image_words16(count: int, seed: int, *, max_value: int = 255) -> bytes:
    """Little-endian int16 pixels (small magnitudes: ML-typical data)."""
    rng = random.Random(seed)
    out = bytearray()
    for _ in range(count):
        out += rng.randrange(0, max_value + 1).to_bytes(2, "little")
    return bytes(out)


def _warm_region(a: Asm, base: int, size: int, label: str) -> None:
    """Prologue touching every line of ``[base, base+size)``.

    In a real pipeline these kernels consume the previous stage's output
    (resident in cache); our programs are single-pass, so without this
    the measurement would be dominated by one-time cold DRAM misses that
    the paper's multi-million-instruction Simpoints amortise away.
    """
    a.mov(r(25), base)
    a.mov(r(27), (size + 63) // 64)
    a.label(label)
    a.ldr(r(26), r(25))
    a.add(r(25), r(25), 64)
    a.subs(r(27), r(27), 1)
    a.b(label, cond=Cond.NE)


def conv3x3(scale: int = 6) -> Program:
    """3×3 Gaussian convolution, I16 lanes with VMLA accumulation.

    kernel = [[1,2,1],[2,4,2],[1,2,1]] / 16.  Eight output pixels per
    iteration: 9 unaligned vector loads feed a VMLA chain whose
    accumulate operand late-forwards (Sec. V) — the dependence pattern
    that lets ReDSOC recycle the narrow-lane slack.
    """
    width = 64                      # pixels per row (int16)
    rows = 2 + 2 * scale
    row_bytes = width * 2
    a = Asm("conv")
    a.data(_IMG_BASE, _image_words16(width * rows, 0xC04))
    weights = [1, 2, 1, 2, 4, 2, 1, 2, 1]
    _warm_region(a, _IMG_BASE, width * rows * 2, "warm")
    a.mov(r(1), _IMG_BASE + row_bytes)      # centre-row cursor
    a.mov(r(2), _OUT_BASE)
    a.mov(r(3), (rows - 2))                 # output rows
    a.mov(r(9), 4)
    a.vdup(v(15), r(9), SimdType.I16)       # shift amount (>>4)
    # the 9 tap-weight vectors are loop-invariant: hoisted like a
    # compiler would
    for i, w in enumerate(weights):
        a.mov(r(9), w)
        a.vdup(v(4 + i), r(9), SimdType.I16)
    blocks = (width - 8) // 8               # 8-lane output blocks per row
    a.label("row")
    a.mov(r(5), 0)                          # column byte offset
    a.mov(r(6), blocks)
    a.label("col")
    a.mov(r(4), 0)                          # zero accumulator seed
    a.vdup(v(0), r(4), SimdType.I16)
    for i in range(9):
        dy, dx = divmod(i, 3)
        offset = (dy - 1) * row_bytes + (dx - 1) * 2
        a.vld1(v(1), r(1), offset, index=r(5))
        a.vmla(v(0), v(1), v(4 + i), SimdType.I16)
    a.vshr(v(0), v(0), v(15), SimdType.I16)  # /16 normalisation
    a.vst1(v(0), r(2), 0, index=r(5))
    a.add(r(5), r(5), 16)
    a.subs(r(6), r(6), 1)
    a.b("col", cond=Cond.NE)
    a.add(r(1), r(1), row_bytes)
    a.add(r(2), r(2), row_bytes)
    a.subs(r(3), r(3), 1)
    a.b("row", cond=Cond.NE)
    a.halt()
    return a.finish()


def relu(scale: int = 24) -> Program:
    """ACT: ReLU over an I8 activation buffer via VMAX with zero.

    Byte lanes → the narrowest Type-Slack bucket; the kernel is
    load/compute/store streaming, so memory behaviour (prefetch-friendly
    but L1-missing on first touch) caps the gains, as the paper notes
    for ACT.
    """
    count = 16 * 8 * scale
    a = Asm("act")
    # signed bytes: half the activations negative
    a.data(_IMG_BASE, _image_bytes(count, 0xAC7, lo=0, hi=255))
    a.mov(r(1), _IMG_BASE)
    a.mov(r(2), _OUT_BASE)
    a.mov(r(3), count // 16)
    a.mov(r(4), 0)
    a.vdup(v(1), r(4), SimdType.I8)
    a.label("block")
    a.vld1(v(0), r(1))
    a.vmax(v(2), v(0), v(1), SimdType.I8)
    a.vst1(v(2), r(2))
    a.add(r(1), r(1), 16)
    a.add(r(2), r(2), 16)
    a.subs(r(3), r(3), 1)
    a.b("block", cond=Cond.NE)
    a.halt()
    return a.finish()


def pool_max(scale: int = 12) -> Program:
    """POOL0: 2×2 max pooling, I8 lanes (vertical + horizontal VMAX)."""
    width = 256
    rows = 2 * (1 + scale)
    a = Asm("pool0")
    a.data(_IMG_BASE, _image_bytes(width * rows, 0xA08))
    _warm_region(a, _IMG_BASE, width * rows, "warm")
    a.mov(r(1), _IMG_BASE)
    a.mov(r(2), _OUT_BASE)
    a.mov(r(3), rows // 2)
    a.label("rowpair")
    a.mov(r(4), 0)                       # column cursor
    a.label("col")
    a.vld1(v(0), r(1), 0, index=r(4))
    a.vld1(v(1), r(1), width, index=r(4))
    a.vmax(v(2), v(0), v(1), SimdType.I8)    # vertical max
    a.vld1(v(3), r(1), 1, index=r(4))
    a.vld1(v(4), r(1), width + 1, index=r(4))
    a.vmax(v(5), v(3), v(4), SimdType.I8)
    a.vmax(v(6), v(2), v(5), SimdType.I8)    # horizontal merge
    a.vst1(v(6), r(2), 0, index=r(4))
    a.add(r(4), r(4), 16)
    a.cmp(r(4), width)
    a.b("col", cond=Cond.NE)
    a.add(r(1), r(1), 2 * width)
    a.add(r(2), r(2), width)
    a.subs(r(3), r(3), 1)
    a.b("rowpair", cond=Cond.NE)
    a.halt()
    return a.finish()


def pool_avg(scale: int = 12) -> Program:
    """POOL1: 2×2 average pooling, I16 lanes (VADD + VSHR)."""
    width = 128                          # int16 pixels per row
    rows = 2 * (1 + scale)
    row_bytes = width * 2
    a = Asm("pool1")
    a.data(_IMG_BASE, _image_words16(width * rows, 0xA16))
    _warm_region(a, _IMG_BASE, width * rows * 2, "warm")
    a.mov(r(1), _IMG_BASE)
    a.mov(r(2), _OUT_BASE)
    a.mov(r(3), rows // 2)
    a.mov(r(4), 2)
    a.vdup(v(7), r(4), SimdType.I16)     # shift amount (/4)
    a.label("rowpair")
    a.mov(r(4), 0)
    a.label("col")
    a.vld1(v(0), r(1), 0, index=r(4))
    a.vld1(v(1), r(1), row_bytes, index=r(4))
    a.vadd(v(2), v(0), v(1), SimdType.I16)
    a.vld1(v(3), r(1), 2, index=r(4))
    a.vld1(v(4), r(1), row_bytes + 2, index=r(4))
    a.vadd(v(5), v(3), v(4), SimdType.I16)
    a.vadd(v(6), v(2), v(5), SimdType.I16)
    a.vshr(v(6), v(6), v(7), SimdType.I16)
    a.vst1(v(6), r(2), 0, index=r(4))
    a.add(r(4), r(4), 16)
    a.cmp(r(4), row_bytes)
    a.b("col", cond=Cond.NE)
    a.add(r(1), r(1), 2 * row_bytes)
    a.add(r(2), r(2), row_bytes)
    a.subs(r(3), r(3), 1)
    a.b("rowpair", cond=Cond.NE)
    a.halt()
    return a.finish()


def softmax(scale: int = 10) -> Program:
    """SOFTMAX over `8*scale` Q8.8 fixed-point logits (scalar).

    Three passes: max-reduce, exp approximation (quadratic polynomial in
    fixed point: 1 + x + x²/2) with running sum, then normalising
    divides — the mul/div-heavy mix that limits SOFTMAX's speedup.
    """
    count = 8 * scale
    rng = random.Random(0x50F7)
    logits = [rng.randrange(0, 1 << 10) for _ in range(count)]
    a = Asm("softmax")
    a.data_words(_IMG_BASE, logits)
    # pass 1: max
    a.mov(r(1), _IMG_BASE)
    a.mov(r(2), count)
    a.mov(r(3), 0)                       # running max
    a.label("maxloop")
    a.ldr(r(4), r(1))
    a.cmp(r(4), r(3))
    a.b("notmax", cond=Cond.LE)
    a.mov(r(3), r(4))
    a.label("notmax")
    a.add(r(1), r(1), 4)
    a.subs(r(2), r(2), 1)
    a.b("maxloop", cond=Cond.NE)
    # pass 2: exp(x - max) in Q8.8, accumulate sum
    a.mov(r(1), _IMG_BASE)
    a.mov(r(2), count)
    a.mov(r(5), 0)                       # sum
    a.mov(r(6), _OUT_BASE)
    a.label("exploop")
    a.ldr(r(4), r(1))
    a.sub(r(4), r(4), r(3))              # x - max  (<= 0)
    a.asr(r(4), r(4), 2)                 # temper the range
    a.mul(r(7), r(4), r(4))
    a.asr(r(7), r(7), 9)                 # x^2 / 2 in Q8.8
    a.add(r(8), r(4), 256)               # 1 + x
    a.adds(r(8), r(8), r(7))             # + x^2/2
    a.b("clip", cond=Cond.GE)
    a.mov(r(8), 1)                       # exp never reaches zero
    a.label("clip")
    a.str_(r(8), r(6))
    a.add(r(5), r(5), r(8))
    a.add(r(1), r(1), 4)
    a.add(r(6), r(6), 4)
    a.subs(r(2), r(2), 1)
    a.b("exploop", cond=Cond.NE)
    # pass 3: normalise
    a.mov(r(2), count)
    a.mov(r(6), _OUT_BASE)
    a.label("normloop")
    a.ldr(r(4), r(6))
    a.lsl(r(4), r(4), 8)
    a.udiv(r(4), r(4), r(5))
    a.str_(r(4), r(6))
    a.add(r(6), r(6), 4)
    a.subs(r(2), r(2), 1)
    a.b("normloop", cond=Cond.NE)
    a.halt()
    return a.finish()


#: Builder registry in the paper's Fig. 10/13 order (Table II).
ML_KERNELS = {
    "act": relu,
    "pool0": pool_max,
    "conv": conv3x3,
    "pool1": pool_avg,
    "softmax": softmax,
}
