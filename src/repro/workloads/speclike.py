"""Synthetic SPEC CPU2006-like workloads (xalanc, bzip2, omnetpp,
gromacs, soplex).

The paper runs SPEC Simpoints on gem5; we cannot (no SPEC inputs, no
100 M-instruction budget in Python).  What drives ReDSOC's SPEC results
is the *operation distribution* of Fig. 10 — memory intensity and hit
rates, multi-cycle (FP) fraction, dependency structure, and the split of
single-cycle ALU work into high-slack (logic/shift/narrow-arith) and
low-slack (full-width / shift-modified arithmetic) classes.  Each
:class:`SpecProfile` encodes those knobs, and :func:`build_spec`
generates a deterministic program realising them.

The generator produces *connected dataflow*, not an op soup: values flow
through a live frontier; ALU work comes in dependent **bursts** of 2–5
operations that usually start from a recently produced value or a load
result, and gather loads compute their indices from live values.  That
is what gives real integer code its window-level critical path (IPC 1–2
on an 8-wide core) — the property ReDSOC exploits: compressing the
chain's per-op latency from a full cycle to its EX-TIME.

High-latency loads gather pseudo-randomly over a multi-hundred-kB region
(L1/L2-missing, prefetch-defeating); low-latency loads stream a small
cache-resident buffer.  Data-dependent skip branches are mostly biased
(predictable) with a minority of coin-flips, yielding realistic
misprediction rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa import Asm, Cond, Program, Reg, ShiftOp, r

#: register allocation for the generator
_NARROW = [r(i) for i in range(4, 10)]    # kept byte-ish
_WIDE = [r(i) for i in range(10, 16)]     # kept full width
_ADDR_SEQ = r(16)                          # sequential-load cursor
_IDX = r(17)                               # gather index scratch
_STORE_PTR = r(18)
_SEQ_BASE_REG = r(28)
_HL_BASE_REG = r(29)
_LOOP = r(20)

_SEQ_BASE = 0x10000       # cache-resident streaming buffer
_SEQ_SIZE = 16 * 1024
_HL_BASE = 0x400000       # large gather region (L1/L2-hostile)
_HL_MASK = 0x3FFC0        # 256 kB, 64-byte aligned indices
_STORE_BASE = 0x80000
_STORE_SIZE = 8 * 1024


@dataclass(frozen=True)
class SpecProfile:
    """Generator knobs for one SPEC-like benchmark."""

    name: str
    seed: int
    # relative pattern weights
    w_load_ll: float
    w_load_hl: float
    w_store: float
    w_fp: float
    w_mul: float
    w_burst: float               # dependent ALU bursts
    # ALU-op mix inside bursts (relative)
    m_logic: float
    m_shift: float
    m_narrow: float
    m_wide: float
    m_flex: float
    chain_p: float = 0.72        # burst starts from the live frontier
    burst_len: Tuple[int, int] = (2, 5)
    branch_skip_p: float = 0.05  # data-dependent branch frequency
    body_ops: int = 110          # static patterns per loop body


#: Profiles tuned to the Fig. 10 per-benchmark distributions.
SPEC_PROFILES: Dict[str, SpecProfile] = {
    "xalanc": SpecProfile(
        name="xalanc", seed=0x8A1A, w_load_ll=20, w_load_hl=2.2,
        w_store=8, w_fp=0, w_mul=2, w_burst=26,
        m_logic=24, m_shift=12, m_narrow=16, m_wide=32, m_flex=16,
        chain_p=0.74, branch_skip_p=0.05),
    "bzip2": SpecProfile(
        name="bzip2", seed=0xB21B, w_load_ll=19, w_load_hl=0.8,
        w_store=9, w_fp=0, w_mul=1, w_burst=30,
        m_logic=30, m_shift=17, m_narrow=20, m_wide=22, m_flex=11,
        chain_p=0.78, branch_skip_p=0.06),
    "omnetpp": SpecProfile(
        name="omnetpp", seed=0x0423, w_load_ll=21, w_load_hl=3.5,
        w_store=9, w_fp=1, w_mul=2, w_burst=24,
        m_logic=20, m_shift=10, m_narrow=14, m_wide=36, m_flex=20,
        chain_p=0.70, branch_skip_p=0.05),
    "gromacs": SpecProfile(
        name="gromacs", seed=0x6405, w_load_ll=21, w_load_hl=0.8,
        w_store=8, w_fp=9, w_mul=3, w_burst=24,
        m_logic=22, m_shift=12, m_narrow=16, m_wide=34, m_flex=16,
        chain_p=0.66, branch_skip_p=0.02),
    "soplex": SpecProfile(
        name="soplex", seed=0x50F1, w_load_ll=19, w_load_hl=2.5,
        w_store=8, w_fp=6, w_mul=2, w_burst=25,
        m_logic=20, m_shift=10, m_narrow=14, m_wide=36, m_flex=20,
        chain_p=0.70, branch_skip_p=0.04),
}


class _Generator:
    """Stateful emitter for one SPEC-like program body."""

    def __init__(self, asm: Asm, profile: SpecProfile,
                 rng: random.Random) -> None:
        self.a = asm
        self.p = profile
        self.rng = rng
        #: live frontier: recently produced (reg, is_narrow) values
        self.live: List[Tuple[Reg, bool]] = [(reg, True) for reg in _NARROW]
        self.skip_id = 0

    # -- value plumbing ---------------------------------------------------

    def _push(self, reg: Reg, narrow: bool) -> None:
        self.live.append((reg, narrow))
        if len(self.live) > 4:
            self.live.pop(0)

    def _start_value(self) -> Tuple[Reg, bool]:
        """Where a burst/address chain begins: frontier or pool."""
        if self.live and self.rng.random() < self.p.chain_p:
            return self.rng.choice(self.live[-2:])
        if self.rng.random() < 0.5:
            return self.rng.choice(_NARROW), True
        return self.rng.choice(_WIDE), False

    def _operand(self) -> Reg:
        return self.rng.choice(_NARROW + _WIDE)

    # -- patterns ----------------------------------------------------------

    def burst(self) -> None:
        """A dependent run of ALU ops — the recycling substrate."""
        rng = self.rng
        a = self.a
        src, narrow = self._start_value()
        length = rng.randint(*self.p.burst_len)
        mix, weights = zip(*[
            ("logic", self.p.m_logic), ("shift", self.p.m_shift),
            ("narrow", self.p.m_narrow), ("wide", self.p.m_wide),
            ("flex", self.p.m_flex)])
        dst = rng.choice(_NARROW if narrow else _WIDE)
        cur = src
        for _ in range(length):
            kind = rng.choices(mix, weights)[0]
            if kind == "logic":
                op = rng.choice(["and_", "orr", "eor", "bic"])
                getattr(a, op)(dst, cur, self._operand())
            elif kind == "shift":
                op = rng.choice(["lsr", "lsl", "asr", "ror"])
                getattr(a, op)(dst, cur, rng.randrange(1, 9))
            elif kind == "narrow":
                a.add(dst, cur, rng.randrange(1, 30))
                if rng.random() < 0.4:
                    a.and_(dst, dst, 0x7F)
            elif kind == "wide":
                op = rng.choice(["add", "sub", "add", "adc"])
                other = (rng.choice(_WIDE) if rng.random() < 0.6
                         else 0x40000000 | rng.getrandbits(24))
                getattr(a, op)(dst, cur, other)
            else:  # flex: shift-modified arithmetic
                getattr(a, rng.choice(["add", "sub"]))(
                    dst, cur, rng.choice(_WIDE),
                    shift=rng.choice([ShiftOp.LSR, ShiftOp.ROR]),
                    shift_amt=rng.randrange(1, 8))
            cur = dst
        self._push(dst, dst in _NARROW)

    def load_ll(self) -> None:
        rng = self.rng
        a = self.a
        if rng.random() < 0.45:
            # gather within the hot buffer, index computed from a live
            # value: the load sits *on* the dependence chain
            src, _ = self._start_value()
            a.and_(_IDX, src, _SEQ_SIZE - 4)
            dst = rng.choice(_NARROW if rng.random() < 0.5 else _WIDE)
            a.ldr(dst, _SEQ_BASE_REG, index=_IDX)
        else:
            dst = rng.choice(_NARROW if rng.random() < 0.5 else _WIDE)
            a.ldr(dst, _ADDR_SEQ, rng.randrange(0, 64) * 4)
            if rng.random() < 0.3:   # advance the streaming cursor
                a.add(_ADDR_SEQ, _ADDR_SEQ, 64)
                a.and_(_ADDR_SEQ, _ADDR_SEQ, _SEQ_SIZE - 1)
                a.orr(_ADDR_SEQ, _ADDR_SEQ, _SEQ_BASE)
        self._push(dst, dst in _NARROW)

    def load_hl(self) -> None:
        """Dependent gather over a cache-hostile region."""
        src, _ = self._start_value()
        a = self.a
        a.eor(_IDX, src, self.rng.getrandbits(18))
        a.and_(_IDX, _IDX, _HL_MASK)
        dst = self.rng.choice(_WIDE)
        a.ldr(dst, _HL_BASE_REG, index=_IDX)
        self._push(dst, False)

    def store(self) -> None:
        rng = self.rng
        src = (self.live[-1][0] if self.live and rng.random() < 0.5
               else self._operand())
        self.a.str_(src, _STORE_PTR, rng.randrange(0, 32) * 4)
        if rng.random() < 0.25:
            self.a.add(_STORE_PTR, _STORE_PTR, 128)
            self.a.and_(_STORE_PTR, _STORE_PTR, _STORE_SIZE - 1)
            self.a.orr(_STORE_PTR, _STORE_PTR, _STORE_BASE)

    def fp_op(self) -> None:
        dst = self.rng.choice(_WIDE)
        src, _ = self._start_value()
        getattr(self.a, self.rng.choice(["fadd", "fmul", "fsub"]))(
            dst, src, self.rng.choice(_WIDE))
        self._push(dst, False)

    def mul_op(self) -> None:
        dst = self.rng.choice(_WIDE)
        src, _ = self._start_value()
        self.a.mul(dst, src, self.rng.choice(_NARROW))
        self._push(dst, False)

    def maybe_branch(self) -> None:
        rng = self.rng
        if rng.random() >= self.p.branch_skip_p:
            return
        a = self.a
        if rng.random() < 0.75:
            a.tst(rng.choice(_NARROW), 0x80)   # biased: mostly clear
            cond = Cond.EQ
        else:
            a.tst(rng.choice(_WIDE), 1 << rng.randrange(0, 8))
            cond = rng.choice([Cond.EQ, Cond.NE])
        a.b(f"skip{self.skip_id}", cond=cond)
        a.eor(rng.choice(_NARROW), rng.choice(_NARROW), 0x55)
        a.label(f"skip{self.skip_id}")
        self.skip_id += 1


def build_spec(profile: SpecProfile, *, iterations: int = 40) -> Program:
    """Generate the program realising *profile*."""
    rng = random.Random(profile.seed)
    a = Asm(profile.name)

    seq_words = [rng.getrandbits(8) if rng.random() < 0.6
                 else rng.getrandbits(31) for _ in range(_SEQ_SIZE // 4)]
    a.data_words(_SEQ_BASE, seq_words)

    for reg in _NARROW:
        a.mov(reg, rng.randrange(1, 120))
    for reg in _WIDE:
        a.mov(reg, 0x40000000 | rng.getrandbits(24))
    a.mov(_ADDR_SEQ, _SEQ_BASE)
    a.mov(_SEQ_BASE_REG, _SEQ_BASE)
    a.mov(_HL_BASE_REG, _HL_BASE)
    a.mov(_STORE_PTR, _STORE_BASE)
    a.mov(_LOOP, iterations)

    gen = _Generator(a, profile, rng)
    kinds, weights = zip(*[
        ("load_ll", profile.w_load_ll), ("load_hl", profile.w_load_hl),
        ("store", profile.w_store), ("fp", profile.w_fp),
        ("mul", profile.w_mul), ("burst", profile.w_burst),
    ])
    emit = {"load_ll": gen.load_ll, "load_hl": gen.load_hl,
            "store": gen.store, "fp": gen.fp_op, "mul": gen.mul_op,
            "burst": gen.burst}

    a.label("body")
    for _ in range(profile.body_ops):
        emit[rng.choices(kinds, weights)[0]]()
        gen.maybe_branch()
    a.subs(_LOOP, _LOOP, 1)
    a.b("body", cond=Cond.NE)
    a.halt()
    return a.finish()


def make_spec(name: str, *, iterations: int = 40) -> Program:
    """Build the named SPEC-like benchmark."""
    return build_spec(SPEC_PROFILES[name], iterations=iterations)


#: Builder registry in the paper's Fig. 10/13 order.
SPECLIKE = {name: (lambda scale=40, _n=name: make_spec(_n, iterations=scale))
            for name in SPEC_PROFILES}
