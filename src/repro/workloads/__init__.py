"""Workload substrate: MiBench-like, ML (Table II) and SPEC-like suites."""

from .mibench import MIBENCH, bitcount, corners, crc32, gsm, stringsearch
from .mlkernels import ML_KERNELS, conv3x3, pool_avg, pool_max, relu, softmax
from .speclike import SPECLIKE, SPEC_PROFILES, SpecProfile, build_spec, make_spec
from .microbench import MICROBENCHES, MicroBench
from .suites import SUITES, SUITE_LABELS, all_benchmarks, build_all, build_suite

__all__ = [
    "MIBENCH", "MICROBENCHES", "ML_KERNELS", "MicroBench",
    "SPECLIKE", "SPEC_PROFILES", "SUITES",
    "SUITE_LABELS", "SpecProfile", "all_benchmarks", "bitcount",
    "build_all", "build_spec", "build_suite", "conv3x3", "corners",
    "crc32", "gsm", "make_spec", "pool_avg", "pool_max", "relu",
    "softmax", "stringsearch",
]
