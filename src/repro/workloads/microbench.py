"""Characterisation microbenchmarks: one kernel per slack class.

Each microbenchmark is a loop-carried dependence chain of a single
operation class, so its recycling speedup has a closed-form prediction:
a chain of ops with EX-TIME ``t`` ticks runs at one op per cycle in the
baseline and at ``t`` ticks per op under ReDSOC — the speedup approaches
``ticks_per_cycle / t``.  The characterisation bench sweeps all classes
and checks the measured factors against these predictions, pinning the
timing model and scheduler together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.isa import Asm, Cond, Program, ShiftOp, SimdType, r, v


@dataclass(frozen=True)
class MicroBench:
    """One characterisation kernel."""

    name: str
    #: mean EX-TIME (ticks) per chain op at the default tick base
    chain_ticks: float
    build: Callable[[int], Program]

    def predicted_speedup(self, ticks_per_cycle: int = 8) -> float:
        """Closed-form chain-speedup prediction.

        A chain of t-tick ops sustains t ticks/op when t >= half a
        cycle (each op crosses an edge and the next catches it via a
        conventional wakeup).  Below half a cycle the *EGPW pairing
        bound* applies: eager wakeup reaches exactly one level past the
        parent, so at most two chained ops issue per cycle — the
        effective cost floor is ticks_per_cycle / 2 per op.
        """
        effective = max(self.chain_ticks, ticks_per_cycle / 2)
        return ticks_per_cycle / effective - 1.0


def _loop(name: str, body, *, iters: int, setup=None) -> Program:
    a = Asm(name)
    a.mov(r(1), 0x5A5A5A5A)
    a.mov(r(2), iters)
    if setup:
        setup(a)
    a.label("loop")
    body(a)
    a.subs(r(2), r(2), 1)
    a.b("loop", cond=Cond.NE)
    a.halt()
    return a.finish()


def logic_chain(iters: int = 800) -> Program:
    """Pure bitwise-logic chain: the 3-tick bucket."""
    def body(a):
        for _ in range(4):
            a.eor(r(1), r(1), 0x33CC33CC)
    return _loop("ub-logic", body, iters=iters)


def shift_chain(iters: int = 800) -> Program:
    """Standalone rotate chain: the logic+shift (5-tick) bucket."""
    def body(a):
        for _ in range(4):
            a.ror(r(1), r(1), 7)
    return _loop("ub-shift", body, iters=iters)


def narrow_arith_chain(iters: int = 800) -> Program:
    """Narrow (8-bit-class) add chain: the 5-tick arithmetic bucket."""
    def body(a):
        for _ in range(4):
            a.add(r(1), r(1), 3)
            a.and_(r(1), r(1), 0x3F)
    def setup(a):
        a.mov(r(1), 5)
    return _loop("ub-narrow", body, iters=iters, setup=setup)


def wide_arith_chain(iters: int = 800) -> Program:
    """Full-width add chain: the 7-tick arithmetic bucket."""
    def body(a):
        for _ in range(4):
            a.add(r(1), r(1), 0x10000001)
    def setup(a):
        a.mov(r(1), 0x40000000)
    return _loop("ub-wide", body, iters=iters, setup=setup)


def flex_chain(iters: int = 800) -> Program:
    """Shift-modified full-width arithmetic: the 8-tick (no-slack)
    bucket — the control case that must not accelerate."""
    def body(a):
        for _ in range(4):
            a.add(r(1), r(1), r(1), shift=ShiftOp.ROR, shift_amt=5)
    def setup(a):
        a.mov(r(1), 0x7FFFFFF1)
    return _loop("ub-flex", body, iters=iters, setup=setup)


def simd_i8_chain(iters: int = 800) -> Program:
    """Dependent VADD.I8 chain: the narrowest Type-Slack bucket."""
    def body(a):
        for _ in range(3):
            a.vadd(v(0), v(0), v(1), SimdType.I8)
    def setup(a):
        a.mov(r(3), 1)
        a.vdup(v(0), r(3), SimdType.I8)
        a.vdup(v(1), r(3), SimdType.I8)
    return _loop("ub-simd8", body, iters=iters, setup=setup)


def simd_i64_chain(iters: int = 800) -> Program:
    """Dependent VADD.I64 chain: the full-cycle SIMD bucket (control)."""
    def body(a):
        for _ in range(3):
            a.vadd(v(0), v(0), v(1), SimdType.I64)
    def setup(a):
        a.mov(r(3), 1)
        a.vdup(v(0), r(3), SimdType.I64)
        a.vdup(v(1), r(3), SimdType.I64)
    return _loop("ub-simd64", body, iters=iters, setup=setup)


#: the characterisation suite, keyed by name, with the chain's bucket
#: EX-TIME at the default technology/precision
MICROBENCHES: Dict[str, MicroBench] = {
    "logic": MicroBench("logic", 3, logic_chain),
    "shift": MicroBench("shift", 5, shift_chain),
    # the narrow chain alternates 5-tick adds with 3-tick masks
    "narrow-arith": MicroBench("narrow-arith", 4.0, narrow_arith_chain),
    "wide-arith": MicroBench("wide-arith", 7, wide_arith_chain),
    "flex-arith": MicroBench("flex-arith", 8, flex_chain),
    "simd-i8": MicroBench("simd-i8", 5, simd_i8_chain),
    "simd-i64": MicroBench("simd-i64", 8, simd_i64_chain),
}
