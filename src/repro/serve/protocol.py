"""Versioned JSON wire format and request validation.

Every request body is ``{"..."}`` JSON; the response envelope is::

    {"api": 1, "kind": "simulate", "result": {...}, "elapsed_ms": 3.1}

Validation happens *before* admission: a request that reaches the
worker pool is structurally sound, names only known suites / cores /
modes, and — for inline programs — has already been assembled once in
the server process, so text-asm parse errors map to clean 400s with a
machine-readable ``code`` instead of worker tracebacks.  Inline
programs travel to the workers as the :mod:`repro.isa.serialize` JSON
form, which round-trips every instruction field (the text assembler
cannot express resolved targets or index scales).

Specs are deterministic value objects: :func:`~SimulateSpec.fingerprint`
is a stable digest of the *work*, which is what single-flight
deduplication and the response LRU key on.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core import CORES, ENGINES, RecycleMode
from repro.isa.program import Program
from repro.isa.serialize import program_from_dict, program_to_dict
from repro.isa.textasm import assemble_text
from repro.workloads.suites import DEFAULT_SCALES, SUITES

#: wire-format version; bump on incompatible request/response changes
API_VERSION = 1

#: hard caps that bound what one request can cost
MAX_ASM_BYTES = 64 * 1024
MAX_PROGRAM_INSTRUCTIONS = 20_000
MAX_SCALE = 20_000
MAX_VERIFY_BUDGET = 100
MAX_SWEEP_JOBS = 24
MAX_DEADLINE_MS = 300_000
DEFAULT_DEADLINE_MS = 30_000

_MODES = tuple(m.value for m in RecycleMode)


class Priority(enum.Enum):
    """Admission priority class; interactive preempts batch in-queue."""

    INTERACTIVE = "interactive"
    BATCH = "batch"


class RequestError(Exception):
    """A client error with an HTTP status and machine-readable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_payload(self) -> Dict[str, Any]:
        return {"api": API_VERSION, "error": self.code,
                "message": self.message}


def _bad(code: str, message: str) -> RequestError:
    return RequestError(400, code, message)


def _require(body: Dict[str, Any], key: str, types, code: str):
    value = body.get(key)
    if not isinstance(value, types):
        names = getattr(types, "__name__", None) or \
            "/".join(t.__name__ for t in types)
        raise _bad(code, f"field {key!r} must be {names}, "
                         f"got {type(value).__name__}")
    return value


def _check_choice(kind: str, value: str, known) -> str:
    if value not in known:
        raise _bad(f"unknown-{kind}",
                   f"unknown {kind} {value!r}; choose from {sorted(known)}")
    return value


def _parse_deadline(body: Dict[str, Any]) -> int:
    deadline = body.get("deadline_ms", DEFAULT_DEADLINE_MS)
    if not isinstance(deadline, int) or isinstance(deadline, bool) \
            or deadline <= 0:
        raise _bad("bad-deadline", "deadline_ms must be a positive integer")
    return min(deadline, MAX_DEADLINE_MS)


def _parse_priority(body: Dict[str, Any]) -> Priority:
    raw = body.get("priority", Priority.INTERACTIVE.value)
    try:
        return Priority(raw)
    except ValueError:
        raise _bad("bad-priority",
                   f"priority must be one of "
                   f"{[p.value for p in Priority]}, got {raw!r}") from None


def _parse_scale(body: Dict[str, Any]) -> Optional[int]:
    scale = body.get("scale")
    if scale is None:
        return None
    if not isinstance(scale, int) or isinstance(scale, bool) \
            or not 1 <= scale <= MAX_SCALE:
        raise _bad("bad-scale", f"scale must be an int in "
                                f"[1, {MAX_SCALE}], got {scale!r}")
    return scale


def _parse_workload(body: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise the workload part of a simulate/sweep request.

    Returns either ``{"suite", "bench", "scale"}`` (named) or
    ``{"program": <serialised>}`` (inline, already assembled and
    re-serialised so the worker never parses text).
    """
    named = ("suite" in body) or ("bench" in body)
    inline = ("asm" in body) or ("program" in body)
    if named == inline:
        raise _bad("bad-workload",
                   "give either suite+bench (named workload) or "
                   "asm/program (inline), not both / neither")

    if named:
        suite = _check_choice(
            "suite", _require(body, "suite", str, "bad-suite"),
            tuple(SUITES))
        bench = _check_choice(
            "bench", _require(body, "bench", str, "bad-bench"),
            tuple(SUITES[suite]))
        return {"suite": suite, "bench": bench,
                "scale": _parse_scale(body)}

    if "asm" in body:
        source = _require(body, "asm", str, "bad-asm")
        if len(source.encode()) > MAX_ASM_BYTES:
            raise _bad("asm-too-large",
                       f"inline asm exceeds {MAX_ASM_BYTES} bytes")
        name = body.get("name", "inline")
        if not isinstance(name, str) or len(name) > 128:
            raise _bad("bad-name", "name must be a short string")
        try:
            program = assemble_text(source, name=name)
        except (ValueError, KeyError) as exc:
            # AssemblyError (line-precise) and undefined labels both
            # land here; the message carries the offending line
            raise _bad("bad-asm", f"assembly failed: {exc}") from exc
    else:
        raw = _require(body, "program", dict, "bad-program")
        try:
            program = program_from_dict(raw)
        except (ValueError, KeyError, TypeError) as exc:
            raise _bad("bad-program",
                       f"program deserialisation failed: {exc}") from exc
    if not isinstance(program, Program) or \
            len(program.instructions) > MAX_PROGRAM_INSTRUCTIONS:
        raise _bad("program-too-large",
                   f"inline programs are capped at "
                   f"{MAX_PROGRAM_INSTRUCTIONS} instructions")
    return {"program": program_to_dict(program)}


def _parse_core(body: Dict[str, Any], key: str = "core") -> str:
    return _check_choice(
        "core", _require(body, key, str, "bad-core"), tuple(CORES))


def _parse_mode(body: Dict[str, Any], key: str = "mode") -> str:
    return _check_choice(
        "mode", _require(body, key, str, "bad-mode"), _MODES)


def _parse_engine(body: Dict[str, Any]) -> Optional[str]:
    """Optional backend pin; ``None`` keeps the config default.

    A pinned engine joins the worker payload, so it participates in the
    spec fingerprint — an engine-pinned request never shares a
    single-flight slot or LRU entry with the default-engine form.
    """
    if "engine" not in body:
        return None
    return _check_choice(
        "engine", _require(body, "engine", str, "bad-engine"),
        tuple(ENGINES.names()))


@dataclass(frozen=True)
class BaseSpec:
    """Shared request attributes (priority + deadline)."""

    priority: Priority
    deadline_ms: int

    def worker_payloads(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        raise NotImplementedError

    @property
    def fingerprint(self) -> str:
        """Stable digest of the work (deadline/priority excluded)."""
        blob = json.dumps({"kind": self.kind,
                           "work": self.worker_payloads()},
                          sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class SimulateSpec(BaseSpec):
    """One (workload, core, mode) simulation."""

    workload_json: str = "{}"
    core: str = "small"
    mode: str = "baseline"
    engine: Optional[str] = None

    @property
    def kind(self) -> str:
        return "simulate"

    def worker_payloads(self) -> List[Dict[str, Any]]:
        payload = json.loads(self.workload_json)
        payload.update({"core": self.core, "mode": self.mode})
        if self.engine is not None:
            payload["engine"] = self.engine
        return [payload]


@dataclass(frozen=True)
class SweepSpec(BaseSpec):
    """One workload swept over a cores × modes grid (a batch)."""

    workload_json: str = "{}"
    cores: Tuple[str, ...] = ()
    modes: Tuple[str, ...] = ()
    engine: Optional[str] = None

    @property
    def kind(self) -> str:
        return "sweep"

    def worker_payloads(self) -> List[Dict[str, Any]]:
        payloads = []
        for core in self.cores:
            for mode in self.modes:
                payload = json.loads(self.workload_json)
                payload.update({"core": core, "mode": mode})
                if self.engine is not None:
                    payload["engine"] = self.engine
                payloads.append(payload)
        return payloads


@dataclass(frozen=True)
class EstimateSpec(BaseSpec):
    """One (workload, core, mode) analytic prediction — no simulation.

    Engines are irrelevant to a prediction (the model answers for the
    machine, not a backend), but an ``engine`` field is still
    *validated* so a typo'd backend name fails loudly instead of being
    silently ignored.
    """

    workload_json: str = "{}"
    core: str = "small"
    mode: str = "baseline"
    confidence: float = 0.9

    @property
    def kind(self) -> str:
        return "estimate"

    def worker_payloads(self) -> List[Dict[str, Any]]:
        payload = json.loads(self.workload_json)
        payload.update({"core": self.core, "mode": self.mode,
                        "confidence": self.confidence})
        return [payload]


@dataclass(frozen=True)
class VerifySpec(BaseSpec):
    """A seeded differential-fuzz batch."""

    seed: int = 0
    budget: int = 10
    core: str = "small"
    metamorphic: bool = True
    engines: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return "verify"

    def worker_payloads(self) -> List[Dict[str, Any]]:
        payload = {"seed": self.seed, "budget": self.budget,
                   "core": self.core, "metamorphic": self.metamorphic}
        if self.engines:
            payload["engines"] = list(self.engines)
        return [payload]


def _freeze_workload(workload: Dict[str, Any]) -> str:
    """Canonical JSON of a normalised workload (specs are frozen and
    hashable, so the nested program dict travels as a string)."""
    return json.dumps(workload, sort_keys=True)


def parse_simulate(body: Dict[str, Any]) -> SimulateSpec:
    return SimulateSpec(
        priority=_parse_priority(body),
        deadline_ms=_parse_deadline(body),
        workload_json=_freeze_workload(_parse_workload(body)),
        core=_parse_core(body), mode=_parse_mode(body),
        engine=_parse_engine(body))


def parse_sweep(body: Dict[str, Any]) -> SweepSpec:
    cores = body.get("cores", list(CORES))
    modes = body.get("modes", list(_MODES))
    if not isinstance(cores, list) or not cores or \
            not isinstance(modes, list) or not modes:
        raise _bad("bad-grid", "cores and modes must be non-empty lists")
    cores = tuple(dict.fromkeys(
        _check_choice("core", c, tuple(CORES)) for c in cores))
    modes = tuple(dict.fromkeys(
        _check_choice("mode", m, _MODES) for m in modes))
    if len(cores) * len(modes) > MAX_SWEEP_JOBS:
        raise _bad("sweep-too-large",
                   f"sweep grid is capped at {MAX_SWEEP_JOBS} jobs")
    return SweepSpec(
        priority=_parse_priority(body),
        deadline_ms=_parse_deadline(body),
        workload_json=_freeze_workload(_parse_workload(body)),
        cores=cores, modes=modes, engine=_parse_engine(body))


def parse_estimate(body: Dict[str, Any]) -> EstimateSpec:
    confidence = body.get("confidence", 0.9)
    if isinstance(confidence, bool) or \
            not isinstance(confidence, (int, float)) or \
            not 0.0 < float(confidence) < 1.0:
        raise _bad("bad-confidence",
                   f"confidence must be a number in (0, 1) exclusive, "
                   f"got {confidence!r}")
    _parse_engine(body)     # validated, then ignored: see EstimateSpec
    return EstimateSpec(
        priority=_parse_priority(body),
        deadline_ms=_parse_deadline(body),
        workload_json=_freeze_workload(_parse_workload(body)),
        core=_parse_core(body), mode=_parse_mode(body),
        confidence=float(confidence))


def parse_verify(body: Dict[str, Any]) -> VerifySpec:
    budget = body.get("budget", 10)
    seed = body.get("seed", 0)
    if not isinstance(budget, int) or isinstance(budget, bool) or \
            not 1 <= budget <= MAX_VERIFY_BUDGET:
        raise _bad("bad-budget",
                   f"budget must be an int in [1, {MAX_VERIFY_BUDGET}]")
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise _bad("bad-seed", "seed must be a non-negative integer")
    core = _parse_core(body) if "core" in body else "small"
    metamorphic = body.get("metamorphic", True)
    if not isinstance(metamorphic, bool):
        raise _bad("bad-metamorphic", "metamorphic must be a boolean")
    engines = body.get("engines", [])
    if not isinstance(engines, list):
        raise _bad("bad-engines", "engines must be a list of backend "
                                  "names")
    engines = tuple(dict.fromkeys(
        _check_choice("engine", e, tuple(ENGINES.names()))
        for e in engines))
    return VerifySpec(
        priority=_parse_priority(body),
        deadline_ms=_parse_deadline(body),
        seed=seed, budget=budget, core=core, metamorphic=metamorphic,
        engines=engines)


_PARSERS = {
    "simulate": parse_simulate,
    "sweep": parse_sweep,
    "estimate": parse_estimate,
    "verify": parse_verify,
}


def parse_request(kind: str, body: Any) -> BaseSpec:
    """Validate one request body into a typed, hashable spec.

    Raises :class:`RequestError` (→ HTTP 4xx) on *any* malformed input,
    including text-asm parse failures.
    """
    parser = _PARSERS.get(kind)
    if parser is None:
        raise RequestError(404, "unknown-endpoint",
                           f"no request kind {kind!r}; choose from "
                           f"{sorted(_PARSERS)}")
    if not isinstance(body, dict):
        raise _bad("bad-body", "request body must be a JSON object")
    api = body.get("api", API_VERSION)
    if api != API_VERSION:
        raise _bad("bad-api-version",
                   f"server speaks api={API_VERSION}, request says {api!r}")
    return parser(body)


def default_scale_for(suite: str, bench: str) -> Optional[int]:
    """The campaign's default scale (surfaced in /v1/status)."""
    return DEFAULT_SCALES.get(suite, {}).get(bench)
