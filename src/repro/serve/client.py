"""Sync + async SDK for the serve daemon.

Both clients speak the same retry discipline:

* **retryable**: connection errors, 429 (queue full) and 503
  (draining) — jittered exponential backoff, bounded by the caller's
  deadline;
* **not retryable**: 400s (the request is wrong), 404, 500 (the
  daemon already retried crashed workers internally), 504 (the
  deadline the server honoured is the one we sent).

:class:`ServeClient` wraps :mod:`http.client` with a persistent
keep-alive connection — convenient for scripts and the CLI.
:class:`AsyncServeClient` speaks HTTP/1.1 over raw asyncio streams and
is what the load generator multiplexes.

**Trace propagation** (``trace=True``): each logical request mints one
trace id that every retry of that request shares; each attempt gets a
fresh span id, sent as a W3C ``traceparent`` header.  The daemon
continues the context, so a request that was 429-backed-off twice and
then crashed a worker still resolves to *one* trace tree with three
client attempt spans.  Client-side spans land in ``client.spans`` (an
in-memory recorder) and the most recent request's correlation state in
``client.last_trace``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import IdSource, Span, SpanRecorder, TraceContext

from .protocol import API_VERSION

RETRYABLE_STATUSES = (429, 503)
DEFAULT_TIMEOUT_S = 60.0


class ServeError(Exception):
    """Non-2xx response (after retries were exhausted, if any)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


def _raise_for(status: int, payload: Dict[str, Any]) -> None:
    raise ServeError(status, payload.get("error", "unknown"),
                     payload.get("message", ""))


def _backoff_s(attempt: int, rng: random.Random, *,
               base: float = 0.05, cap: float = 2.0) -> float:
    return min(cap, base * (2 ** attempt)) * (0.5 + rng.random())


class ServeClient:
    """Synchronous client with keep-alive, retries and deadlines."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 max_retries: int = 3,
                 seed: Optional[int] = None,
                 trace: bool = False,
                 trace_seed: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self._rng = random.Random(seed)
        self._conn: Optional[http.client.HTTPConnection] = None
        self._ids: Optional[IdSource] = \
            IdSource(trace_seed) if trace else None
        self.spans: Optional[SpanRecorder] = \
            SpanRecorder() if trace else None
        self.last_trace: Optional[Dict[str, Any]] = None

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _once(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              extra_headers: Optional[Dict[str, str]] = None
              ) -> Tuple[int, Dict[str, Any]]:
        conn = self._connection()
        data = json.dumps(body).encode() if body is not None else None
        headers = {"content-type": "application/json"} if data else {}
        if extra_headers:
            headers.update(extra_headers)
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "bad-payload",
                       "message": raw[:200].decode("latin-1")}
        return response.status, payload

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None, *,
                deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """One API call with retry/backoff under a deadline.

        With tracing on, all attempts of this call share one trace id;
        each attempt sends a fresh span id in ``traceparent``.
        """
        expiry = time.monotonic() + (deadline_s if deadline_s is not None
                                     else self.timeout_s)
        trace_id: Optional[str] = None
        attempt_ids: List[str] = []
        if self._ids is not None:
            trace_id = self._ids.trace_id()
            self.last_trace = {"trace_id": trace_id,
                               "attempt_span_ids": attempt_ids}
        last: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            if time.monotonic() >= expiry:
                break
            headers: Optional[Dict[str, str]] = None
            span_id = ""
            start_us = 0
            if trace_id is not None:
                assert self._ids is not None
                span_id = self._ids.span_id()
                attempt_ids.append(span_id)
                headers = {"traceparent": TraceContext(
                    trace_id, span_id).to_traceparent()}
                start_us = int(time.time() * 1e6)
            try:
                status, payload = self._once(method, path, body,
                                             headers)
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                self.close()    # stale keep-alive socket; reconnect
                self._record_attempt(trace_id, span_id, start_us,
                                     path, attempt, None,
                                     error=type(exc).__name__)
                last = exc
            else:
                self._record_attempt(trace_id, span_id, start_us,
                                     path, attempt, status)
                if status < 400:
                    return payload
                if status not in RETRYABLE_STATUSES \
                        or attempt >= self.max_retries:
                    _raise_for(status, payload)
                last = ServeError(status, payload.get("error", ""),
                                  payload.get("message", ""))
            delay = _backoff_s(attempt, self._rng)
            delay = min(delay, max(0.0, expiry - time.monotonic()))
            time.sleep(delay)
        if isinstance(last, ServeError):
            raise last
        raise ServeError(0, "unreachable",
                         f"no response from {self.host}:{self.port}"
                         f" ({last})")

    def _record_attempt(self, trace_id: Optional[str], span_id: str,
                        start_us: int, path: str, attempt: int,
                        status: Optional[int],
                        error: Optional[str] = None) -> None:
        if self.spans is None or trace_id is None:
            return
        attrs: Dict[str, Any] = {"attempt": attempt, "path": path}
        if status is not None:
            attrs["http_status"] = status
        if error is not None:
            attrs["error"] = error
        ok = status is not None and status < 400
        self.spans.emit(Span(
            name="client.request", trace_id=trace_id,
            span_id=span_id, start_us=start_us,
            end_us=int(time.time() * 1e6), component="client",
            status="ok" if ok else "error", attrs=attrs))

    # -- API surface ---------------------------------------------------

    def simulate(self, *, suite: Optional[str] = None,
                 bench: Optional[str] = None,
                 asm: Optional[str] = None,
                 program: Optional[Dict[str, Any]] = None,
                 core: str = "small", mode: str = "baseline",
                 scale: Optional[int] = None,
                 **extra: Any) -> Dict[str, Any]:
        body: Dict[str, Any] = {"api": API_VERSION, "core": core,
                                "mode": mode}
        if suite is not None:
            body.update(suite=suite, bench=bench)
        if scale is not None:
            body["scale"] = scale
        if asm is not None:
            body["asm"] = asm
        if program is not None:
            body["program"] = program
        body.update(extra)
        return self.request("POST", "/v1/simulate", body)

    def sweep(self, *, cores: Optional[List[str]] = None,
              modes: Optional[List[str]] = None,
              **workload: Any) -> Dict[str, Any]:
        body: Dict[str, Any] = {"api": API_VERSION}
        if cores is not None:
            body["cores"] = cores
        if modes is not None:
            body["modes"] = modes
        body.update(workload)
        return self.request("POST", "/v1/sweep", body)

    def estimate(self, *, suite: Optional[str] = None,
                 bench: Optional[str] = None,
                 asm: Optional[str] = None,
                 program: Optional[Dict[str, Any]] = None,
                 core: str = "small", mode: str = "baseline",
                 scale: Optional[int] = None,
                 confidence: Optional[float] = None,
                 **extra: Any) -> Dict[str, Any]:
        """Analytic prediction — no simulation; answers carry
        ``predicted=true`` plus a calibrated ``error_bound``."""
        body: Dict[str, Any] = {"api": API_VERSION, "core": core,
                                "mode": mode}
        if suite is not None:
            body.update(suite=suite, bench=bench)
        if scale is not None:
            body["scale"] = scale
        if asm is not None:
            body["asm"] = asm
        if program is not None:
            body["program"] = program
        if confidence is not None:
            body["confidence"] = confidence
        body.update(extra)
        return self.request("POST", "/v1/estimate", body)

    def verify(self, *, seed: int = 0, budget: int = 10,
               core: str = "small", **extra: Any) -> Dict[str, Any]:
        body = {"api": API_VERSION, "seed": seed, "budget": budget,
                "core": core}
        body.update(extra)
        return self.request("POST", "/v1/verify", body)

    def status(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/status")

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics_text(self) -> str:
        conn = self._connection()
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        return response.read().decode("utf-8")


class AsyncServeClient:
    """Asyncio client over one persistent HTTP/1.1 connection.

    Not task-safe by design: the load generator opens one client per
    in-flight lane, which is also how you measure a service honestly.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 max_retries: int = 3,
                 seed: Optional[int] = None,
                 trace: bool = False,
                 trace_seed: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self._rng = random.Random(seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids: Optional[IdSource] = \
            IdSource(trace_seed) if trace else None
        self.spans: Optional[SpanRecorder] = \
            SpanRecorder() if trace else None
        self.last_trace: Optional[Dict[str, Any]] = None

    async def _connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _once(self, method: str, path: str,
                    body: Optional[Dict[str, Any]],
                    extra_headers: Optional[Dict[str, str]] = None
                    ) -> Tuple[int, Dict[str, Any]]:
        await self._connect()
        assert self._reader is not None and self._writer is not None
        data = json.dumps(body).encode() if body is not None else b""
        extra = "".join(f"{k}: {v}\r\n"
                        for k, v in (extra_headers or {}).items())
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"host: {self.host}:{self.port}\r\n"
                f"content-type: application/json\r\n"
                f"content-length: {len(data)}\r\n"
                f"{extra}"
                f"\r\n").encode("latin-1")
        self._writer.write(head + data)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection") == "close":
            await self.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "bad-payload",
                       "message": raw[:200].decode("latin-1")}
        return status, payload

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None, *,
                      deadline_s: Optional[float] = None,
                      retries: Optional[int] = None) -> Dict[str, Any]:
        expiry = time.monotonic() + (deadline_s
                                     if deadline_s is not None
                                     else self.timeout_s)
        max_retries = self.max_retries if retries is None else retries
        trace_id: Optional[str] = None
        attempt_ids: List[str] = []
        if self._ids is not None:
            trace_id = self._ids.trace_id()
            self.last_trace = {"trace_id": trace_id,
                               "attempt_span_ids": attempt_ids}
        last: Optional[Exception] = None
        for attempt in range(max_retries + 1):
            remaining = expiry - time.monotonic()
            if remaining <= 0:
                break
            headers: Optional[Dict[str, str]] = None
            span_id = ""
            start_us = 0
            if trace_id is not None:
                assert self._ids is not None
                span_id = self._ids.span_id()
                attempt_ids.append(span_id)
                headers = {"traceparent": TraceContext(
                    trace_id, span_id).to_traceparent()}
                start_us = int(time.time() * 1e6)
            try:
                status, payload = await asyncio.wait_for(
                    self._once(method, path, body, headers),
                    timeout=remaining)
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, OSError) as exc:
                await self.close()
                self._record_attempt(trace_id, span_id, start_us,
                                     path, attempt, None,
                                     error=type(exc).__name__)
                last = exc
                if isinstance(exc, asyncio.TimeoutError):
                    break       # deadline spent; don't burn more time
            else:
                self._record_attempt(trace_id, span_id, start_us,
                                     path, attempt, status)
                if status < 400:
                    return payload
                if status not in RETRYABLE_STATUSES \
                        or attempt >= max_retries:
                    _raise_for(status, payload)
                last = ServeError(status, payload.get("error", ""),
                                  payload.get("message", ""))
            delay = min(_backoff_s(attempt, self._rng),
                        max(0.0, expiry - time.monotonic()))
            await asyncio.sleep(delay)
        if isinstance(last, ServeError):
            raise last
        raise ServeError(0, "unreachable",
                         f"no response from {self.host}:{self.port}"
                         f" ({last})")

    def _record_attempt(self, trace_id: Optional[str], span_id: str,
                        start_us: int, path: str, attempt: int,
                        status: Optional[int],
                        error: Optional[str] = None) -> None:
        if self.spans is None or trace_id is None:
            return
        attrs: Dict[str, Any] = {"attempt": attempt, "path": path}
        if status is not None:
            attrs["http_status"] = status
        if error is not None:
            attrs["error"] = error
        ok = status is not None and status < 400
        self.spans.emit(Span(
            name="client.request", trace_id=trace_id,
            span_id=span_id, start_us=start_us,
            end_us=int(time.time() * 1e6), component="client",
            status="ok" if ok else "error", attrs=attrs))

    async def raw_status(self, method: str, path: str,
                         body: Optional[Dict[str, Any]] = None, *,
                         trace_ctx: Optional[TraceContext] = None
                         ) -> Tuple[int, Dict[str, Any]]:
        """One attempt, no retries — the load generator's probe."""
        headers = {"traceparent": trace_ctx.to_traceparent()} \
            if trace_ctx is not None else None
        return await self._once(method, path, body, headers)
