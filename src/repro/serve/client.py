"""Sync + async SDK for the serve daemon.

Both clients speak the same retry discipline:

* **retryable**: connection errors, 429 (queue full) and 503
  (draining) — jittered exponential backoff, bounded by the caller's
  deadline;
* **not retryable**: 400s (the request is wrong), 404, 500 (the
  daemon already retried crashed workers internally), 504 (the
  deadline the server honoured is the one we sent).

:class:`ServeClient` wraps :mod:`http.client` with a persistent
keep-alive connection — convenient for scripts and the CLI.
:class:`AsyncServeClient` speaks HTTP/1.1 over raw asyncio streams and
is what the load generator multiplexes.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from .protocol import API_VERSION

RETRYABLE_STATUSES = (429, 503)
DEFAULT_TIMEOUT_S = 60.0


class ServeError(Exception):
    """Non-2xx response (after retries were exhausted, if any)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


def _raise_for(status: int, payload: Dict[str, Any]) -> None:
    raise ServeError(status, payload.get("error", "unknown"),
                     payload.get("message", ""))


def _backoff_s(attempt: int, rng: random.Random, *,
               base: float = 0.05, cap: float = 2.0) -> float:
    return min(cap, base * (2 ** attempt)) * (0.5 + rng.random())


class ServeClient:
    """Synchronous client with keep-alive, retries and deadlines."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 max_retries: int = 3,
                 seed: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self._rng = random.Random(seed)
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _once(self, method: str, path: str,
              body: Optional[Dict[str, Any]]
              ) -> Tuple[int, Dict[str, Any]]:
        conn = self._connection()
        data = json.dumps(body).encode() if body is not None else None
        headers = {"content-type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "bad-payload",
                       "message": raw[:200].decode("latin-1")}
        return response.status, payload

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None, *,
                deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """One API call with retry/backoff under a deadline."""
        expiry = time.monotonic() + (deadline_s if deadline_s is not None
                                     else self.timeout_s)
        last: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            if time.monotonic() >= expiry:
                break
            try:
                status, payload = self._once(method, path, body)
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                self.close()    # stale keep-alive socket; reconnect
                last = exc
            else:
                if status < 400:
                    return payload
                if status not in RETRYABLE_STATUSES \
                        or attempt >= self.max_retries:
                    _raise_for(status, payload)
                last = ServeError(status, payload.get("error", ""),
                                  payload.get("message", ""))
            delay = _backoff_s(attempt, self._rng)
            delay = min(delay, max(0.0, expiry - time.monotonic()))
            time.sleep(delay)
        if isinstance(last, ServeError):
            raise last
        raise ServeError(0, "unreachable",
                         f"no response from {self.host}:{self.port}"
                         f" ({last})")

    # -- API surface ---------------------------------------------------

    def simulate(self, *, suite: Optional[str] = None,
                 bench: Optional[str] = None,
                 asm: Optional[str] = None,
                 program: Optional[Dict[str, Any]] = None,
                 core: str = "small", mode: str = "baseline",
                 scale: Optional[int] = None,
                 **extra: Any) -> Dict[str, Any]:
        body: Dict[str, Any] = {"api": API_VERSION, "core": core,
                                "mode": mode}
        if suite is not None:
            body.update(suite=suite, bench=bench)
        if scale is not None:
            body["scale"] = scale
        if asm is not None:
            body["asm"] = asm
        if program is not None:
            body["program"] = program
        body.update(extra)
        return self.request("POST", "/v1/simulate", body)

    def sweep(self, *, cores: Optional[List[str]] = None,
              modes: Optional[List[str]] = None,
              **workload: Any) -> Dict[str, Any]:
        body: Dict[str, Any] = {"api": API_VERSION}
        if cores is not None:
            body["cores"] = cores
        if modes is not None:
            body["modes"] = modes
        body.update(workload)
        return self.request("POST", "/v1/sweep", body)

    def verify(self, *, seed: int = 0, budget: int = 10,
               core: str = "small", **extra: Any) -> Dict[str, Any]:
        body = {"api": API_VERSION, "seed": seed, "budget": budget,
                "core": core}
        body.update(extra)
        return self.request("POST", "/v1/verify", body)

    def status(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/status")

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics_text(self) -> str:
        conn = self._connection()
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        return response.read().decode("utf-8")


class AsyncServeClient:
    """Asyncio client over one persistent HTTP/1.1 connection.

    Not task-safe by design: the load generator opens one client per
    in-flight lane, which is also how you measure a service honestly.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 max_retries: int = 3,
                 seed: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self._rng = random.Random(seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _once(self, method: str, path: str,
                    body: Optional[Dict[str, Any]]
                    ) -> Tuple[int, Dict[str, Any]]:
        await self._connect()
        assert self._reader is not None and self._writer is not None
        data = json.dumps(body).encode() if body is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"host: {self.host}:{self.port}\r\n"
                f"content-type: application/json\r\n"
                f"content-length: {len(data)}\r\n"
                f"\r\n").encode("latin-1")
        self._writer.write(head + data)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection") == "close":
            await self.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "bad-payload",
                       "message": raw[:200].decode("latin-1")}
        return status, payload

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None, *,
                      deadline_s: Optional[float] = None,
                      retries: Optional[int] = None) -> Dict[str, Any]:
        expiry = time.monotonic() + (deadline_s
                                     if deadline_s is not None
                                     else self.timeout_s)
        max_retries = self.max_retries if retries is None else retries
        last: Optional[Exception] = None
        for attempt in range(max_retries + 1):
            remaining = expiry - time.monotonic()
            if remaining <= 0:
                break
            try:
                status, payload = await asyncio.wait_for(
                    self._once(method, path, body), timeout=remaining)
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, OSError) as exc:
                await self.close()
                last = exc
                if isinstance(exc, asyncio.TimeoutError):
                    break       # deadline spent; don't burn more time
            else:
                if status < 400:
                    return payload
                if status not in RETRYABLE_STATUSES \
                        or attempt >= max_retries:
                    _raise_for(status, payload)
                last = ServeError(status, payload.get("error", ""),
                                  payload.get("message", ""))
            delay = min(_backoff_s(attempt, self._rng),
                        max(0.0, expiry - time.monotonic()))
            await asyncio.sleep(delay)
        if isinstance(last, ServeError):
            raise last
        raise ServeError(0, "unreachable",
                         f"no response from {self.host}:{self.port}"
                         f" ({last})")

    async def raw_status(self, method: str, path: str,
                         body: Optional[Dict[str, Any]] = None
                         ) -> Tuple[int, Dict[str, Any]]:
        """One attempt, no retries — the load generator's probe."""
        return await self._once(method, path, body)
