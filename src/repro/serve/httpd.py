"""Minimal asyncio HTTP/1.1 server (stdlib only).

Just enough HTTP for a JSON API: request line + headers +
``Content-Length`` bodies, keep-alive by default, bounded line/header/
body sizes, and per-connection bookkeeping so the daemon can drain
gracefully (stop accepting, let in-flight requests finish, then close
idle connections).

Not implemented on purpose: chunked transfer encoding, pipelining
beyond sequential keep-alive, TLS, HTTP/2.  Clients that need those
are holding the simulator wrong.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional, Set

#: request-line / single-header byte cap
MAX_LINE = 8 * 1024
MAX_HEADERS = 64
DEFAULT_MAX_BODY = 512 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(Exception):
    """Malformed request framing (connection is closed after 400)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON (raises ``HttpProtocolError`` 400)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpProtocolError(400,
                                    f"body is not valid JSON: {exc}") \
                from exc


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload: Any, status: int = 200,
             headers: Optional[Dict[str, str]] = None) -> "HttpResponse":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        return cls(status=status, body=body,
                   headers=dict(headers or {}))

    @classmethod
    def text(cls, text: str, status: int = 200) -> "HttpResponse":
        return cls(status=status, body=text.encode(),
                   content_type="text/plain; version=0.0.4")


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


async def read_request(reader: asyncio.StreamReader, *,
                       max_body: int = DEFAULT_MAX_BODY
                       ) -> Optional[HttpRequest]:
    """Read one request; ``None`` on clean EOF before the first byte."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise HttpProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(400, f"malformed request line: "
                                     f"{line[:80]!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await reader.readline()
        if len(line) > MAX_LINE:
            raise HttpProtocolError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(400, f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpProtocolError(400, "too many headers")

    if "transfer-encoding" in headers:
        raise HttpProtocolError(400, "chunked bodies are not supported")
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise HttpProtocolError(400, f"bad content-length "
                                     f"{length_raw!r}") from None
    if length < 0 or length > max_body:
        raise HttpProtocolError(413, f"body of {length} bytes exceeds "
                                     f"the {max_body}-byte limit")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method, path=path, headers=headers,
                       body=body)


def render_response(resp: HttpResponse, *, keep_alive: bool) -> bytes:
    reason = REASONS.get(resp.status, "Unknown")
    lines = [f"HTTP/1.1 {resp.status} {reason}",
             f"content-type: {resp.content_type}",
             f"content-length: {len(resp.body)}",
             f"connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in resp.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + resp.body


class HttpServer:
    """Keep-alive HTTP server dispatching to one async handler."""

    def __init__(self, handler: Handler, *, host: str = "127.0.0.1",
                 port: int = 0, max_body: int = DEFAULT_MAX_BODY) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._closing = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass    # drain cut an idle keep-alive connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                request = await read_request(reader,
                                             max_body=self.max_body)
            except HttpProtocolError as exc:
                payload = {"error": "bad-request", "message": exc.message}
                writer.write(render_response(
                    HttpResponse.json(payload, status=exc.status),
                    keep_alive=False))
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            response = await self.handler(request)
            keep_alive = (not self._closing and
                          request.headers.get("connection", "") != "close")
            try:
                writer.write(render_response(response,
                                             keep_alive=keep_alive))
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if not keep_alive:
                return

    async def close(self, *, grace_s: float = 10.0) -> None:
        """Stop accepting, wait for in-flight connections, then cut."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            _, pending = await asyncio.wait(
                set(self._connections), timeout=grace_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    @property
    def open_connections(self) -> int:
        return len(self._connections)
