"""``python -m repro.serve ops`` — live terminal dashboard.

Polls a running daemon's ``/v1/status`` and ``/metrics`` endpoints and
renders one compact frame per interval: request rate, latency
percentiles (derived from the canonical cumulative ``le`` buckets the
daemon exposes — the same math PromQL's ``histogram_quantile`` does),
queue depth, worker health, cache-tier hit counters, SLO burn rates
and the slowest recent trace ids for drill-down with
``python -m repro.obs.trace tree``.

Rendering is a pure function of two scrapes
(:func:`render_frame`), so the tests drive it without a terminal, and
``--once`` prints a single frame for scripts and CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.metrics import histogram_quantile, parse_prometheus
from repro.obs.slo import SloSpec, burn_from_buckets, burn_rate

from .client import ServeClient, ServeError

_CLEAR = "\x1b[2J\x1b[H"


@dataclass
class OpsSample:
    """One scrape of a daemon: status JSON + parsed /metrics."""

    ts: float
    status: Dict[str, Any]
    metrics: Dict[str, Any]

    def counter(self, name: str) -> float:
        return self.metrics["samples"].get(name, 0.0)

    def histogram(self, name: str) -> Optional[Dict[str, Any]]:
        return self.metrics["histograms"].get(name)


def collect(client: ServeClient) -> OpsSample:
    status = client.status()
    metrics = parse_prometheus(client.metrics_text())
    return OpsSample(ts=time.monotonic(), status=status,
                    metrics=metrics)


def _fmt_ms(value_us: Optional[float]) -> str:
    if value_us is None:
        return "-"
    return f"{value_us / 1000.0:.1f}"


def _fmt_burn(value: Optional[float]) -> str:
    if value is None:
        return "-"
    flag = " !!" if value > 1.0 else ""
    return f"{value:.2f}{flag}"


def render_frame(sample: OpsSample,
                 prev: Optional[OpsSample] = None,
                 spec: Optional[SloSpec] = None) -> str:
    """Render one dashboard frame (pure: two scrapes in, text out)."""
    spec = spec or SloSpec()
    status = sample.status
    queue = status.get("queue", {})
    workers = status.get("workers", {})

    lines: List[str] = []
    state = status.get("status", "?")
    lines.append(
        f"redsoc-serve ops — {state} "
        f"up {status.get('uptime_s', 0):.0f}s  "
        f"model {status.get('model_version', '?')}")

    total = sample.counter("redsoc_serve_requests_total")
    if prev is not None and sample.ts > prev.ts:
        rps = (total - prev.counter("redsoc_serve_requests_total")) \
            / (sample.ts - prev.ts)
        rps_text = f"{rps:.1f}"
    else:
        rps_text = "-"
    hist = sample.histogram("redsoc_serve_latency_us")
    buckets = hist["buckets"] if hist else []
    lines.append(
        f"rps {rps_text}  requests {total:.0f}  "
        f"latency ms p50={_fmt_ms(histogram_quantile(buckets, 0.50))} "
        f"p95={_fmt_ms(histogram_quantile(buckets, 0.95))} "
        f"p99={_fmt_ms(histogram_quantile(buckets, 0.99))}")

    pids = workers.get("pids", [])
    lines.append(
        f"queue {queue.get('depth', 0)}/{queue.get('max_depth', '?')} "
        f"inflight {queue.get('inflight', 0)}  "
        f"workers {len(pids)}/{workers.get('configured', '?')} "
        f"gen {sample.counter('redsoc_serve_worker_generation'):.0f} "
        f"crashes {sample.counter('redsoc_serve_worker_crashes'):.0f}")

    lines.append(
        f"cache: lru {sample.counter('redsoc_serve_lru_hits'):.0f}  "
        f"content-addressed "
        f"{sample.counter('redsoc_serve_cache_hits'):.0f} hit / "
        f"{sample.counter('redsoc_serve_cache_misses'):.0f} miss  "
        f"coalesced "
        f"{sample.counter('redsoc_serve_singleflight_coalesced'):.0f}  "
        f"429 {sample.counter('redsoc_serve_rejected_queue_full'):.0f}")

    bad = sample.counter("redsoc_serve_responses_5xx")
    avail_burn = burn_rate(bad / total if total else 0.0,
                           spec.availability) if total else None
    lat_burn = None
    if hist and hist.get("count"):
        lat_burn = burn_from_buckets(
            buckets, int(hist["count"]),
            threshold_us=spec.latency_ms * 1000.0,
            objective=spec.latency_objective)
    lines.append(
        f"slo: availability burn {_fmt_burn(avail_burn)} "
        f"(objective {spec.availability})  "
        f"latency<={spec.latency_ms:g}ms burn {_fmt_burn(lat_burn)} "
        f"(objective {spec.latency_objective})")

    slowest = status.get("slowest_traces") or []
    if slowest:
        lines.append("slowest traces:")
        for entry in slowest[:5]:
            lines.append(f"  {entry['latency_us'] / 1000.0:9.1f} ms  "
                         f"{entry['trace_id']}")
    return "\n".join(lines) + "\n"


def run_dashboard(args: argparse.Namespace) -> int:
    spec = SloSpec(availability=args.availability,
                   latency_ms=args.latency_ms,
                   latency_objective=args.latency_objective)
    client = ServeClient(args.host, args.port, timeout_s=5.0,
                         max_retries=0)
    prev: Optional[OpsSample] = None
    try:
        while True:
            try:
                sample = collect(client)
            except (ServeError, OSError) as exc:
                print(f"error: daemon at {args.host}:{args.port} is "
                      f"not answering ({exc})", file=sys.stderr)
                return 1
            frame = render_frame(sample, prev, spec)
            if args.once:
                sys.stdout.write(frame)
                return 0
            sys.stdout.write(_CLEAR + frame)
            sys.stdout.flush()
            prev = sample
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()
