"""Closed/open-loop load generator for the serve daemon.

Two classic shapes:

* **closed loop** — N lanes, each issuing its next request the moment
  the previous one answers.  Measures the service's sustainable
  throughput at a fixed concurrency (think: N synchronous callers).
* **open loop** — requests fire on a fixed arrival schedule at a
  target rate regardless of completions, which is how real traffic
  behaves and what exposes queueing collapse: if the daemon can't keep
  up, latency grows and 429s appear instead of the generator politely
  slowing down.

The request **mix** is deterministic under ``--seed``: warm named
workloads (cache hits after the first round), inline text-asm kernels,
periodic sweeps, and (optionally) deliberately malformed programs to
keep the 400 path honest.  Every response is bucketed by status class;
latency percentiles come from the full reservoir (no sampling), and
the report is written to ``BENCH_serve.json``.

Report **schema 2** adds what the SLO checker and the ops dashboard
need: p99.9, an exact latency CDF tabulated at the
:data:`repro.obs.slo.CDF_THRESHOLDS_MS` thresholds, a per-request-class
latency breakdown (``simulate``/``sweep``/``verify`` × warm/cold), and
— with ``trace=True`` — one trace id per request (seed-derived, so the
id stream is reproducible) plus the slowest traces for drill-down.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.slo import CDF_THRESHOLDS_MS
from repro.obs.trace import IdSource, TraceContext

from .client import AsyncServeClient, ServeError
from .protocol import API_VERSION

DEFAULT_OUTPUT = "BENCH_serve.json"

#: benchmarks the default mix rotates through (small + fast ones)
_NAMED = (("ml", "pool0", 4), ("ml", "act", 8), ("mibench", "bitcnt", 8),
          ("mibench", "crc", 64), ("spec", "soplex", 4))

_INLINE_ASM = """
    mov   r1, #{imm}
    mov   r2, #200
loop:
    eor   r1, r1, #0x5A
    ror   r1, r1, #3
    subs  r2, r2, #1
    bne   loop
    halt
"""

_BAD_ASM = "    frobnicate r1, r2\n    halt\n"


@dataclass
class MixItem:
    name: str
    weight: float
    make_body: Callable[[random.Random], Tuple[str, Dict[str, Any]]]


def _named_body(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    suite, bench, scale = _NAMED[rng.randrange(len(_NAMED))]
    mode = rng.choice(("baseline", "redsoc", "mos"))
    return "simulate", {"api": API_VERSION, "suite": suite,
                        "bench": bench, "scale": scale,
                        "core": "small", "mode": mode}


def _inline_body(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    # a handful of distinct immediates → mostly warm, sometimes cold
    imm = rng.choice((17, 23, 91, 128))
    return "simulate", {"api": API_VERSION,
                        "asm": _INLINE_ASM.format(imm=imm),
                        "name": f"lg-{imm}", "core": "small",
                        "mode": "redsoc"}


def _sweep_body(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    suite, bench, scale = _NAMED[rng.randrange(2)]
    return "sweep", {"api": API_VERSION, "suite": suite, "bench": bench,
                     "scale": scale, "cores": ["small"],
                     "modes": ["baseline", "redsoc"],
                     "priority": "batch"}


def _estimate_body(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    # same rotation as the named simulates, so after the first rounds
    # the feature cache is warm and estimates answer inline
    suite, bench, scale = _NAMED[rng.randrange(len(_NAMED))]
    mode = rng.choice(("baseline", "redsoc", "mos"))
    return "estimate", {"api": API_VERSION, "suite": suite,
                        "bench": bench, "scale": scale,
                        "core": "small", "mode": mode}


def _bad_body(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "simulate", {"api": API_VERSION, "asm": _BAD_ASM,
                        "core": "small", "mode": "baseline"}


def default_mix(include_errors: bool = False) -> List[MixItem]:
    mix = [MixItem("named-simulate", 0.50, _named_body),
           MixItem("inline-simulate", 0.27, _inline_body),
           MixItem("estimate", 0.15, _estimate_body),
           MixItem("sweep", 0.08, _sweep_body)]
    if include_errors:
        mix.append(MixItem("bad-asm", 0.05, _bad_body))
    return mix


def estimate_mix() -> List[MixItem]:
    """Pure-estimate mix — measures the analytic fast path alone."""
    return [MixItem("estimate", 1.0, _estimate_body)]


def _pick(mix: List[MixItem], rng: random.Random) -> MixItem:
    total = sum(m.weight for m in mix)
    roll = rng.random() * total
    for item in mix:
        roll -= item.weight
        if roll <= 0:
            return item
    return mix[-1]


@dataclass
class Sample:
    kind: str
    status: int
    latency_us: int
    served: str = ""
    #: "warm" (LRU / coalesced / cache hit) or "cold" (simulated)
    temp: str = ""
    trace_id: str = ""

    @property
    def request_class(self) -> str:
        return f"{self.kind}:{self.temp}" if self.temp else self.kind


@dataclass
class LoadReport:
    """Everything one loadgen run measured."""

    mode: str
    requests: int = 0
    samples: List[Sample] = field(default_factory=list)
    wall_time_s: float = 0.0
    target_rate: Optional[float] = None
    concurrency: int = 0
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sample in self.samples:
            key = f"{sample.status // 100}xx"
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def throughput_rps(self) -> float:
        return (len(self.samples) / self.wall_time_s
                if self.wall_time_s else 0.0)

    def _latencies(self, ok_only: bool = True) -> List[int]:
        return sorted(s.latency_us for s in self.samples
                      if not ok_only or s.status < 400)

    def percentile_ms(self, p: float) -> Optional[float]:
        lats = self._latencies()
        if not lats:
            return None
        index = min(len(lats) - 1, int(p * len(lats)))
        return lats[index] / 1000.0

    def kind_percentile_ms(self, kind: str,
                           p: float) -> Optional[float]:
        """Latency percentile of one request kind (successes only) —
        what the ``--max-estimate-p99-ms`` gate reads."""
        lats = sorted(s.latency_us for s in self.samples
                      if s.kind == kind and s.status < 400)
        if not lats:
            return None
        return lats[min(len(lats) - 1, int(p * len(lats)))] / 1000.0

    def latency_cdf_ms(self) -> Dict[str, float]:
        """Exact fraction of successful requests at or under each
        tabulated threshold — what makes the SLO latency leg exact."""
        lats = self._latencies()
        cdf: Dict[str, float] = {}
        if not lats:
            return cdf
        for threshold in CDF_THRESHOLDS_MS:
            limit = threshold * 1000.0
            under = sum(1 for lat in lats if lat <= limit)
            cdf[f"{threshold:g}"] = round(under / len(lats), 6)
        return cdf

    def class_breakdown(self) -> Dict[str, Dict[str, Any]]:
        by_class: Dict[str, List[int]] = {}
        for sample in self.samples:
            if sample.status < 400:
                by_class.setdefault(sample.request_class, []) \
                    .append(sample.latency_us)
        out: Dict[str, Dict[str, Any]] = {}
        for name, lats in sorted(by_class.items()):
            lats.sort()
            def pick(p: float) -> float:
                return lats[min(len(lats) - 1,
                                int(p * len(lats)))] / 1000.0
            out[name] = {"requests": len(lats),
                         "latency_ms": {"p50": pick(0.50),
                                        "p95": pick(0.95),
                                        "p99": pick(0.99)}}
        return out

    def slowest(self, n: int = 5) -> List[Dict[str, Any]]:
        ranked = sorted(self.samples, key=lambda s: -s.latency_us)[:n]
        return [{"latency_us": s.latency_us, "kind": s.kind,
                 "status": s.status, "trace_id": s.trace_id}
                for s in ranked]

    def to_payload(self) -> Dict[str, Any]:
        lats = self._latencies()
        served: Dict[str, int] = {}
        for sample in self.samples:
            if sample.served:
                served[sample.served] = served.get(sample.served, 0) + 1
        return {
            "schema": 2,
            "mode": self.mode,
            "requests": len(self.samples),
            "concurrency": self.concurrency,
            "target_rate_rps": self.target_rate,
            "wall_time_s": round(self.wall_time_s, 3),
            "throughput_rps": round(self.throughput_rps, 1),
            "status_counts": self.status_counts,
            "served_by": served,
            "transport_errors": dict(self.errors),
            "latency_ms": {
                "p50": self.percentile_ms(0.50),
                "p95": self.percentile_ms(0.95),
                "p99": self.percentile_ms(0.99),
                "p99.9": self.percentile_ms(0.999),
                "mean": (round(sum(lats) / len(lats) / 1000.0, 3)
                         if lats else None),
                "max": (lats[-1] / 1000.0) if lats else None,
            },
            "latency_cdf_ms": self.latency_cdf_ms(),
            "classes": self.class_breakdown(),
            "slowest": self.slowest(),
        }


def _temperature(payload: Any) -> str:
    """Classify a response as warm (answered from a cache tier or a
    coalesced flight) or cold (actually simulated)."""
    if not isinstance(payload, dict):
        return ""
    if payload.get("served") in ("lru", "coalesced", "inline"):
        return "warm"
    result = payload.get("result")
    if isinstance(result, dict):
        if "cache_hit" in result:
            return "warm" if result["cache_hit"] else "cold"
        jobs = result.get("jobs")
        if isinstance(jobs, list) and jobs:
            return "warm" if all(j.get("cache_hit")
                                 for j in jobs) else "cold"
    return "cold" if payload.get("served") == "worker" else ""


async def _issue(client: AsyncServeClient, kind: str,
                 body: Dict[str, Any], report: LoadReport,
                 timeout_s: float,
                 ids: Optional[IdSource] = None) -> None:
    ctx = TraceContext(ids.trace_id(), ids.span_id()) \
        if ids is not None else None
    start = time.perf_counter()
    try:
        status, payload = await asyncio.wait_for(
            client.raw_status("POST", f"/v1/{kind}", body,
                              trace_ctx=ctx),
            timeout=timeout_s)
        served = payload.get("served", "") if isinstance(payload, dict) \
            else ""
    except (ConnectionError, OSError, asyncio.IncompleteReadError,
            asyncio.TimeoutError, ServeError) as exc:
        await client.close()
        name = type(exc).__name__
        report.errors[name] = report.errors.get(name, 0) + 1
        return
    report.samples.append(Sample(
        kind=kind, status=status, served=served,
        temp=_temperature(payload),
        trace_id=ctx.trace_id if ctx is not None else "",
        latency_us=int((time.perf_counter() - start) * 1e6)))


async def _closed_loop(host: str, port: int, *, requests: int,
                       concurrency: int, mix: List[MixItem],
                       seed: int, timeout_s: float,
                       trace: bool = False) -> LoadReport:
    report = LoadReport(mode="closed", concurrency=concurrency)
    issued = {"n": 0}
    start = time.perf_counter()

    async def lane(lane_id: int) -> None:
        rng = random.Random((seed << 8) | lane_id)
        ids = IdSource((seed << 16) | lane_id) if trace else None
        client = AsyncServeClient(host, port, timeout_s=timeout_s)
        try:
            while issued["n"] < requests:
                issued["n"] += 1
                kind, body = _pick(mix, rng).make_body(rng)
                await _issue(client, kind, body, report, timeout_s,
                             ids)
        finally:
            await client.close()

    await asyncio.gather(*[lane(i) for i in range(concurrency)])
    report.wall_time_s = time.perf_counter() - start
    report.requests = len(report.samples)
    return report


async def _open_loop(host: str, port: int, *, requests: int,
                     rate: float, mix: List[MixItem], seed: int,
                     timeout_s: float,
                     max_outstanding: int = 256,
                     trace: bool = False) -> LoadReport:
    report = LoadReport(mode="open", target_rate=rate,
                        concurrency=max_outstanding)
    rng = random.Random(seed)
    ids = IdSource(seed << 16) if trace else None
    interval = 1.0 / rate
    gate = asyncio.Semaphore(max_outstanding)
    tasks: List[asyncio.Task] = []
    start = time.perf_counter()

    async def one(kind: str, body: Dict[str, Any]) -> None:
        client = AsyncServeClient(host, port, timeout_s=timeout_s)
        try:
            await _issue(client, kind, body, report, timeout_s, ids)
        finally:
            await client.close()
            gate.release()

    for index in range(requests):
        target = start + index * interval
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        kind, body = _pick(mix, rng).make_body(rng)
        await gate.acquire()
        tasks.append(asyncio.ensure_future(one(kind, body)))
    await asyncio.gather(*tasks)
    report.wall_time_s = time.perf_counter() - start
    report.requests = len(report.samples)
    return report


def run_loadgen(host: str = "127.0.0.1", port: int = 8787, *,
                mode: str = "closed", requests: int = 200,
                concurrency: int = 8, rate: float = 100.0,
                seed: int = 0, timeout_s: float = 30.0,
                include_errors: bool = False,
                trace: bool = False,
                mix: Optional[List[MixItem]] = None) -> LoadReport:
    """Drive the daemon and return a :class:`LoadReport`."""
    mix = mix if mix is not None else default_mix(include_errors)
    if mode == "closed":
        coro = _closed_loop(host, port, requests=requests,
                            concurrency=concurrency, mix=mix,
                            seed=seed, timeout_s=timeout_s,
                            trace=trace)
    elif mode == "open":
        coro = _open_loop(host, port, requests=requests, rate=rate,
                          mix=mix, seed=seed, timeout_s=timeout_s,
                          trace=trace)
    else:
        raise ValueError(f"mode must be 'closed' or 'open', not {mode!r}")
    return asyncio.run(coro)


def write_report(report: LoadReport,
                 path: Path = Path(DEFAULT_OUTPUT),
                 extra: Optional[Dict[str, Any]] = None) -> Path:
    payload = report.to_payload()
    if extra:
        payload.update(extra)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
