"""``python -m repro.serve`` — start, status, loadgen.

Examples::

    # start the daemon (ctrl-C or SIGTERM drains gracefully)
    python -m repro.serve start --port 8787 --workers 4

    # one-line health + queue/worker overview of a running daemon
    python -m repro.serve status --port 8787

    # closed-loop: 8 lanes, 500 requests, write BENCH_serve.json
    python -m repro.serve loadgen --requests 500 --concurrency 8

    # open-loop at 250 req/s against a daemon it spawns itself,
    # failing (exit 1) on any 5xx or a p99 above 150 ms
    python -m repro.serve loadgen --spawn --mode open --rate 250 \
        --requests 1000 --assert-zero-5xx --max-p99-ms 150
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

from .app import ServeConfig, ServeDaemon
from .client import ServeClient, ServeError
from .loadgen import DEFAULT_OUTPUT, estimate_mix, run_loadgen, \
    write_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="ReDSOC simulation-as-a-service daemon, status "
                    "probe and load generator.")
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run the daemon (foreground)")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument("--port", type=int, default=8787,
                       help="0 picks an ephemeral port (announced on "
                            "stdout)")
    start.add_argument("--workers", type=int,
                       default=max(2, (os.cpu_count() or 2) // 2),
                       help="simulation worker processes")
    start.add_argument("--cache-dir", type=Path, default=None,
                       help="shared result cache (default: "
                            "$REDSOC_CACHE_DIR or ./.redsoc-cache)")
    start.add_argument("--queue-depth", type=int, default=256,
                       help="admission queue bound (429 beyond this)")
    start.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="S", help="drain budget on SIGTERM")
    start.add_argument("--debug", action="store_true",
                       help="enable /v1/chaos/* fault injection")
    start.add_argument("--trace-dir", type=Path, default=None,
                       help="enable request tracing; spans stream to "
                            "<dir>/spans.jsonl")
    start.add_argument("--log-json", action="store_true",
                       help="structured JSON log lines on stderr")

    status = sub.add_parser("status", help="query a running daemon")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=8787)
    status.add_argument("--json", action="store_true",
                        help="raw JSON instead of the summary line")

    loadgen = sub.add_parser("loadgen", help="generate load + report")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8787)
    loadgen.add_argument("--spawn", action="store_true",
                         help="start a private daemon for the run and "
                              "SIGTERM-drain it afterwards")
    loadgen.add_argument("--spawn-workers", type=int, default=2,
                         help="workers for the spawned daemon")
    loadgen.add_argument("--cache-dir", type=Path, default=None,
                         help="cache dir for the spawned daemon")
    loadgen.add_argument("--mode", choices=("closed", "open"),
                         default="closed")
    loadgen.add_argument("--requests", "-n", type=int, default=200)
    loadgen.add_argument("--concurrency", "-c", type=int, default=8,
                         help="closed-loop lanes")
    loadgen.add_argument("--rate", type=float, default=100.0,
                         help="open-loop arrival rate (req/s)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         metavar="S", help="per-request timeout")
    loadgen.add_argument("--include-errors", action="store_true",
                         help="mix in malformed requests (400 path)")
    loadgen.add_argument("--estimate-only", action="store_true",
                         help="pure estimate mix (measures the "
                              "analytic fast path alone)")
    loadgen.add_argument("--output", "-o", type=Path,
                         default=Path(DEFAULT_OUTPUT))
    loadgen.add_argument("--assert-zero-5xx", action="store_true",
                         help="exit 1 if any 5xx was observed")
    loadgen.add_argument("--max-p99-ms", type=float, default=None,
                         help="exit 1 if p99 latency exceeds this")
    loadgen.add_argument("--max-estimate-p99-ms", type=float,
                         default=None,
                         help="exit 1 if the estimate request class's "
                              "p99 latency exceeds this")
    loadgen.add_argument("--min-throughput", type=float, default=None,
                         metavar="RPS",
                         help="exit 1 if throughput falls below this")
    loadgen.add_argument("--trace", action="store_true",
                         help="send a W3C traceparent with every "
                              "request (report rows then carry "
                              "trace ids)")
    loadgen.add_argument("--trace-dir", type=Path, default=None,
                         help="with --spawn: daemon span export dir "
                              "(implies --trace)")

    ops = sub.add_parser(
        "ops", help="live terminal dashboard (RPS, percentiles, "
                    "queue, workers, cache tiers, SLO burn)")
    ops.add_argument("--host", default="127.0.0.1")
    ops.add_argument("--port", type=int, default=8787)
    ops.add_argument("--interval", type=float, default=2.0,
                     metavar="S", help="refresh period")
    ops.add_argument("--once", action="store_true",
                     help="render one frame and exit (CI / scripts)")
    ops.add_argument("--availability", type=float, default=0.999)
    ops.add_argument("--latency-ms", type=float, default=250.0)
    ops.add_argument("--latency-objective", type=float, default=0.99)
    return parser


def _cmd_start(args: argparse.Namespace) -> int:
    config = ServeConfig(host=args.host, port=args.port,
                         workers=args.workers,
                         cache_dir=args.cache_dir,
                         queue_depth=args.queue_depth,
                         drain_grace_s=args.drain_grace,
                         debug=args.debug,
                         trace_dir=args.trace_dir,
                         log_json=args.log_json)
    daemon = ServeDaemon(config)

    def announce(message: str) -> None:
        print(message, flush=True)

    return daemon.run(announce=announce)


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port, timeout_s=5.0,
                         max_retries=0)
    try:
        payload = client.status()
    except ServeError as exc:
        print(f"error: daemon at {args.host}:{args.port} is not "
              f"answering ({exc})", file=sys.stderr)
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    queue = payload["queue"]
    workers = payload["workers"]
    print(f"{payload['status']} up={payload['uptime_s']:.0f}s "
          f"queue={queue['depth']}/{queue['max_depth']} "
          f"inflight={queue['inflight']} "
          f"workers={len(workers['pids'])}/{workers['configured']} "
          f"lru={payload['lru_entries']} cache={payload['cache_dir']}")
    return 0


def _spawn_daemon(args: argparse.Namespace) -> "subprocess.Popen[str]":
    cmd = [sys.executable, "-m", "repro.serve", "start", "--port", "0",
           "--workers", str(args.spawn_workers)]
    if args.cache_dir is not None:
        cmd += ["--cache-dir", str(args.cache_dir)]
    if getattr(args, "trace_dir", None) is not None:
        cmd += ["--trace-dir", str(args.trace_dir)]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    assert proc.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("serving on http://"):
            address = line.split("http://", 1)[1].split()[0]
            args.port = int(address.rsplit(":", 1)[1])
            args.host = address.rsplit(":", 1)[0]
            return proc
    proc.kill()
    raise RuntimeError("spawned daemon never announced its port")


def _drain_spawned(proc: "subprocess.Popen[str]") -> float:
    """SIGTERM the daemon; returns the drain wall time (s)."""
    start = time.monotonic()
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=15.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise RuntimeError("spawned daemon did not drain within 15 s")
    return time.monotonic() - start


def _cmd_loadgen(args: argparse.Namespace) -> int:
    proc = None
    drain_s: Optional[float] = None
    if args.spawn:
        proc = _spawn_daemon(args)
    try:
        report = run_loadgen(
            args.host, args.port, mode=args.mode,
            requests=args.requests, concurrency=args.concurrency,
            rate=args.rate, seed=args.seed, timeout_s=args.timeout,
            include_errors=args.include_errors,
            trace=args.trace or args.trace_dir is not None,
            mix=estimate_mix() if args.estimate_only else None)
    finally:
        if proc is not None:
            drain_s = _drain_spawned(proc)
    extra = {"drain_s": round(drain_s, 3)} if drain_s is not None \
        else None
    path = write_report(report, args.output, extra=extra)

    payload = report.to_payload()
    lat = payload["latency_ms"]
    def fmt(v):
        return f"{v:.1f}" if v is not None else "-"
    print(f"{payload['mode']} loop: {payload['requests']} requests in "
          f"{payload['wall_time_s']}s = "
          f"{payload['throughput_rps']} req/s")
    print(f"latency ms: p50={fmt(lat['p50'])} p95={fmt(lat['p95'])} "
          f"p99={fmt(lat['p99'])} p99.9={fmt(lat['p99.9'])} "
          f"max={fmt(lat['max'])}")
    print(f"status: {payload['status_counts']} "
          f"transport errors: {payload['transport_errors']}")
    if drain_s is not None:
        print(f"daemon drained in {drain_s:.2f}s")
    print(f"wrote {path}")

    failures: List[str] = []
    counts = payload["status_counts"]
    if args.assert_zero_5xx and counts.get("5xx", 0):
        failures.append(f"{counts['5xx']} 5xx responses")
    if args.assert_zero_5xx and payload["transport_errors"]:
        failures.append(f"transport errors: "
                        f"{payload['transport_errors']}")
    if args.max_p99_ms is not None and (
            lat["p99"] is None or lat["p99"] > args.max_p99_ms):
        failures.append(f"p99 {fmt(lat['p99'])}ms exceeds "
                        f"{args.max_p99_ms}ms")
    if args.max_estimate_p99_ms is not None:
        est_p99 = report.kind_percentile_ms("estimate", 0.99)
        if est_p99 is None:
            failures.append("no successful estimate requests to gate")
        elif est_p99 > args.max_estimate_p99_ms:
            failures.append(f"estimate p99 {fmt(est_p99)}ms exceeds "
                            f"{args.max_estimate_p99_ms}ms")
    if args.min_throughput is not None and \
            payload["throughput_rps"] < args.min_throughput:
        failures.append(f"throughput {payload['throughput_rps']} "
                        f"req/s below {args.min_throughput}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    from .ops import run_dashboard
    return run_dashboard(args)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"start": _cmd_start, "status": _cmd_status,
               "loadgen": _cmd_loadgen, "ops": _cmd_ops}[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:
        return 130
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
