"""Simulation-as-a-service: a stdlib-only asyncio HTTP daemon.

``repro.serve`` turns the batch simulator into a long-lived service:

* :mod:`repro.serve.protocol` — versioned JSON wire format: ``simulate``
  (named workload or inline text-asm/serialised program), ``sweep``
  (a core × mode grid) and ``verify`` (a seeded fuzz batch), each fully
  validated before admission so malformed input maps to typed 400s;
* :mod:`repro.serve.httpd` — a minimal asyncio HTTP/1.1 server with
  keep-alive and connection tracking for graceful drain;
* :mod:`repro.serve.admission` — bounded priority admission queue with
  typed 429/503 rejections, single-flight deduplication of identical
  in-flight requests, and cooperative deadline expiry;
* :mod:`repro.serve.workers` — a supervised ``ProcessPoolExecutor``
  that detects crashed workers and respawns with bounded, jittered
  retries; simulation reads through the :mod:`repro.campaign` cache;
* :mod:`repro.serve.app` — the daemon wiring request flow, response
  LRU, ``/metrics`` + ``/healthz`` + ``/v1/status`` and SIGTERM drain;
* :mod:`repro.serve.client` — sync and async SDKs with retry/backoff
  and deadlines;
* :mod:`repro.serve.loadgen` — closed/open-loop load generator that
  writes ``BENCH_serve.json`` (throughput + p50/p95/p99 latency).

Run ``python -m repro.serve start`` and point curl at
``http://127.0.0.1:8787/v1/simulate``.
"""

from .admission import AdmissionQueue, Draining, QueueFull, Ticket
from .app import ServeApp, ServeConfig, ServeDaemon
from .client import AsyncServeClient, ServeClient, ServeError
from .loadgen import LoadReport, run_loadgen
from .protocol import (
    API_VERSION,
    Priority,
    RequestError,
    SimulateSpec,
    SweepSpec,
    VerifySpec,
    parse_request,
)
from .workers import WorkerCrash, WorkerPool

__all__ = [
    "API_VERSION", "AdmissionQueue", "AsyncServeClient", "Draining",
    "LoadReport", "Priority", "QueueFull", "RequestError", "ServeApp",
    "ServeClient", "ServeConfig", "ServeDaemon", "ServeError",
    "SimulateSpec", "SweepSpec", "Ticket", "VerifySpec", "WorkerCrash",
    "WorkerPool", "parse_request", "run_loadgen",
]
