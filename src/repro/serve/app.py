"""The serve daemon: request flow, routes, drain, observability.

Request lifecycle::

    HTTP → parse/validate (400) → response LRU (hit? answer) →
    admission queue (429/503, single-flight) → dispatcher →
    worker pool (crash-supervised) → response + metrics

Every stage is bounded: body size, queue depth, per-request deadline,
worker retry budget, drain grace.  ``/metrics`` exposes the whole
registry in the Prometheus text exposition format; ``/healthz`` flips
to 503 the moment a drain starts so load-balancers stop routing here.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaign.cache import default_cache_dir, model_version
from repro.obs import MetricsRegistry
from repro.obs.log import JsonLogger, stderr_logger
from repro.obs.metrics import LATENCY_BUCKETS_US, format_le
from repro.obs.trace import (
    ActiveSpan,
    JsonlSpanSink,
    TraceContext,
    Tracer,
)

from .admission import AdmissionQueue, Draining, QueueFull, Ticket
from .httpd import HttpProtocolError, HttpRequest, HttpResponse, HttpServer
from .protocol import (
    API_VERSION,
    RequestError,
    SweepSpec,
    parse_request,
)
from .workers import WorkerCrash, WorkerPool


@dataclass
class ServeConfig:
    """Daemon knobs (all bounded-resource decisions in one place)."""

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 2
    cache_dir: Optional[Path] = None
    queue_depth: int = 256
    #: concurrent worker-pool submissions (queue admits more; these run)
    max_inflight: Optional[int] = None
    lru_size: int = 1024
    max_body: int = 512 * 1024
    drain_grace_s: float = 10.0
    #: enables the `sleep` work kind and /v1/chaos/* (tests only)
    debug: bool = False
    #: span export directory — tracing is *on* iff this is set; spans
    #: stream to ``<trace_dir>/spans.jsonl`` (append mode, so a
    #: restarted daemon extends the same artifact)
    trace_dir: Optional[Path] = None
    #: structured JSON logging on stderr (one object per line)
    log_json: bool = False

    def resolved_cache_dir(self) -> Path:
        return Path(self.cache_dir) if self.cache_dir is not None \
            else default_cache_dir()

    @property
    def dispatchers(self) -> int:
        # a little headroom over the pool keeps workers saturated
        # while results are marshalled back on the event loop
        return self.max_inflight or self.workers + 2


class ServeApp:
    """Routes + request flow; owns the queue, pool, LRU and metrics."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.tracer: Optional[Tracer] = None
        self._span_fh = None
        if config.trace_dir is not None:
            trace_dir = Path(config.trace_dir)
            trace_dir.mkdir(parents=True, exist_ok=True)
            self._span_fh = open(trace_dir / "spans.jsonl", "a",
                                 encoding="utf-8")
            self.tracer = Tracer(JsonlSpanSink(self._span_fh))
        self.logger: Optional[JsonLogger] = \
            stderr_logger(component="serve") if config.log_json \
            else None
        self.queue = AdmissionQueue(config.queue_depth,
                                    metrics=self.metrics)
        self.pool = WorkerPool(config.workers,
                               str(config.resolved_cache_dir()),
                               metrics=self.metrics,
                               tracer=self.tracer)
        self.server = HttpServer(self.handle, host=config.host,
                                 port=config.port,
                                 max_body=config.max_body)
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._dispatchers: List[asyncio.Task] = []
        self._inflight = 0
        self._draining = False
        #: created lazily inside the loop — binding an asyncio.Event at
        #: construction time breaks on 3.9 when the app is built
        #: before asyncio.run() starts the real loop
        self._drained: Optional[asyncio.Event] = None
        #: le-label -> most recent exemplar for serve.latency_us
        #: buckets (only populated when tracing is on)
        self._exemplars: Dict[str, Dict[str, Any]] = {}
        #: descending (latency_us, trace_id) — the ops dashboard's
        #: "slowest traces" panel reads this off /v1/status
        self._slowest: List[Any] = []
        self.started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        await self.server.start()
        await self.pool.warm_up()
        # pre-import the predict stack, load the calibration and warm
        # the source-digest memo now, so the first inline estimate
        # doesn't pay import/hashing latency on the event loop (it
        # would block every in-flight lane)
        from repro.predict.calibrate import default_calibration
        from repro.predict.service import predict_version
        default_calibration()
        predict_version()
        for _ in range(self.config.dispatchers):
            self._dispatchers.append(
                asyncio.ensure_future(self._dispatch_loop()))

    @property
    def port(self) -> int:
        return self.server.port

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, finish admitted work.

        Idempotent; resolves every in-flight request (completed or
        cleanly rejected) before tearing the pool down.
        """
        if self._draining:
            if self._drained is not None:
                await self._drained.wait()
            return
        self._draining = True
        self._drained = asyncio.Event()
        self.queue.begin_drain()
        try:
            await asyncio.wait_for(self.queue.join(),
                                   timeout=self.config.drain_grace_s)
        except asyncio.TimeoutError:
            self.metrics.counter("serve.drain_timeouts").inc()
        if self._dispatchers:
            await asyncio.wait(self._dispatchers,
                               timeout=self.config.drain_grace_s)
        for task in self._dispatchers:
            if not task.done():
                task.cancel()
        # in-flight responses are written by the connection tasks;
        # give them a beat, then close remaining (idle) connections
        await self.server.close(grace_s=0.5)
        self.pool.shutdown()
        if self._span_fh is not None:
            try:
                self._span_fh.close()
            except OSError:
                pass
        assert self._drained is not None
        self._drained.set()

    # -- dispatcher ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            ticket = await self.queue.next_ticket()
            if ticket is None:      # draining and empty
                return
            self._inflight += 1
            self.metrics.gauge("serve.inflight").set(self._inflight)
            try:
                result = await self._execute(ticket)
            except asyncio.CancelledError:  # forced teardown
                if not ticket.future.done():
                    ticket.future.cancel()
                raise
            except BaseException as exc:   # resolve, never drop
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
                if ticket.abandoned:       # nobody will retrieve it
                    _consume(ticket.future)
            else:
                ticket.completed_wall_us = int(time.time() * 1e6)
                if not ticket.future.done():
                    ticket.future.set_result(result)
            finally:
                self._inflight -= 1
                self.metrics.gauge("serve.inflight").set(self._inflight)

    @staticmethod
    def _batch_engine(payloads: List[Dict[str, Any]]) -> bool:
        """True when a sweep can ride one worker's batched replay —
        every payload is a named workload pinned to an engine with a
        registered batch entry point (e.g. ``vector``)."""
        from repro.core.engine import ENGINES
        engine = payloads[0].get("engine")
        if not engine or engine not in ENGINES \
                or ENGINES.batch(engine) is None:
            return False
        return all(p.get("suite") and p.get("engine") == engine
                   for p in payloads)

    async def _execute(self, ticket: Ticket) -> Dict[str, Any]:
        spec = ticket.spec
        deadline_s = ticket.remaining_s
        payloads = spec.worker_payloads()
        kind = "simulate" if isinstance(spec, SweepSpec) else spec.kind
        trace_parent = ticket.trace_ctx \
            if self.tracer is not None else None
        if trace_parent is not None:
            # retroactive queue-wait segment: admission → dispatch
            self.tracer.start(
                "queue.wait", parent=trace_parent, component="queue",
                start_us=ticket.enqueued_wall_us,
                priority=spec.priority.name.lower()).end()
        if len(payloads) == 1:
            results = [await self.pool.run(
                kind, payloads[0], deadline_s=deadline_s,
                trace_parent=trace_parent)]
        elif self._batch_engine(payloads):
            # the requested engine replays batched lanes in one pass:
            # ship the whole sweep grid to a single worker so every
            # lane shares the trace lowering and the columnar decode
            batched = await self.pool.run(
                "simulate_batch", {"jobs": payloads},
                deadline_s=deadline_s, trace_parent=trace_parent)
            results = list(batched["jobs"])
        else:
            # a sweep fans out across the pool as one batch
            results = list(await asyncio.gather(*[
                self.pool.run(kind, p, deadline_s=deadline_s,
                              trace_parent=trace_parent)
                for p in payloads]))
        for result in results:
            if "cache_hit" in result:
                name = ("serve.cache_hits" if result["cache_hit"]
                        else "serve.cache_misses")
                self.metrics.counter(name).inc()
        if isinstance(spec, SweepSpec):
            _attach_sweep_speedups(results)
            return {"jobs": results, "cores": list(spec.cores),
                    "modes": list(spec.modes)}
        return results[0]

    # -- request flow --------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        start = time.perf_counter()
        root: Optional[ActiveSpan] = None
        if self.tracer is not None and \
                request.path.startswith("/v1/"):
            # continue the caller's trace when it sent a (valid)
            # traceparent; mint a fresh one otherwise.  The request
            # span is this stream's local root — its parent is the
            # client SDK's span, which lives in the *client's* export.
            client_ctx = TraceContext.parse(
                request.headers.get("traceparent"))
            root = self.tracer.start(
                "request", parent=client_ctx, component="serve",
                method=request.method, path=request.path)
        try:
            response = await self._route(request, root)
        except HttpProtocolError as exc:
            response = _error_response(exc.status, "bad-request",
                                       exc.message)
        except RequestError as exc:
            response = HttpResponse.json(exc.to_payload(),
                                         status=exc.status)
        except (QueueFull, Draining) as exc:
            status = 429 if isinstance(exc, QueueFull) else 503
            response = _error_response(
                status,
                "queue-full" if status == 429 else "draining",
                str(exc), headers={"retry-after": "1"})
        except asyncio.TimeoutError:
            self.metrics.counter("serve.deadline_timeouts").inc()
            response = _error_response(504, "deadline-exceeded",
                                       "request deadline expired")
        except asyncio.CancelledError:
            # ticket expired while queued (cooperative cancellation)
            self.metrics.counter("serve.deadline_timeouts").inc()
            response = _error_response(504, "deadline-exceeded",
                                       "deadline expired in queue")
        except WorkerCrash as exc:
            response = _error_response(500, "worker-failed", str(exc))
        except Exception as exc:    # last-resort 500, never a traceback
            self.metrics.counter("serve.internal_errors").inc()
            response = _error_response(
                500, "internal", f"{type(exc).__name__}: {exc}")

        elapsed_us = int((time.perf_counter() - start) * 1e6)
        self.metrics.counter("serve.requests_total").inc()
        self.metrics.counter(
            f"serve.responses_{response.status // 100}xx").inc()
        if request.path.startswith("/v1/"):
            self.metrics.histogram("serve.latency_us").observe(
                elapsed_us)
        if root is not None:
            root.set(http_status=response.status)
            root.end(status="ok" if response.status < 400
                     else "error")
            response.headers.setdefault("x-trace-id",
                                        root.ctx.trace_id)
            self._note_latency(elapsed_us, root.ctx.trace_id)
        if self.logger is not None and \
                request.path.startswith("/v1/"):
            fields: Dict[str, Any] = {
                "method": request.method, "path": request.path,
                "status": response.status, "latency_us": elapsed_us}
            if root is not None:
                fields["trace_id"] = root.ctx.trace_id
            if response.status >= 500:
                self.logger.error("request.failed", **fields)
            elif response.status >= 400:
                self.logger.warning("request.rejected", **fields)
            else:
                self.logger.info("request", **fields)
        return response

    def _note_latency(self, elapsed_us: int, trace_id: str) -> None:
        """Pin an exemplar on the latency bucket this request landed
        in and track it for the slowest-traces panel."""
        le = "+Inf"
        for bound in LATENCY_BUCKETS_US:
            if elapsed_us <= bound:
                le = format_le(bound)
                break
        self._exemplars[le] = {"trace_id": trace_id,
                               "value": elapsed_us,
                               "ts": round(time.time(), 3)}
        self._slowest.append((elapsed_us, trace_id))
        self._slowest.sort(reverse=True)
        del self._slowest[10:]

    async def _route(self, request: HttpRequest,
                     root: Optional[ActiveSpan] = None
                     ) -> HttpResponse:
        path, method = request.path, request.method
        if path == "/healthz":
            status = 503 if self._draining else 200
            return HttpResponse.json(
                {"status": "draining" if self._draining else "ok"},
                status=status)
        if path == "/metrics":
            return HttpResponse.text(self._render_metrics())
        if path == "/v1/status":
            return HttpResponse.json(self._status_payload())
        if path.startswith("/v1/chaos/") and self.config.debug:
            return await self._chaos(request)
        if path.startswith("/v1/"):
            kind = path[len("/v1/"):]
            if method != "POST":
                return _error_response(405, "method-not-allowed",
                                       f"{kind} requires POST")
            return await self._submit(kind, request, root)
        return _error_response(404, "not-found",
                               f"no route for {path!r}")

    async def _submit(self, kind: str, request: HttpRequest,
                      root: Optional[ActiveSpan] = None
                      ) -> HttpResponse:
        spec = parse_request(kind, request.json())
        fingerprint = spec.fingerprint
        if root is not None:
            root.set(kind=spec.kind)

        cached = self._lru.get(fingerprint)
        if cached is not None:
            self._lru.move_to_end(fingerprint)
            self.metrics.counter("serve.lru_hits").inc()
            if root is not None:
                root.set(served="lru")
            payload = dict(cached)
            payload["served"] = "lru"
            return HttpResponse.json(payload)

        if spec.kind == "estimate":
            # warm-cache estimates answer inline on the event loop —
            # two small file reads plus a dot product, no simulation,
            # no queueing.  A cold feature cache returns None and the
            # request takes the normal worker-pool path (which may
            # generate the trace).
            from repro.predict.service import estimate_payload
            result = estimate_payload(
                spec.worker_payloads()[0],
                str(self.config.resolved_cache_dir()),
                allow_generate=False)
            if result is not None:
                self.metrics.counter("serve.estimate_inline").inc()
                self.metrics.counter("serve.cache_hits").inc()
                if root is not None:
                    root.set(served="inline")
                payload = {"api": API_VERSION, "kind": "estimate",
                           "result": result}
                self._lru_put(fingerprint, payload)
                response = dict(payload)
                response["served"] = "inline"
                return HttpResponse.json(response)

        ticket = self.queue.submit(
            spec, trace_ctx=root.ctx if root is not None else None)
        if root is not None and self.tracer is not None:
            # retroactive: parse/validate/LRU probe/enqueue, bracketed
            # from the request span's own start so the segments explain
            # the front of the request's wall time
            self.tracer.start(
                "admission", parent=root.ctx, component="serve",
                start_us=root.span.start_us).end()
        shared = ticket.spec is not spec     # single-flight follower
        wait_span = None
        if root is not None and shared and self.tracer is not None:
            # follower: its whole wait is one coalesced segment
            # pointing at the leader's trace
            leader = ticket.trace_ctx
            wait_span = self.tracer.start(
                "singleflight.wait", parent=root.ctx,
                component="queue",
                leader_trace_id=leader.trace_id if leader else None)
        # a follower waits at most its *own* deadline, even when the
        # leader it latched onto has more budget left
        timeout = min(ticket.remaining_s, spec.deadline_ms / 1000.0)
        try:
            result = await asyncio.wait_for(
                asyncio.shield(ticket.future), timeout=timeout)
        except asyncio.TimeoutError:
            if wait_span is not None:
                wait_span.end(status="timeout")
            if not shared:
                ticket.abandoned = True     # dispatcher will skip it
            raise
        except BaseException:
            if wait_span is not None:
                wait_span.end(status="error")
            raise
        if wait_span is not None:
            wait_span.end()
        elif root is not None and self.tracer is not None \
                and ticket.completed_wall_us:
            # retroactive: result ready in the dispatcher → this
            # handler resumed (event-loop handoff); the serialization
            # that follows is microseconds
            self.tracer.start(
                "respond", parent=root.ctx, component="serve",
                start_us=ticket.completed_wall_us).end()
        if root is not None:
            root.set(served="coalesced" if shared else "worker")
        payload = {"api": API_VERSION, "kind": spec.kind,
                   "result": result}
        if spec.kind in ("simulate", "sweep", "estimate"):
            self._lru_put(fingerprint, payload)
        response = dict(payload)
        response["served"] = "coalesced" if shared else "worker"
        return HttpResponse.json(response)

    def _lru_put(self, fingerprint: str,
                 payload: Dict[str, Any]) -> None:
        self._lru[fingerprint] = payload
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self.config.lru_size:
            self._lru.popitem(last=False)

    async def _chaos(self, request: HttpRequest) -> HttpResponse:
        """Debug-only fault injection (used by tests/serve/chaos)."""
        action = request.path[len("/v1/chaos/"):]
        if action == "kill-worker":
            pids = self.pool.worker_pids()
            if not pids:
                return _error_response(503, "no-workers",
                                       "no live workers to kill")
            os.kill(pids[0], signal.SIGKILL)
            return HttpResponse.json({"killed": pids[0]})
        return _error_response(404, "not-found",
                               f"no chaos action {action!r}")

    # -- observability -------------------------------------------------

    def _status_payload(self) -> Dict[str, Any]:
        return {
            "api": API_VERSION,
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "model_version": model_version().split(":")[0],
            "queue": {"depth": self.queue.depth,
                      "max_depth": self.config.queue_depth,
                      "inflight": self._inflight},
            "workers": {"configured": self.config.workers,
                        "pids": self.pool.worker_pids()},
            "cache_dir": str(self.config.resolved_cache_dir()),
            "lru_entries": len(self._lru),
            "tracing": self.tracer is not None,
            "slowest_traces": [
                {"latency_us": lat, "trace_id": tid}
                for lat, tid in self._slowest],
        }

    def _render_metrics(self) -> str:
        """Prometheus text exposition of the whole registry."""
        lines: List[str] = []
        snapshot = self.metrics.snapshot()
        for name, value in snapshot["counters"].items():
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in snapshot["gauges"].items():
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")
        for name, hist in sorted(self.metrics.histograms.items()):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} histogram")
            exemplars = self._exemplars \
                if name == "serve.latency_us" else {}
            for le, count in hist.cumulative(LATENCY_BUCKETS_US):
                label = format_le(le)
                line = f'{metric}_bucket{{le="{label}"}} {count}'
                exemplar = exemplars.get(label)
                if exemplar is not None:
                    # OpenMetrics exemplar: slow buckets name a trace
                    line += (f' # {{trace_id="'
                             f'{exemplar["trace_id"]}"}} '
                             f'{exemplar["value"]} {exemplar["ts"]}')
                lines.append(line)
            lines.append(f"{metric}_sum {hist.sum}")
            lines.append(f"{metric}_count {hist.total}")
        lines.append(f"redsoc_serve_uptime_seconds "
                     f"{round(time.monotonic() - self.started_at, 3)}")
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    return "redsoc_" + name.replace(".", "_").replace("-", "_")


def _consume(future: "asyncio.Future") -> None:
    """Swallow an already-set exception so asyncio doesn't warn."""
    if future.cancelled():
        return
    try:
        future.exception()
    except asyncio.CancelledError:
        pass


def _error_response(status: int, code: str, message: str,
                    headers: Optional[Dict[str, str]] = None
                    ) -> HttpResponse:
    return HttpResponse.json(
        {"api": API_VERSION, "error": code, "message": message},
        status=status, headers=headers)


def _attach_sweep_speedups(results: List[Dict[str, Any]]) -> None:
    """Join each sweep job with its same-core baseline (paper metric)."""
    baselines: Dict[str, int] = {}
    for result in results:
        if result.get("mode") == "baseline":
            baselines[result.get("core", "")] = result["cycles"]
    for result in results:
        base = baselines.get(result.get("core", ""))
        if base is not None and result.get("mode") != "baseline":
            result["speedup"] = base / result["cycles"] - 1.0


class ServeDaemon:
    """Process-level wrapper: signals, event loop, test harness."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.app: Optional[ServeApp] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = False

    # -- blocking entry point (the CLI) --------------------------------

    def run(self, *, announce=print) -> int:
        """Serve until SIGTERM/SIGINT; returns an exit code."""
        return asyncio.run(self._main(announce=announce))

    async def _main(self, *, announce=None) -> int:
        self.app = ServeApp(self.config)
        self._loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass    # non-main thread (tests) or exotic platform
        await self.app.start()
        if announce is not None:
            announce(f"serving on http://{self.config.host}:"
                     f"{self.app.port} "
                     f"(workers={self.config.workers}, "
                     f"queue={self.config.queue_depth})")
        self._ready.set()
        stopper = asyncio.ensure_future(stop.wait())
        try:
            await stopper
        finally:
            stopper.cancel()
            if announce is not None:
                announce("draining...")
            await self.app.drain()
            if announce is not None:
                announce("drained, bye")
        return 0

    # -- background harness (tests drive the daemon in a thread) -------

    def start_background(self, timeout_s: float = 20.0) -> int:
        """Run the daemon in a daemon thread; returns the bound port."""

        def runner() -> None:
            asyncio.run(self._background_main())

        self._thread = threading.Thread(target=runner,
                                        name="serve-daemon",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("daemon failed to start in time")
        assert self.app is not None
        return self.app.port

    async def _background_main(self) -> None:
        self.app = ServeApp(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.app.start()
        self._ready.set()
        await self._stop.wait()
        await self.app.drain()

    def request_shutdown(self) -> None:
        """Thread-safe drain trigger (the in-process SIGTERM)."""
        loop, app = self._loop, self.app
        if loop is None or app is None:
            return
        def _trigger() -> None:
            stop = getattr(self, "_stop", None)
            if stop is not None:
                stop.set()
        loop.call_soon_threadsafe(_trigger)

    def stop_background(self, timeout_s: float = 20.0) -> None:
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():
                raise RuntimeError("daemon failed to drain in time")
