"""Bounded priority admission queue with single-flight deduplication.

The daemon accepts work through exactly one funnel:

* a **bounded queue** per priority class — when the total backlog hits
  ``max_depth`` the submit raises :class:`QueueFull` (HTTP 429 with a
  ``Retry-After`` hint) instead of letting latency grow without bound;
* **drain mode** — once SIGTERM flips the queue into draining, new
  submissions raise :class:`Draining` (HTTP 503) while everything
  already admitted runs to completion;
* **single-flight dedup** — identical requests (same work fingerprint)
  in flight at the same time share one execution and one result, so a
  thundering herd on a cold cache key costs one simulation, not N
  (cache-stampede protection);
* **cooperative deadlines** — every ticket carries an absolute expiry;
  the dispatcher discards tickets that died waiting in the queue
  without executing them, which is what keeps an overloaded daemon
  from doing work nobody is waiting for any more.

The queue is consumed by dispatcher tasks (see :mod:`repro.serve.app`)
via :meth:`AdmissionQueue.next_ticket`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from collections import deque

from repro.obs import MetricsRegistry
from repro.obs.trace import TraceContext

from .protocol import BaseSpec, Priority


class QueueFull(Exception):
    """Backlog at capacity — reject with 429 + Retry-After."""


class Draining(Exception):
    """Daemon is shutting down — reject with 503."""


@dataclass
class Ticket:
    """One admitted request waiting for (or undergoing) execution."""

    spec: BaseSpec
    future: "asyncio.Future"
    enqueued_at: float = field(default_factory=time.monotonic)
    #: absolute monotonic expiry; the dispatcher skips dead tickets
    expires_at: float = 0.0
    #: flipped when the waiting handler gave up (timeout / disconnect)
    abandoned: bool = False
    #: the admitting request's trace context (the single-flight
    #: *leader's* — followers latch onto this ticket and link to it)
    trace_ctx: Optional[TraceContext] = None
    #: wall-clock admission time (µs) so the dispatcher can emit a
    #: queue-wait span with a true start timestamp; ``enqueued_at``
    #: stays monotonic for deadline math
    enqueued_wall_us: int = field(
        default_factory=lambda: int(time.time() * 1e6))
    #: wall-clock instant (µs) the result became available, stamped by
    #: the dispatcher so the handler can emit a retroactive ``respond``
    #: span covering the event-loop handoff back to the response writer
    completed_wall_us: int = 0

    def __post_init__(self) -> None:
        if self.expires_at == 0.0:
            self.expires_at = (self.enqueued_at
                               + self.spec.deadline_ms / 1000.0)

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.expires_at - time.monotonic())


class AdmissionQueue:
    """Priority FIFO with bounded depth and in-flight dedup."""

    def __init__(self, max_depth: int = 256, *,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.max_depth = max_depth
        self.metrics = metrics or MetricsRegistry()
        self._queues: Dict[Priority, Deque[Ticket]] = {
            p: deque() for p in Priority}
        #: lazily bound — creating an asyncio.Event off-loop breaks 3.9
        self._available_event: Optional[asyncio.Event] = None
        self._draining = False
        #: work fingerprint -> leader ticket (single-flight map)
        self._inflight: Dict[str, Ticket] = {}

    @property
    def _available(self) -> asyncio.Event:
        if self._available_event is None:
            self._available_event = asyncio.Event()
        return self._available_event

    # -- submission ----------------------------------------------------

    @property
    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, spec: BaseSpec, *,
               trace_ctx: Optional[TraceContext] = None) -> Ticket:
        """Admit *spec*; returns its ticket (possibly a shared leader).

        Raises :class:`Draining` or :class:`QueueFull`.  When an
        identical request is already in flight the existing leader
        ticket is returned and nothing new is enqueued — the caller
        just awaits the shared future.  *trace_ctx* (the admitting
        request's span context) rides on the ticket so the dispatcher
        can attribute queue wait and worker time to the right trace.
        """
        if self._draining:
            self.metrics.counter("serve.rejected_draining").inc()
            raise Draining("daemon is draining; retry against a "
                           "fresh instance")

        fingerprint = spec.fingerprint
        leader = self._inflight.get(fingerprint)
        if leader is not None and not leader.future.done() \
                and not leader.abandoned:
            self.metrics.counter("serve.singleflight_coalesced").inc()
            return leader

        if self.depth >= self.max_depth:
            self.metrics.counter("serve.rejected_queue_full").inc()
            raise QueueFull(f"admission queue at capacity "
                            f"({self.max_depth})")

        loop = asyncio.get_running_loop()
        ticket = Ticket(spec=spec, future=loop.create_future(),
                        trace_ctx=trace_ctx)
        self._inflight[fingerprint] = ticket
        ticket.future.add_done_callback(
            lambda _fut, fp=fingerprint, t=ticket:
            self._forget(fp, t))
        self._queues[spec.priority].append(ticket)
        self.metrics.counter("serve.admitted").inc()
        self.metrics.gauge("serve.queue_depth").set(self.depth)
        self._available.set()
        return ticket

    def _forget(self, fingerprint: str, ticket: Ticket) -> None:
        if self._inflight.get(fingerprint) is ticket:
            del self._inflight[fingerprint]

    # -- consumption ---------------------------------------------------

    async def next_ticket(self) -> Optional[Ticket]:
        """Pop the next live ticket (interactive before batch).

        Expired / abandoned tickets are resolved with ``None`` result
        markers by failing their futures here, not executed.  Returns
        ``None`` when the queue is draining *and* empty — the
        dispatcher's signal to exit.
        """
        while True:
            for priority in Priority:   # declaration order = rank
                queue = self._queues[priority]
                while queue:
                    ticket = queue.popleft()
                    self.metrics.gauge("serve.queue_depth") \
                        .set(self.depth)
                    if ticket.future.done() or ticket.abandoned:
                        continue
                    if ticket.expired:
                        self.metrics.counter(
                            "serve.expired_in_queue").inc()
                        if not ticket.future.done():
                            ticket.future.cancel()
                        continue
                    self.metrics.histogram("serve.queue_wait_us") \
                        .observe(int((time.monotonic()
                                      - ticket.enqueued_at) * 1e6))
                    return ticket
            if self._draining:
                return None
            self._available.clear()
            if self.depth == 0:
                await self._available.wait()

    # -- drain ---------------------------------------------------------

    def begin_drain(self) -> None:
        self._draining = True
        self._available.set()   # wake idle dispatchers so they can exit

    async def join(self, poll_s: float = 0.01) -> None:
        """Wait until every admitted ticket has been resolved."""
        while self.depth or self._inflight:
            await asyncio.sleep(poll_s)
